//go:build !race

package repro

// raceEnabled reports whether the race detector instruments this build.
// The race runtime allocates on its own (shadow state, sync metadata),
// inflating testing.AllocsPerRun far past the real budgets, so the
// allocation pins skip when it is on — the non-race run carries the
// regression signal.
const raceEnabled = false
