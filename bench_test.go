// Package repro's root benchmark suite regenerates every table and figure
// of the evaluation (DESIGN.md §3) under the Go benchmark harness, plus
// micro-benchmarks for the engine's hot paths.
//
// Table/figure benches run the corresponding experiment at reduced (Quick)
// scale per iteration so `go test -bench=.` stays tractable; the full-scale
// numbers are produced by `go run ./cmd/goalsim -experiment all`.
package repro

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/experiments"
	"repro/internal/fst"
	"repro/internal/goal"
	"repro/internal/goals/delegation"
	"repro/internal/goals/learning"
	"repro/internal/goals/printing"
	"repro/internal/goals/treasure"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1Universality regenerates Table T1 (universality across the
// dialected-printer class).
func BenchmarkT1Universality(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2Overhead regenerates Table T2 (enumeration overhead on the
// password-vault class).
func BenchmarkT2Overhead(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3FiniteLevin regenerates Table T3 (finite-goal Levin search on
// the delegation goal).
func BenchmarkT3FiniteLevin(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4SensingAblation regenerates Table T4 (safety/viability
// ablation).
func BenchmarkT4SensingAblation(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkT5Beliefs regenerates Table T5 (compatible-beliefs speedup).
func BenchmarkT5Beliefs(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkT6Multiparty regenerates Table T6 (multi-party reduction).
func BenchmarkT6Multiparty(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkF1LearningCurves regenerates Figure F1 (learning curves).
func BenchmarkF1LearningCurves(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2SwitchTrace regenerates Figure F2 (universal-user switch
// trace).
func BenchmarkF2SwitchTrace(b *testing.B) { benchExperiment(b, "F2") }

// --- micro-benchmarks: engine and substrate hot paths ---

// BenchmarkEngineRound measures raw engine throughput: rounds/sec of a
// silent three-party system, under each retention policy. The full
// sub-benchmark is the seed's recording baseline; window and off show the
// allocation win of keeping only what referees consume. Results are
// released back to the engine pool, as batch hot paths do.
func BenchmarkEngineRound(b *testing.B) {
	for _, bc := range []struct {
		name string
		rec  system.RecordPolicy
	}{
		{"full", system.RecordFull},
		{"window10", system.RecordWindow(10)},
		{"off", system.RecordOff},
	} {
		b.Run(bc.name, func(b *testing.B) {
			usr := &treasure.Candidate{Guess: 0}
			srv := server.Obstinate()
			w := &treasure.World{}
			cfg := system.Config{MaxRounds: 1000, Seed: 1, Record: bc.rec}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := system.Run(usr, srv, w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				system.ReleaseResult(res)
			}
		})
	}
}

// BenchmarkRunBatch measures batch scheduling: 64 independent
// password-vault trials per iteration, serial vs the GOMAXPROCS pool.
func BenchmarkRunBatch(b *testing.B) {
	mkTrials := func() []system.Trial {
		trials := make([]system.Trial, 64)
		for t := range trials {
			trials[t] = system.Trial{
				User:   func() (comm.Strategy, error) { return &treasure.Candidate{Guess: t % 8}, nil },
				Server: func() comm.Strategy { return &treasure.Server{Secret: t % 8} },
				World:  func() goal.World { return &treasure.World{} },
				Config: system.Config{MaxRounds: 500, Seed: uint64(t + 1), Record: system.RecordWindow(10)},
			}
		}
		return trials
	}
	for _, bc := range []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := system.RunBatch(mkTrials(), system.BatchConfig{Parallelism: bc.parallel})
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					system.ReleaseResult(res)
				}
			}
		})
	}
}

// BenchmarkCompactUserConvergence measures a full universal-user
// convergence on the printing goal (N=16, worst-case server).
func BenchmarkCompactUserConvergence(b *testing.B) {
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 16)
	if err != nil {
		b.Fatal(err)
	}
	g := &printing.Goal{}
	srvD := fam.Dialect(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
		if err != nil {
			b.Fatal(err)
		}
		res, err := system.Run(u, server.Dialected(&printing.Server{}, srvD),
			g.NewWorld(goal.Env{}), system.Config{MaxRounds: 800, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 10) {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkDialectEncode measures permutation-dialect encoding of a typical
// command.
func BenchmarkDialectEncode(b *testing.B) {
	fam, err := dialect.NewPermutationFamily(4, 7)
	if err != nil {
		b.Fatal(err)
	}
	d := fam.Dialect(3)
	msg := comm.Message("PRINT the quarterly report 2026")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Encode(msg)
	}
}

// BenchmarkFSTDecode measures mixed-radix decoding of finite-state
// transducers from their enumeration index.
func BenchmarkFSTDecode(b *testing.B) {
	space := fst.Space{NumStates: 4, NumIn: 4, NumOut: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := space.Machine(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsetSumSolve measures the delegation server's witness search.
func BenchmarkSubsetSumSolve(b *testing.B) {
	r := xrand.New(5)
	ins := delegation.Generate(16, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ins.Solve(); !ok {
			b.Fatal("unsolvable")
		}
	}
}

// BenchmarkHalvingLearner measures a full halving-algorithm run on the
// prediction goal (M=256).
func BenchmarkHalvingLearner(b *testing.B) {
	g := &learning.Goal{M: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := g.NewWorld(goal.Env{Choice: 100})
		if _, err := system.Run(&learning.HalvingUser{M: 256}, server.Obstinate(), w,
			system.Config{MaxRounds: 2000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerationStrategy measures candidate instantiation, the inner
// loop of every universal user.
func BenchmarkEnumerationStrategy(b *testing.B) {
	enum := treasure.Enum(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enum.Strategy(i)
	}
}
