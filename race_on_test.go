//go:build race

package repro

// raceEnabled reports whether the race detector instruments this build;
// allocation pins skip under it (see race_off_test.go).
const raceEnabled = true
