package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "T6", "F2"} {
		if !strings.Contains(b.String(), id) {
			t.Fatalf("list output missing %s:\n%s", id, b.String())
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-experiment", "T2", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "T2") || !strings.Contains(b.String(), "oracle") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-experiment", "T99"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-no-such-flag"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunOutFile(t *testing.T) {
	t.Parallel()

	path := t.TempDir() + "/report.txt"
	var b strings.Builder
	if err := run([]string{"-experiment", "F2", "-quick", "-out", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "F2") {
		t.Fatalf("file output missing F2:\n%s", data)
	}
}

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}
