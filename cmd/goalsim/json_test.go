package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunJSONReport(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "T2", "-quick", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Report struct {
			Tables []struct {
				ID      string     `json:"id"`
				Columns []string   `json:"columns"`
				Rows    [][]string `json:"rows"`
			} `json:"tables"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(b.String()), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(reports) != 1 || reports[0].ID != "T2" {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	tbl := reports[0].Report.Tables[0]
	if len(tbl.Rows) == 0 || len(tbl.Rows[0]) != len(tbl.Columns) {
		t.Fatalf("malformed table: %+v", tbl)
	}
}

func TestRunJSONDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel string) string {
		var b strings.Builder
		if err := run([]string{"-experiment", "T1", "-quick", "-json", "-parallel", parallel}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if serial, eight := render("1"), render("8"); serial != eight {
		t.Fatal("-json output differs between -parallel 1 and -parallel 8")
	}
}
