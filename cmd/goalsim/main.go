// Command goalsim regenerates the tables and figures of the reproduction
// (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	goalsim -experiment all            # run everything (full sizes)
//	goalsim -experiment T2 -quick      # one experiment at reduced scale
//	goalsim -experiment A5             # ablations A1..A5
//	goalsim -parallel 4                # bound the trial worker pool
//	goalsim -experiment T1 -json       # machine-readable report
//	goalsim -list                      # show available experiments
//
// Output goes to stdout (or -out FILE); runs are deterministic per -seed,
// and -parallel never changes the report (trials execute through the batch
// engine, which delivers results in submission order). -json emits the
// tables and series as a JSON array — one object per experiment — for
// tracking benchmark trajectories across commits; the JSON is fully
// deterministic (no timings).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "goalsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("goalsim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (T1..T6, F1, F2, A1..A5) or \"all\"")
		quick      = fs.Bool("quick", false, "reduced sizes for a fast smoke run")
		seed       = fs.Uint64("seed", 1, "root random seed")
		parallel   = fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS); does not affect results")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of ASCII tables")
		outPath    = fs.String("out", "", "write the report to this file instead of stdout")
		list       = fs.Bool("list", false, "list available experiments and exit")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	var runners []experiments.Runner
	if *experiment == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByID(*experiment)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Parallel: *parallel}

	if *jsonOut {
		type jsonExperiment struct {
			ID     string          `json:"id"`
			Title  string          `json:"title"`
			Report *harness.Report `json:"report"`
		}
		reports := make([]jsonExperiment, 0, len(runners))
		for _, r := range runners {
			rep, err := r.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
			reports = append(reports, jsonExperiment{ID: r.ID, Title: r.Title, Report: rep})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprintf(out, "### %s — %s (elapsed %v)\n\n", r.ID, r.Title, time.Since(start).Round(time.Millisecond))
		if err := rep.Render(out); err != nil {
			return fmt.Errorf("%s: render: %w", r.ID, err)
		}
	}
	return nil
}
