// Command goalcert empirically certifies the semantic properties the
// theory's Theorem 1 assumes: helpfulness of each server in a class, and
// safety and viability of a goal's stock sensing function.
//
// Usage:
//
//	goalcert -goal printing -class 8
//	goalcert -goal treasure -class 16
//	goalcert -goal transfer -class 6
//	goalcert -goal control -class 5 -parallel 4
//	goalcert -goal printing -class 8 -json
//
// Certification sweeps are embarrassingly parallel and run through the
// batch engine; -parallel bounds the worker pool without affecting the
// verdicts. -json emits the report as a harness.CertReport — fully
// deterministic, for tracking certification across commits — and the exit
// code still signals failure.
//
// For each goal it builds the standard server class (plus known-unhelpful
// probes: an obstinate server and, where defined, a lying one), reports
// which servers are certified helpful with a witness candidate, and checks
// the sensing function's safety and viability against the class.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/goals/printing"
	"repro/internal/goals/transfer"
	"repro/internal/goals/treasure"
	"repro/internal/harness"
	"repro/internal/sensing"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "goalcert:", err)
		os.Exit(1)
	}
}

// bundle is everything certification needs about one goal.
type bundle struct {
	goal    goal.CompactGoal
	enum    enumerate.Enumerator
	mkSense func() sensing.Sense
	// servers are the class members; probes are known-unhelpful
	// strategies that must NOT certify as helpful.
	servers []func() comm.Strategy
	probes  map[string]func() comm.Strategy
}

func buildBundle(goalName string, classSize int) (*bundle, error) {
	switch goalName {
	case "printing":
		fam, err := dialect.NewWordFamily(printing.Vocabulary(), classSize)
		if err != nil {
			return nil, err
		}
		b := &bundle{
			goal:    &printing.Goal{Docs: []string{"doc"}},
			enum:    printing.Enum(fam),
			mkSense: func() sensing.Sense { return printing.Sense(0) },
			probes: map[string]func() comm.Strategy{
				"obstinate": server.Obstinate,
				"lying":     func() comm.Strategy { return &printing.LyingServer{} },
			},
		}
		for i := 0; i < classSize; i++ {
			d := fam.Dialect(i)
			b.servers = append(b.servers, func() comm.Strategy {
				return server.Dialected(&printing.Server{}, d)
			})
		}
		return b, nil
	case "treasure":
		b := &bundle{
			goal:    &treasure.Goal{},
			enum:    treasure.Enum(classSize),
			mkSense: func() sensing.Sense { return treasure.Sense(0) },
			probes: map[string]func() comm.Strategy{
				"obstinate": server.Obstinate,
			},
		}
		cls := treasure.Class(classSize)
		for i := 0; i < classSize; i++ {
			i := i
			b.servers = append(b.servers, func() comm.Strategy { return cls.New(i) })
		}
		return b, nil
	case "transfer":
		fam, err := dialect.NewWordFamily(transfer.Vocabulary(), classSize)
		if err != nil {
			return nil, err
		}
		b := &bundle{
			goal:    &transfer.Goal{K: 4},
			enum:    transfer.Enum(fam),
			mkSense: func() sensing.Sense { return transfer.Sense(0) },
			probes: map[string]func() comm.Strategy{
				"obstinate": server.Obstinate,
			},
		}
		for i := 0; i < classSize; i++ {
			d := fam.Dialect(i)
			b.servers = append(b.servers, func() comm.Strategy {
				return server.Dialected(&transfer.Server{}, d)
			})
		}
		return b, nil
	case "control":
		fam, err := control.NewUnitsFamily(classSize)
		if err != nil {
			return nil, err
		}
		b := &bundle{
			goal:    &control.Goal{Span: 20},
			enum:    control.Enum(fam),
			mkSense: func() sensing.Sense { return control.Sense(0) },
			probes: map[string]func() comm.Strategy{
				"obstinate": server.Obstinate,
			},
		}
		for i := 0; i < classSize; i++ {
			d := fam.Dialect(i)
			b.servers = append(b.servers, func() comm.Strategy {
				return server.Dialected(&control.Server{}, d)
			})
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unknown goal %q (printing, treasure, transfer, control)", goalName)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("goalcert", flag.ContinueOnError)
	var (
		goalName  = fs.String("goal", "printing", "goal to certify: printing, treasure, transfer, control")
		classSize = fs.Int("class", 8, "server class size")
		rounds    = fs.Int("rounds", 0, "horizon per certification run (0 = 60 × class size)")
		seed      = fs.Uint64("seed", 1, "root random seed")
		parallel  = fs.Int("parallel", 0, "certification worker pool size (0 = GOMAXPROCS); does not affect results")
		jsonOut   = fs.Bool("json", false, "emit the certification report as JSON instead of text")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *classSize < 1 {
		return fmt.Errorf("class size must be positive, got %d", *classSize)
	}

	b, err := buildBundle(*goalName, *classSize)
	if err != nil {
		return err
	}
	horizon := *rounds
	if horizon <= 0 {
		horizon = 60 * *classSize
	}
	cfg := harness.CertConfig{MaxRounds: horizon, Seed: *seed, Envs: 1, Parallel: *parallel}
	report := &harness.CertReport{
		Goal:      *goalName,
		Class:     *classSize,
		Horizon:   horizon,
		Seed:      *seed,
		Safety:    []harness.Violation{},
		Viability: []harness.Violation{},
	}
	// 1. Helpfulness of every class member and every probe.
	tbl := &harness.Table{
		ID:      "CERT",
		Title:   fmt.Sprintf("helpfulness for goal %q (class size %d, horizon %d)", *goalName, *classSize, horizon),
		Columns: []string{"server", "helpful", "witness candidate"},
	}
	for i, mk := range b.servers {
		ok, witness := harness.HelpfulCompact(b.goal, mk, b.enum, cfg)
		w := "-"
		if ok {
			w = harness.I(witness)
		}
		name := fmt.Sprintf("class[%d]", i)
		tbl.AddRow(name, yesNo(ok), w)
		report.Servers = append(report.Servers, harness.ServerVerdict{
			Server: name, Helpful: ok, Witness: witness,
		})
	}
	// Probes are iterated in sorted name order so the report (and the
	// violation indices below) are identical run to run.
	probeNames := make([]string, 0, len(b.probes))
	for name := range b.probes {
		probeNames = append(probeNames, name)
	}
	sort.Strings(probeNames)
	for _, name := range probeNames {
		ok, _ := harness.HelpfulCompact(b.goal, b.probes[name], b.enum, cfg)
		tbl.AddRow("probe:"+name, yesNo(ok), "-")
		report.Servers = append(report.Servers, harness.ServerVerdict{
			Server: "probe:" + name, Probe: true, Helpful: ok, Witness: -1,
		})
		if ok {
			// Neither mode emits a report here: the sweep is
			// incomplete, and a truncated report would be
			// indistinguishable from a complete uncertified one.
			return fmt.Errorf("probe %q wrongly certified helpful", name)
		}
	}

	// 2. Safety against class ∪ probes; viability against the class.
	all := append([]func() comm.Strategy{}, b.servers...)
	for _, name := range probeNames {
		all = append(all, b.probes[name])
	}
	report.Safety = append(report.Safety,
		harness.CertifySafetyCompact(b.goal, b.mkSense, b.enum, all, cfg)...)
	report.Viability = append(report.Viability,
		harness.CertifyViabilityCompact(b.goal, b.mkSense, b.enum, b.servers, cfg)...)
	report.Certified = len(report.Safety)+len(report.Viability) == 0

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		if err := tbl.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nsensing safety violations:    %d\n", len(report.Safety))
		for _, v := range report.Safety {
			fmt.Fprintln(stdout, " ", v)
		}
		fmt.Fprintf(stdout, "sensing viability violations: %d\n", len(report.Viability))
		for _, v := range report.Viability {
			fmt.Fprintln(stdout, " ", v)
		}
		if report.Certified {
			fmt.Fprintln(stdout, "\ncertified: sensing is safe and viable — Theorem 1 applies to this goal and class")
		}
	}
	if !report.Certified {
		return fmt.Errorf("certification failed: %d safety, %d viability violations",
			len(report.Safety), len(report.Viability))
	}
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
