package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestCertifyPrinting(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4"}, &b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"class[0]", "probe:obstinate", "certified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "probe:obstinate  yes") {
		t.Fatal("obstinate probe certified helpful")
	}
}

func TestCertifyTreasure(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "treasure", "-class", "6"}, &b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "certified") {
		t.Fatalf("treasure not certified:\n%s", b.String())
	}
}

func TestCertifyTransfer(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "transfer", "-class", "4"}, &b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "certified") {
		t.Fatalf("transfer not certified:\n%s", b.String())
	}
}

func TestCertifyUnknownGoal(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "nosuch"}, &b); err == nil {
		t.Fatal("unknown goal accepted")
	}
}

func TestCertifyBadClassSize(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-class", "0"}, &b); err == nil {
		t.Fatal("class size 0 accepted")
	}
}

func TestWitnessMatchesServerIndex(t *testing.T) {
	t.Parallel()

	// For dialect classes, the witness candidate for class[i] is i.
	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := "class[" + string(rune('0'+i)) + "]"
		found := false
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.Contains(line, want) && strings.Contains(line, "yes") {
				fields := strings.Fields(line)
				if fields[len(fields)-1] == string(rune('0'+i)) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("witness for %s wrong:\n%s", want, b.String())
		}
	}
}

func TestCertifyJSON(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4", "-json"}, &b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	var report harness.CertReport
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("output is not a CertReport: %v\n%s", err, b.String())
	}
	if !report.Certified {
		t.Fatalf("printing/4 not certified: %+v", report)
	}
	if report.Goal != "printing" || report.Class != 4 || report.Horizon != 240 {
		t.Fatalf("report header wrong: %+v", report)
	}
	// 4 class members + 2 probes (obstinate, lying), none of the probes
	// helpful, witnesses matching the dialect indices.
	if len(report.Servers) != 6 {
		t.Fatalf("report has %d server verdicts, want 6", len(report.Servers))
	}
	for i, sv := range report.Servers[:4] {
		if !sv.Helpful || sv.Witness != i || sv.Probe {
			t.Fatalf("class[%d] verdict wrong: %+v", i, sv)
		}
	}
	for _, sv := range report.Servers[4:] {
		if sv.Helpful || !sv.Probe {
			t.Fatalf("probe verdict wrong: %+v", sv)
		}
	}
	if len(report.Safety) != 0 || len(report.Viability) != 0 {
		t.Fatalf("unexpected violations: %+v", report)
	}

	// Reports are deterministic: a second run is byte-identical.
	var b2 strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4", "-json"}, &b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("-json report differs between identical runs")
	}
}

func TestCertifyControl(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "control", "-class", "5", "-rounds", "400"}, &b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "certified") {
		t.Fatalf("control not certified:\n%s", b.String())
	}
}
