package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/goals/printing"
	"repro/internal/trace"
)

func TestRunUniversalPrinting(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4", "-server", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "achieved:  true") {
		t.Fatalf("universal user failed:\n%s", out)
	}
	if !strings.Contains(out, "evictions") {
		t.Fatalf("universal stats missing:\n%s", out)
	}
}

func TestRunFixedFailsOnMismatch(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4", "-server", "2", "-user", "fixed"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "achieved:  false") {
		t.Fatalf("fixed user should fail on mismatched server:\n%s", b.String())
	}
}

func TestRunOracleTreasure(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "treasure", "-class", "8", "-server", "5", "-user", "oracle"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "achieved:  true") {
		t.Fatalf("oracle failed:\n%s", b.String())
	}
}

func TestRunTraceOutput(t *testing.T) {
	t.Parallel()

	path := t.TempDir() + "/run.json"
	var b strings.Builder
	if err := run([]string{"-goal", "printing", "-class", "4", "-server", "1",
		"-trace", path}, &b); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	// The recorded execution must re-judge as achieved offline.
	if !rec.JudgeCompact(&printing.Goal{}, 10) {
		t.Fatal("offline judgement of the trace failed")
	}
	if !rec.ReplaySense(printing.Sense(0)) {
		t.Fatal("offline sensing replay failed")
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "nosuch"}, &b); err == nil {
		t.Error("unknown goal accepted")
	}
	if err := run([]string{"-class", "0"}, &b); err == nil {
		t.Error("class 0 accepted")
	}
	if err := run([]string{"-class", "4", "-server", "9"}, &b); err == nil {
		t.Error("out-of-class server accepted")
	}
	if err := run([]string{"-user", "nosuch"}, &b); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestRunTransfer(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "transfer", "-class", "4", "-server", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "achieved:  true") {
		t.Fatalf("transfer failed:\n%s", b.String())
	}
}

func TestRunControl(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-goal", "control", "-class", "5", "-server", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "achieved:  true") {
		t.Fatalf("control run failed:\n%s", b.String())
	}
}
