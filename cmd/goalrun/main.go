// Command goalrun executes a single goal-oriented scenario and reports the
// outcome, optionally dumping a replayable JSON trace of the execution.
//
// Usage:
//
//	goalrun -goal printing -class 8 -server 3 -user universal
//	goalrun -goal treasure -class 16 -server 9 -user fixed
//	goalrun -goal transfer -class 6 -server 5 -trace run.json
//
// Users: universal (enumeration + sensing), oracle (told the server's
// index), fixed (always candidate 0).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/goals/printing"
	"repro/internal/goals/transfer"
	"repro/internal/goals/treasure"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/universal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "goalrun:", err)
		os.Exit(1)
	}
}

// scenario bundles one goal's cast for the CLI.
type scenario struct {
	goal     goal.CompactGoal
	enum     enumerate.Enumerator
	sense    sensing.Sense
	mkServer func(i int) comm.Strategy
}

func buildScenario(goalName string, classSize int) (*scenario, error) {
	switch goalName {
	case "printing":
		fam, err := dialect.NewWordFamily(printing.Vocabulary(), classSize)
		if err != nil {
			return nil, err
		}
		return &scenario{
			goal:  &printing.Goal{},
			enum:  printing.Enum(fam),
			sense: printing.Sense(0),
			mkServer: func(i int) comm.Strategy {
				return server.Dialected(&printing.Server{}, fam.Dialect(i))
			},
		}, nil
	case "treasure":
		return &scenario{
			goal:  &treasure.Goal{},
			enum:  treasure.Enum(classSize),
			sense: treasure.Sense(0),
			mkServer: func(i int) comm.Strategy {
				return &treasure.Server{Secret: i}
			},
		}, nil
	case "transfer":
		fam, err := dialect.NewWordFamily(transfer.Vocabulary(), classSize)
		if err != nil {
			return nil, err
		}
		return &scenario{
			goal:  &transfer.Goal{},
			enum:  transfer.Enum(fam),
			sense: transfer.Sense(0),
			mkServer: func(i int) comm.Strategy {
				return server.Dialected(&transfer.Server{}, fam.Dialect(i))
			},
		}, nil
	case "control":
		fam, err := control.NewUnitsFamily(classSize)
		if err != nil {
			return nil, err
		}
		return &scenario{
			goal:  &control.Goal{},
			enum:  control.Enum(fam),
			sense: control.Sense(0),
			mkServer: func(i int) comm.Strategy {
				return server.Dialected(&control.Server{}, fam.Dialect(i))
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown goal %q (printing, treasure, transfer, control)", goalName)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("goalrun", flag.ContinueOnError)
	var (
		goalName  = fs.String("goal", "printing", "goal: printing, treasure, transfer, control")
		classSize = fs.Int("class", 8, "server class size")
		serverIdx = fs.Int("server", 0, "index of the server the adversary picks")
		userKind  = fs.String("user", "universal", "user strategy: universal, oracle, fixed")
		rounds    = fs.Int("rounds", 0, "horizon (0 = 60 × class size)")
		seed      = fs.Uint64("seed", 1, "random seed")
		tracePath = fs.String("trace", "", "write a replayable JSON trace to this file")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *classSize < 1 {
		return fmt.Errorf("class size must be positive")
	}
	if *serverIdx < 0 || *serverIdx >= *classSize {
		return fmt.Errorf("server index %d outside class [0,%d)", *serverIdx, *classSize)
	}

	sc, err := buildScenario(*goalName, *classSize)
	if err != nil {
		return err
	}

	var usr comm.Strategy
	switch *userKind {
	case "universal":
		u, err := universal.NewCompactUser(sc.enum, sc.sense)
		if err != nil {
			return err
		}
		usr = u
	case "oracle":
		usr = sc.enum.Strategy(*serverIdx)
	case "fixed":
		usr = sc.enum.Strategy(0)
	default:
		return fmt.Errorf("unknown user kind %q", *userKind)
	}

	horizon := *rounds
	if horizon <= 0 {
		horizon = 60 * *classSize
	}
	res, err := system.Run(usr, sc.mkServer(*serverIdx), sc.goal.NewWorld(goal.Env{Seed: *seed}),
		system.Config{MaxRounds: horizon, Seed: *seed})
	if err != nil {
		return err
	}

	achieved := goal.CompactAchieved(sc.goal, res.History, 10)
	fmt.Fprintf(stdout, "goal:      %s (class %d, server %d, user %s)\n",
		sc.goal.Name(), *classSize, *serverIdx, *userKind)
	fmt.Fprintf(stdout, "achieved:  %v\n", achieved)
	fmt.Fprintf(stdout, "rounds:    %d (converged at %d)\n",
		res.Rounds, goal.LastUnacceptable(sc.goal, res.History))
	fmt.Fprintf(stdout, "end state: %s\n", res.History.Last())
	if u, ok := usr.(*universal.CompactUser); ok {
		fmt.Fprintf(stdout, "universal: %d evictions, final candidate %d\n",
			u.Switches(), u.Index())
	}

	if *tracePath != "" {
		rec, err := trace.FromResult(res, sc.goal.Name(), *seed)
		if err != nil {
			return err
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *tracePath, err)
		}
		defer f.Close()
		if err := rec.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace:     %s\n", *tracePath)
	}
	return nil
}
