package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// getBody fetches a URL and returns status, content type, and body.
func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestServeDashboardEndpoints drives goalsweep serve -dashboard
// -bench-history end to end: while the coordinator waits for workers,
// the root path serves the embedded page, /metrics serves the
// Prometheus exposition, and /bench-history re-serves the trajectory
// file; the protocol endpoints keep working underneath, and -v surfaces
// the structured lease lifecycle on stderr.
func TestServeDashboardEndpoints(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	history := filepath.Join(dir, "bench-history.jsonl")
	line1 := `{"spec":"quick sweep","roundsPerSec":100000,"commit":"aaaaaaa1"}`
	line2 := `{"spec":"quick sweep","roundsPerSec":120000,"commit":"bbbbbbb2"}`
	if err := os.WriteFile(history, []byte(line1+"\n"+line2+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	serveStderr := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() {
		var b strings.Builder
		serveDone <- run([]string{"serve", "-builtin", "quick", "-shards", "2",
			"-listen", "127.0.0.1:0", "-dashboard", "-bench-history", history, "-v",
			"-out", os.DevNull}, &b, serveStderr)
	}()
	url := waitForURL(t, serveStderr)

	// The dashboard page at the exact root.
	status, ctype, body := getBody(t, url+"/")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/html") {
		t.Fatalf("GET / = %d %q, want 200 text/html", status, ctype)
	}
	if !strings.Contains(body, "goalsweep") || !strings.Contains(body, "/bench-history") {
		t.Fatal("dashboard page missing expected content")
	}

	// The Prometheus exposition, with coordinator families present even
	// before any worker shows up.
	status, ctype, body = getBody(t, url+"/metrics")
	if status != http.StatusOK || ctype != obs.PromContentType {
		t.Fatalf("GET /metrics = %d %q, want 200 %q", status, ctype, obs.PromContentType)
	}
	for _, fam := range []string{
		"# TYPE goalsweep_coord_leases_granted_total counter",
		"# TYPE goalsweep_engine_rounds_total counter",
		"# TYPE goalsweep_cache_hits_total counter",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}

	// The trajectory file, byte for byte.
	status, ctype, body = getBody(t, url+"/bench-history")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/jsonl") {
		t.Fatalf("GET /bench-history = %d %q, want 200 application/jsonl", status, ctype)
	}
	if body != line1+"\n"+line2+"\n" {
		t.Fatalf("/bench-history served %q", body)
	}

	// The protocol endpoints still work underneath the dashboard mux,
	// and /status carries the multi-job array alongside the legacy flat
	// mirror fields.
	status, _, body = getBody(t, url+"/status")
	if status != http.StatusOK || !strings.Contains(body, `"shards":2`) ||
		!strings.Contains(body, `"jobs":[`) {
		t.Fatalf("GET /status through dashboard mux = %d %q", status, body)
	}

	var b strings.Builder
	if err := run([]string{"work", "-coordinator", url, "-poll", "10ms"}, &b, io.Discard); err != nil {
		t.Fatalf("work: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// -v surfaced the structured lease lifecycle on serve's stderr.
	stderr := serveStderr.String()
	for _, event := range []string{"event=lease.grant", "event=submit.accept", "event=sweep.complete"} {
		if !strings.Contains(stderr, event) {
			t.Errorf("serve -v stderr missing %q:\n%s", event, stderr)
		}
	}
	if !strings.Contains(stderr, "2 shards from 1 workers") {
		t.Fatalf("serve accounting missing:\n%s", stderr)
	}
}

// TestServeDashboardFlagValidation pins the flag contract: -bench-history
// is a dashboard feature and is refused without it.
func TestServeDashboardFlagValidation(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	err := run([]string{"serve", "-builtin", "quick", "-bench-history", "x.jsonl"}, &b, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-dashboard") {
		t.Fatalf("serve -bench-history without -dashboard accepted: %v", err)
	}
}

// TestBenchcmpHistory exercises benchcmp -history: a well-formed
// trajectory passes with a summary, while duplicate commits and
// unparseable lines fail naming the offending line.
func TestBenchcmpHistory(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.jsonl",
		`{"spec":"quick sweep","roundsPerSec":100000,"commit":"aaaaaaa1"}`+"\n"+
			"\n"+ // blank lines are tolerated
			`{"spec":"quick sweep","roundsPerSec":120000,"commit":"bbbbbbb2"}`+"\n")
	dup := write("dup.jsonl",
		`{"spec":"quick sweep","roundsPerSec":100000,"commit":"aaaaaaa1"}`+"\n"+
			`{"spec":"quick sweep","roundsPerSec":120000,"commit":"aaaaaaa1"}`+"\n")
	garbage := write("garbage.jsonl",
		`{"spec":"quick sweep","roundsPerSec":100000,"commit":"aaaaaaa1"}`+"\n"+
			"not json\n")
	empty := write("empty.jsonl", "\n")

	var out strings.Builder
	if err := run([]string{"benchcmp", "-history", good}, &out, io.Discard); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "2 records, 2 unique commits") ||
		!strings.Contains(got, `spec "quick sweep"`) {
		t.Fatalf("summary line wrong: %q", got)
	}

	var b strings.Builder
	if err := run([]string{"benchcmp", "-history", dup}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), ":2:") || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("duplicate commit not caught with both lines: %v", err)
	}
	if err := run([]string{"benchcmp", "-history", garbage}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), ":2:") || !strings.Contains(err.Error(), "bad record") {
		t.Fatalf("garbage line not caught with line number: %v", err)
	}
	if err := run([]string{"benchcmp", "-history", empty}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no bench history records") {
		t.Fatalf("empty history accepted: %v", err)
	}
	if err := run([]string{"benchcmp", "-history", good, "somefile.json"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no artifact arguments") {
		t.Fatalf("-history with artifact arguments accepted: %v", err)
	}
}
