package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/dist"
	"repro/internal/scenario"
)

// runSubmit enqueues one sweep on a service coordinator: goalsweep
// submit -coordinator URL -spec F|-builtin N [-shards n|auto] [...]
// posts the spec plus overrides to POST /v1/sweeps and prints the job
// ID — and nothing else — on stdout, so scripts can capture it
// directly (JOB=$(goalsweep submit ...)). The human-readable line goes
// to stderr. Submitting an identical sweep again returns the existing
// job's ID: the verb is idempotent and safe to re-run.
func runSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("goalsweep submit", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (http://host:port; required)")
		specPath    = fs.String("spec", "", "JSON scenario spec file")
		builtin     = fs.String("builtin", "", "built-in spec name (default, quick); ignored when -spec is set")
		shardsFlag  = fs.String("shards", "auto", "work units to partition the job into (a count, or \"auto\" to let the coordinator size it from fleet size and observed shard latency)")
		sample      = fs.Int("sample", 0, "sweep only a deterministic random subset of this many scenarios (0 = all)")
		sampleSeed  = fs.Uint64("sampleseed", 1, "seed for -sample subset selection")
		seeds       = fs.Int("seeds", 0, "override the spec's trials per scenario (0 = spec value)")
		window      = fs.Int("window", 0, "override the spec's convergence window (0 = spec value)")
		baseSeed    = fs.Uint64("baseseed", 0, "override the spec's base seed (0 = spec value)")
		filters     filterFlags
	)
	fs.Var(&filters, "filter", "restrict an axis: axis=v1,v2 (repeatable)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("submit needs -coordinator URL (the address goalsweep serve printed)")
	}
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}
	spec, err := resolveSpec(*specPath, *builtin, filters)
	if err != nil {
		return err
	}
	resp, err := dist.NewClient(*coordinator, nil).CreateSweep(ctx, dist.SweepRequest{
		Spec:       spec,
		Shards:     shards,
		Seeds:      *seeds,
		Window:     *window,
		BaseSeed:   *baseSeed,
		SampleN:    *sample,
		SampleSeed: *sampleSeed,
	})
	if err != nil {
		return err
	}
	verb := "submitted"
	if !resp.Created {
		verb = "already queued"
	}
	fmt.Fprintf(stderr, "goalsweep: sweep %s: job %s, spec %q, %d shards (fingerprint %s)\n",
		verb, resp.Job.ID, resp.Job.Spec, resp.Job.Shards, resp.Job.Fingerprint)
	_, err = fmt.Fprintln(stdout, resp.Job.ID)
	return err
}

// runWatch follows one job to completion and renders its report:
// goalsweep watch -coordinator URL [-json|-csv] [-out F] JOB subscribes
// to the job's SSE event stream, collects every shard envelope
// (already-finished shards replay first, the rest arrive live), merges
// them and writes the ordinary report — byte-identical to a local run
// of the same spec. Watching a completed job just replays the stream,
// so the verb doubles as "fetch the report".
func runWatch(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("goalsweep watch", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (http://host:port; required)")
		jsonOut     = fs.Bool("json", false, "emit the merged aggregates and summary as JSON")
		csvOut      = fs.Bool("csv", false, "emit the merged aggregates as CSV")
		outPath     = fs.String("out", "", "write output to this file instead of stdout")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("watch needs -coordinator URL (the address goalsweep serve printed)")
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("watch takes exactly one job ID (goalsweep submit printed it)")
	}
	jobID := fs.Arg(0)

	var sweepShards []*scenario.ShardResult
	start := time.Now()
	// FollowEvents survives dropped streams: it re-subscribes with capped
	// backoff and replays from the start, deduplicating shard frames by
	// ID, so a mid-sweep network blip costs a reconnect, not the report.
	opt := dist.FollowOptions{OnRetry: func(err error, wait time.Duration) {
		fmt.Fprintf(stderr, "goalsweep: job %s: event stream dropped (%v), reconnecting in %v\n",
			jobID, err, wait)
	}}
	err := dist.NewClient(*coordinator, nil).FollowEvents(ctx, jobID, opt, func(ev dist.SweepEvent) error {
		if ev.Type != dist.EventShard {
			return nil
		}
		sr, err := scenario.ReadShardResult(bytes.NewReader(ev.Data))
		if err != nil {
			return fmt.Errorf("shard event %s: %w", ev.ID, err)
		}
		sweepShards = append(sweepShards, sr)
		fmt.Fprintf(stderr, "goalsweep: job %s: shard %s done (%d of %d)\n",
			jobID, sr.Shard, len(sweepShards), sr.Shard.Count)
		return nil
	})
	if err != nil {
		return err
	}
	stats, sum, err := scenario.MergeShards(sweepShards)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "goalsweep: job %s complete: %d shards in %v\n",
		jobID, len(sweepShards), time.Since(start).Round(time.Millisecond))

	out, closeOut, err := openOut(*outPath, stdout)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if err := renderReport(out, *jsonOut, *csvOut, nil, sweepShards[0].Spec, sum, stats, int64(len(stats))); err != nil {
		return err
	}
	return trialFailures(sum, stats)
}
