package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe stderr sink for the serve goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var servingURL = regexp.MustCompile(`at (http://[^\s]+)`)

// waitForURL polls the coordinator's stderr for the serving line and
// returns the resolved base URL.
func waitForURL(t *testing.T, stderr *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := servingURL.FindStringSubmatch(stderr.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("coordinator never printed its serving line:\n%s", stderr.String())
	return ""
}

// TestServeWorkByteIdentical is the CLI acceptance criterion for the
// distributed backend: goalsweep serve plus two concurrent goalsweep work
// processes produce a merged report byte-identical to a plain local run,
// with one of the workers warming a result cache on the side.
func TestServeWorkByteIdentical(t *testing.T) {
	t.Parallel()

	full := runSweep(t, "-builtin", "quick", "-json")
	dir := t.TempDir()
	outPath := filepath.Join(dir, "dist.json")

	serveStderr := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() {
		var b strings.Builder
		serveDone <- run([]string{"serve", "-builtin", "quick", "-shards", "3",
			"-listen", "127.0.0.1:0", "-json", "-out", outPath}, &b, serveStderr)
	}()
	url := waitForURL(t, serveStderr)

	var wg sync.WaitGroup
	workErrs := make([]error, 2)
	for i := range workErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{"work", "-coordinator", url, "-poll", "10ms"}
			if i == 1 {
				args = append(args, "-cache", filepath.Join(dir, "store"))
			}
			var b strings.Builder
			workErrs[i] = run(args, &b, io.Discard)
		}()
	}
	wg.Wait()
	for i, err := range workErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != full {
		t.Fatal("distributed serve/work report differs from plain local -json run")
	}
	if !strings.Contains(serveStderr.String(), "3 shards from 2 workers") {
		t.Fatalf("serve accounting missing:\n%s", serveStderr.String())
	}
}

// serveWork runs one serve + one work invocation to completion and
// returns serve's stderr.
func serveWork(t *testing.T, serveArgs, workArgs []string) string {
	t.Helper()
	serveStderr := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() {
		var b strings.Builder
		serveDone <- run(append([]string{"serve", "-listen", "127.0.0.1:0"}, serveArgs...), &b, serveStderr)
	}()
	url := waitForURL(t, serveStderr)
	var b strings.Builder
	if err := run(append([]string{"work", "-coordinator", url, "-poll", "10ms"}, workArgs...), &b, io.Discard); err != nil {
		t.Fatalf("work: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return serveStderr.String()
}

// TestServeBenchSkippedOnWarmCache pins the distributed counterpart of
// the local -bench/-cache refusal: a fleet that executed every trial gets
// an artifact (with its worker count), a fleet that served from a warm
// shared cache gets a loud skip instead of a lying artifact.
func TestServeBenchSkippedOnWarmCache(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	cold := filepath.Join(dir, "cold-bench.json")
	warm := filepath.Join(dir, "warm-bench.json")

	stderr := serveWork(t,
		[]string{"-builtin", "quick", "-shards", "2", "-bench", cold, "-out", os.DevNull},
		[]string{"-cache", store})
	if strings.Contains(stderr, "artifact skipped") {
		t.Fatalf("cold fleet bench skipped:\n%s", stderr)
	}
	data, err := os.ReadFile(cold)
	if err != nil {
		t.Fatalf("cold fleet wrote no bench artifact: %v", err)
	}
	if !strings.Contains(string(data), `"workers": 1`) {
		t.Fatalf("distributed artifact missing worker count:\n%s", data)
	}

	stderr = serveWork(t,
		[]string{"-builtin", "quick", "-shards", "2", "-bench", warm, "-out", os.DevNull},
		[]string{"-cache", store})
	if !strings.Contains(stderr, "artifact skipped") {
		t.Fatalf("warm fleet bench not skipped:\n%s", stderr)
	}
	if _, err := os.Stat(warm); err == nil {
		t.Fatal("warm fleet wrote a throughput artifact that lies")
	}
}

func TestServeWorkFlagValidation(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"serve", "-builtin", "quick", "-json", "-csv"}, &b, io.Discard); err == nil {
		t.Fatal("serve -json -csv accepted together")
	}
	if err := run([]string{"serve", "-builtin", "quick", "-shards", "0"}, &b, io.Discard); err == nil {
		t.Fatal("serve -shards 0 accepted")
	}
	if err := run([]string{"work"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-coordinator") {
		t.Fatalf("work without -coordinator accepted: %v", err)
	}
}

// TestMergeErrorsNameOffendingFile pins the fix for merge diagnostics:
// mismatch errors must name the input file that conflicts, not just print
// fingerprints.
func TestMergeErrorsNameOffendingFile(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.json")
	s2 := filepath.Join(dir, "s2-foreign.json")
	dup := filepath.Join(dir, "s1-again.json")
	runSweep(t, "-builtin", "quick", "-shard", "1/2", "-json", "-out", s1)
	runSweep(t, "-builtin", "quick", "-seeds", "2", "-shard", "2/2", "-json", "-out", s2)
	runSweep(t, "-builtin", "quick", "-shard", "1/2", "-json", "-out", dup)

	var b strings.Builder
	err := run([]string{"merge", s1, s2}, &b, io.Discard)
	if err == nil || !strings.Contains(err.Error(), s2) || !strings.Contains(err.Error(), s1) ||
		!strings.Contains(err.Error(), "different sweeps") {
		t.Fatalf("fingerprint mismatch does not name both files: %v", err)
	}
	err = run([]string{"merge", s1, dup}, &b, io.Discard)
	if err == nil || !strings.Contains(err.Error(), dup) || !strings.Contains(err.Error(), s1) ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate shard does not name both files: %v", err)
	}
}
