// Command goalsweep evaluates scenario matrices: declarative cross-products
// of (goal × world params × user strategy × server transform stack ×
// horizon) swept through the batch execution engine with online
// per-scenario aggregation.
//
// Usage:
//
//	goalsweep -builtin default                   # sweep the stock matrix
//	goalsweep -spec grid.json -parallel 4        # sweep a JSON spec
//	goalsweep -builtin default -sample 100       # deterministic random subset
//	goalsweep -filter goal=transfer -filter noise=0,0.3
//	goalsweep -builtin default -json -out sweep.json
//	goalsweep -builtin default -csv
//	goalsweep -builtin quick -bench BENCH_sweep.json
//	goalsweep -builtin default -list             # print scenarios, don't run
//
// Sweeps are deterministic per spec and seed: -parallel bounds the worker
// pool without changing a byte of -json/-csv output, and every scenario
// carries a stable content-derived ID, so sampled sweeps report exactly
// what a full enumeration would report for the same scenarios. -bench
// additionally writes a small throughput artifact (the only output with
// timings in it).
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "goalsweep:", err)
		os.Exit(1)
	}
}

// filterFlags collects repeated -filter axis=v1,v2 arguments.
type filterFlags []string

func (f *filterFlags) String() string { return strings.Join(*f, "; ") }
func (f *filterFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("goalsweep", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON scenario spec file")
		builtin    = fs.String("builtin", "", "built-in spec name (default, quick); ignored when -spec is set")
		sample     = fs.Int("sample", 0, "sweep only a deterministic random subset of this many scenarios (0 = all)")
		sampleSeed = fs.Uint64("sampleseed", 1, "seed for -sample subset selection")
		parallel   = fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS); does not affect results")
		seeds      = fs.Int("seeds", 0, "override the spec's trials per scenario (0 = spec value)")
		window     = fs.Int("window", 0, "override the spec's convergence window (0 = spec value)")
		baseSeed   = fs.Uint64("baseseed", 0, "override the spec's base seed (0 = spec value)")
		jsonOut    = fs.Bool("json", false, "emit per-scenario aggregates and the summary as JSON")
		csvOut     = fs.Bool("csv", false, "emit per-scenario aggregates as CSV")
		list       = fs.Bool("list", false, "list the selected scenarios without executing them")
		outPath    = fs.String("out", "", "write output to this file instead of stdout")
		benchPath  = fs.String("bench", "", "also write a throughput artifact (JSON with timings) to this file")
		filters    filterFlags
	)
	fs.Var(&filters, "filter", "restrict an axis: axis=v1,v2 (repeatable)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}

	spec, err := loadSpec(*specPath, *builtin)
	if err != nil {
		return err
	}
	for _, f := range filters {
		name, vals, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("bad -filter %q: want axis=v1,v2", f)
		}
		if err := spec.Restrict(name, strings.Split(vals, ",")...); err != nil {
			return err
		}
	}
	m, err := scenario.NewMatrix(spec)
	if err != nil {
		return err
	}

	var indices []int64 // nil = the whole matrix
	if *sample > 0 {
		indices = m.Sample(*sample, *sampleSeed)
	}
	selected := m.Size()
	if indices != nil {
		selected = int64(len(indices))
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	if *list {
		return listScenarios(out, m, indices)
	}

	cfg := scenario.SweepConfig{
		Parallel: *parallel,
		Seeds:    *seeds,
		Window:   *window,
		BaseSeed: *baseSeed,
	}

	var stats []*scenario.Stats
	var firstFailed *scenario.Stats
	cfg.OnStats = func(st *scenario.Stats) error {
		stats = append(stats, st)
		if st.Errors > 0 && firstFailed == nil {
			firstFailed = st
		}
		return nil
	}
	start := time.Now()
	sum, err := m.Sweep(indices, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *benchPath != "" {
		if err := writeBench(*benchPath, sum, elapsed, *parallel); err != nil {
			return err
		}
	}

	switch {
	case *jsonOut:
		err = writeJSON(out, spec, sum, stats)
	case *csvOut:
		err = writeCSV(out, spec, stats)
	default:
		err = writeTable(out, m, spec, sum, stats, selected)
	}
	if err != nil {
		return err
	}
	// Failing trials are data in the report above, but a sweep that could
	// not execute everything must not exit 0.
	if firstFailed != nil {
		return fmt.Errorf("%d of %d trials failed (first: scenario %s: %s)",
			sum.Errors, sum.Trials, firstFailed.ID, firstFailed.FirstError)
	}
	return nil
}

// loadSpec reads -spec, or resolves -builtin (defaulting to "default").
func loadSpec(specPath, builtin string) (*scenario.Spec, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return scenario.ReadSpec(f)
	}
	if builtin == "" {
		builtin = "default"
	}
	return scenario.BuiltinSpec(builtin)
}

func listScenarios(out io.Writer, m *scenario.Matrix, indices []int64) error {
	emit := func(sc *scenario.Scenario) error {
		_, err := fmt.Fprintln(out, sc.String())
		return err
	}
	if indices == nil {
		return m.Each(emit)
	}
	for _, i := range indices {
		if err := emit(m.At(i)); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(out io.Writer, spec *scenario.Spec, sum *scenario.Summary, stats []*scenario.Stats) error {
	type report struct {
		Spec      string            `json:"spec"`
		Scenarios []*scenario.Stats `json:"scenarios"`
		Summary   *scenario.Summary `json:"summary"`
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Spec: spec.Name, Scenarios: stats, Summary: sum})
}

// g formats a float in shortest round-trip form for CSV cells.
func g(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func writeCSV(out io.Writer, spec *scenario.Spec, stats []*scenario.Stats) error {
	w := csv.NewWriter(out)
	header := []string{"id"}
	for _, ax := range spec.Axes {
		header = append(header, ax.Name)
	}
	header = append(header,
		"trials", "errors", "successes", "successRate",
		"roundsMean", "roundsP50", "roundsP99", "roundsMax", "roundsStddev",
		"meanExecutedRounds", "msgsPerRound", "meanSwitches", "firstError")
	if err := w.Write(header); err != nil {
		return err
	}
	for _, st := range stats {
		row := []string{st.ID}
		for _, av := range st.Axes {
			row = append(row, av.Value)
		}
		row = append(row,
			strconv.Itoa(st.Trials), strconv.Itoa(st.Errors),
			strconv.Itoa(st.Successes), g(st.SuccessRate),
			g(st.Rounds.Mean), g(st.Rounds.P50), g(st.Rounds.P99),
			g(st.Rounds.Max), g(st.Rounds.Stddev),
			g(st.MeanExecutedRounds), g(st.MsgsPerRound), g(st.MeanSwitches),
			st.FirstError)
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// writeTable renders the human-readable report: one row per scenario with
// a column for every axis that actually varies, then the summary.
func writeTable(out io.Writer, m *scenario.Matrix, spec *scenario.Spec,
	sum *scenario.Summary, stats []*scenario.Stats, selected int64) error {
	var varying []string
	for _, ax := range spec.Axes {
		if len(ax.Values) > 1 {
			varying = append(varying, ax.Name)
		}
	}
	tbl := &harness.Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("spec %q: %d of %d scenarios", spec.Name, selected, m.Size()),
		Columns: append(append([]string{"scenario"}, varying...),
			"trials", "ok", "mean", "p50", "p99", "msg/r", "switches"),
	}
	for _, st := range stats {
		row := []string{st.ID}
		for _, name := range varying {
			v, _ := st.Axis(name)
			row = append(row, v)
		}
		row = append(row,
			harness.I(st.Trials),
			harness.Percent(st.Successes, st.Trials),
			harness.F(st.Rounds.Mean),
			harness.F(st.Rounds.P50),
			harness.F(st.Rounds.P99),
			fmt.Sprintf("%.2f", st.MsgsPerRound),
			harness.F(st.MeanSwitches))
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out, "\nsummary: %d scenarios, %d trials, %d successes (%s), %d errors, %d rounds\n",
		sum.Scenarios, sum.Trials, sum.Successes,
		harness.Percent(sum.Successes, sum.Trials), sum.Errors, sum.TotalRounds)
	return err
}

// writeBench writes the throughput artifact — deliberately the only
// goalsweep output that contains timings.
func writeBench(path string, sum *scenario.Summary, elapsed time.Duration, parallel int) error {
	type bench struct {
		Spec         string  `json:"spec"`
		Scenarios    int     `json:"scenarios"`
		Trials       int     `json:"trials"`
		TotalRounds  int64   `json:"totalRounds"`
		Parallel     int     `json:"parallel"`
		ElapsedNs    int64   `json:"elapsedNs"`
		TrialsPerSec float64 `json:"trialsPerSec"`
		RoundsPerSec float64 `json:"roundsPerSec"`
	}
	secs := elapsed.Seconds()
	b := bench{
		Spec:        sum.Spec,
		Scenarios:   sum.Scenarios,
		Trials:      sum.Trials,
		TotalRounds: sum.TotalRounds,
		Parallel:    parallel,
		ElapsedNs:   elapsed.Nanoseconds(),
	}
	if secs > 0 {
		b.TrialsPerSec = float64(sum.Trials) / secs
		b.RoundsPerSec = float64(sum.TotalRounds) / secs
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
