// Command goalsweep evaluates scenario matrices: declarative cross-products
// of (goal × world params × user strategy × server transform stack ×
// horizon) swept through the batch execution engine with online
// per-scenario aggregation.
//
// Usage:
//
//	goalsweep -builtin default                   # sweep the stock matrix
//	goalsweep -spec grid.json -parallel 4        # sweep a JSON spec
//	goalsweep -builtin default -sample 100       # deterministic random subset
//	goalsweep -filter goal=transfer -filter noise=0,0.3
//	goalsweep -builtin default -json -out sweep.json
//	goalsweep -builtin default -csv
//	goalsweep -builtin quick -bench BENCH_sweep.json
//	goalsweep -builtin default -list             # print scenarios, don't run
//	goalsweep -builtin default -cache DIR        # skip already-stored scenarios
//	goalsweep -builtin default -shard 2/3 -json -out shard-2.json
//	goalsweep merge -json -out full.json shard-*.json
//	goalsweep benchcmp old.json new.json         # throughput regression check
//	goalsweep -builtin default -fingerprint      # print the sweep fingerprint
//	goalsweep serve -builtin default -shards 3 -listen :8077 -json -out report.json
//	goalsweep serve -service -state DIR -listen :8077
//	goalsweep work -coordinator http://host:8077 -cache DIR
//	goalsweep submit -coordinator http://host:8077 -builtin default -shards auto
//	goalsweep watch -coordinator http://host:8077 -json -out report.json JOB
//
// Sweeps are deterministic per spec and seed: -parallel bounds the worker
// pool without changing a byte of -json/-csv output, and every scenario
// carries a stable content-derived ID, so sampled sweeps report exactly
// what a full enumeration would report for the same scenarios. -bench
// additionally writes a small throughput artifact (the only output with
// timings in it).
//
// The same determinism makes sweeps distributed-by-construction: -shard
// i/n runs the i-th of n contiguous partitions of the selection (with
// -json it emits a mergeable envelope), and "goalsweep merge" recombines
// a complete set of envelopes into output byte-identical to the unsharded
// run. "goalsweep serve"/"goalsweep work" automate the same split as a
// coordinator/worker pool (see repro/internal/dist): the coordinator
// leases shards over HTTP with a timeout — crashed workers' shards are
// re-issued — validates every submitted envelope against the sweep
// fingerprint, and writes the merged report once the last shard lands.
// "goalsweep serve -service" runs the same coordinator as a long-lived
// multi-tenant job queue instead: "goalsweep submit" enqueues sweeps
// over the /v1 API (printing the job ID), job-agnostic workers drain the
// queue fair-share, and "goalsweep watch" streams a job's shard
// envelopes over SSE and renders the merged report — still
// byte-identical to a local run of the same spec. With -state DIR the
// service persists plans and envelopes and resumes incomplete jobs
// across restarts without re-executing finished shards.
// -cache DIR keeps a content-addressed store of per-scenario
// aggregates keyed by scenario ID, base seed, trials and window: hit
// scenarios are emitted without executing a single trial, again
// byte-identical; corrupted or foreign-version entries fall back to
// re-execution.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
)

func main() {
	// SIGINT/SIGTERM cancel the context instead of killing the process,
	// so a long-lived `serve -service` shuts its listener down cleanly
	// (and a second signal force-kills via the default handler).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "goalsweep:", err)
		os.Exit(1)
	}
}

// filterFlags collects repeated -filter axis=v1,v2 arguments.
type filterFlags []string

func (f *filterFlags) String() string { return strings.Join(*f, "; ") }
func (f *filterFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// run is runCtx without cancellation — the signature most tests use.
func run(args []string, stdout, stderr io.Writer) error {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	if len(args) > 0 {
		switch args[0] {
		case "merge":
			return runMerge(args[1:], stdout)
		case "benchcmp":
			return runBenchcmp(args[1:], stdout)
		case "serve":
			return runServe(ctx, args[1:], stdout, stderr)
		case "work":
			return runWork(ctx, args[1:], stdout, stderr)
		case "submit":
			return runSubmit(ctx, args[1:], stdout, stderr)
		case "watch":
			return runWatch(ctx, args[1:], stdout, stderr)
		case "chaostest":
			return runChaostest(ctx, args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("goalsweep", flag.ContinueOnError)
	var (
		specPath    = fs.String("spec", "", "JSON scenario spec file")
		builtin     = fs.String("builtin", "", "built-in spec name (default, quick, adversarial, family); ignored when -spec is set")
		sample      = fs.Int("sample", 0, "sweep only a deterministic random subset of this many scenarios (0 = all)")
		sampleSeed  = fs.Uint64("sampleseed", 1, "seed for -sample subset selection")
		parallel    = fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS); does not affect results")
		chunk       = fs.Int("chunk", 256, "trials buffered per engine batch; does not affect results")
		trialBatch  = fs.Int("trialbatch", 1, "consecutive trials a worker claims per scheduling step; does not affect results")
		seeds       = fs.Int("seeds", 0, "override the spec's trials per scenario (0 = spec value)")
		window      = fs.Int("window", 0, "override the spec's convergence window (0 = spec value)")
		baseSeed    = fs.Uint64("baseseed", 0, "override the spec's base seed (0 = spec value)")
		jsonOut     = fs.Bool("json", false, "emit per-scenario aggregates and the summary as JSON")
		csvOut      = fs.Bool("csv", false, "emit per-scenario aggregates as CSV")
		list        = fs.Bool("list", false, "list the selected scenarios without executing them")
		outPath     = fs.String("out", "", "write output to this file instead of stdout")
		benchPath   = fs.String("bench", "", "also write a throughput artifact (JSON with timings) to this file")
		shardSpec   = fs.String("shard", "", "run only shard i/n of the selection (1-based, e.g. 2/3); with -json, emits a mergeable shard envelope")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory; stored scenarios skip execution, byte-identically")
		fingerprint = fs.Bool("fingerprint", false, "print the sweep fingerprint (cache/merge identity) and exit without executing")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (pprof format)")
		memProfile  = fs.String("memprofile", "", "write a heap profile, taken after the sweep completes, to this file (pprof format)")
		filters     filterFlags
	)
	fs.Var(&filters, "filter", "restrict an axis: axis=v1,v2 (repeatable)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	if *chunk <= 0 {
		return fmt.Errorf("-chunk must be positive, got %d", *chunk)
	}
	if *trialBatch < 1 {
		return fmt.Errorf("-trialbatch must be at least 1, got %d", *trialBatch)
	}
	if *benchPath != "" && (*cacheDir != "" || *shardSpec != "") {
		// A warm cache would divide unexecuted rounds by near-zero
		// elapsed time, and a shard's throughput is not the sweep's;
		// either artifact would poison benchcmp comparisons.
		return fmt.Errorf("-bench measures fresh full-selection execution and cannot combine with -cache or -shard")
	}
	var shard scenario.Shard
	sharded := *shardSpec != ""
	if sharded {
		var err error
		if shard, err = scenario.ParseShard(*shardSpec); err != nil {
			return err
		}
	}

	spec, err := resolveSpec(*specPath, *builtin, filters)
	if err != nil {
		return err
	}
	m, err := scenario.NewMatrix(spec)
	if err != nil {
		return err
	}
	// A composed spec enumerates (and fingerprints) in canonical form;
	// adopt it so the report, envelope and fingerprint agree.
	spec = m.Spec()

	cfg := scenario.SweepConfig{
		Parallel:    *parallel,
		Seeds:       *seeds,
		Window:      *window,
		BaseSeed:    *baseSeed,
		ChunkTrials: *chunk,
		TrialBatch:  *trialBatch,
	}
	effSeeds, effWindow, effBase := cfg.Effective(spec)
	// The CLI always binds through the stock registry.
	fp := scenario.Fingerprint(spec, scenario.Builtin().Version(), effSeeds, effWindow, effBase, *sample, *sampleSeed)

	out, closeOut, err := openOut(*outPath, stdout)
	if err != nil {
		return err
	}
	// A close error (write-back failure on -out) must surface: CI cmp's
	// these artifacts byte for byte.
	defer func() {
		if cerr := closeOut(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	if *fingerprint {
		_, err := fmt.Fprintln(out, fp)
		return err
	}

	var indices []int64 // nil = the whole matrix
	if *sample > 0 {
		indices = m.Sample(*sample, *sampleSeed)
	}
	if sharded {
		indices = shard.Indices(m, indices)
	}
	selected := m.Size()
	if indices != nil {
		selected = int64(len(indices))
	}

	if *list {
		return listScenarios(out, m, indices)
	}

	if *cacheDir != "" {
		cache, err := scenario.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = cache
	}

	var stats []*scenario.Stats
	cfg.OnStats = func(st *scenario.Stats) error {
		stats = append(stats, st)
		return nil
	}
	// Both profile files are created before the sweep so a bad path
	// fails fast instead of discarding a completed run's results.
	var memProfileFile *os.File
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		memProfileFile = f
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		// Stopped explicitly right after the sweep so the profile covers
		// exactly the trial execution, not report rendering; the deferred
		// stop is a no-op then and only matters on error paths.
		defer pprof.StopCPUProfile()
	}
	// Allocation accounting for the -bench artifact: a MemStats snapshot
	// on either side of the sweep. Only taken when asked — ReadMemStats
	// stops the world.
	var memBefore runtime.MemStats
	if *benchPath != "" {
		runtime.ReadMemStats(&memBefore)
	}
	start := time.Now()
	sum, err := m.Sweep(indices, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	var mallocs int64
	if *benchPath != "" {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		mallocs = int64(memAfter.Mallocs - memBefore.Mallocs)
	}
	if memProfileFile != nil {
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(memProfileFile); err != nil {
			return err
		}
	}

	if *cacheDir != "" {
		// Cache accounting goes to stderr so every report stream stays
		// byte-identical between cold and warm runs.
		fmt.Fprintf(stderr, "goalsweep: cache: %d hits, %d misses, %d trials executed\n",
			sum.CacheHits, sum.CacheMisses, sum.ExecutedTrials)
		if sum.CacheWriteError != nil {
			fmt.Fprintf(stderr, "goalsweep: warning: result cache disabled mid-sweep (results unaffected): %v\n",
				sum.CacheWriteError)
		}
	}
	if *benchPath != "" {
		perGoal, err := benchPerGoal(*specPath, *builtin, filters, spec, cfg, *sample)
		if err != nil {
			return err
		}
		if err := writeBench(*benchPath, sum, elapsed, *parallel, 1, mallocs, perGoal); err != nil {
			return err
		}
	}

	if *jsonOut && sharded {
		sr := &scenario.ShardResult{
			Version:     scenario.ShardFormatVersion,
			Fingerprint: fp,
			Spec:        spec,
			Shard:       shard,
			Scenarios:   stats,
			Summary:     sum,
		}
		err = sr.Write(out)
	} else {
		err = renderReport(out, *jsonOut, *csvOut, m, spec, sum, stats, selected)
	}
	if err != nil {
		return err
	}
	return trialFailures(sum, stats)
}

// openOut resolves -out: stdout, or a created file the caller closes.
func openOut(outPath string, stdout io.Writer) (io.Writer, func() error, error) {
	if outPath == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, nil, fmt.Errorf("create %s: %w", outPath, err)
	}
	return f, f.Close, nil
}

// renderReport writes the aggregates in the selected format. m may be
// nil (merge mode); the table renderer then rebuilds the matrix from the
// spec for its size header.
func renderReport(out io.Writer, jsonOut, csvOut bool, m *scenario.Matrix,
	spec *scenario.Spec, sum *scenario.Summary, stats []*scenario.Stats, selected int64) error {
	switch {
	case jsonOut:
		return writeJSON(out, spec, sum, stats)
	case csvOut:
		return writeCSV(out, spec, stats)
	default:
		if m == nil {
			var err error
			if m, err = scenario.NewMatrix(spec); err != nil {
				return err
			}
		}
		return writeTable(out, m, spec, sum, stats, selected)
	}
}

// trialFailures is the exit contract shared by sweeps and merges:
// failing trials are data in the report, but a run that could not
// execute everything must not exit 0.
func trialFailures(sum *scenario.Summary, stats []*scenario.Stats) error {
	if sum.Errors == 0 {
		return nil
	}
	for _, st := range stats {
		if st.Errors > 0 {
			return fmt.Errorf("%d of %d trials failed (first: scenario %s: %s)",
				sum.Errors, sum.Trials, st.ID, st.FirstError)
		}
	}
	return nil
}

// runMerge recombines shard envelopes (goalsweep -shard i/n -json) into
// the unsharded sweep's report: goalsweep merge [-json|-csv] [-out F]
// shard1.json shard2.json ...
func runMerge(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("goalsweep merge", flag.ContinueOnError)
	var (
		jsonOut = fs.Bool("json", false, "emit the merged aggregates and summary as JSON")
		csvOut  = fs.Bool("csv", false, "emit the merged aggregates as CSV")
		outPath = fs.String("out", "", "write output to this file instead of stdout")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge needs shard result files (goalsweep -shard i/n -json output)")
	}
	var shards []*scenario.ShardResult
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sr, err := scenario.ReadShardResult(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		// Cross-envelope mismatches are detected here, where the offending
		// input file can be named; MergeShards sees only envelopes.
		first := files[0]
		if i > 0 {
			if sr.Fingerprint != shards[0].Fingerprint {
				return fmt.Errorf("%s: shard %s fingerprint %s does not match %s from %s — shards come from different sweeps",
					path, sr.Shard, sr.Fingerprint, shards[0].Fingerprint, first)
			}
			if sr.Shard.Count != shards[0].Shard.Count {
				return fmt.Errorf("%s: shard %s mixed into the %d-way partition started by %s",
					path, sr.Shard, shards[0].Shard.Count, first)
			}
		}
		for j, prev := range shards {
			if prev.Shard.Index == sr.Shard.Index {
				return fmt.Errorf("%s: duplicate shard %s, already supplied by %s", path, sr.Shard, files[j])
			}
		}
		shards = append(shards, sr)
	}
	stats, sum, err := scenario.MergeShards(shards)
	if err != nil {
		return err
	}
	out, closeOut, err := openOut(*outPath, stdout)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if err := renderReport(out, *jsonOut, *csvOut, nil, shards[0].Spec, sum, stats, int64(len(stats))); err != nil {
		return err
	}
	return trialFailures(sum, stats)
}

// runBenchcmp compares two throughput artifacts (goalsweep -bench) and
// fails when the fresh one regresses beyond the tolerance: goalsweep
// benchcmp [-maxdrop F] baseline.json fresh.json
func runBenchcmp(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("goalsweep benchcmp", flag.ContinueOnError)
	maxDrop := fs.Float64("maxdrop", 0.5, "fail when roundsPerSec drops by more than this fraction of the baseline")
	maxAllocGrow := fs.Float64("maxallocgrow", 0.5, "fail when allocsPerRound grows by more than this fraction of the baseline (checked only when both artifacts carry allocation counts)")
	history := fs.String("history", "", "validate a bench-history.jsonl trajectory (every record parses, commits unique) instead of comparing two artifacts")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *history != "" {
		if len(files) != 0 {
			return fmt.Errorf("benchcmp -history takes no artifact arguments")
		}
		return checkBenchHistory(*history, stdout)
	}
	if len(files) != 2 {
		return fmt.Errorf("benchcmp needs exactly two artifacts: baseline.json fresh.json")
	}
	readBench := func(path string) (*harness.SweepBench, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var b harness.SweepBench
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &b, nil
	}
	baseline, err := readBench(files[0])
	if err != nil {
		return err
	}
	fresh, err := readBench(files[1])
	if err != nil {
		return err
	}
	if baseline.Spec != fresh.Spec {
		return fmt.Errorf("artifacts cover different specs: %q vs %q", baseline.Spec, fresh.Spec)
	}
	if baseline.Scenarios != fresh.Scenarios || baseline.Trials != fresh.Trials {
		return fmt.Errorf("artifacts cover different workloads: %d scenarios/%d trials vs %d/%d — spec %q changed shape, refresh the baseline",
			baseline.Scenarios, baseline.Trials, fresh.Scenarios, fresh.Trials, baseline.Spec)
	}
	if baseline.RoundsPerSec <= 0 {
		return fmt.Errorf("%s has no roundsPerSec baseline", files[0])
	}
	if baseline.Parallel < 1 || fresh.Parallel < 1 {
		return fmt.Errorf("artifact without effective parallelism (parallel %d vs %d) — regenerate with current goalsweep",
			baseline.Parallel, fresh.Parallel)
	}
	// Artifacts from pools of different sizes are compared per worker,
	// so a wider host cannot mask a per-core regression (nor a narrower
	// one fake it). Same-size pools compare raw throughput.
	baseRate, freshRate := baseline.RoundsPerSec, fresh.RoundsPerSec
	unit := "roundsPerSec"
	if baseline.Parallel != fresh.Parallel {
		baseRate /= float64(baseline.Parallel)
		freshRate /= float64(fresh.Parallel)
		unit = "roundsPerSec/worker"
	}
	change := freshRate/baseRate - 1
	fmt.Fprintf(stdout, "spec %q: %s %.0f -> %.0f (%+.1f%%), trialsPerSec %.0f -> %.0f, parallel %d -> %d\n",
		baseline.Spec, unit, baseRate, freshRate, 100*change,
		baseline.TrialsPerSec, fresh.TrialsPerSec, baseline.Parallel, fresh.Parallel)
	// Allocation discipline line: allocs/round is host-independent, so
	// unlike the throughput check it is meaningful across machines. Only
	// present when both artifacts carry counts — artifacts predating
	// allocation accounting (and distributed ones) compare on rate alone.
	allocChange := 0.0
	allocChecked := baseline.AllocsPerRound > 0 && fresh.AllocsPerRound > 0
	if allocChecked {
		allocChange = fresh.AllocsPerRound/baseline.AllocsPerRound - 1
		fmt.Fprintf(stdout, "spec %q: allocsPerRound %.2f -> %.2f (%+.1f%%)\n",
			baseline.Spec, baseline.AllocsPerRound, fresh.AllocsPerRound, 100*allocChange)
	}
	// Throughput is judged first: when both regress, the rate collapse
	// is the headline, not the allocation growth that likely caused it.
	if drop := -change; drop > *maxDrop {
		return fmt.Errorf("%s regression: %.1f%% drop exceeds -maxdrop %.0f%%",
			unit, 100*drop, 100**maxDrop)
	}
	if allocChecked && allocChange > *maxAllocGrow {
		return fmt.Errorf("allocation regression: allocsPerRound grew %.1f%%, exceeds -maxallocgrow %.0f%%",
			100*allocChange, 100**maxAllocGrow)
	}
	return nil
}

// benchHistoryRecord is one line of CI's bench-history.jsonl: a bench
// artifact stamped with its commit and workflow run.
type benchHistoryRecord struct {
	harness.SweepBench
	Commit string `json:"commit"`
	Ref    string `json:"ref"`
	Run    string `json:"run"`
}

// checkBenchHistory is benchcmp's -history sanity mode: the trajectory
// file the dashboard charts is append-only and machine-written, so the
// invariants are structural — every line parses as a stamped bench
// artifact and no commit appears twice (a duplicate would mean CI
// double-appended and every chart would kink).
func checkBenchHistory(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	seen := make(map[string]int)
	var first, last *benchHistoryRecord
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec benchHistoryRecord
		dec := json.NewDecoder(strings.NewReader(text))
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("%s:%d: bad record: %v", path, line, err)
		}
		if rec.Commit == "" {
			return fmt.Errorf("%s:%d: record has no commit stamp", path, line)
		}
		if rec.Spec == "" {
			return fmt.Errorf("%s:%d: record has no spec", path, line)
		}
		if rec.RoundsPerSec <= 0 {
			return fmt.Errorf("%s:%d: record has no roundsPerSec", path, line)
		}
		if prev, dup := seen[rec.Commit]; dup {
			return fmt.Errorf("%s:%d: commit %s already recorded at line %d", path, line, rec.Commit, prev)
		}
		seen[rec.Commit] = line
		r := rec
		if first == nil {
			first = &r
		}
		last = &r
		n++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%s: no bench history records", path)
	}
	fmt.Fprintf(stdout, "bench history OK: %d records, %d unique commits, spec %q, roundsPerSec %.0f -> %.0f\n",
		n, len(seen), last.Spec, first.RoundsPerSec, last.RoundsPerSec)
	return nil
}

// resolveSpec loads the spec and applies -filter restrictions.
func resolveSpec(specPath, builtin string, filters filterFlags) (*scenario.Spec, error) {
	spec, err := loadSpec(specPath, builtin)
	if err != nil {
		return nil, err
	}
	for _, f := range filters {
		name, vals, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad -filter %q: want axis=v1,v2", f)
		}
		if err := spec.Restrict(name, strings.Split(vals, ",")...); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// loadSpec reads -spec, or resolves -builtin (defaulting to "default").
func loadSpec(specPath, builtin string) (*scenario.Spec, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return scenario.ReadSpec(f)
	}
	if builtin == "" {
		builtin = "default"
	}
	return scenario.BuiltinSpec(builtin)
}

func listScenarios(out io.Writer, m *scenario.Matrix, indices []int64) error {
	emit := func(sc *scenario.Scenario) error {
		_, err := fmt.Fprintln(out, sc.String())
		return err
	}
	if indices == nil {
		return m.Each(emit)
	}
	for _, i := range indices {
		if err := emit(m.At(i)); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(out io.Writer, spec *scenario.Spec, sum *scenario.Summary, stats []*scenario.Stats) error {
	type report struct {
		Spec      string            `json:"spec"`
		Scenarios []*scenario.Stats `json:"scenarios"`
		Summary   *scenario.Summary `json:"summary"`
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Spec: spec.Name, Scenarios: stats, Summary: sum})
}

// g formats a float in shortest round-trip form for CSV cells.
func g(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func writeCSV(out io.Writer, spec *scenario.Spec, stats []*scenario.Stats) error {
	w := csv.NewWriter(out)
	// Axis columns come from the union across blocks: scenarios of a
	// composed spec carry different axis sets, so cells are looked up by
	// name and an axis a scenario's block omits renders empty.
	axes := spec.AxesUnion()
	header := []string{"id"}
	for _, ax := range axes {
		header = append(header, ax.Name)
	}
	header = append(header,
		"trials", "errors", "successes", "successRate",
		"roundsMean", "roundsP50", "roundsP99", "roundsMax", "roundsStddev",
		"meanExecutedRounds", "msgsPerRound", "meanSwitches", "firstError")
	if err := w.Write(header); err != nil {
		return err
	}
	for _, st := range stats {
		row := []string{st.ID}
		for _, ax := range axes {
			v, _ := st.Axis(ax.Name)
			row = append(row, v)
		}
		row = append(row,
			strconv.Itoa(st.Trials), strconv.Itoa(st.Errors),
			strconv.Itoa(st.Successes), g(st.SuccessRate),
			g(st.Rounds.Mean), g(st.Rounds.P50), g(st.Rounds.P99),
			g(st.Rounds.Max), g(st.Rounds.Stddev),
			g(st.MeanExecutedRounds), g(st.MsgsPerRound), g(st.MeanSwitches),
			st.FirstError)
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// writeTable renders the human-readable report: one row per scenario with
// a column for every axis that actually varies, then the summary.
func writeTable(out io.Writer, m *scenario.Matrix, spec *scenario.Spec,
	sum *scenario.Summary, stats []*scenario.Stats, selected int64) error {
	var varying []string
	for _, ax := range spec.AxesUnion() {
		// An axis varies when it has several values, or when some block
		// omits it (those scenarios hold it at the default).
		if len(ax.Values) > 1 || !ax.Everywhere {
			varying = append(varying, ax.Name)
		}
	}
	tbl := &harness.Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("spec %q: %d of %d scenarios", spec.Name, selected, m.Size()),
		Columns: append(append([]string{"scenario"}, varying...),
			"trials", "ok", "mean", "p50", "p99", "msg/r", "switches"),
	}
	for _, st := range stats {
		row := []string{st.ID}
		for _, name := range varying {
			v, _ := st.Axis(name)
			row = append(row, v)
		}
		row = append(row,
			harness.I(st.Trials),
			harness.Percent(st.Successes, st.Trials),
			harness.F(st.Rounds.Mean),
			harness.F(st.Rounds.P50),
			harness.F(st.Rounds.P99),
			fmt.Sprintf("%.2f", st.MsgsPerRound),
			harness.F(st.MeanSwitches))
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out, "\nsummary: %d scenarios, %d trials, %d successes (%s), %d errors, %d rounds\n",
		sum.Scenarios, sum.Trials, sum.Successes,
		harness.Percent(sum.Successes, sum.Trials), sum.Errors, sum.TotalRounds)
	return err
}

// benchPerGoal measures each goal's slice of the sweep as its own timed
// sub-sweep over the goal's restriction of the spec — the per-goal
// rounds/s and allocs/round breakdown of the -bench artifact. The spec
// is re-resolved per goal because Restrict mutates it. Sampled
// selections are skipped (a goal restriction cannot reproduce a random
// subset), as are specs without at least two goal values (the breakdown
// would restate the aggregate).
func benchPerGoal(specPath, builtin string, filters filterFlags, spec *scenario.Spec,
	cfg scenario.SweepConfig, sample int) ([]harness.GoalBench, error) {
	if sample > 0 {
		return nil, nil
	}
	var goals []string
	for _, ax := range spec.AxesUnion() {
		if ax.Name == "goal" {
			goals = ax.Values
		}
	}
	if len(goals) < 2 {
		return nil, nil
	}
	out := make([]harness.GoalBench, 0, len(goals))
	for _, g := range goals {
		gspec, err := resolveSpec(specPath, builtin, filters)
		if err != nil {
			return nil, err
		}
		if err := gspec.Restrict("goal", g); err != nil {
			return nil, err
		}
		gm, err := scenario.NewMatrix(gspec)
		if err != nil {
			return nil, err
		}
		gcfg := cfg
		gcfg.OnStats = nil
		gcfg.Cache = nil
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := time.Now()
		gsum, err := gm.Sweep(nil, gcfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&memAfter)
		gb := harness.GoalBench{
			Goal:        g,
			Scenarios:   gsum.Scenarios,
			Trials:      gsum.Trials,
			TotalRounds: gsum.TotalRounds,
			ElapsedNs:   elapsed.Nanoseconds(),
			Mallocs:     int64(memAfter.Mallocs - memBefore.Mallocs),
		}
		if secs := elapsed.Seconds(); secs > 0 {
			gb.RoundsPerSec = float64(gsum.TotalRounds) / secs
		}
		if gb.Mallocs > 0 && gsum.TotalRounds > 0 {
			gb.AllocsPerRound = float64(gb.Mallocs) / float64(gsum.TotalRounds)
		}
		out = append(out, gb)
	}
	return out, nil
}

// writeBench writes the throughput artifact — deliberately the only
// goalsweep output that contains timings. A defaulted worker pool is
// recorded as its effective size (GOMAXPROCS), not 0, so artifacts are
// comparable across hosts. workers is the number of worker processes that
// produced the sweep: 1 for a local run, the coordinator's distinct
// submitter count for a distributed one (with parallel then totalling the
// fleet's pools). mallocs is the process's heap-allocation count over the
// sweep (0 = unmeasured, e.g. a coordinator whose allocations happened in
// worker processes); unlike timings it is host-independent, which makes
// allocsPerRound the most portable regression signal in the artifact.
func writeBench(path string, sum *scenario.Summary, elapsed time.Duration, parallel, workers int, mallocs int64, perGoal []harness.GoalBench) error {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	secs := elapsed.Seconds()
	b := harness.SweepBench{
		Spec:        sum.Spec,
		Scenarios:   sum.Scenarios,
		Trials:      sum.Trials,
		TotalRounds: sum.TotalRounds,
		Parallel:    parallel,
		Workers:     workers,
		ElapsedNs:   elapsed.Nanoseconds(),
		Mallocs:     mallocs,
		PerGoal:     perGoal,
	}
	if secs > 0 {
		b.TrialsPerSec = float64(sum.Trials) / secs
		b.RoundsPerSec = float64(sum.TotalRounds) / secs
	}
	if mallocs > 0 && sum.TotalRounds > 0 {
		b.AllocsPerRound = float64(mallocs) / float64(sum.TotalRounds)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
