package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// chaosInjector builds the seeded fault injector for a -chaos flag, or
// nil when the flag is empty. The spec string and seed fully determine
// the fault schedule, so a run is reproduced by repeating both.
func chaosInjector(spec string, seed uint64, events *obs.Logger) (*chaos.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	cs, err := chaos.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	inj, err := chaos.New(cs, seed)
	if err != nil {
		return nil, err
	}
	inj.Events = events
	return inj, nil
}

// parseShards resolves a -shards value: "auto" means the coordinator
// sizes the partition itself (from fleet size and observed shard
// latency), anything else must be a positive count.
func parseShards(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-shards must be a positive count or \"auto\", got %q", s)
	}
	return n, nil
}

// eventLogger builds the CLI's structured event log: warnings and
// errors always reach stderr; -v opens the firehose (debug and up).
func eventLogger(stderr io.Writer, verbose bool) *obs.Logger {
	min := obs.LevelWarn
	if verbose {
		min = obs.LevelDebug
	}
	return obs.NewLogger(stderr, min)
}

// runServe is the coordinator side of a distributed sweep. In batch
// mode — goalsweep serve -spec F|-builtin N -shards n -listen addr —
// it plans one sweep, leases shards to workers over HTTP until every
// envelope has been submitted, then merges them and writes the ordinary
// report, byte-identical to an unsharded local run of the same sweep.
// With -service it is a long-lived multi-tenant job queue instead: jobs
// arrive over POST /v1/sweeps (goalsweep submit), reports leave over
// the SSE event stream (goalsweep watch), and the process runs until
// interrupted; -state DIR makes the queue survive restarts.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("goalsweep serve", flag.ContinueOnError)
	var (
		specPath     = fs.String("spec", "", "JSON scenario spec file")
		builtin      = fs.String("builtin", "", "built-in spec name (default, quick); ignored when -spec is set")
		shardsFlag   = fs.String("shards", "2", "how many work units to partition the selection into (a count; \"auto\" is only meaningful per job, via goalsweep submit)")
		service      = fs.Bool("service", false, "run a long-lived multi-tenant job queue instead of a one-shot batch sweep; jobs arrive via goalsweep submit, so spec and report flags are refused")
		stateDir     = fs.String("state", "", "persist job plans and shard envelopes under this directory and resume incomplete jobs on restart")
		listen       = fs.String("listen", "127.0.0.1:0", "coordinator listen address (host:port; port 0 picks one)")
		leaseTimeout = fs.Duration("lease-timeout", 2*time.Minute, "re-issue a shard when its worker has neither submitted nor renewed within this long (workers renew at a third of it while computing)")
		linger       = fs.Duration("linger", 2*time.Second, "after the last shard lands, keep serving this long so polling workers hear the sweep is done")
		sample       = fs.Int("sample", 0, "sweep only a deterministic random subset of this many scenarios (0 = all)")
		sampleSeed   = fs.Uint64("sampleseed", 1, "seed for -sample subset selection")
		seeds        = fs.Int("seeds", 0, "override the spec's trials per scenario (0 = spec value)")
		window       = fs.Int("window", 0, "override the spec's convergence window (0 = spec value)")
		baseSeed     = fs.Uint64("baseseed", 0, "override the spec's base seed (0 = spec value)")
		jsonOut      = fs.Bool("json", false, "emit the merged aggregates and summary as JSON")
		csvOut       = fs.Bool("csv", false, "emit the merged aggregates as CSV")
		outPath      = fs.String("out", "", "write output to this file instead of stdout")
		benchPath    = fs.String("bench", "", "also write a throughput artifact (JSON with timings and the worker count) to this file; skipped with a warning if workers served trials from a warm cache")
		dashboard    = fs.Bool("dashboard", false, "serve a live HTML dashboard at / that polls /status and /metrics")
		benchHistory = fs.String("bench-history", "", "bench-history.jsonl file to serve at /bench-history for the dashboard's trajectory charts (requires -dashboard)")
		maxInflight  = fs.Int("max-inflight-leases", 0, "shed lease requests with 429 + Retry-After beyond this many concurrently served ones (0 = default bound, negative = unbounded)")
		speculate    = fs.Duration("speculate-after", 0, "re-lease a straggling shard to a second worker once its lease is this old (0 = only after the full lease timeout); safe because shards are deterministic and the first submit wins")
		chaosSpec    = fs.String("chaos", "", "inject accept-side faults from this schedule, e.g. \"adrop=2,adelay=3:20ms\" (see goalsweep chaostest)")
		chaosSeed    = fs.Uint64("chaosseed", 1, "seed for the -chaos fault schedule; same spec + seed reproduces the same faults")
		verbose      = fs.Bool("v", false, "log every lease/submit lifecycle event to stderr (default: warnings only)")
		cpuProfile   = fs.String("cpuprofile", "", "refused: profile a local goalsweep run instead")
		memProfile   = fs.String("memprofile", "", "refused: profile a local goalsweep run instead")
		filters      filterFlags
	)
	fs.Var(&filters, "filter", "restrict an axis: axis=v1,v2 (repeatable)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" || *memProfile != "" {
		// A coordinator's profile records protocol plumbing while the
		// actual sweep burns CPU in the worker fleet — the artifact would
		// interleave processes and mislead. The hot path is a local run.
		return fmt.Errorf("serve does not support -cpuprofile/-memprofile: the sweep executes in the worker fleet, so the profile would not cover it; profile a local run (goalsweep -builtin ... -cpuprofile ...)")
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	if *benchHistory != "" && !*dashboard {
		return fmt.Errorf("-bench-history only makes sense with -dashboard")
	}

	if *service {
		// A service has no spec of its own (jobs arrive over the API) and
		// writes no report (watch renders them per job), so every flag
		// that shapes either is a mistake worth refusing loudly.
		if *specPath != "" || *builtin != "" || len(filters) > 0 || *sample != 0 ||
			*seeds != 0 || *window != 0 || *baseSeed != 0 || *shardsFlag != "2" {
			return fmt.Errorf("serve -service takes no sweep flags: submit specs with `goalsweep submit` (per-job -shards/-seeds/... live there)")
		}
		if *jsonOut || *csvOut || *outPath != "" || *benchPath != "" {
			return fmt.Errorf("serve -service writes no report: render a job with `goalsweep watch`")
		}
		events := eventLogger(stderr, *verbose)
		coord, err := dist.NewService(dist.CoordinatorConfig{
			LeaseTTL:          *leaseTimeout,
			Events:            events,
			StateDir:          *stateDir,
			MaxInflightLeases: *maxInflight,
			SpeculateAfter:    *speculate,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		inj, err := chaosInjector(*chaosSpec, *chaosSeed, events)
		if err != nil {
			return err
		}
		if inj != nil {
			ln = inj.Listener(ln)
		}
		// Same handshake shape as batch serve: scripts scrape the URL
		// after "at ".
		fmt.Fprintf(stderr, "goalsweep: sweep service at http://%s (%d jobs recovered)\n",
			ln.Addr(), len(coord.Jobs()))
		srv := &http.Server{Handler: serveHandler(coord, *dashboard, *benchHistory)}
		go srv.Serve(ln)
		<-ctx.Done()
		fmt.Fprintln(stderr, "goalsweep: sweep service shutting down")
		return srv.Close()
	}

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}
	if shards == 0 {
		return fmt.Errorf("-shards auto sizes per submitted job and needs -service; a batch sweep wants an explicit count")
	}
	spec, err := resolveSpec(*specPath, *builtin, filters)
	if err != nil {
		return err
	}
	cfg := scenario.SweepConfig{Seeds: *seeds, Window: *window, BaseSeed: *baseSeed}
	// The CLI always binds through the stock registry, on both sides of
	// the protocol; workers re-derive the fingerprint from their own
	// binary and refuse a skewed plan.
	plan, err := dist.NewPlan(spec, scenario.Builtin().Version(), cfg, shards, *sample, *sampleSeed)
	if err != nil {
		return err
	}
	events := eventLogger(stderr, *verbose)
	coord, err := dist.NewCoordinator(plan, dist.CoordinatorConfig{
		LeaseTTL:          *leaseTimeout,
		Events:            events,
		StateDir:          *stateDir,
		MaxInflightLeases: *maxInflight,
		SpeculateAfter:    *speculate,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	inj, err := chaosInjector(*chaosSpec, *chaosSeed, events)
	if err != nil {
		return err
	}
	if inj != nil {
		ln = inj.Listener(ln)
	}
	// The serving line is the startup handshake for scripts (and tests):
	// it carries the resolved address when the port was 0.
	fmt.Fprintf(stderr, "goalsweep: serving %d shards of spec %q (fingerprint %s) at http://%s\n",
		plan.Shards, spec.Name, plan.Fingerprint, ln.Addr())
	srv := &http.Server{Handler: serveHandler(coord, *dashboard, *benchHistory)}
	go srv.Serve(ln)
	defer srv.Close()

	start := time.Now()
	if err := coord.Wait(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)
	// Let live workers hear StatusDone before the listener goes away;
	// crashed workers never drain, so this is deadline-bounded.
	drainCtx, cancel := context.WithTimeout(context.Background(), *linger)
	coord.WaitDrained(drainCtx)
	cancel()
	stats, sum, err := coord.Merged()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "goalsweep: distributed sweep complete: %d shards from %d workers in %v\n",
		plan.Shards, coord.Workers(), elapsed.Round(time.Millisecond))
	if *benchPath != "" {
		// Mirror the local CLI's -bench/-cache refusal: if the fleet
		// served scenarios from warm caches (or a worker did not report
		// its executed-trial count), the artifact would divide all rounds
		// by a fraction of the work and poison benchcmp gates. Skip it
		// loudly instead of writing a lie.
		executed, known := coord.ExecutedTrials()
		if !known || executed != int64(sum.Trials) {
			fmt.Fprintf(stderr, "goalsweep: warning: -bench artifact skipped: workers executed %d of %d trials (warm result cache?) — the artifact would lie about throughput\n",
				executed, sum.Trials)
		} else {
			// The distributed artifact's effective parallelism is the
			// fleet's: the sum of the submitting workers' trial pools.
			// Mallocs is the fleet's summed heap-allocation delta, as
			// reported by each shard's executing worker at submit time
			// (0 only if some worker failed to report one).
			submitters, totalParallel := coord.Submitters()
			mallocs, mallocsKnown := coord.Mallocs()
			if !mallocsKnown {
				mallocs = 0
			}
			if err := writeBench(*benchPath, sum, elapsed, totalParallel, submitters, mallocs, nil); err != nil {
				return err
			}
		}
	}

	out, closeOut, err := openOut(*outPath, stdout)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if err := renderReport(out, *jsonOut, *csvOut, nil, spec, sum, stats, int64(len(stats))); err != nil {
		return err
	}
	return trialFailures(sum, stats)
}

// runWork is the worker side: goalsweep work -coordinator URL pulls
// shard leases — job-agnostic fair-share by default, pinned with -job —
// executes them through the ordinary local sweep (optionally against a
// shared result cache) and submits the envelopes until the coordinator
// reports the queue done (or, against a -service coordinator, forever;
// -exit-when-idle returns once the queue drains instead).
func runWork(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("goalsweep work", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (http://host:port; required)")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory, shareable between colocated workers")
		parallel    = fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS); does not affect results")
		poll        = fs.Duration("poll", 500*time.Millisecond, "backoff between lease attempts while all shards are claimed elsewhere")
		id          = fs.String("id", "", "worker name in coordinator accounting (default derived from the process ID)")
		job         = fs.String("job", "", "work only this job's shards and exit when it completes (default: fair-share across the whole queue)")
		exitIdle    = fs.Bool("exit-when-idle", false, "exit when a service coordinator reports no open work instead of polling for new jobs")
		chaosSpec   = fs.String("chaos", "", "inject request-side faults from this schedule, e.g. \"drop=2,delay=3:20ms,dup=1,trunc=1,err=2\" (see goalsweep chaostest)")
		chaosSeed   = fs.Uint64("chaosseed", 1, "seed for the -chaos fault schedule; same spec + seed reproduces the same faults")
		verbose     = fs.Bool("v", false, "log every lease/shard lifecycle event to stderr (default: warnings only)")
		cpuProfile  = fs.String("cpuprofile", "", "refused: profile a local goalsweep run instead")
		memProfile  = fs.String("memprofile", "", "refused: profile a local goalsweep run instead")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" || *memProfile != "" {
		// One worker's profile covers an arbitrary, lease-dependent slice
		// of the sweep interleaved with the rest of the fleet's — not a
		// reproducible artifact. The hot path is identical in a local run.
		return fmt.Errorf("work does not support -cpuprofile/-memprofile: a worker profiles an arbitrary slice of a fleet's sweep; profile a local run (goalsweep -builtin ... -cpuprofile ...)")
	}
	if *coordinator == "" {
		return fmt.Errorf("work needs -coordinator URL (the address goalsweep serve printed)")
	}
	events := eventLogger(stderr, *verbose)
	w := &dist.Worker{
		Coordinator: strings.TrimRight(*coordinator, "/"),
		Parallel:    *parallel,
		Poll:        *poll,
		ID:          *id,
		Job:         *job,
		ExitOnIdle:  *exitIdle,
		Events:      events,
	}
	inj, err := chaosInjector(*chaosSpec, *chaosSeed, events)
	if err != nil {
		return err
	}
	if inj != nil {
		// Faults ride the worker's own HTTP client, between the retry loop
		// and the wire: every injected drop/delay/dup/truncation/5xx
		// exercises the worker's classifier and backoff for real.
		w.Client = inj.Client(nil)
	}
	if *cacheDir != "" {
		cache, err := scenario.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		w.Cache = cache
	}
	n, err := w.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "goalsweep: worker completed %d shards\n", n)
	return nil
}
