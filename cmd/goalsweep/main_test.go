package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("goalsweep %v: %v\n%s", args, err, b.String())
	}
	return b.String()
}

// TestJSONByteIdenticalAcrossParallelism is the PR's acceptance criterion:
// over the ≥200-scenario default matrix, -json output at -parallel 1 is
// byte-identical to the default (GOMAXPROCS) pool.
func TestJSONByteIdenticalAcrossParallelism(t *testing.T) {
	t.Parallel()

	serial := runSweep(t, "-builtin", "default", "-json", "-parallel", "1")
	parallel := runSweep(t, "-builtin", "default", "-json")
	if serial != parallel {
		t.Fatal("-json output differs between -parallel 1 and the default pool")
	}
	if !strings.Contains(serial, `"scenarios": 288`) {
		t.Fatalf("default matrix is not the expected 288 scenarios:\n%s",
			serial[len(serial)-400:])
	}
}

func TestTableOutput(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick")
	for _, want := range []string{"SWEEP", "obstinate", "summary:", "12 scenarios"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 13 { // header + 12 scenarios
		t.Fatalf("CSV has %d lines, want 13:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,goal,class,server,noise,rounds,") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
}

func TestListDoesNotExecute(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "default", "-list", "-sample", "7")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("-list -sample 7 printed %d lines:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.Contains(line, "goal=") {
			t.Fatalf("listing line missing coordinates: %s", line)
		}
	}
}

// TestSampleIsSubsetOfFullSweep checks that a sampled sweep reports
// exactly the rows the full sweep reports for those scenario IDs.
func TestSampleIsSubsetOfFullSweep(t *testing.T) {
	t.Parallel()

	full := runSweep(t, "-builtin", "quick", "-csv")
	rows := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(full), "\n")[1:] {
		id := line[:strings.Index(line, ",")]
		rows[id] = line
	}
	sampled := runSweep(t, "-builtin", "quick", "-csv", "-sample", "4", "-sampleseed", "9")
	lines := strings.Split(strings.TrimSpace(sampled), "\n")[1:]
	if len(lines) != 4 {
		t.Fatalf("sampled %d rows, want 4", len(lines))
	}
	for _, line := range lines {
		id := line[:strings.Index(line, ",")]
		if rows[id] != line {
			t.Fatalf("sampled row for %s differs from full sweep:\n%s\n%s", id, line, rows[id])
		}
	}
}

func TestFilterRestrictsAxes(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick", "-csv",
		"-filter", "goal=treasure", "-filter", "server=0,-1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 1 goal × 2 servers × 2 noise
		t.Fatalf("filtered CSV has %d lines, want 5:\n%s", len(lines), out)
	}
	if strings.Contains(out, "printing") || strings.Contains(out, "obstinate") {
		t.Fatalf("filtered output leaked excluded values:\n%s", out)
	}

	var b strings.Builder
	if err := run([]string{"-builtin", "quick", "-filter", "bogus"}, &b); err == nil {
		t.Fatal("malformed -filter accepted")
	}
	if err := run([]string{"-builtin", "quick", "-filter", "goal=nosuch"}, &b); err == nil {
		t.Fatal("-filter with unknown value accepted")
	}
}

func TestSpecFileAndOverrides(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	spec := `{
		"name": "mini",
		"seeds": 1,
		"axes": [
			{"name": "goal", "values": ["treasure"]},
			{"name": "class", "values": ["3"]},
			{"name": "server", "values": ["0", "2"]},
			{"name": "rounds", "values": ["200"]}
		]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSweep(t, "-spec", path, "-csv", "-seeds", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("spec sweep has %d lines, want 3:\n%s", len(lines), out)
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",3,0,3,1,") { // trials=3, errors=0, successes=3, rate=1
			t.Fatalf("-seeds 3 override not applied: %s", line)
		}
	}

	var b strings.Builder
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}, &b); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestBenchArtifact(t *testing.T) {
	t.Parallel()

	path := filepath.Join(t.TempDir(), "bench.json")
	runSweep(t, "-builtin", "quick", "-bench", path, "-json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spec": "quick"`, `"roundsPerSec"`, `"trials": 12`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("bench artifact missing %s:\n%s", want, data)
		}
	}
}

func TestMutuallyExclusiveOutputs(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-builtin", "quick", "-json", "-csv"}, &b); err == nil {
		t.Fatal("-json -csv accepted together")
	}
	if err := run([]string{"-builtin", "nosuch"}, &b); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}
