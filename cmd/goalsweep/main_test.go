package main

import (
	"encoding/json"
	"fmt"
	"runtime"

	"io"
	"os"
	"path/filepath"
	"repro/internal/harness"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) string {
	t.Helper()
	out, _ := runSweep2(t, args...)
	return out
}

// runSweep2 also captures stderr (cache accounting).
func runSweep2(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var b, e strings.Builder
	if err := run(args, &b, &e); err != nil {
		t.Fatalf("goalsweep %v: %v\n%s%s", args, err, b.String(), e.String())
	}
	return b.String(), e.String()
}

// TestJSONByteIdenticalAcrossParallelism is the PR's acceptance criterion:
// over the ≥200-scenario default matrix, -json output at -parallel 1 is
// byte-identical to the default (GOMAXPROCS) pool.
func TestJSONByteIdenticalAcrossParallelism(t *testing.T) {
	t.Parallel()

	serial := runSweep(t, "-builtin", "default", "-json", "-parallel", "1")
	parallel := runSweep(t, "-builtin", "default", "-json")
	if serial != parallel {
		t.Fatal("-json output differs between -parallel 1 and the default pool")
	}
	if !strings.Contains(serial, `"scenarios": 288`) {
		t.Fatalf("default matrix is not the expected 288 scenarios:\n%s",
			serial[len(serial)-400:])
	}
}

func TestTableOutput(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick")
	for _, want := range []string{"SWEEP", "obstinate", "summary:", "12 scenarios"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick", "-csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 13 { // header + 12 scenarios
		t.Fatalf("CSV has %d lines, want 13:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,goal,class,server,noise,rounds,") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
}

func TestListDoesNotExecute(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "default", "-list", "-sample", "7")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("-list -sample 7 printed %d lines:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.Contains(line, "goal=") {
			t.Fatalf("listing line missing coordinates: %s", line)
		}
	}
}

// TestSampleIsSubsetOfFullSweep checks that a sampled sweep reports
// exactly the rows the full sweep reports for those scenario IDs.
func TestSampleIsSubsetOfFullSweep(t *testing.T) {
	t.Parallel()

	full := runSweep(t, "-builtin", "quick", "-csv")
	rows := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(full), "\n")[1:] {
		id := line[:strings.Index(line, ",")]
		rows[id] = line
	}
	sampled := runSweep(t, "-builtin", "quick", "-csv", "-sample", "4", "-sampleseed", "9")
	lines := strings.Split(strings.TrimSpace(sampled), "\n")[1:]
	if len(lines) != 4 {
		t.Fatalf("sampled %d rows, want 4", len(lines))
	}
	for _, line := range lines {
		id := line[:strings.Index(line, ",")]
		if rows[id] != line {
			t.Fatalf("sampled row for %s differs from full sweep:\n%s\n%s", id, line, rows[id])
		}
	}
}

func TestFilterRestrictsAxes(t *testing.T) {
	t.Parallel()

	out := runSweep(t, "-builtin", "quick", "-csv",
		"-filter", "goal=treasure", "-filter", "server=0,-1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 1 goal × 2 servers × 2 noise
		t.Fatalf("filtered CSV has %d lines, want 5:\n%s", len(lines), out)
	}
	if strings.Contains(out, "printing") || strings.Contains(out, "obstinate") {
		t.Fatalf("filtered output leaked excluded values:\n%s", out)
	}

	var b strings.Builder
	if err := run([]string{"-builtin", "quick", "-filter", "bogus"}, &b, io.Discard); err == nil {
		t.Fatal("malformed -filter accepted")
	}
	if err := run([]string{"-builtin", "quick", "-filter", "goal=nosuch"}, &b, io.Discard); err == nil {
		t.Fatal("-filter with unknown value accepted")
	}
}

func TestSpecFileAndOverrides(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	spec := `{
		"name": "mini",
		"seeds": 1,
		"axes": [
			{"name": "goal", "values": ["treasure"]},
			{"name": "class", "values": ["3"]},
			{"name": "server", "values": ["0", "2"]},
			{"name": "rounds", "values": ["200"]}
		]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSweep(t, "-spec", path, "-csv", "-seeds", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("spec sweep has %d lines, want 3:\n%s", len(lines), out)
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",3,0,3,1,") { // trials=3, errors=0, successes=3, rate=1
			t.Fatalf("-seeds 3 override not applied: %s", line)
		}
	}

	var b strings.Builder
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}, &b, io.Discard); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestBenchArtifact(t *testing.T) {
	t.Parallel()

	path := filepath.Join(t.TempDir(), "bench.json")
	runSweep(t, "-builtin", "quick", "-bench", path, "-json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spec": "quick"`, `"roundsPerSec"`, `"trials": 12`, `"mallocs"`, `"allocsPerRound"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("bench artifact missing %s:\n%s", want, data)
		}
	}
	var b harness.SweepBench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Mallocs <= 0 || b.AllocsPerRound <= 0 {
		t.Fatalf("bench artifact without allocation accounting: mallocs=%d allocsPerRound=%g", b.Mallocs, b.AllocsPerRound)
	}
	// No magnitude ceiling here: mallocs is a process-wide MemStats
	// delta, and this package's tests run in parallel (the dist tests
	// sweep whole matrices concurrently), so any tight bound would be
	// flaky. The precise per-goal allocation gates live in the root
	// alloc_test.go, measured with testing.AllocsPerRun.
}

// TestProfileFlags pins the -cpuprofile/-memprofile surface: a local
// sweep writes both profiles; serve and work refuse them.
func TestProfileFlags(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	runSweep(t, "-builtin", "quick", "-cpuprofile", cpu, "-memprofile", mem, "-out", filepath.Join(dir, "out.txt"))
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s not written: %v", p, err)
		}
	}
	var b strings.Builder
	for _, args := range [][]string{
		{"serve", "-builtin", "quick", "-cpuprofile", cpu},
		{"serve", "-builtin", "quick", "-memprofile", mem},
		{"work", "-coordinator", "http://127.0.0.1:1", "-cpuprofile", cpu},
		{"work", "-coordinator", "http://127.0.0.1:1", "-memprofile", mem},
	} {
		if err := run(args, &b, io.Discard); err == nil ||
			!strings.Contains(err.Error(), "profile a local run") {
			t.Fatalf("goalsweep %v accepted profiling flags: %v", args, err)
		}
	}
}

func TestMutuallyExclusiveOutputs(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"-builtin", "quick", "-json", "-csv"}, &b, io.Discard); err == nil {
		t.Fatal("-json -csv accepted together")
	}
	if err := run([]string{"-builtin", "nosuch"}, &b, io.Discard); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	// A warm cache or a shard would make the throughput artifact lie.
	if err := run([]string{"-builtin", "quick", "-bench", "b.json", "-cache", t.TempDir()}, &b, io.Discard); err == nil {
		t.Fatal("-bench -cache accepted together")
	}
	if err := run([]string{"-builtin", "quick", "-bench", "b.json", "-shard", "1/2"}, &b, io.Discard); err == nil {
		t.Fatal("-bench -shard accepted together")
	}
}

// TestShardMergeByteIdentical is the CLI acceptance criterion for
// sharding: shard envelopes produced by -shard i/n -json merge into
// output byte-identical to a fresh unsharded -json run, at several shard
// counts.
func TestShardMergeByteIdentical(t *testing.T) {
	t.Parallel()

	full := runSweep(t, "-builtin", "quick", "-json")
	dir := t.TempDir()
	for _, count := range []int{1, 2, 3, 5} {
		var files []string
		for i := 1; i <= count; i++ {
			path := filepath.Join(dir, fmt.Sprintf("c%d-s%d.json", count, i))
			runSweep(t, "-builtin", "quick",
				"-shard", fmt.Sprintf("%d/%d", i, count), "-json", "-out", path)
			files = append(files, path)
		}
		// Merge in reverse order: envelope order must not matter.
		for l, r := 0, len(files)-1; l < r; l, r = l+1, r-1 {
			files[l], files[r] = files[r], files[l]
		}
		merged := runSweep(t, append([]string{"merge", "-json"}, files...)...)
		if merged != full {
			t.Fatalf("%d-way shard merge differs from unsharded -json run", count)
		}
	}
}

// TestShardMergeCSVAndTable checks the merged non-JSON renderings also
// reproduce the unsharded output.
func TestShardMergeCSVAndTable(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	var files []string
	for i := 1; i <= 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		runSweep(t, "-builtin", "quick", "-shard", fmt.Sprintf("%d/3", i), "-json", "-out", path)
		files = append(files, path)
	}
	if got, want := runSweep(t, append([]string{"merge", "-csv"}, files...)...), runSweep(t, "-builtin", "quick", "-csv"); got != want {
		t.Fatal("merged -csv differs from unsharded -csv")
	}
	if got, want := runSweep(t, append([]string{"merge"}, files...)...), runSweep(t, "-builtin", "quick"); got != want {
		t.Fatalf("merged table differs from unsharded table:\n%s\n--- want ---\n%s", got, want)
	}
}

// TestShardSampleCompose checks -shard partitions the -sample selection.
func TestShardSampleCompose(t *testing.T) {
	t.Parallel()

	full := runSweep(t, "-builtin", "default", "-sample", "9", "-sampleseed", "4", "-json")
	dir := t.TempDir()
	var files []string
	for i := 1; i <= 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		runSweep(t, "-builtin", "default", "-sample", "9", "-sampleseed", "4",
			"-shard", fmt.Sprintf("%d/2", i), "-json", "-out", path)
		files = append(files, path)
	}
	merged := runSweep(t, append([]string{"merge", "-json"}, files...)...)
	if merged != full {
		t.Fatal("sharded sampled sweep merge differs from unsharded sampled run")
	}
}

func TestMergeRejectsMismatchedShards(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.json")
	s2 := filepath.Join(dir, "s2.json")
	runSweep(t, "-builtin", "quick", "-shard", "1/2", "-json", "-out", s1)
	// Same shard coordinates, different sweep (seeds override).
	runSweep(t, "-builtin", "quick", "-seeds", "2", "-shard", "2/2", "-json", "-out", s2)
	var b strings.Builder
	if err := run([]string{"merge", s1, s2}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "different sweeps") {
		t.Fatalf("mismatched shards merged: %v", err)
	}
	if err := run([]string{"merge", s1, s1}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate shard merged: %v", err)
	}
	if err := run([]string{"merge", s1}, &b, io.Discard); err == nil {
		t.Fatal("incomplete shard set merged")
	}
	if err := run([]string{"merge"}, &b, io.Discard); err == nil {
		t.Fatal("merge with no files accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", garbage}, &b, io.Discard); err == nil {
		t.Fatal("garbage shard file accepted")
	}
}

// TestCacheWarmRunByteIdentical is the CLI acceptance criterion for
// caching: a warm -cache rerun emits byte-identical output and executes
// zero trials.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	t.Parallel()

	plain := runSweep(t, "-builtin", "quick", "-json")
	dir := filepath.Join(t.TempDir(), "store")
	cold, coldErr := runSweep2(t, "-builtin", "quick", "-json", "-cache", dir)
	if cold != plain {
		t.Fatal("cold cached run differs from uncached run")
	}
	if !strings.Contains(coldErr, "cache: 0 hits, 12 misses, 12 trials executed") {
		t.Fatalf("cold cache accounting wrong: %q", coldErr)
	}
	warm, warmErr := runSweep2(t, "-builtin", "quick", "-json", "-cache", dir)
	if warm != plain {
		t.Fatal("warm cached run differs from uncached run")
	}
	if !strings.Contains(warmErr, "cache: 12 hits, 0 misses, 0 trials executed") {
		t.Fatalf("warm cache accounting wrong: %q", warmErr)
	}
	// Table and CSV renderings are warm-identical too.
	if got, want := runSweep(t, "-builtin", "quick", "-csv", "-cache", dir), runSweep(t, "-builtin", "quick", "-csv"); got != want {
		t.Fatal("warm cached -csv differs from uncached -csv")
	}
}

func TestFingerprintFlag(t *testing.T) {
	t.Parallel()

	fp := strings.TrimSpace(runSweep(t, "-builtin", "quick", "-fingerprint"))
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", fp)
	}
	if again := strings.TrimSpace(runSweep(t, "-builtin", "quick", "-fingerprint")); again != fp {
		t.Fatal("fingerprint unstable across invocations")
	}
	if other := strings.TrimSpace(runSweep(t, "-builtin", "quick", "-seeds", "3", "-fingerprint")); other == fp {
		t.Fatal("-seeds override did not change the fingerprint")
	}
	if other := strings.TrimSpace(runSweep(t, "-builtin", "quick", "-filter", "goal=printing", "-fingerprint")); other == fp {
		t.Fatal("-filter restriction did not change the fingerprint")
	}
}

// TestBenchRecordsEffectiveParallelism pins the fix for bench artifacts
// reporting "parallel": 0 when the pool defaults to GOMAXPROCS.
func TestBenchRecordsEffectiveParallelism(t *testing.T) {
	t.Parallel()

	read := func(args ...string) harness.SweepBench {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bench.json")
		runSweep(t, append(args, "-bench", path, "-out", os.DevNull, "-json")...)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var b harness.SweepBench
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	if b := read("-builtin", "quick"); b.Parallel != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaulted pool recorded parallel=%d, want GOMAXPROCS=%d", b.Parallel, runtime.GOMAXPROCS(0))
	}
	if b := read("-builtin", "quick", "-parallel", "3"); b.Parallel != 3 {
		t.Fatalf("explicit pool recorded parallel=%d, want 3", b.Parallel)
	}
}

func TestBenchcmp(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	write := func(name string, b harness.SweepBench) string {
		t.Helper()
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mk := func(rps float64, parallel int) harness.SweepBench {
		return harness.SweepBench{Spec: "default", Scenarios: 288, Trials: 576,
			RoundsPerSec: rps, TrialsPerSec: rps / 1000, Parallel: parallel}
	}
	base := write("base.json", mk(1e6, 1))
	ok := write("ok.json", mk(8e5, 1))
	slow := write("slow.json", mk(4e5, 1))
	other := write("other.json", harness.SweepBench{Spec: "quick", Scenarios: 12, Trials: 12, RoundsPerSec: 1e6, Parallel: 1})
	reshaped := write("reshaped.json", harness.SweepBench{Spec: "default", Scenarios: 100, Trials: 200, RoundsPerSec: 1e6, Parallel: 1})
	unparallel := write("unparallel.json", harness.SweepBench{Spec: "default", Scenarios: 288, Trials: 576, RoundsPerSec: 1e6})
	// Twice the workers, same total throughput: per-worker rate halved.
	wide := write("wide.json", mk(1e6, 2))

	out := runSweep(t, "benchcmp", base, ok)
	if !strings.Contains(out, "1000000 -> 800000") || !strings.Contains(out, "-20.0%") {
		t.Fatalf("benchcmp output wrong: %q", out)
	}
	var b strings.Builder
	if err := run([]string{"benchcmp", base, slow}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "regression") {
		t.Fatalf("60%% drop passed the default gate: %v", err)
	}
	runSweep(t, "benchcmp", "-maxdrop", "0.7", base, slow) // loosened gate passes
	// Pools of different sizes are compared per worker, so a wider host
	// cannot mask a per-core regression.
	out = runSweep(t, "benchcmp", "-maxdrop", "0.6", base, wide)
	if !strings.Contains(out, "roundsPerSec/worker") || !strings.Contains(out, "-50.0%") {
		t.Fatalf("per-worker normalization missing: %q", out)
	}
	if err := run([]string{"benchcmp", "-maxdrop", "0.4", base, wide}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "regression") {
		t.Fatalf("halved per-worker rate passed a 40%% gate: %v", err)
	}
	if err := run([]string{"benchcmp", base, other}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "different specs") {
		t.Fatalf("cross-spec comparison accepted: %v", err)
	}
	if err := run([]string{"benchcmp", base, reshaped}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "different workloads") {
		t.Fatalf("reshaped-spec comparison accepted: %v", err)
	}
	if err := run([]string{"benchcmp", base, unparallel}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "parallelism") {
		t.Fatalf("parallel=0 artifact accepted: %v", err)
	}
	if err := run([]string{"benchcmp", base}, &b, io.Discard); err == nil {
		t.Fatal("benchcmp with one file accepted")
	}
}

// TestBenchcmpAllocGate pins the allocation half of the gate: growth in
// allocsPerRound beyond -maxallocgrow fails even when throughput held,
// and artifacts without counts (pre-accounting or distributed) are
// compared on rate alone.
func TestBenchcmpAllocGate(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	write := func(name string, b harness.SweepBench) string {
		t.Helper()
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mk := func(rps, apr float64) harness.SweepBench {
		b := harness.SweepBench{Spec: "default", Scenarios: 288, Trials: 576,
			RoundsPerSec: rps, Parallel: 1, AllocsPerRound: apr}
		if apr > 0 {
			b.Mallocs = int64(apr * 460800)
		}
		return b
	}
	base := write("base.json", mk(1e6, 0.6))
	lean := write("lean.json", mk(1e6, 0.7))       // +17%: fine
	bloated := write("bloated.json", mk(1e6, 1.2)) // +100%: regression despite equal rate
	uncounted := write("uncounted.json", mk(1e6, 0))

	out := runSweep(t, "benchcmp", base, lean)
	if !strings.Contains(out, "allocsPerRound 0.60 -> 0.70") {
		t.Fatalf("alloc comparison missing from output: %q", out)
	}
	var b strings.Builder
	if err := run([]string{"benchcmp", base, bloated}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "allocation regression") {
		t.Fatalf("doubled allocsPerRound passed the gate: %v", err)
	}
	runSweep(t, "benchcmp", "-maxallocgrow", "1.5", base, bloated) // loosened gate passes
	// No counts on one side: rate-only comparison, no alloc line.
	out = runSweep(t, "benchcmp", base, uncounted)
	if strings.Contains(out, "allocsPerRound") {
		t.Fatalf("alloc comparison printed for an uncounted artifact: %q", out)
	}
}
