package main

import (
	_ "embed"
	"net/http"
	"os"
)

// dashboardHTML is the entire dashboard: one self-contained page, no
// external assets, that polls the coordinator's /status and /metrics
// endpoints and (when served) the /bench-history trajectory.
//
//go:embed dashboard.html
var dashboardHTML []byte

// serveHandler wraps the coordinator handler with the optional dashboard
// routes. Without -dashboard the coordinator serves alone, byte-for-byte
// the pre-dashboard behavior. With it, the exact root path serves the
// embedded page and /bench-history re-serves the named JSONL file on
// every request (CI appends to it between runs; re-reading keeps the
// charts live without a restart).
func serveHandler(coord http.Handler, dashboard bool, benchHistoryPath string) http.Handler {
	if !dashboard {
		return coord
	}
	mux := http.NewServeMux()
	mux.Handle("/", coord)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML)
	})
	mux.HandleFunc("GET /bench-history", func(w http.ResponseWriter, r *http.Request) {
		if benchHistoryPath == "" {
			http.Error(w, "no -bench-history file configured", http.StatusNotFound)
			return
		}
		data, err := os.ReadFile(benchHistoryPath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		w.Write(data)
	})
	return mux
}
