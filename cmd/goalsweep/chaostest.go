package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// runChaostest is the fault-injection acceptance harness: goalsweep
// chaostest runs a distributed sweep (an in-process coordinator plus a
// small worker fleet over the loopback protocol) under a seeded chaos
// schedule, then checks the two properties the failure model promises:
//
//  1. the merged report is byte-identical to a fresh serial run of the
//     same plan — faults cost retries, never bytes;
//  2. repeating the run with the same -chaos spec and -chaosseed fires
//     the identical fault schedule (the canonical fault logs match),
//     so any failure it does surface is reproducible.
//
// It exits nonzero the moment either property breaks.
func runChaostest(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("goalsweep chaostest", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "JSON scenario spec file")
		builtin    = fs.String("builtin", "quick", "built-in spec name (default, quick); ignored when -spec is set")
		shards     = fs.Int("shards", 6, "work units to partition the sweep into")
		workers    = fs.Int("workers", 2, "concurrent workers in the in-process fleet")
		sample     = fs.Int("sample", 0, "sweep only a deterministic random subset of this many scenarios (0 = all)")
		sampleSeed = fs.Uint64("sampleseed", 1, "seed for -sample subset selection")
		seeds      = fs.Int("seeds", 0, "override the spec's trials per scenario (0 = spec value)")
		window     = fs.Int("window", 0, "override the spec's convergence window (0 = spec value)")
		baseSeed   = fs.Uint64("baseseed", 0, "override the spec's base seed (0 = spec value)")
		chaosSpec  = fs.String("chaos", "drop=2,delay=2:10ms,dup=1,trunc=1,err=2", "fault schedule to inject on the workers' requests")
		chaosSeed  = fs.Uint64("chaosseed", 1, "seed for the fault schedule; same spec + seed reproduces the same faults")
		runs       = fs.Int("runs", 2, "repetitions of the chaotic sweep; all must match the serial baseline and each other's fault logs")
		poll       = fs.Duration("poll", 10*time.Millisecond, "worker lease-poll interval and retry-backoff base")
		faultLog   = fs.Bool("faultlog", false, "print the canonical fault log to stdout")
		verbose    = fs.Bool("v", false, "log every chaos/lease/shard lifecycle event to stderr (default: warnings only)")
		filters    filterFlags
	)
	fs.Var(&filters, "filter", "restrict an axis: axis=v1,v2 (repeatable)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *workers < 1 || *runs < 1 {
		return fmt.Errorf("-shards, -workers and -runs must all be positive")
	}
	cs, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}
	// Every request-op fault must actually fire or the fault-log identity
	// check would compare schedules truncated at run-dependent points.
	// Lease traffic exceeds the shard count (each worker's final done-poll
	// is a lease call too) but submits number exactly one per shard, so
	// the shard count is the horizon every class is guaranteed to reach.
	if cs.Horizon == 0 {
		cs.Horizon = *shards
	}
	if cs.Horizon > *shards {
		return fmt.Errorf("chaos horizon %d exceeds -shards %d: scheduled faults past the shard count may never fire, so the fault log would not be comparable across runs", cs.Horizon, *shards)
	}

	spec, err := resolveSpec(*specPath, *builtin, filters)
	if err != nil {
		return err
	}
	cfg := scenario.SweepConfig{Seeds: *seeds, Window: *window, BaseSeed: *baseSeed}
	plan, err := dist.NewPlan(spec, scenario.Builtin().Version(), cfg, *shards, *sample, *sampleSeed)
	if err != nil {
		return err
	}

	// The serial baseline: the same plan swept in-process with no
	// distribution and no faults. This is the byte-identity reference.
	serial, err := serialReportBytes(plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "goalsweep: chaostest: spec %q, %d shards, %d workers, chaos %q seed %d (%d faults scheduled)\n",
		spec.Name, *shards, *workers, cs, *chaosSeed, cs.Total())

	events := eventLogger(stderr, *verbose)
	var refLog string
	for run := 1; run <= *runs; run++ {
		inj, err := chaos.New(cs, *chaosSeed)
		if err != nil {
			return err
		}
		inj.Events = events
		merged, err := chaoticSweep(ctx, plan, inj, *workers, *poll, events)
		if err != nil {
			return fmt.Errorf("chaostest run %d: %w", run, err)
		}
		if !bytes.Equal(merged, serial) {
			return fmt.Errorf("chaostest run %d: merged report diverges from the serial baseline (%d vs %d bytes): faults leaked into results", run, len(merged), len(serial))
		}
		fired := inj.Log()
		if len(fired) != cs.Total() {
			return fmt.Errorf("chaostest run %d: %d of %d scheduled faults fired — the schedule did not complete, so determinism cannot be checked", run, len(fired), cs.Total())
		}
		flog := chaos.FormatLog(fired)
		if run == 1 {
			refLog = flog
		} else if flog != refLog {
			return fmt.Errorf("chaostest run %d: fault log diverges from run 1 under the same seed:\nrun 1:\n%srun %d:\n%s", run, refLog, run, flog)
		}
		fmt.Fprintf(stderr, "goalsweep: chaostest: run %d ok: %d faults injected, merged report byte-identical to serial baseline\n",
			run, len(fired))
	}
	if *faultLog {
		fmt.Fprint(stdout, refLog)
	}
	fmt.Fprintf(stdout, "chaostest ok: %d runs, %d faults each, merged report = serial report (%d bytes)\n",
		*runs, cs.Total(), len(serial))
	return nil
}

// chaoticSweep runs one distributed sweep of the plan: a fresh
// coordinator, the shared fault injector wrapped around a loopback
// client, and a fleet of workers retrying through whatever the injector
// throws at them. Returns the merged report bytes.
func chaoticSweep(ctx context.Context, plan dist.Plan, inj *chaos.Injector, workers int, poll time.Duration, events *obs.Logger) ([]byte, error) {
	// A truncated lease response strands the granted lease: the worker
	// cannot decode its grant, retries, and the shard sits leased-but-dead
	// until the TTL. Speculation papers over exactly that — another worker
	// re-leases the straggling shard early and the first submit wins — so
	// the harness turns it on aggressively to keep chaotic runs fast.
	coord, err := dist.NewCoordinator(plan, dist.CoordinatorConfig{
		LeaseTTL:       10 * time.Second,
		SpeculateAfter: 250 * time.Millisecond,
		Events:         events,
	})
	if err != nil {
		return nil, err
	}
	client := inj.Client(dist.LoopbackClient(coord))

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := range workers {
		w := &dist.Worker{
			Coordinator: "http://coordinator",
			Client:      client,
			Poll:        poll,
			Retries:     100,
			ID:          fmt.Sprintf("chaos-w%d", i+1),
			Events:      events,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = w.Run(ctx)
		}()
	}
	waitErr := coord.Wait(ctx)
	wg.Wait()
	if waitErr != nil {
		return nil, waitErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	stats, sum, err := coord.Merged()
	if err != nil {
		return nil, err
	}
	return reportBytes(stats, sum)
}

// serialReportBytes sweeps the plan in-process with no distribution —
// the reference every chaotic run must reproduce byte for byte.
func serialReportBytes(plan dist.Plan) ([]byte, error) {
	m, err := scenario.NewMatrix(plan.Spec)
	if err != nil {
		return nil, err
	}
	var stats []*scenario.Stats
	sum, err := m.Sweep(plan.Selection(m), scenario.SweepConfig{
		Seeds:    plan.Seeds,
		Window:   plan.Window,
		BaseSeed: plan.BaseSeed,
		OnStats:  func(st *scenario.Stats) error { stats = append(stats, st); return nil },
	})
	if err != nil {
		return nil, err
	}
	return reportBytes(stats, sum)
}

func reportBytes(stats []*scenario.Stats, sum *scenario.Summary) ([]byte, error) {
	return json.Marshal(struct {
		Stats   []*scenario.Stats
		Summary *scenario.Summary
	}{stats, sum})
}
