package main

import (
	"context"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestServiceSubmitWatch is the CLI acceptance criterion for the sweep
// service: a long-lived `serve -service` coordinator takes two
// submitted jobs, a fair-share worker drains both, and `watch` renders
// each job's report byte-identical to a plain local run of the same
// spec. Resubmission is idempotent and SIGTERM-style cancellation shuts
// the service down cleanly.
func TestServiceSubmitWatch(t *testing.T) {
	t.Parallel()

	full1 := runSweep(t, "-builtin", "quick", "-json")
	full2 := runSweep(t, "-builtin", "quick", "-seeds", "2", "-json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveStderr := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() {
		var b strings.Builder
		serveDone <- runCtx(ctx, []string{"serve", "-service",
			"-state", filepath.Join(t.TempDir(), "state"),
			"-listen", "127.0.0.1:0"}, &b, serveStderr)
	}()
	url := waitForURL(t, serveStderr)

	submit := func(args ...string) (jobID, stderr string) {
		t.Helper()
		var out strings.Builder
		errBuf := &strings.Builder{}
		if err := run(append([]string{"submit", "-coordinator", url}, args...), &out, errBuf); err != nil {
			t.Fatalf("submit %v: %v\n%s", args, err, errBuf.String())
		}
		return strings.TrimSpace(out.String()), errBuf.String()
	}
	job1, msg1 := submit("-builtin", "quick", "-shards", "2")
	job2, _ := submit("-builtin", "quick", "-seeds", "2", "-shards", "3")
	if job1 == "" || job2 == "" || job1 == job2 {
		t.Fatalf("submit printed job IDs %q and %q, want two distinct IDs", job1, job2)
	}
	if !strings.Contains(msg1, "submitted") {
		t.Fatalf("first submit not announced as new:\n%s", msg1)
	}
	again, msgAgain := submit("-builtin", "quick", "-shards", "2")
	if again != job1 || !strings.Contains(msgAgain, "already queued") {
		t.Fatalf("resubmission printed %q (%s), want idempotent %q", again, msgAgain, job1)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var workErr error
	go func() {
		defer wg.Done()
		var b strings.Builder
		workErr = run([]string{"work", "-coordinator", url, "-poll", "10ms", "-exit-when-idle"}, &b, io.Discard)
	}()

	watch := func(jobID string) string {
		t.Helper()
		var out strings.Builder
		if err := run([]string{"watch", "-coordinator", url, "-json", jobID}, &out, io.Discard); err != nil {
			t.Fatalf("watch %s: %v", jobID, err)
		}
		return out.String()
	}
	if got := watch(job1); got != full1 {
		t.Fatal("watched job 1 report differs from plain local -json run")
	}
	if got := watch(job2); got != full2 {
		t.Fatal("watched job 2 report differs from plain local -seeds 2 -json run")
	}
	wg.Wait()
	if workErr != nil {
		t.Fatalf("work: %v", workErr)
	}

	cancel()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve -service did not shut down cleanly: %v", err)
	}
	if !strings.Contains(serveStderr.String(), "sweep service at ") {
		t.Fatalf("service handshake line missing:\n%s", serveStderr.String())
	}
}

func TestServiceAndSubmitFlagValidation(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := run([]string{"serve", "-service", "-builtin", "quick"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "submit") {
		t.Fatalf("serve -service with a spec flag accepted: %v", err)
	}
	if err := run([]string{"serve", "-service", "-json"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "watch") {
		t.Fatalf("serve -service with a report flag accepted: %v", err)
	}
	if err := run([]string{"serve", "-builtin", "quick", "-shards", "auto"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-service") {
		t.Fatalf("batch serve -shards auto accepted: %v", err)
	}
	if err := run([]string{"serve", "-builtin", "quick", "-shards", "nope"}, &b, io.Discard); err == nil {
		t.Fatal("serve -shards nope accepted")
	}
	if err := run([]string{"submit", "-builtin", "quick"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-coordinator") {
		t.Fatalf("submit without -coordinator accepted: %v", err)
	}
	if err := run([]string{"watch", "-coordinator", "http://localhost:1"}, &b, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "job ID") {
		t.Fatalf("watch without a job ID accepted: %v", err)
	}
	if err := run([]string{"watch", "-json", "-csv", "-coordinator", "http://localhost:1", "j"}, &b, io.Discard); err == nil {
		t.Fatal("watch -json -csv accepted together")
	}
}
