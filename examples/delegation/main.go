// Delegation: a finite goal solved by Levin-style universal search.
//
// The world poses a subset-sum instance the user cannot (by policy) solve
// itself; a solver server speaks an unknown dialect. The finite-goal
// universal runner dovetails candidate users with growing budgets and halts
// on the first attempt whose submitted witness verifies locally — sensing
// that is safe by construction.
//
//	go run ./examples/delegation
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/delegation"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const classSize = 12
	fam, err := dialect.NewWordFamily(delegation.Vocabulary(), classSize)
	if err != nil {
		return err
	}
	g := &delegation.Goal{N: 14}

	// Peek at the instance the world will pose (for narration only).
	if w, ok := g.NewWorld(core.Env{Choice: 1}).(*delegation.World); ok {
		ins := w.Instance()
		fmt.Printf("instance: weights=%v target=%d\n", ins.Weights, ins.Target)
	}

	for _, serverDialect := range []int{0, 5, 11} {
		fr := &core.FiniteRunner{
			Enum:  delegation.Enum(fam),
			Sense: delegation.Sense(),
		}
		res, err := fr.Run(
			func() comm.Strategy {
				return server.Dialected(&delegation.Server{}, fam.Dialect(serverDialect))
			},
			func() goal.World { return g.NewWorld(core.Env{Choice: 1}) },
			7,
		)
		if err != nil {
			return err
		}
		if !res.Succeeded {
			return fmt.Errorf("search failed for dialect %d", serverDialect)
		}
		fmt.Printf("server dialect %2d: found candidate %2d with budget %2d after %3d attempts (%5d simulated rounds); referee: %v\n",
			serverDialect, res.Index, res.Budget, len(res.Attempts), res.TotalRounds,
			g.Achieved(res.Final.History))
	}
	fmt.Println("note how the simulated-round cost grows with the matching candidate's index —")
	fmt.Println("the enumeration overhead the paper proves essentially necessary")
	return nil
}
