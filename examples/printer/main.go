// Printer tour: the paper's motivating example in full.
//
// Walks through (1) the failure of a fixed-protocol user against a
// mismatched printer, (2) the universal user succeeding against every
// printer in the class, (3) what goes wrong when sensing is unsafe (it
// trusts a lying printer's ACKs) and (4) empirical certification that the
// stock sensing function is safe and viable for this goal and class.
//
//	go run ./examples/printer
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/sensing"
	"repro/internal/server"
)

const classSize = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), classSize)
	if err != nil {
		return err
	}
	g := &printing.Goal{}
	cfg := core.RunConfig{MaxRounds: 60 * classSize, Seed: 1}

	fmt.Println("--- 1. fixed-protocol user vs the printer class ---")
	for _, idx := range []int{0, 3} {
		usr := &printing.Candidate{D: fam.Dialect(0)}
		srv := core.DialectedServer(&printing.Server{}, fam.Dialect(idx))
		achieved, _, err := core.AchieveCompact(g, usr, srv, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  printer dialect %d: achieved=%v\n", idx, achieved)
	}
	fmt.Println("  (the fixed user only ever works on its own dialect)")

	fmt.Println("--- 2. universal user vs every printer in the class ---")
	for idx := 0; idx < classSize; idx++ {
		usr, err := core.NewCompactUniversalUser(printing.Enum(fam), printing.Sense(0))
		if err != nil {
			return err
		}
		srv := core.DialectedServer(&printing.Server{}, fam.Dialect(idx))
		achieved, res, err := core.AchieveCompact(g, usr, srv, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  printer dialect %d: achieved=%v after %d evictions, %d rounds\n",
			idx, achieved, usr.Switches(), res.Rounds)
		if !achieved {
			return fmt.Errorf("universal user failed on dialect %d", idx)
		}
	}

	fmt.Println("--- 3. unsafe sensing vs a lying printer ---")
	usr, err := core.NewCompactUniversalUser(printing.Enum(fam), printing.TrustingSense())
	if err != nil {
		return err
	}
	achieved, res, err := core.AchieveCompact(g, usr, &printing.LyingServer{}, cfg)
	if err != nil {
		return err
	}
	fooled := sensing.Replay(printing.TrustingSense(), res.View)
	fmt.Printf("  goal achieved: %v; sensing indication: positive=%v\n", achieved, fooled)
	fmt.Println("  (the ACK-trusting sense reports success on a printer that printed nothing —")
	fmt.Println("   exactly the safety violation the theory's conditions rule out)")

	fmt.Println("--- 4. certifying the stock sensing function ---")
	servers := make([]func() comm.Strategy, classSize)
	for i := range servers {
		d := fam.Dialect(i)
		servers[i] = func() comm.Strategy { return server.Dialected(&printing.Server{}, d) }
	}
	all := append(append([]func() comm.Strategy{}, servers...),
		func() comm.Strategy { return server.Obstinate() },
		func() comm.Strategy { return &printing.LyingServer{} },
	)
	certCfg := harness.CertConfig{MaxRounds: cfg.MaxRounds, Seed: 1, Envs: 1}
	safety := harness.CertifySafetyCompact(g, func() sensing.Sense { return printing.Sense(0) },
		printing.Enum(fam), all, certCfg)
	viability := harness.CertifyViabilityCompact(g, func() sensing.Sense { return printing.Sense(0) },
		printing.Enum(fam), servers, certCfg)
	fmt.Printf("  safety violations: %d, viability violations: %d\n", len(safety), len(viability))
	if len(safety)+len(viability) > 0 {
		return fmt.Errorf("stock sensing failed certification")
	}
	fmt.Println("  (safe and viable — so Theorem 1 applies, and part 2 above is its witness)")
	return nil
}
