// Quickstart: achieve the paper's printing goal with a printer whose
// command dialect is unknown.
//
// A universal user — enumeration of candidate dialects driven by
// print-progress sensing — is paired with a printer speaking dialect 11 of
// a 16-dialect class. The user has no idea which dialect the printer
// speaks; sensing tells it when its current guess is not working, and it
// converges on the right one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/goals/printing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The class of printers: 16 mutually unintelligible command
	// dialects over the printer protocol (PRINT/STATUS/ACK/READY).
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 16)
	if err != nil {
		return err
	}

	// The adversary picks dialect 11; the user is not told.
	const serverDialect = 11
	srv := core.DialectedServer(&printing.Server{}, fam.Dialect(serverDialect))

	// The universal user: enumerate candidate users (one per dialect),
	// switch on negative sensing indications.
	user, err := core.NewCompactUniversalUser(printing.Enum(fam), printing.Sense(0))
	if err != nil {
		return err
	}

	g := &printing.Goal{}
	achieved, res, err := core.AchieveCompact(g, user, srv, core.RunConfig{
		MaxRounds: 800,
		Seed:      1,
	})
	if err != nil {
		return err
	}

	fmt.Println("printing goal:", g.Name())
	fmt.Println("server dialect (hidden from user):", serverDialect)
	fmt.Println("goal achieved:", achieved)
	fmt.Println("rounds executed:", res.Rounds)
	fmt.Println("candidates evicted before converging:", user.Switches())
	fmt.Println("final candidate dialect:", user.Index()%fam.Size())
	fmt.Println("final world state:", res.History.Last())
	if !achieved {
		return fmt.Errorf("expected the universal user to achieve the goal")
	}
	return nil
}
