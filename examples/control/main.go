// Control: quantitative misunderstanding and the power of class-specific
// algorithms.
//
// The actuator understands every MOVE command but interprets its argument
// in its own calibration (a constant offset). A proportional controller
// with the wrong calibration parks the plant at a non-zero steady-state
// error forever. Three controllers face the same miscalibrated actuator:
// the matching candidate (oracle), the generic enumeration universal user,
// and an adaptive controller that identifies the calibration from a single
// zero-force probe — the paper's closing observation that special classes
// admit algorithms far better than enumeration.
//
//	go run ./examples/control
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const classSize = 15
	const serverIdx = 12 // calibration offset −6

	fam, err := control.NewUnitsFamily(classSize)
	if err != nil {
		return err
	}
	g := &control.Goal{}
	cfg := core.RunConfig{MaxRounds: 300 * classSize, Seed: 3}
	srv := func() core.Strategy {
		return server.Dialected(&control.Server{}, fam.Dialect(serverIdx))
	}

	fmt.Printf("actuator calibration: offset %+d (index %d of %d, hidden from the user)\n\n",
		control.OffsetFor(serverIdx), serverIdx, classSize)

	report := func(name string, usr core.Strategy) error {
		w := g.NewWorld(core.Env{Choice: 2})
		res, err := core.Run(usr, srv(), w, cfg)
		if err != nil {
			return err
		}
		achieved := goal.CompactAchieved(g, res.History, 10)
		fmt.Printf("%-28s achieved=%-5v settled at round %4d   end: %s\n",
			name, achieved, goal.LastUnacceptable(g, res.History), res.History.Last())
		return nil
	}

	if err := report("wrong fixed calibration", &control.Candidate{D: fam.Dialect(0)}); err != nil {
		return err
	}
	if err := report("oracle (matching)", &control.Candidate{D: fam.Dialect(serverIdx)}); err != nil {
		return err
	}
	u, err := core.NewCompactUniversalUser(control.Enum(fam), control.Sense(0))
	if err != nil {
		return err
	}
	if err := report("universal (enumeration)", u); err != nil {
		return err
	}
	adaptive := &control.Adaptive{}
	if err := report("adaptive (one-probe ident.)", adaptive); err != nil {
		return err
	}
	fmt.Printf("\nadaptive identified offset %+d from its probe — correct\n", adaptive.Offset())
	fmt.Println("the adaptive controller is compatible with the WHOLE class at oracle-like cost:")
	fmt.Println("exactly the \"better algorithms for broad classes\" the paper's discussion calls for")
	return nil
}
