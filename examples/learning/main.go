// Learning: the prediction goal and the online-learning equivalence.
//
// Three users face the same hidden threshold concept: the halving
// algorithm (an efficient universal user, O(log M) mistakes), the generic
// enumeration universal user (a conservative learner, O(M) mistakes) and a
// fixed wrong concept (mistakes forever — goal failed). The mistake counts
// make the Juba–Vempala equivalence concrete: for this "simple goal",
// being a universal user IS being a mistake-bounded online learner.
//
//	go run ./examples/learning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/goal"
	"repro/internal/goals/learning"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const m = 128
	const concept = 97
	g := &learning.Goal{M: m}
	cfg := core.RunConfig{MaxRounds: 8000, Seed: 3}

	type contestant struct {
		name string
		mk   func() (core.Strategy, error)
	}
	contestants := []contestant{
		{"halving (efficient universal user)", func() (core.Strategy, error) {
			return &learning.HalvingUser{M: m}, nil
		}},
		{"enumeration (generic universal user)", func() (core.Strategy, error) {
			u, err := core.NewCompactUniversalUser(learning.Enum(m), learning.MistakeSense())
			return u, err
		}},
		{"fixed concept 0 (ignores feedback)", func() (core.Strategy, error) {
			return &learning.ThresholdUser{Concept: 0}, nil
		}},
	}

	fmt.Printf("domain size M=%d, hidden threshold concept c*=%d\n\n", m, concept)
	for _, c := range contestants {
		usr, err := c.mk()
		if err != nil {
			return err
		}
		w, ok := g.NewWorld(core.Env{Choice: concept}).(*learning.World)
		if !ok {
			return fmt.Errorf("unexpected world type")
		}
		res, err := core.Run(usr, server.Obstinate(), w, cfg)
		if err != nil {
			return err
		}
		achieved := goal.CompactAchieved(g, res.History, 20)
		fmt.Printf("%-38s mistakes=%5d over %4d graded queries; goal achieved=%v\n",
			c.name, w.Mistakes(), w.Answered(), achieved)
	}
	fmt.Println("\nshape: log M  <  ~c*  <  unbounded — learner quality is exactly universality quality")
	return nil
}
