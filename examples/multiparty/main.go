// Multiparty: the symmetric setting reduced to two-party sessions.
//
// Six parties each hold a private value and speak their own dialect; a
// coordinator must compute the maximum without knowing who speaks what.
// The reduction runs a compact universal user against each member in turn
// (each member is a "server" for one session), exactly as the paper's full
// version reduces the symmetric multi-party setting to the two-party one.
// The native baseline — everyone designed together on dialect 0 — shows
// what the enumeration overhead buys.
//
//	go run ./examples/multiparty
package main

import (
	"fmt"
	"log"

	"repro/internal/dialect"
	"repro/internal/multiparty"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const parties = 6
	const dialects = 8

	fam, err := dialect.NewWordFamily(multiparty.Vocabulary(), dialects)
	if err != nil {
		return err
	}

	r := xrand.New(2026)
	members := make([]*multiparty.Member, parties)
	fmt.Println("parties (value, dialect — both hidden from the coordinator):")
	for i := range members {
		members[i] = &multiparty.Member{
			Value: r.Intn(1000),
			D:     fam.Dialect(r.Intn(dialects)),
		}
		fmt.Printf("  member %d: value=%3d dialect=%d\n", i, members[i].Value, members[i].D.ID())
	}

	reduction, err := multiparty.LearnValues(members, fam, multiparty.Config{Seed: 1})
	if err != nil {
		return err
	}
	native, err := multiparty.LearnValues(members, fam, multiparty.Config{Seed: 1, Oracle: true})
	if err != nil {
		return err
	}

	maxV, err := reduction.Max()
	if err != nil {
		return err
	}
	fmt.Println("\nper-member sessions (universal reduction):")
	for i, s := range reduction.Sessions {
		fmt.Printf("  member %d: learned %3d in %3d rounds (ok=%v)\n", i, s.Value, s.Rounds, s.OK)
	}
	fmt.Printf("\nmax value: %d\n", maxV)
	fmt.Printf("total rounds — reduction: %d, native baseline: %d (overhead %.1fx)\n",
		reduction.TotalRounds, native.TotalRounds,
		float64(reduction.TotalRounds)/float64(native.TotalRounds))
	return nil
}
