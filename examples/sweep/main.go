// Sweep: evaluate a whole scenario matrix instead of a single pairing.
//
// The paper's claim is universality across a *class* of servers and goals,
// so the interesting object is never one execution — it is the grid:
// every goal crossed with every server transform the theory tolerates.
// This example declares such a grid as data (a scenario.Spec), expands it
// lazily, samples it, and streams it through the sweep executor with
// online aggregation.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A scenario space is a cross-product of named axes. This one pits
	// the universal user for two goals against the best-case and
	// worst-case dialects of an 8-server class, under increasing
	// message loss: 2 × 2 × 3 = 12 scenarios, 3 trials each.
	spec := &scenario.Spec{
		Name: "example",
		Axes: []scenario.Axis{
			{Name: "goal", Values: []string{"printing", "transfer"}},
			{Name: "class", Values: scenario.Ints(8)},
			{Name: "server", Values: scenario.Ints(0, -1)},
			{Name: "noise", Values: scenario.Floats(0, 0.2, 0.4)},
			{Name: "patience", Values: scenario.Ints(16)},
			{Name: "rounds", Values: scenario.Ints(1200)},
		},
		Seeds:  3,
		Window: 10,
	}

	m, err := scenario.NewMatrix(spec)
	if err != nil {
		return err
	}
	fmt.Printf("spec %q: %d scenarios × %d trials\n", spec.Name, m.Size(), spec.Seeds)

	// Scenarios are decoded on demand and carry stable content-derived
	// IDs: the same coordinates get the same ID in any enumeration.
	fmt.Println("\nfirst scenario:", m.At(0).String())

	// Huge spaces are sampled, not enumerated: Sample(n) draws a
	// deterministic random subset per seed.
	fmt.Println("\nsample of 3 (seed 42):")
	for _, idx := range m.Sample(3, 42) {
		fmt.Println(" ", m.At(idx).String())
	}

	// Sweep streams every scenario through the batch engine and emits
	// one aggregate per scenario — per-trial results are never
	// materialized, so the same loop handles a million scenarios.
	fmt.Println("\nsweeping the full matrix:")
	sum, err := m.Sweep(nil, scenario.SweepConfig{
		OnStats: func(st *scenario.Stats) error {
			fmt.Printf("  %-28s ok %3.0f%%  rounds mean %6.1f p99 %6.1f  msg/r %.2f\n",
				st.ID, 100*st.SuccessRate, st.Rounds.Mean, st.Rounds.P99, st.MsgsPerRound)
			return nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsummary: %d scenarios, %d trials, %d successes, %d total rounds\n",
		sum.Scenarios, sum.Trials, sum.Successes, sum.TotalRounds)

	// Sharding: content-derived IDs and seeds make sweeps
	// distributed-by-construction. Each shard of an i/n partition can
	// run in another process or on another host; merging the envelopes
	// reproduces the unsharded sweep byte for byte.
	seeds, window, base := scenario.SweepConfig{}.Effective(spec)
	fp := scenario.Fingerprint(spec, scenario.Builtin().Version(), seeds, window, base, 0, 0)
	var shards []*scenario.ShardResult
	for i := 1; i <= 3; i++ {
		sh := scenario.Shard{Index: i, Count: 3}
		var stats []*scenario.Stats
		shardSum, err := m.Sweep(sh.Indices(m, nil), scenario.SweepConfig{
			OnStats: func(st *scenario.Stats) error {
				stats = append(stats, st)
				return nil
			},
		})
		if err != nil {
			return err
		}
		shards = append(shards, &scenario.ShardResult{
			Version:     scenario.ShardFormatVersion,
			Fingerprint: fp,
			Spec:        spec,
			Shard:       sh,
			Scenarios:   stats,
			Summary:     shardSum,
		})
	}
	_, mergedSum, err := scenario.MergeShards(shards)
	if err != nil {
		return err
	}
	fmt.Printf("\nsharded 3 ways and merged: %d scenarios, %d trials (fingerprint %s)\n",
		mergedSum.Scenarios, mergedSum.Trials, fp)

	// Caching: a content-addressed store keyed by scenario ID + seed
	// discipline lets a repeat sweep skip every unchanged scenario.
	dir, err := os.MkdirTemp("", "sweep-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cache, err := scenario.OpenCache(dir)
	if err != nil {
		return err
	}
	for _, label := range []string{"cold", "warm"} {
		cachedSum, err := m.Sweep(nil, scenario.SweepConfig{Cache: cache})
		if err != nil {
			return err
		}
		fmt.Printf("%s cached sweep: %d hits, %d misses, %d trials executed\n",
			label, cachedSum.CacheHits, cachedSum.CacheMisses, cachedSum.ExecutedTrials)
	}
	return nil
}
