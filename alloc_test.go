// Allocation-discipline and fast-path-parity pins for the engine hot
// path (ISSUE 5): the steady-state round loop of every stock goal must
// stay within its allocation budget under RecordOff and RecordWindow,
// and the buffer-backed/live-judge fast paths must be observably
// identical to the string paths they bypass.
package repro

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/fst"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/goals/delegation"
	"repro/internal/goals/fsm"
	"repro/internal/goals/learning"
	"repro/internal/goals/printing"
	"repro/internal/goals/transfer"
	"repro/internal/goals/treasure"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// goalSetup assembles one (goal, user, server, world) system the way the
// sweep registry would. Parties are rebuilt per execution via the
// factories; the goal may be nil for finite goals (no compact referee).
type goalSetup struct {
	name   string
	g      goal.CompactGoal
	user   func() comm.Strategy
	server func() comm.Strategy
	world  func() goal.World
	rounds int
}

// stockSetups covers the six stock goals plus a generated fsm goal with
// protocol-faithful parties: a matching candidate against its class
// server, so executions reach and hold the goal's steady state (the
// regime sweeps spend their rounds in).
func stockSetups(t testing.TB) []goalSetup {
	t.Helper()
	printFam, err := dialect.NewWordFamily(printing.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	transFam, err := dialect.NewWordFamily(transfer.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	delFam, err := dialect.NewWordFamily(delegation.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	unitsFam, err := control.NewUnitsFamily(4)
	if err != nil {
		t.Fatal(err)
	}
	fsmFam, err := dialect.NewWordFamily(fsm.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	printGoal := &printing.Goal{}
	transGoal := &transfer.Goal{}
	ctrlGoal := &control.Goal{}
	learnGoal := &learning.Goal{M: 32}
	treasGoal := &treasure.Goal{}
	delGoal := &delegation.Goal{}
	// A feasible, forgiving generated machine: press 1 to move to state
	// 1 silently, press 0 there to emit the target.
	fsmSp := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	fsmIdx, err := fsmSp.Index(&fst.Machine{
		NumStates: 2, NumIn: 2, NumOut: 2,
		Next: []int{0, 1, 1, 0},
		Out:  []int{0, 0, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	fsmGoal, err := fsm.New(fsmSp, fsmIdx)
	if err != nil {
		t.Fatal(err)
	}
	return []goalSetup{
		{
			name:   "treasure",
			g:      treasGoal,
			user:   func() comm.Strategy { return &treasure.Candidate{Guess: 2} },
			server: func() comm.Strategy { return &treasure.Server{Secret: 2} },
			world:  func() goal.World { return treasGoal.NewWorld(goal.Env{}) },
			rounds: 1000,
		},
		{
			name:   "printing",
			g:      printGoal,
			user:   func() comm.Strategy { return &printing.Candidate{D: printFam.Dialect(1)} },
			server: func() comm.Strategy { return server.Dialected(&printing.Server{}, printFam.Dialect(1)) },
			world:  func() goal.World { return printGoal.NewWorld(goal.Env{Choice: 1}) },
			rounds: 1000,
		},
		{
			name:   "transfer",
			g:      transGoal,
			user:   func() comm.Strategy { return &transfer.Candidate{D: transFam.Dialect(1)} },
			server: func() comm.Strategy { return server.Dialected(&transfer.Server{}, transFam.Dialect(1)) },
			world:  func() goal.World { return transGoal.NewWorld(goal.Env{}) },
			rounds: 1000,
		},
		{
			name:   "control",
			g:      ctrlGoal,
			user:   func() comm.Strategy { return &control.Candidate{D: unitsFam.Dialect(1)} },
			server: func() comm.Strategy { return server.Dialected(&control.Server{}, unitsFam.Dialect(1)) },
			world:  func() goal.World { return ctrlGoal.NewWorld(goal.Env{Choice: 3}) },
			rounds: 1000,
		},
		{
			name:   "learning",
			g:      learnGoal,
			user:   func() comm.Strategy { return &learning.ThresholdUser{Concept: 7} },
			server: func() comm.Strategy { return server.Obstinate() },
			world:  func() goal.World { return learnGoal.NewWorld(goal.Env{Choice: 7}) },
			rounds: 1000,
		},
		{
			name:   "fsm",
			g:      fsmGoal,
			user:   func() comm.Strategy { return &fsm.Candidate{D: fsmFam.Dialect(1), G: fsmGoal} },
			server: func() comm.Strategy { return server.Dialected(&fsm.Server{G: fsmGoal}, fsmFam.Dialect(1)) },
			world:  func() goal.World { return fsmGoal.NewWorld(goal.Env{}) },
			rounds: 1000,
		},
		{
			// Finite goal: g stays nil (no compact referee). A
			// mismatched dialect keeps the loop running the whole
			// horizon — the steady state is the retrying conversation.
			name:   "delegation",
			user:   func() comm.Strategy { return &delegation.Candidate{D: delFam.Dialect(1)} },
			server: func() comm.Strategy { return server.Dialected(&delegation.Server{}, delFam.Dialect(2)) },
			world:  func() goal.World { return delGoal.NewWorld(goal.Env{Choice: 1}) },
			rounds: 1000,
		},
	}
}

// TestFastPathParity pins the two hot-path contracts on real executions
// of every stock goal:
//
//   - StateAppender: the state the engine materializes (buffer-backed,
//     interned) equals Snapshot() byte for byte, every round.
//   - WorldJudge: AcceptableWorld equals Acceptable on the history
//     ending in that state, every round.
func TestFastPathParity(t *testing.T) {
	for _, su := range stockSetups(t) {
		t.Run(su.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				var lastState comm.WorldState
				scratch := comm.History{States: make([]comm.WorldState, 1)}
				judge, hasJudge := su.g.(goal.WorldJudge)
				cfg := system.Config{
					MaxRounds: 200,
					Seed:      seed,
					Record:    system.RecordOff,
					OnRound: func(round int, rv comm.RoundView, state comm.WorldState) {
						lastState = state
					},
					OnRoundLive: func(round int, rv comm.RoundView, w goal.World) {
						// Engine-materialized state vs the plain Snapshot
						// path: the StateAppender/interning contract.
						if direct := w.Snapshot(); direct != lastState {
							t.Fatalf("seed %d round %d: engine state %q != Snapshot %q", seed, round, lastState, direct)
						}
						if !hasJudge {
							return
						}
						scratch.States[0] = lastState
						scratch.Dropped = round
						if judge.AcceptableWorld(w) != su.g.Acceptable(scratch) {
							t.Fatalf("seed %d round %d: AcceptableWorld disagrees with Acceptable on %q", seed, round, lastState)
						}
					},
				}
				res, err := system.Run(su.user(), su.server(), su.world(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				system.ReleaseResult(res)
			}
		})
	}
}

// allocBudgets pins the steady-state allocation cost of a full
// execution (1000 rounds) per stock goal and retention policy. The
// budgets are whole-run counts, not per-round: every stock goal now
// runs its warm loop allocation-free, so the measured cost is the
// engine floor — the three per-party RNG splits of Reset (3.0 measured)
// — plus, for goals whose message streams never repeat, one arena block
// per party per run (learning and printing measure 5.0: the id-bearing
// query/answer arenas and the printed-log bookkeeping amortize to two
// extra). Budgets carry ~1.3x slack over those measurements: tight
// enough that a single Sprintf, map insert or string build per round
// (+1000/run) — or even per state transition (+tens/run) — fails
// loudly, loose enough for pool/GC timing jitter.
//
// Arena-backed learning state (ISSUE 6) is what moved learning from its
// previous 1004-alloc pin (one query string + one answer string per
// round, individually allocated) to the engine floor: unbounded-id
// messages are carved from per-execution msgbuf.Arena blocks, and the
// answered/pending maps became index-keyed rings.
var allocBudgets = map[string]struct{ off, window float64 }{
	"treasure":   {off: 4, window: 6},
	"printing":   {off: 7, window: 9},
	"transfer":   {off: 4, window: 6},
	"control":    {off: 4, window: 6},
	"learning":   {off: 7, window: 9},
	"delegation": {off: 4, window: 6},
	// Generated fsm goals precompute every message and snapshot at
	// construction, so their warm loop sits at the engine floor like the
	// leanest stock goals.
	"fsm": {off: 4, window: 6},
}

// TestSteadyStateAllocBudgets is the alloc-gated benchmark in test form:
// testing.AllocsPerRun over full executions, failing go test when a goal
// regresses past its budget instead of silently eroding throughput.
func TestSteadyStateAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under -race (the race runtime allocates)")
	}
	if testing.Short() {
		t.Skip("allocation pins are not meaningful under -short")
	}
	for _, su := range stockSetups(t) {
		budget, ok := allocBudgets[su.name]
		if !ok {
			t.Fatalf("no allocation budget declared for %q", su.name)
		}
		for _, rec := range []struct {
			name   string
			policy system.RecordPolicy
			limit  float64
		}{
			{"off", system.RecordOff, budget.off},
			{"window10", system.RecordWindow(10), budget.window},
		} {
			t.Run(su.name+"/"+rec.name, func(t *testing.T) {
				// Parties are constructed once and Reset per run by the
				// engine — the steady-state regime of a warm batch
				// worker.
				user, srv, world := su.user(), su.server(), su.world()
				cfg := system.Config{MaxRounds: su.rounds, Seed: 1, Record: rec.policy}
				run := func() {
					res, err := system.Run(user, srv, world, cfg)
					if err != nil {
						t.Fatal(err)
					}
					system.ReleaseResult(res)
				}
				run() // warm caches and pools outside the measurement
				allocs := testing.AllocsPerRun(5, run)
				t.Logf("%s/%s: %.1f allocs per %d-round execution", su.name, rec.name, allocs, su.rounds)
				if allocs > rec.limit {
					t.Errorf("%s/%s: %.1f allocs per execution exceeds the budget of %.0f — a per-round allocation crept into the hot path",
						su.name, rec.name, allocs, rec.limit)
				}
			})
		}
	}
}

// TestEngineRoundAllocCeiling pins the ISSUE 5 acceptance number
// directly: the EngineRound micro-benchmark's steady-state execution
// (1000 silent rounds, RecordOff, result released) must stay under 100
// allocations — it was ~504 before the hot-path work.
func TestEngineRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under -race (the race runtime allocates)")
	}
	usr := &treasure.Candidate{Guess: 0}
	srv := server.Obstinate()
	w := &treasure.World{}
	cfg := system.Config{MaxRounds: 1000, Seed: 1, Record: system.RecordOff}
	run := func() {
		res, err := system.Run(usr, srv, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		system.ReleaseResult(res)
	}
	run()
	allocs := testing.AllocsPerRun(10, run)
	t.Logf("engine round loop: %.1f allocs per 1000-round execution", allocs)
	if allocs >= 100 {
		t.Errorf("engine round loop allocates %.1f times per 1000-round execution, acceptance ceiling is <100", allocs)
	}
}

// TestUniversalUserSteadyAllocs pins the full sweep-shaped stack — a
// universal user (enumeration + sensing) over a dialected server — in
// its converged steady state: once the matching candidate is installed,
// switching stops and the loop must stay within budget.
func TestUniversalUserSteadyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under -race (the race runtime allocates)")
	}
	if testing.Short() {
		t.Skip("allocation pins are not meaningful under -short")
	}
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	g := &printing.Goal{}
	mk := func() comm.Strategy {
		u, err := universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	user := mk()
	srv := server.Dialected(&printing.Server{}, fam.Dialect(2))
	world := g.NewWorld(goal.Env{})
	cfg := system.Config{MaxRounds: 1000, Seed: 1, Record: system.RecordOff}
	run := func() {
		res, err := system.Run(user, srv, world, cfg)
		if err != nil {
			t.Fatal(err)
		}
		system.ReleaseResult(res)
	}
	run()
	allocs := testing.AllocsPerRun(5, run)
	t.Logf("universal printing user: %.1f allocs per 1000-round execution", allocs)
	// The candidate cache (universal.CompactUser) re-Resets cached
	// strategies on switches instead of constructing fresh ones, so a
	// warm re-run — convergence included — sits at the engine floor
	// (5.0 measured). The budget carries slack for pool/GC jitter but
	// fails on any per-switch construction (+dozens) or per-round
	// allocation (+1000) creeping back.
	if allocs > 12 {
		t.Errorf("universal user execution allocates %.1f times, budget 12", allocs)
	}
}

// TestMetricsInstrumentationAllocFree pins the ISSUE 7 acceptance
// number: the engine counters wired into RunBatch (trials, rounds,
// batch claims) must add zero allocations per round. It proves the
// instrumentation is actually on the measured path — the rounds counter
// advances by exactly MaxRounds per execution — while the per-execution
// allocation count stays at the same fixed floor the uninstrumented
// engine had, so the metric cost per round is 0 allocs.
func TestMetricsInstrumentationAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under -race (the race runtime allocates)")
	}
	rounds := obs.Default().Counter("goalsweep_engine_rounds_total", "Total engine rounds executed across all trials.")
	trials := obs.Default().Counter("goalsweep_engine_trials_finished_total", "Trials completed (with or without error).")
	mk := func() []system.Trial {
		return []system.Trial{{
			User:   func() (comm.Strategy, error) { return &treasure.Candidate{Guess: 0}, nil },
			Server: func() comm.Strategy { return server.Obstinate() },
			World:  func() goal.World { return &treasure.World{} },
			Config: system.Config{MaxRounds: 1000, Seed: 1, Record: system.RecordOff},
		}}
	}
	run := func() {
		res, err := system.RunBatch(mk(), system.BatchConfig{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			system.ReleaseResult(r)
		}
	}
	run() // warm pools; also proves the counters are live below
	rounds0, trials0 := rounds.Value(), trials.Value()
	const runs = 10
	allocs := testing.AllocsPerRun(runs, run)
	t.Logf("instrumented batch: %.1f allocs per 1000-round execution", allocs)
	// AllocsPerRun executes run() runs+1 times (one warm-up inside).
	if dr := rounds.Value() - rounds0; dr != (runs+1)*1000 {
		t.Fatalf("rounds counter advanced by %d, want %d — instrumentation fell off the measured path", dr, (runs+1)*1000)
	}
	if dt := trials.Value() - trials0; dt != runs+1 {
		t.Fatalf("trials counter advanced by %d, want %d", dt, runs+1)
	}
	// Same ceiling as the uninstrumented engine round loop: the batch
	// scaffolding (trial slice, result slot, scratch checkout) is fixed
	// per execution; any per-round metric allocation would add +1000.
	if allocs >= 100 {
		t.Errorf("instrumented batch allocates %.1f times per 1000-round execution, ceiling is <100 — metrics must be alloc-free on the hot path", allocs)
	}
}

// BenchmarkSweepStack reports the sweep-shaped hot path end to end for
// profiling convenience: go test -bench SweepStack -benchmem.
func BenchmarkSweepStack(b *testing.B) {
	for _, su := range stockSetups(b) {
		if su.g == nil {
			continue
		}
		b.Run(su.name, func(b *testing.B) {
			user, srv, world := su.user(), su.server(), su.world()
			judge, _ := su.g.(goal.WorldJudge)
			if judge == nil {
				b.Fatalf("%s: stock compact goal without WorldJudge", su.name)
			}
			lastBad := 0
			cfg := system.Config{
				MaxRounds: su.rounds,
				Seed:      1,
				Record:    system.RecordOff,
				OnRoundLive: func(round int, rv comm.RoundView, w goal.World) {
					if !judge.AcceptableWorld(w) {
						lastBad = round + 1
					}
				},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := system.Run(user, srv, world, cfg)
				if err != nil {
					b.Fatal(err)
				}
				system.ReleaseResult(res)
			}
			_ = lastBad
		})
	}
}
