// Package beliefs implements prior-weighted enumeration, the direction
// opened by Juba and Sudan's "Efficient Semantic Communication via
// Compatible Beliefs" (ICS 2011), which the paper's closing section points
// to: universal users need not pay the full enumeration overhead when user
// and server have compatible beliefs about which protocols are likely.
//
// A Prior is a probability distribution over strategy indices. A user whose
// beliefs are compatible with the process selecting the server enumerates
// candidates in order of decreasing prior mass; the expected number of
// candidates tried is then the expected rank, which for concentrated priors
// is O(1) instead of N/2.
package beliefs

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/enumerate"
	"repro/internal/xrand"
)

// Prior is a normalized probability distribution over the indices
// [0, Len()) of a strategy enumeration (or server class). A Prior is
// immutable after construction: the cumulative-weight table, enumeration
// order and expected rank are computed once in FromWeights, so Sample,
// Order and ExpectedRank are allocation-free on every call (and safe for
// concurrent readers).
type Prior struct {
	weights []float64
	cum     []float64 // cum[i] = weights[0] + ... + weights[i], the Sample CDF
	order   []int     // indices by decreasing weight, ties by index
	expRank float64
}

// FromWeights builds a prior proportional to the given non-negative
// weights. It returns an error if the weights are empty, negative, NaN or
// all zero.
func FromWeights(ws []float64) (*Prior, error) {
	if len(ws) == 0 {
		return nil, errors.New("beliefs: empty weights")
	}
	sum := 0.0
	for i, w := range ws {
		if math.IsNaN(w) || w < 0 {
			return nil, fmt.Errorf("beliefs: weight %d is invalid (%v)", i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, errors.New("beliefs: all weights zero")
	}
	normalized := make([]float64, len(ws))
	for i, w := range ws {
		normalized[i] = w / sum
	}
	p := &Prior{weights: normalized}
	// The CDF must accumulate in index order with the same additions the
	// old linear-scan Sample performed, so binary search lands on exactly
	// the index the scan returned (float rounding included).
	p.cum = make([]float64, len(normalized))
	acc := 0.0
	for i, w := range normalized {
		acc += w
		p.cum[i] = acc
	}
	p.order = make([]int, len(normalized))
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		return p.weights[p.order[a]] > p.weights[p.order[b]]
	})
	for rank, idx := range p.order {
		p.expRank += p.weights[idx] * float64(rank+1)
	}
	return p, nil
}

// Uniform returns the uniform prior over n indices.
func Uniform(n int) (*Prior, error) {
	if n < 1 {
		return nil, fmt.Errorf("beliefs: uniform prior needs n >= 1, got %d", n)
	}
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = 1
	}
	return FromWeights(ws)
}

// Zipf returns a Zipf prior over n indices with exponent s: weight of index
// i proportional to 1/(i+1)^s. s = 0 is uniform; larger s concentrates mass
// on small indices.
func Zipf(n int, s float64) (*Prior, error) {
	if n < 1 {
		return nil, fmt.Errorf("beliefs: zipf prior needs n >= 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("beliefs: zipf exponent must be >= 0, got %v", s)
	}
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = math.Pow(float64(i+1), -s)
	}
	return FromWeights(ws)
}

// Len returns the support size.
func (p *Prior) Len() int { return len(p.weights) }

// Weight returns the normalized probability of index i.
func (p *Prior) Weight(i int) float64 {
	if i < 0 || i >= len(p.weights) {
		return 0
	}
	return p.weights[i]
}

// Order returns the indices sorted by decreasing weight, ties broken by
// index — the enumeration order of a belief-compatible universal user.
// The slice is computed once at construction and shared across calls;
// callers must not modify it (Reorder and enumerate.Reordered copy it).
func (p *Prior) Order() []int { return p.order }

// Sample draws an index from the prior by binary search over the
// precomputed cumulative-weight table: O(log n) per draw and
// allocation-free, returning exactly the index a linear scan of the
// weights would (the CDF stores the scan's own partial sums). Used by
// workloads to select the actual server according to the same
// distribution the user believes in (compatible beliefs) or a different
// one (incompatible).
func (p *Prior) Sample(r *xrand.Rand) int {
	u := r.Float64()
	// First index whose cumulative weight exceeds u — the linear scan's
	// "u < acc" stop condition.
	i := sort.Search(len(p.cum), func(i int) bool { return p.cum[i] > u })
	if i == len(p.cum) {
		return len(p.cum) - 1
	}
	return i
}

// ExpectedRank returns the expected 1-based position of the true index in
// the prior's enumeration order when the true index is itself drawn from
// the prior — the analytic prediction for "expected candidates tried".
// Computed once at construction; repeat calls are allocation-free.
func (p *Prior) ExpectedRank() float64 { return p.expRank }

// Reorder returns base's strategies visited in order of decreasing prior
// mass. The prior's support must match the enumerator's size.
func Reorder(base enumerate.Enumerator, p *Prior) (enumerate.Enumerator, error) {
	if base.Size() != p.Len() {
		return nil, fmt.Errorf("beliefs: prior support %d does not match enumerator size %d",
			p.Len(), base.Size())
	}
	return enumerate.Reordered(base, p.Order())
}
