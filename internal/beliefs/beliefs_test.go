package beliefs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/enumerate"
	"repro/internal/xrand"
)

func TestFromWeightsValidation(t *testing.T) {
	t.Parallel()

	if _, err := FromWeights(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := FromWeights([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FromWeights([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := FromWeights([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestNormalization(t *testing.T) {
	t.Parallel()

	p, err := FromWeights([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Weight(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Weight(0) = %v, want 0.25", got)
	}
	if got := p.Weight(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Weight(1) = %v, want 0.75", got)
	}
	if p.Weight(-1) != 0 || p.Weight(2) != 0 {
		t.Fatal("out-of-range weight not zero")
	}
}

func TestZipfShapes(t *testing.T) {
	t.Parallel()

	flat, err := Zipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat.Weight(0)-flat.Weight(9)) > 1e-12 {
		t.Fatal("zipf(0) is not uniform")
	}

	steep, err := Zipf(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if steep.Weight(0) <= 4*steep.Weight(9) {
		t.Fatal("zipf(2) not concentrated on index 0")
	}
	if _, err := Zipf(0, 1); err == nil {
		t.Error("zipf with n=0 accepted")
	}
	if _, err := Zipf(5, -1); err == nil {
		t.Error("zipf with negative exponent accepted")
	}
}

func TestOrderDecreasing(t *testing.T) {
	t.Parallel()

	p, err := FromWeights([]float64{1, 5, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	order := p.Order()
	want := []int{1, 3, 2, 0} // ties broken by index
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Order = %v, want %v", order, want)
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	t.Parallel()

	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		for i, b := range raw {
			ws[i] = float64(b) + 1
		}
		p, err := FromWeights(ws)
		if err != nil {
			return false
		}
		seen := make([]bool, p.Len())
		for _, idx := range p.Order() {
			if idx < 0 || idx >= p.Len() || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMatchesPrior(t *testing.T) {
	t.Parallel()

	p, err := FromWeights([]float64{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	counts := make([]int, 3)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[p.Sample(r)]++
	}
	if counts[0] < 7*n/10 {
		t.Fatalf("index 0 sampled %d/%d, want ~80%%", counts[0], n)
	}
	if counts[1]+counts[2] == 0 {
		t.Fatal("tail never sampled")
	}
}

func TestExpectedRank(t *testing.T) {
	t.Parallel()

	// Point-ish mass on one index → expected rank near 1.
	concentrated, err := FromWeights([]float64{100, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if concentrated.ExpectedRank() >= uniform.ExpectedRank() {
		t.Fatalf("concentrated rank %v >= uniform rank %v",
			concentrated.ExpectedRank(), uniform.ExpectedRank())
	}
	// Uniform over n has expected rank (n+1)/2.
	if got := uniform.ExpectedRank(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("uniform expected rank = %v, want 2.5", got)
	}
}

func TestReorder(t *testing.T) {
	t.Parallel()

	base := enumerate.FromFunc("base", 3, func(i int) comm.Strategy {
		return &commtest.Script{Outs: []comm.Outbox{{ToServer: comm.Message(rune('a' + i))}}}
	})
	p, err := FromWeights([]float64{1, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := Reorder(base, p)
	if err != nil {
		t.Fatal(err)
	}
	first := reordered.Strategy(0)
	first.Reset(xrand.New(1))
	out, err := first.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToServer != "b" {
		t.Fatalf("highest-mass strategy should come first, got %q", out.ToServer)
	}
}

func TestReorderSizeMismatch(t *testing.T) {
	t.Parallel()

	base := enumerate.FromFunc("base", 3, func(int) comm.Strategy { return &commtest.Silent{} })
	p, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reorder(base, p); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestQueriesAllocationFree pins the ISSUE 6 contract: once a Prior is
// built, Sample/Order/ExpectedRank are pure table lookups — zero heap
// allocations per call, no matter how often they repeat.
func TestQueriesAllocationFree(t *testing.T) {
	p, err := Zipf(64, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	var sink int
	var sinkF float64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			sink += p.Sample(r)
		}
		sink += p.Order()[0]
		sinkF += p.ExpectedRank()
	})
	if allocs != 0 {
		t.Fatalf("repeat Sample/Order/ExpectedRank allocated %v per run, want 0", allocs)
	}
	_ = sink
	_ = sinkF
}

// BenchmarkPriorQueries measures the steady-state query mix on a warm
// Prior; ReportAllocs keeps the zero-alloc property visible in bench
// output.
func BenchmarkPriorQueries(b *testing.B) {
	p, err := Zipf(64, 1.1)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Sample(r)
		sink += p.Order()[0]
		sink += int(p.ExpectedRank())
	}
	_ = sink
}
