package learning

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestLabel(t *testing.T) {
	t.Parallel()

	tests := []struct {
		concept, x, want int
	}{
		{0, 0, 1}, {5, 4, 0}, {5, 5, 1}, {5, 9, 1}, {10, 0, 0},
	}
	for _, tt := range tests {
		if got := Label(tt.concept, tt.x); got != tt.want {
			t.Errorf("Label(%d,%d) = %d, want %d", tt.concept, tt.x, got, tt.want)
		}
	}
}

func TestParseQuery(t *testing.T) {
	t.Parallel()

	q, ok := ParseQuery("Q 3 17|RES 2 ok")
	if !ok || q.ID != 3 || q.X != 17 || q.ResID != 2 || q.Res != "ok" {
		t.Fatalf("parsed %+v ok=%v", q, ok)
	}
	for _, bad := range []comm.Message{"", "Q 3 17", "Q x y|RES 2 ok", "Q 3 17|RES 2 weird", "Q 3 17|FOO 2 ok"} {
		if _, ok := ParseQuery(bad); ok {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	t.Parallel()

	w := &World{M: 16, Concept: 5}
	w.Reset(xrand.New(2))
	st, ok := ParseState(w.Snapshot())
	if !ok {
		t.Fatalf("snapshot unparseable: %q", w.Snapshot())
	}
	if st.Answered != 0 || st.Mistakes != 0 || st.LastOK != -1 {
		t.Fatalf("initial state = %+v", st)
	}
	if _, ok := ParseState("junk"); ok {
		t.Fatal("junk snapshot parsed")
	}
}

func TestWorldGradesAnswers(t *testing.T) {
	t.Parallel()

	w := &World{M: 8, Concept: 4}
	w.Reset(xrand.New(3))

	out, err := w.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := ParseQuery(out.ToUser)
	if !ok || q.ID != 1 {
		t.Fatalf("first announcement %q", out.ToUser)
	}

	correct := Label(4, q.X)
	out, err = w.Step(comm.Inbox{FromUser: comm.Message(fmt.Sprintf("P %d %d", q.ID, correct))})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := ParseState(w.Snapshot())
	if st.Answered != 1 || st.Mistakes != 0 || st.LastOK != 1 {
		t.Fatalf("state after correct answer = %+v", st)
	}
	q2, _ := ParseQuery(out.ToUser)
	if q2.ID != 2 || q2.Res != "ok" {
		t.Fatalf("second announcement %+v", q2)
	}

	wrong := 1 - Label(4, q2.X)
	if _, err = w.Step(comm.Inbox{FromUser: comm.Message(fmt.Sprintf("P %d %d", q2.ID, wrong))}); err != nil {
		t.Fatal(err)
	}
	st, _ = ParseState(w.Snapshot())
	if st.Mistakes != 1 || st.LastOK != 0 {
		t.Fatalf("state after mistake = %+v", st)
	}
}

func TestWorldIgnoresStaleAndMalformedAnswers(t *testing.T) {
	t.Parallel()

	w := &World{M: 8, Concept: 4}
	w.Reset(xrand.New(3))
	if _, err := w.Step(comm.Inbox{}); err != nil {
		t.Fatal(err)
	}
	for _, msg := range []comm.Message{"P 99 1", "P 1 7", "P 1", "nonsense", "P x 1"} {
		if _, err := w.Step(comm.Inbox{FromUser: msg}); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := ParseState(w.Snapshot())
	if st.Answered != 0 {
		t.Fatalf("stale/malformed answers graded: %+v", st)
	}
}

// runLearner executes a user against the learning world and returns final
// mistakes plus whether the compact goal was achieved.
func runLearner(t *testing.T, g *Goal, concept int, usr comm.Strategy, rounds int) (int, bool) {
	t.Helper()
	w, ok := g.NewWorld(goal.Env{Choice: concept}).(*World)
	if !ok {
		t.Fatal("world type")
	}
	res, err := system.Run(usr, server.Obstinate(), w, system.Config{MaxRounds: rounds, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return w.Mistakes(), goal.CompactAchieved(g, res.History, 20)
}

func TestCorrectThresholdUserAchieves(t *testing.T) {
	t.Parallel()

	g := &Goal{M: 32}
	mistakes, achieved := runLearner(t, g, 9, &ThresholdUser{Concept: 9}, 600)
	if mistakes != 0 {
		t.Fatalf("true concept made %d mistakes", mistakes)
	}
	if !achieved {
		t.Fatal("goal not achieved by true concept")
	}
}

func TestWrongThresholdUserFails(t *testing.T) {
	t.Parallel()

	g := &Goal{M: 32}
	mistakes, achieved := runLearner(t, g, 20, &ThresholdUser{Concept: 0}, 600)
	if achieved {
		t.Fatal("wrong fixed concept achieved the goal")
	}
	if mistakes < 10 {
		t.Fatalf("wrong concept should keep erring; mistakes = %d", mistakes)
	}
}

func TestSilentUserFails(t *testing.T) {
	t.Parallel()

	g := &Goal{M: 16}
	w := g.NewWorld(goal.Env{Choice: 3})
	res, err := system.Run(&silentUser{}, server.Obstinate(), w,
		system.Config{MaxRounds: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if goal.CompactAchieved(g, res.History, 20) {
		t.Fatal("silent user achieved the prediction goal")
	}
}

type silentUser struct{}

func (*silentUser) Reset(*xrand.Rand)                    {}
func (*silentUser) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }

func TestHalvingUserMistakeBound(t *testing.T) {
	t.Parallel()

	const m = 256
	g := &Goal{M: m}
	bound := int(math.Ceil(math.Log2(m))) + 1
	for _, concept := range []int{0, 1, 100, 255} {
		mistakes, achieved := runLearner(t, g, concept, &HalvingUser{M: m}, 4000)
		if !achieved {
			t.Fatalf("halving failed on concept %d", concept)
		}
		if mistakes > bound {
			t.Fatalf("halving made %d mistakes on concept %d, bound %d", mistakes, concept, bound)
		}
	}
}

func TestEnumerationUserAchievesWithLinearMistakes(t *testing.T) {
	t.Parallel()

	const m = 32
	g := &Goal{M: m}
	for _, concept := range []int{0, 5, 20} {
		u, err := universal.NewCompactUser(Enum(m), MistakeSense())
		if err != nil {
			t.Fatal(err)
		}
		mistakes, achieved := runLearner(t, g, concept, u, 6000)
		if !achieved {
			t.Fatalf("enumeration learner failed on concept %d", concept)
		}
		// Conservative learner: at most `concept` evictions = mistakes.
		if mistakes > concept+1 {
			t.Fatalf("enumeration learner made %d mistakes on concept %d", mistakes, concept)
		}
	}
}

func TestHalvingBeatsEnumeration(t *testing.T) {
	t.Parallel()

	const m = 128
	const concept = 100
	g := &Goal{M: m}

	u, err := universal.NewCompactUser(Enum(m), MistakeSense())
	if err != nil {
		t.Fatal(err)
	}
	enumMistakes, enumOK := runLearner(t, g, concept, u, 20000)
	halvMistakes, halvOK := runLearner(t, g, concept, &HalvingUser{M: m}, 20000)
	if !enumOK || !halvOK {
		t.Fatalf("achievement: enum=%v halving=%v", enumOK, halvOK)
	}
	if halvMistakes >= enumMistakes {
		t.Fatalf("halving (%d mistakes) should beat enumeration (%d)", halvMistakes, enumMistakes)
	}
}

func TestGoalRefereeCountsMistakes(t *testing.T) {
	t.Parallel()

	// The number of unacceptable prefixes ≈ mistake rounds (plus the
	// warm-up and in-flight grading rounds); it must grow with a wrong
	// concept and stay bounded with the right one.
	g := &Goal{M: 16}
	w := g.NewWorld(goal.Env{Choice: 8})
	res, err := system.Run(&ThresholdUser{Concept: 8}, server.Obstinate(), w,
		system.Config{MaxRounds: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	right := goal.UnacceptableCount(g, res.History)

	w2 := g.NewWorld(goal.Env{Choice: 8})
	res2, err := system.Run(&ThresholdUser{Concept: 0}, server.Obstinate(), w2,
		system.Config{MaxRounds: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wrong := goal.UnacceptableCount(g, res2.History)
	if right >= wrong {
		t.Fatalf("unacceptable prefixes: right=%d wrong=%d", right, wrong)
	}
}
