package learning

import (
	"math"
	"testing"

	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

func TestAdversaryQueriesInRange(t *testing.T) {
	t.Parallel()

	g := &Goal{M: 32, Adversary: true}
	w, ok := g.NewWorld(goal.Env{Choice: 20}).(*World)
	if !ok {
		t.Fatal("world type")
	}
	res, err := system.Run(&HalvingUser{M: 32}, server.Obstinate(), w,
		system.Config{MaxRounds: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if w.Answered() == 0 {
		t.Fatal("no queries graded under the adversary")
	}
}

func TestAdversaryPushesHalvingTowardBound(t *testing.T) {
	t.Parallel()

	// Under uniform queries halving makes O(1) mistakes in practice; the
	// bisection adversary forces close to the log bound.
	const m = 256
	bound := int(math.Ceil(math.Log2(m))) + 1

	mistakes := func(adversary bool) int {
		g := &Goal{M: m, Adversary: adversary}
		w, ok := g.NewWorld(goal.Env{Choice: 201}).(*World)
		if !ok {
			t.Fatal("world type")
		}
		if _, err := system.Run(&HalvingUser{M: m}, server.Obstinate(), w,
			system.Config{MaxRounds: 4000, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return w.Mistakes()
	}

	uniform := mistakes(false)
	adversarial := mistakes(true)
	if adversarial <= uniform {
		t.Fatalf("adversary (%d mistakes) should beat uniform (%d)", adversarial, uniform)
	}
	if adversarial > bound {
		t.Fatalf("halving exceeded its bound under adversary: %d > %d", adversarial, bound)
	}
	if adversarial < bound/2 {
		t.Fatalf("adversary too weak: %d mistakes vs bound %d", adversarial, bound)
	}
}

func TestAdversaryStillAchievableByHalving(t *testing.T) {
	t.Parallel()

	// The goal remains achievable: after the concept is pinned down the
	// adversary's queries have determined labels and mistakes stop.
	g := &Goal{M: 64, Adversary: true}
	w := g.NewWorld(goal.Env{Choice: 40})
	res, err := system.Run(&HalvingUser{M: 64}, server.Obstinate(), w,
		system.Config{MaxRounds: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 20) {
		t.Fatal("halving failed the adversarial prediction goal")
	}
}

func TestAdversaryEnumerationStillLinear(t *testing.T) {
	t.Parallel()

	// The conservative enumeration learner's mistake bound (≤ concept
	// index + 1) is schedule-independent.
	const m = 32
	const concept = 20
	g := &Goal{M: m, Adversary: true}
	u, err := universal.NewCompactUser(Enum(m), MistakeSense())
	if err != nil {
		t.Fatal(err)
	}
	w, ok := g.NewWorld(goal.Env{Choice: concept}).(*World)
	if !ok {
		t.Fatal("world type")
	}
	res, err := system.Run(u, server.Obstinate(), w,
		system.Config{MaxRounds: 8000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 20) {
		t.Fatal("enumeration learner failed under adversary")
	}
	if w.Mistakes() > concept+1 {
		t.Fatalf("enumeration mistakes %d exceed index bound %d", w.Mistakes(), concept+1)
	}
}
