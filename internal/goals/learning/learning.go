// Package learning implements the prediction goal behind Juba and Vempala's
// "Semantic Communication for Simple Goals is Equivalent to On-line
// Learning" — the follow-up direction the paper's §3 closes with.
//
// The world repeatedly poses queries x from a finite domain and the user
// must predict the label assigned by a hidden threshold concept; the
// compact goal is achieved iff the user makes only finitely many mistakes.
// The equivalence made executable:
//
//   - The generic universal user (enumerate concepts, switch on mistake) is
//     exactly the CONSERVATIVE online learner, with mistake bound O(M).
//   - The halving algorithm (binary search over the threshold class) is an
//     efficient universal user with mistake bound O(log M).
//   - A fixed wrong concept incurs unboundedly many mistakes, so the goal
//     fails.
//
// The server plays no role in this "simple goal": the knowledge gap is
// between user and world, which is what makes the goal equivalent to
// learning.
package learning

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// StallLimit is the number of rounds the world tolerates without an answer
// before the referee deems the prefix unacceptable: a silent user does not
// achieve the prediction goal.
const StallLimit = 8

// Goal is the compact prediction goal over the threshold concept class on
// the domain [0, M). Env.Choice selects the hidden concept.
type Goal struct {
	// M is the domain / concept-class size; 0 means 64.
	M int

	// Adversary selects the teacher-adversary query schedule (see
	// World.Adversary) instead of uniform random queries.
	Adversary bool
}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

func (g *Goal) m() int {
	if g.M <= 0 {
		return 64
	}
	return g.M
}

// Name implements goal.Goal.
func (g *Goal) Name() string { return "learning" }

// Kind implements goal.Goal.
func (g *Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (g *Goal) EnvChoices() int { return g.m() }

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(env goal.Env) goal.World {
	m := g.m()
	c := env.Choice % m
	if c < 0 {
		c += m
	}
	return &World{M: m, Concept: c, Adversary: g.Adversary}
}

// Acceptable implements goal.CompactGoal: a prefix is acceptable iff the
// user has answered at least one query, the most recent answer was correct,
// and the user is not stalling. Unacceptable prefixes are exactly the
// mistake (and stall) rounds, so "finitely many unacceptable prefixes" is
// "finitely many mistakes".
func (g *Goal) Acceptable(prefix comm.History) bool {
	st, ok := ParseState(prefix.Last())
	return ok && st.Answered > 0 && st.LastOK == 1 && st.Stall <= StallLimit
}

// AcceptableWorld implements goal.WorldJudge: the same predicate as
// Acceptable, judged on the live world's counters instead of a parsed
// snapshot.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if lw, ok := w.(*World); ok {
		return lw.answered > 0 && lw.lastOK == 1 && lw.stall <= StallLimit
	}
	st, ok := ParseState(w.Snapshot())
	return ok && st.Answered > 0 && st.LastOK == 1 && st.Stall <= StallLimit
}

// ForgivingGoal implements goal.Forgiving.
func (g *Goal) ForgivingGoal() bool { return true }

// Label is the threshold concept: concept c labels x as 1 iff x >= c.
func Label(concept, x int) int {
	if x >= concept {
		return 1
	}
	return 0
}

// State is the parsed form of the world's snapshot.
type State struct {
	Answered int
	Mistakes int
	// LastOK is 1 if the most recent answered query was correct, 0 if
	// it was a mistake, -1 if nothing has been answered.
	LastOK int
	// Stall is the number of rounds the current query has gone
	// unanswered.
	Stall int
}

// ParseState decodes a World snapshot.
func ParseState(ws comm.WorldState) (State, bool) {
	st := State{LastOK: -1}
	for _, part := range strings.Split(string(ws), ";") {
		key, val, found := strings.Cut(part, "=")
		if !found {
			return State{}, false
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return State{}, false
		}
		switch key {
		case "answered":
			st.Answered = n
		case "mistakes":
			st.Mistakes = n
		case "lastok":
			st.LastOK = n
		case "stall":
			st.Stall = n
		default:
			return State{}, false
		}
	}
	return st, true
}

// World poses queries and grades answers.
//
// World→user message: "Q <id> <x>|RES <previd> <ok|bad|none>".
// User→world answer: "P <id> <bit>". Answers to stale ids are ignored, so
// repeated answers never double-count.
type World struct {
	// M is the domain size; Concept the hidden threshold.
	M       int
	Concept int

	// Adversary switches the query schedule from uniform random to a
	// teacher-adversary: each query bisects the set of concepts still
	// consistent with the labels revealed so far, maximizing how long a
	// learner stays uncertain. Under this schedule the halving learner
	// is pushed toward its full ⌈log₂M⌉ mistake bound.
	Adversary bool

	r        *xrand.Rand
	id       int
	x        int
	answered int
	mistakes int
	lastOK   int // -1 none, 0 mistake, 1 correct
	stall    int
	lo, hi   int // concepts consistent with revealed labels

	query   comm.Message // cached announcement, rebuilt when (id, x, lastOK) changes
	queryID int
	queryX  int
	queryOK int
	buf     []byte       // reusable build buffer
	arena   msgbuf.Arena // backs the query strings (ids grow without bound)
	gen     uint64       // snapshot generation: bumps every round (stall is in the snapshot)
}

var _ goal.StateAppender = (*World)(nil)

var _ goal.StateVersioned = (*World)(nil)

var _ goal.World = (*World)(nil)

// Reset implements comm.Strategy.
func (w *World) Reset(r *xrand.Rand) {
	if r == nil {
		r = xrand.New(1)
	}
	w.r = r
	w.id = 1
	w.answered = 0
	w.mistakes = 0
	w.lastOK = -1
	w.stall = 0
	w.lo, w.hi = 0, w.domain()-1
	w.x = w.pick()
	w.query = ""
	w.arena.Reset()
}

// pick chooses the next query point per the configured schedule.
func (w *World) pick() int {
	if !w.Adversary {
		return w.r.Intn(w.domain())
	}
	if w.lo < w.hi {
		// Bisect the revealed-consistent concept interval: concepts
		// c <= x answer 1, so the midpoint splits [lo, hi] evenly.
		return (w.lo + w.hi) / 2
	}
	// Concept fully revealed: keep probing around the boundary (labels
	// are now determined for any consistent learner).
	if w.Concept > 0 && w.r.Bool() {
		return w.Concept - 1
	}
	return w.Concept % w.domain()
}

func (w *World) domain() int {
	if w.M <= 0 {
		return 64
	}
	return w.M
}

// Mistakes returns the mistake count so far (for experiment metrics).
func (w *World) Mistakes() int { return w.mistakes }

// Answered returns how many queries have been graded.
func (w *World) Answered() int { return w.answered }

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	w.stall++
	w.gen++ // stall is part of the snapshot, so every round is a new state
	if rest, ok := strings.CutPrefix(string(in.FromUser), "P "); ok {
		if idStr, bitStr, found := strings.Cut(rest, " "); found {
			id, err1 := strconv.Atoi(idStr)
			bit, err2 := strconv.Atoi(bitStr)
			if err1 == nil && err2 == nil && id == w.id && (bit == 0 || bit == 1) {
				w.answered++
				trueLabel := Label(w.Concept, w.x)
				if bit == trueLabel {
					w.lastOK = 1
				} else {
					w.lastOK = 0
					w.mistakes++
				}
				// Narrow the revealed-consistent interval: label 1
				// means c* <= x, label 0 means c* > x.
				if trueLabel == 1 {
					if w.x < w.hi {
						w.hi = w.x
					}
				} else if w.x+1 > w.lo {
					w.lo = w.x + 1
				}
				w.id++
				w.x = w.pick()
				w.stall = 0
			}
		}
	}
	// The announcement depends only on (id, x, lastOK): rebuild on
	// change, re-send the cached string while the user stalls.
	if w.query == "" || w.queryID != w.id || w.queryX != w.x || w.queryOK != w.lastOK {
		res := "none"
		switch w.lastOK {
		case 1:
			res = "ok"
		case 0:
			res = "bad"
		}
		w.buf = append(w.buf[:0], "Q "...)
		w.buf = msgbuf.AppendInt(w.buf, w.id)
		w.buf = append(w.buf, ' ')
		w.buf = msgbuf.AppendInt(w.buf, w.x)
		w.buf = append(w.buf, "|RES "...)
		w.buf = msgbuf.AppendInt(w.buf, w.id-1)
		w.buf = append(w.buf, ' ')
		w.buf = append(w.buf, res...)
		// Query ids grow without bound, so the string cannot be interned
		// or cached; the arena amortizes a run's worth of announcements
		// into one block allocation.
		w.query = comm.Message(w.arena.Append(w.buf))
		w.queryID, w.queryX, w.queryOK = w.id, w.x, w.lastOK
	}
	return comm.Outbox{ToUser: w.query}, nil
}

// StateGen implements goal.StateVersioned. The snapshot embeds the stall
// counter, which changes every round, so the generation is simply bumped
// once per Step.
func (w *World) StateGen() uint64 { return w.gen }

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	return comm.WorldState(w.AppendSnapshot(nil))
}

// AppendSnapshot implements goal.StateAppender:
// "answered=<n>;mistakes=<n>;lastok=<n>;stall=<n>", byte-identical to
// Snapshot.
func (w *World) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, "answered="...)
	dst = msgbuf.AppendInt(dst, w.answered)
	dst = append(dst, ";mistakes="...)
	dst = msgbuf.AppendInt(dst, w.mistakes)
	dst = append(dst, ";lastok="...)
	dst = msgbuf.AppendInt(dst, w.lastOK)
	dst = append(dst, ";stall="...)
	dst = msgbuf.AppendInt(dst, w.stall)
	return dst
}

// Query is the parsed form of a world announcement.
type Query struct {
	ID, X int
	ResID int
	Res   string // "ok", "bad" or "none"
}

// ParseQuery decodes a world→user message. It is on the per-round hot
// path of every learner, so it parses in place without scanning helpers
// that allocate, and it accepts exactly the canonical single-space
// format the world emits — not the whitespace variants a scanf-style
// parser would tolerate.
func ParseQuery(m comm.Message) (Query, bool) {
	qPart, resPart, found := strings.Cut(string(m), "|")
	if !found {
		return Query{}, false
	}
	var q Query
	rest, ok := strings.CutPrefix(qPart, "Q ")
	if !ok {
		return Query{}, false
	}
	idStr, xStr, found := strings.Cut(rest, " ")
	if !found {
		return Query{}, false
	}
	var err error
	if q.ID, err = strconv.Atoi(idStr); err != nil {
		return Query{}, false
	}
	if q.X, err = strconv.Atoi(xStr); err != nil {
		return Query{}, false
	}
	rest, ok = strings.CutPrefix(resPart, "RES ")
	if !ok {
		return Query{}, false
	}
	resIDStr, res, found := strings.Cut(rest, " ")
	if !found {
		return Query{}, false
	}
	if q.ResID, err = strconv.Atoi(resIDStr); err != nil {
		return Query{}, false
	}
	q.Res = res
	if q.Res != "ok" && q.Res != "bad" && q.Res != "none" {
		return Query{}, false
	}
	return q, true
}

// answerBuilder builds the "P <id> <bit>" answers a learner sends, one
// per graded query. Ids grow without bound, so the strings cannot be
// cached; the arena packs a whole execution's answers into one block
// allocation instead of one per answer.
type answerBuilder struct {
	arena msgbuf.Arena
	buf   []byte
}

func (b *answerBuilder) reset() { b.arena.Reset() }

func (b *answerBuilder) msg(id, bit int) comm.Message {
	b.buf = append(b.buf[:0], "P "...)
	b.buf = msgbuf.AppendInt(b.buf, id)
	b.buf = append(b.buf, ' ')
	b.buf = msgbuf.AppendInt(b.buf, bit)
	return comm.Message(b.arena.Append(b.buf))
}

// idRing tracks membership for a sliding set of query ids without a map:
// ids are assigned by the world in increasing order and only ever asked
// about while recent (a grading always references the previous query),
// so a fixed-size direct-mapped ring — slot id&mask holds the newest id
// in its residue class — answers every membership query a map would,
// while Reset is a memclr and inserts never allocate.
type idRing struct {
	ids [idRingSize]int
	set [idRingSize]bool
}

// idRingSize bounds how far apart a recorded id and its membership query
// may be; gradings reference ids 1–2 behind the newest, far inside it.
const idRingSize = 64

func (r *idRing) reset() {
	r.set = [idRingSize]bool{}
}

func (r *idRing) add(id int) int {
	slot := id & (idRingSize - 1)
	r.ids[slot] = id
	r.set[slot] = true
	return slot
}

func (r *idRing) has(id int) (int, bool) {
	slot := id & (idRingSize - 1)
	return slot, r.set[slot] && r.ids[slot] == id
}

func (r *idRing) remove(slot int) { r.set[slot] = false }

// ThresholdUser predicts with one fixed threshold concept — candidate
// strategy c of the enumeration, and (alone) the fixed-protocol baseline.
type ThresholdUser struct {
	Concept int

	lastID int
	ans    answerBuilder
}

var _ comm.Strategy = (*ThresholdUser)(nil)

// Reset implements comm.Strategy.
func (u *ThresholdUser) Reset(*xrand.Rand) {
	u.lastID = 0
	u.ans.reset()
}

// Step implements comm.Strategy.
func (u *ThresholdUser) Step(in comm.Inbox) (comm.Outbox, error) {
	q, ok := ParseQuery(in.FromWorld)
	if !ok || q.ID == u.lastID {
		return comm.Outbox{}, nil
	}
	u.lastID = q.ID
	return comm.Outbox{ToWorld: u.ans.msg(q.ID, Label(u.Concept, q.X))}, nil
}

// Enum enumerates the M threshold candidates in order; paired with
// MistakeSense it forms the generic (conservative-learner) universal user.
func Enum(m int) enumerate.Enumerator {
	return enumerate.FromFunc(fmt.Sprintf("thresholds(%d)", m), m, func(i int) comm.Strategy {
		return &ThresholdUser{Concept: i}
	})
}

// MistakeSense gives a negative indication exactly when the world first
// grades one of the *current pairing's own* answers as a mistake. The world
// repeats its last grading every round, so the sense tracks which query ids
// this pairing answered (visible in the user's own outbox) and penalizes
// each graded mistake once. It is safe — a candidate that keeps erring
// keeps receiving negative indications — and viable, since the true concept
// never errs.
func MistakeSense() sensing.Sense { return &mistakeSense{} }

// mistakeSense keeps its answered-id set in an idRing rather than a map:
// the world grades a query within a round or two of its answer, so
// membership is only ever asked of recent ids, and the ring makes both
// the per-answer insert and the per-switch Reset allocation-free.
type mistakeSense struct {
	answered idRing
}

var _ sensing.Sense = (*mistakeSense)(nil)

func (s *mistakeSense) Reset() { s.answered.reset() }

func (s *mistakeSense) Observe(rv comm.RoundView) bool {
	if rest, ok := strings.CutPrefix(string(rv.Out.ToWorld), "P "); ok {
		if idStr, bitStr, found := strings.Cut(rest, " "); found {
			_, bitErr := strconv.Atoi(bitStr)
			if id, err := strconv.Atoi(idStr); err == nil && bitErr == nil {
				s.answered.add(id)
			}
		}
	}
	q, ok := ParseQuery(rv.In.FromWorld)
	if !ok {
		return true // no grading information this round
	}
	if slot, have := s.answered.has(q.ResID); have && q.Res == "bad" {
		s.answered.remove(slot) // penalize each mistake once
		return false
	}
	return true
}

// HalvingUser is the efficient universal user: binary search over the
// threshold class, mistake bound ⌈log2 M⌉. It tracks the version-space
// interval [lo, hi] of concepts consistent with all feedback.
type HalvingUser struct {
	// M is the domain size; 0 means 64.
	M int

	lo, hi  int
	lastID  int
	pending idRing             // ids answered but not yet graded
	answers [idRingSize]answer // what we answered, parallel to pending's slots
	ans     answerBuilder
}

type answer struct {
	x   int
	bit int
}

var _ comm.Strategy = (*HalvingUser)(nil)

// Reset implements comm.Strategy.
func (u *HalvingUser) Reset(*xrand.Rand) {
	m := u.M
	if m <= 0 {
		m = 64
	}
	u.lo, u.hi = 0, m-1
	u.lastID = 0
	u.pending.reset()
	u.ans.reset()
}

// Step implements comm.Strategy.
func (u *HalvingUser) Step(in comm.Inbox) (comm.Outbox, error) {
	q, ok := ParseQuery(in.FromWorld)
	if !ok {
		return comm.Outbox{}, nil
	}

	// Apply feedback for the query we answered previously: narrow the
	// version space to concepts consistent with the revealed label.
	if slot, have := u.pending.has(q.ResID); have && q.Res != "none" {
		prev := u.answers[slot]
		trueBit := prev.bit
		if q.Res == "bad" {
			trueBit = 1 - prev.bit
		}
		if trueBit == 1 {
			// Label(c, x) = 1 ⇒ c <= x.
			if prev.x < u.hi {
				u.hi = prev.x
			}
		} else {
			// Label(c, x) = 0 ⇒ c > x.
			if prev.x+1 > u.lo {
				u.lo = prev.x + 1
			}
		}
		if u.lo > u.hi {
			// Inconsistent feedback (cannot happen with an honest
			// world); restart the search rather than corrupting
			// predictions.
			m := u.M
			if m <= 0 {
				m = 64
			}
			u.lo, u.hi = 0, m-1
		}
		u.pending.remove(slot)
	}

	if q.ID == u.lastID {
		return comm.Outbox{}, nil
	}
	u.lastID = q.ID

	// Majority vote of the version space [lo, hi]: concepts c <= x vote
	// 1. Predict 1 iff at least half the interval is <= x.
	mid := (u.lo + u.hi) / 2
	bit := 0
	if q.X >= mid {
		bit = 1
	}
	u.answers[u.pending.add(q.ID)] = answer{x: q.X, bit: bit}
	return comm.Outbox{ToWorld: u.ans.msg(q.ID, bit)}, nil
}
