package delegation

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestFlakyServerCorruptsWitnesses(t *testing.T) {
	t.Parallel()

	s := &FlakyServer{P: 1}
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{FromUser: "SOLVE 3,5,8;11"})
	if err != nil {
		t.Fatal(err)
	}
	// Honest witness is mask 5 (3+8); corruption flips the lowest bit.
	if out.ToUser != "WITNESS 4" {
		t.Fatalf("corrupted witness = %q, want WITNESS 4", out.ToUser)
	}

	honest := &FlakyServer{P: 0}
	honest.Reset(xrand.New(1))
	out, err = honest.Step(comm.Inbox{FromUser: "SOLVE 3,5,8;11"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "WITNESS 5" {
		t.Fatalf("p=0 server corrupted: %q", out.ToUser)
	}
}

func TestFlakyServerIntermediateRate(t *testing.T) {
	t.Parallel()

	s := &FlakyServer{P: 0.5}
	s.Reset(xrand.New(9))
	corrupted := 0
	const n = 400
	for i := 0; i < n; i++ {
		out, err := s.Step(comm.Inbox{FromUser: "SOLVE 3,5,8;11"})
		if err != nil {
			t.Fatal(err)
		}
		if out.ToUser == "WITNESS 4" {
			corrupted++
		}
	}
	if corrupted < n/4 || corrupted > 3*n/4 {
		t.Fatalf("p=0.5 corrupted %d/%d", corrupted, n)
	}
}

func TestSenseRejectsFlakyAttempts(t *testing.T) {
	t.Parallel()

	// A naive candidate submits whatever it gets; with P=1 every attempt
	// carries a bad witness and the sense must reject it.
	g := &Goal{N: 10}
	w := g.NewWorld(goal.Env{Choice: 2})
	usr := &Candidate{D: dialectIdentity()}
	srv := &FlakyServer{P: 1}
	res, err := system.Run(usr, srv, w, system.Config{MaxRounds: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("candidate should have halted on the (bad) witness")
	}
	if g.Achieved(res.History) {
		t.Fatal("corrupted witness achieved the goal?!")
	}
	if sensing.Replay(Sense(), res.View) {
		t.Fatal("sense accepted a corrupted witness")
	}
}

func dialectIdentity() dialect0 { return dialect0{} }

// dialect0 is a minimal identity dialect to avoid importing the dialect
// package's constructor in this test.
type dialect0 struct{}

func (dialect0) ID() int                            { return 0 }
func (dialect0) Name() string                       { return "identity" }
func (dialect0) Encode(m comm.Message) comm.Message { return m }
func (dialect0) Decode(m comm.Message) comm.Message { return m }

func TestFiniteRunnerSurvivesFlakySolver(t *testing.T) {
	t.Parallel()

	fam := mkFam(t, 4)
	g := &Goal{N: 10}
	fr := &universal.FiniteRunner{Enum: Enum(fam), Sense: Sense()}
	res, err := fr.Run(
		func() comm.Strategy {
			return server.Dialected(&FlakyServer{P: 0.5}, fam.Dialect(2))
		},
		func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
		3,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatal("universal search should survive a flaky solver")
	}
	if !g.Achieved(res.Final.History) {
		t.Fatal("referee rejected final history")
	}
	// Safety: no accepted attempt may carry a bad witness — the referee
	// above is the check; also every verdict=false attempt must not
	// have achieved.
	for _, a := range res.Attempts {
		if a.Verdict && a.Index != 2 {
			t.Fatalf("accepted candidate %d for a dialect-2 server", a.Index)
		}
	}
}

func TestVerifyingCandidateFiltersBadWitnesses(t *testing.T) {
	t.Parallel()

	g := &Goal{N: 10}
	w := g.NewWorld(goal.Env{Choice: 2})
	usr := &VerifyingCandidate{D: dialectIdentity()}
	srv := &FlakyServer{P: 0.6}
	res, err := system.Run(usr, srv, w, system.Config{MaxRounds: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("verifying candidate never halted")
	}
	if !g.Achieved(res.History) {
		t.Fatalf("verifying candidate submitted a bad witness: %q", res.History.Last())
	}
	if usr.Rejected() == 0 {
		t.Fatal("expected at least one rejected witness at P=0.6")
	}
}

func TestVerifyingBeatsNaiveUnderFlakiness(t *testing.T) {
	t.Parallel()

	// Whole-search cost: the verifying candidate class needs fewer
	// attempts than the naive one against the same flaky solver,
	// because bad witnesses cost an in-attempt retry instead of a whole
	// failed attempt.
	fam := mkFam(t, 4)
	g := &Goal{N: 10}
	search := func(enum interface {
		Name() string
		Size() int
		Strategy(int) comm.Strategy
	}, seed uint64) int {
		fr := &universal.FiniteRunner{Enum: enum, Sense: Sense()}
		res, err := fr.Run(
			func() comm.Strategy {
				return server.Dialected(&FlakyServer{P: 0.85}, fam.Dialect(3))
			},
			func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
			seed,
		)
		if err != nil || !res.Succeeded {
			t.Fatalf("search failed: err=%v", err)
		}
		return res.TotalRounds
	}
	naive, verifying := 0, 0
	for seed := uint64(1); seed <= 10; seed++ {
		naive += search(Enum(fam), seed)
		verifying += search(VerifyingEnum(fam), seed)
	}
	if verifying >= naive {
		t.Fatalf("verifying class (%d total rounds) should beat naive (%d) at P=0.85",
			verifying, naive)
	}
}

func TestVerifyingCandidateStringsSafety(t *testing.T) {
	t.Parallel()

	// The verifying candidate must never submit an answer that fails
	// its own check, even when fed garbage witnesses.
	usr := &VerifyingCandidate{D: dialectIdentity()}
	usr.Reset(xrand.New(1))
	if _, err := usr.Step(comm.Inbox{FromWorld: "INSTANCE 3,5,8;11"}); err != nil {
		t.Fatal(err)
	}
	out, err := usr.Step(comm.Inbox{FromServer: "WITNESS 4"}) // invalid (5 alone = 8? no: mask4 selects weight 8 → 8 ≠ 11)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(string(out.ToWorld), "ANSWER") {
		t.Fatalf("submitted unverified witness: %+v", out)
	}
	if usr.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", usr.Rejected())
	}
}
