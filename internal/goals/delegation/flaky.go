package delegation

import (
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/xrand"
)

// FlakyServer wraps the solver so that each witness it returns is
// corrupted with probability P — a buggy or overloaded component. The
// finite-goal machinery absorbs it: the verification-based sensing rejects
// corrupted attempts (safety), and the dovetailed retries eventually catch
// an honest reply, so the flaky solver remains helpful, just slower.
type FlakyServer struct {
	// P is the corruption probability in [0, 1].
	P float64

	inner Server
	r     *xrand.Rand
}

var _ comm.Strategy = (*FlakyServer)(nil)

// Reset implements comm.Strategy.
func (s *FlakyServer) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if r != nil {
		s.r = r.Split()
	} else {
		s.r = xrand.New(0)
	}
}

// Step implements comm.Strategy.
func (s *FlakyServer) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	rest, ok := strings.CutPrefix(string(out.ToUser), rspWitness+" ")
	if !ok || s.r.Float64() >= s.P {
		return out, nil
	}
	mask, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return out, nil
	}
	// Corrupt the witness by flipping its lowest bit: almost surely no
	// longer a valid subset for the target.
	out.ToUser = comm.Message(rspWitness + " " + strconv.FormatUint(mask^1, 10))
	return out, nil
}

// VerifyingCandidate is the hardened delegation user: it verifies each
// received witness locally and only submits (and halts on) a correct one,
// re-querying the server otherwise. Against flaky solvers this converts
// wasted whole attempts into cheap in-attempt retries — an instance of the
// paper's closing remark that special cases admit better performance than
// the generic enumeration.
type VerifyingCandidate struct {
	// D is the dialect this candidate speaks to the server.
	D dialect.Dialect

	instance  string
	submitted bool
	halted    bool
	elapsed   int
	rejected  int
}

var (
	_ comm.Strategy = (*VerifyingCandidate)(nil)
	_ comm.Halter   = (*VerifyingCandidate)(nil)
)

// Reset implements comm.Strategy.
func (c *VerifyingCandidate) Reset(*xrand.Rand) {
	c.instance = ""
	c.submitted = false
	c.halted = false
	c.elapsed = 0
	c.rejected = 0
}

// Rejected returns how many bad witnesses this candidate filtered out.
func (c *VerifyingCandidate) Rejected() int { return c.rejected }

// Step implements comm.Strategy.
func (c *VerifyingCandidate) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { c.elapsed++ }()

	if rest, ok := strings.CutPrefix(string(in.FromWorld), "INSTANCE "); ok {
		c.instance = rest
	}
	if c.submitted {
		c.halted = true
		return comm.Outbox{}, nil
	}

	plain := c.D.Decode(in.FromServer)
	if rest, ok := strings.CutPrefix(string(plain), rspWitness+" "); ok && c.instance != "" {
		mask, err := strconv.ParseUint(rest, 10, 64)
		if err == nil {
			ins, insOK := ParseInstance(c.instance)
			if insOK && ins.Verify(mask) {
				c.submitted = true
				return comm.Outbox{ToWorld: comm.Message("ANSWER " + rest)}, nil
			}
			// Bad witness: count it and fall through to re-query.
			c.rejected++
		}
	}

	if c.instance == "" {
		return comm.Outbox{}, nil
	}
	if c.elapsed%2 == 0 {
		return comm.Outbox{
			ToServer: c.D.Encode(comm.Message(cmdSolve + " " + c.instance)),
		}, nil
	}
	return comm.Outbox{}, nil
}

// Halted implements comm.Halter.
func (c *VerifyingCandidate) Halted() bool { return c.halted }

// VerifyingEnum enumerates one VerifyingCandidate per dialect.
func VerifyingEnum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("delegation-verifying/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &VerifyingCandidate{D: fam.Dialect(i)}
	})
}
