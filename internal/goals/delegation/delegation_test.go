package delegation

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestGenerateSolvable(t *testing.T) {
	t.Parallel()

	r := xrand.New(5)
	for i := 0; i < 50; i++ {
		ins := Generate(10, r)
		mask, ok := ins.Solve()
		if !ok {
			t.Fatalf("generated instance unsolvable: %+v", ins)
		}
		if !ins.Verify(mask) {
			t.Fatalf("solver's witness fails verification: %+v mask=%d", ins, mask)
		}
	}
}

func TestGenerateClampsN(t *testing.T) {
	t.Parallel()

	r := xrand.New(1)
	if got := len(Generate(0, r).Weights); got != 1 {
		t.Fatalf("n=0 → %d weights", got)
	}
	if got := len(Generate(100, r).Weights); got != 62 {
		t.Fatalf("n=100 → %d weights", got)
	}
}

func TestVerify(t *testing.T) {
	t.Parallel()

	ins := Instance{Weights: []int64{3, 5, 8}, Target: 11}
	if !ins.Verify(0b101) { // 3 + 8
		t.Fatal("correct witness rejected")
	}
	if ins.Verify(0b011) { // 3 + 5 = 8
		t.Fatal("wrong witness accepted")
	}
	if ins.Verify(0b1000) { // out of range bit
		t.Fatal("out-of-range mask accepted")
	}
}

func TestSolveUnsolvable(t *testing.T) {
	t.Parallel()

	ins := Instance{Weights: []int64{2, 4, 6}, Target: 5}
	if _, ok := ins.Solve(); ok {
		t.Fatal("unsolvable instance solved")
	}
}

func TestSolveRejectsEmptyWitnessTargetZero(t *testing.T) {
	t.Parallel()

	// Target 0 with the empty subset only: Solve demands a non-empty
	// witness, so it must report failure rather than mask 0.
	ins := Instance{Weights: []int64{1, 2}, Target: 0}
	if _, ok := ins.Solve(); ok {
		t.Fatal("empty witness accepted")
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, n uint8) bool {
		r := xrand.New(seed)
		ins := Generate(int(n%16)+1, r)
		back, ok := ParseInstance(ins.Encode())
		if !ok || back.Target != ins.Target || len(back.Weights) != len(ins.Weights) {
			return false
		}
		for i := range ins.Weights {
			if back.Weights[i] != ins.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseInstanceMalformed(t *testing.T) {
	t.Parallel()

	for _, s := range []string{"", "1,2", "1,2;x", "a,b;3", ";5", "1,,2;3"} {
		if _, ok := ParseInstance(s); ok {
			t.Errorf("ParseInstance(%q) accepted", s)
		}
	}
}

func TestWorldVerifiesAnswers(t *testing.T) {
	t.Parallel()

	w := &World{instance: Instance{Weights: []int64{3, 5, 8}, Target: 11}}
	w.Reset(xrand.New(1))

	out, err := w.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != comm.Message("INSTANCE 3,5,8;11") {
		t.Fatalf("announcement = %q", out.ToUser)
	}

	if _, err := w.Step(comm.Inbox{FromUser: "ANSWER 3"}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "answered=1;solved=0" {
		t.Fatalf("wrong answer snapshot = %q", w.Snapshot())
	}

	if _, err := w.Step(comm.Inbox{FromUser: "ANSWER 5"}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "answered=1;solved=1" {
		t.Fatalf("correct answer snapshot = %q", w.Snapshot())
	}
}

func TestServerSolvesOwnProtocol(t *testing.T) {
	t.Parallel()

	s := &Server{}
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{FromUser: "SOLVE 3,5,8;11"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "WITNESS 5" { // mask 0b101 = 5 selects 3+8
		t.Fatalf("witness = %q", out.ToUser)
	}
	// Garbage and unsolvable instances are ignored.
	for _, msg := range []comm.Message{"SOLVE junk", "SOLVE 2,4;5", "hello"} {
		out, err := s.Step(comm.Inbox{FromUser: msg})
		if err != nil {
			t.Fatal(err)
		}
		if out != (comm.Outbox{}) {
			t.Fatalf("message %q produced output %+v", msg, out)
		}
	}
}

func mkFam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewWordFamily(Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestOracleCandidateEndToEnd(t *testing.T) {
	t.Parallel()

	fam := mkFam(t, 4)
	g := &Goal{N: 10}
	w := g.NewWorld(goal.Env{Choice: 2})
	usr := &Candidate{D: fam.Dialect(3)}
	srv := server.Dialected(&Server{}, fam.Dialect(3))
	res, err := system.Run(usr, srv, w, system.Config{MaxRounds: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("candidate never halted")
	}
	if !g.Achieved(res.History) {
		t.Fatalf("goal not achieved; last state %q", res.History.Last())
	}
}

func TestMismatchedCandidateNeverHalts(t *testing.T) {
	t.Parallel()

	fam := mkFam(t, 4)
	g := &Goal{N: 10}
	w := g.NewWorld(goal.Env{Choice: 2})
	usr := &Candidate{D: fam.Dialect(1)}
	srv := server.Dialected(&Server{}, fam.Dialect(2))
	res, err := system.Run(usr, srv, w, system.Config{MaxRounds: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("mismatched candidate halted")
	}
	if g.Achieved(res.History) {
		t.Fatal("goal achieved despite mismatch")
	}
}

func TestUniversalFiniteRunnerAllDialects(t *testing.T) {
	t.Parallel()

	const n = 6
	fam := mkFam(t, n)
	g := &Goal{N: 10}
	for srvIdx := 0; srvIdx < n; srvIdx++ {
		srvIdx := srvIdx
		t.Run(fmt.Sprintf("dialect-%d", srvIdx), func(t *testing.T) {
			t.Parallel()
			fr := &universal.FiniteRunner{Enum: Enum(fam), Sense: Sense()}
			res, err := fr.Run(
				func() comm.Strategy { return server.Dialected(&Server{}, fam.Dialect(srvIdx)) },
				func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
				9,
			)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Succeeded {
				t.Fatal("finite search failed")
			}
			if res.Index != srvIdx {
				t.Fatalf("found candidate %d, want %d", res.Index, srvIdx)
			}
			if !g.Achieved(res.Final.History) {
				t.Fatal("referee rejects final history")
			}
		})
	}
}

func TestSenseSafety(t *testing.T) {
	t.Parallel()

	// A candidate that submits a wrong answer and halts must get a
	// negative replayed verdict.
	g := &Goal{N: 8}
	w := g.NewWorld(goal.Env{Choice: 3})
	liar := &wrongAnswerUser{}
	res, err := system.Run(liar, server.Obstinate(), w, system.Config{MaxRounds: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("liar never halted")
	}
	if g.Achieved(res.History) {
		t.Fatal("wrong answer achieved the goal?!")
	}
	if sensing.Replay(Sense(), res.View) {
		t.Fatal("sense accepted a wrong answer — safety violated")
	}
}

// wrongAnswerUser answers 0 (never a valid witness) and halts.
type wrongAnswerUser struct {
	sent   bool
	halted bool
}

func (u *wrongAnswerUser) Reset(*xrand.Rand) { u.sent, u.halted = false, false }

func (u *wrongAnswerUser) Step(in comm.Inbox) (comm.Outbox, error) {
	if u.sent {
		u.halted = true
		return comm.Outbox{}, nil
	}
	if !in.FromWorld.Empty() {
		u.sent = true
		return comm.Outbox{ToWorld: "ANSWER 0"}, nil
	}
	return comm.Outbox{}, nil
}

func (u *wrongAnswerUser) Halted() bool { return u.halted }

func TestGoalEnvDeterminism(t *testing.T) {
	t.Parallel()

	g := &Goal{N: 10}
	w1, _ := g.NewWorld(goal.Env{Choice: 4}).(*World)
	w2, _ := g.NewWorld(goal.Env{Choice: 4}).(*World)
	if w1.Instance().Encode() != w2.Instance().Encode() {
		t.Fatal("same env produced different instances")
	}
	w3, _ := g.NewWorld(goal.Env{Choice: 5}).(*World)
	if w1.Instance().Encode() == w3.Instance().Encode() {
		t.Fatal("different envs produced identical instances")
	}
}
