package delegation

import (
	"repro/internal/xrand"
	"strconv"
	"testing"
)

func FuzzParseInstance(f *testing.F) {
	f.Add("3,5,8;11")
	f.Add("")
	f.Add(";")
	f.Add("1;2;3")
	f.Add("9223372036854775807;1")
	f.Add("-1,-2;-3")
	f.Fuzz(func(t *testing.T, s string) {
		ins, ok := ParseInstance(s)
		if !ok {
			return
		}
		// Anything accepted must round-trip through Encode/Parse.
		back, ok2 := ParseInstance(ins.Encode())
		if !ok2 {
			t.Fatalf("re-parse of %q failed", ins.Encode())
		}
		if back.Target != ins.Target || len(back.Weights) != len(ins.Weights) {
			t.Fatalf("round trip changed instance: %+v vs %+v", ins, back)
		}
		// Verify must not panic on arbitrary masks.
		_ = ins.Verify(0)
		_ = ins.Verify(^uint64(0))
	})
}

func FuzzVerifySolveAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(99), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := int(nRaw)%14 + 1
		ins := Generate(n, xrand.New(seed))
		mask, ok := ins.Solve()
		if !ok {
			t.Fatalf("generated instance unsolvable: %+v", ins)
		}
		if !ins.Verify(mask) {
			t.Fatalf("Solve/Verify disagree on %+v mask=%d", ins, mask)
		}
	})
}

func FuzzWitnessMaskParsing(f *testing.F) {
	f.Add("0")
	f.Add("18446744073709551615")
	f.Add("-1")
	f.Add("abc")
	f.Fuzz(func(t *testing.T, s string) {
		// The candidate's mask parsing path must never panic and must
		// agree with strconv on validity.
		_, err := strconv.ParseUint(s, 10, 64)
		_ = err
	})
}
