// Package delegation implements a finite goal of delegating computation,
// the example that started the goal-oriented line of work (Juba & Sudan,
// STOC 2008). The original result delegates a PSPACE-complete function;
// what the theory actually exercises is the asymmetry "the server can find
// what the user can only verify". We realize that asymmetry at laptop scale
// with NP-search instances (subset-sum witnesses): the server solves, the
// user verifies in linear time (see DESIGN.md §4 for the substitution
// argument).
//
// The cast:
//
//   - World: poses a subset-sum instance and accepts an answer; the finite
//     goal is achieved iff the user halts after submitting a correct
//     witness.
//   - Server: a solver speaking an unknown dialect.
//   - User: candidate i relays the instance to the server in dialect i,
//     decodes the reply, submits the witness and halts. The finite-goal
//     universal user (universal.FiniteRunner) dovetails candidates
//     Levin-style; sensing = local verification of the submitted witness,
//     which is safe by construction.
package delegation

import (
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// Protocol vocabulary.
const (
	cmdSolve   = "SOLVE"
	rspWitness = "WITNESS"
)

// Vocabulary returns the solver protocol's verbs for word-dialect families.
func Vocabulary() []string { return []string{cmdSolve, rspWitness} }

// Instance is a subset-sum instance: find a subset of Weights summing to
// Target. Instances produced by Generate always have a solution.
type Instance struct {
	Weights []int64
	Target  int64
}

// Generate produces a solvable instance with n weights using the given
// generator: weights are uniform in [1, 100] and the target is the sum of a
// random non-empty subset.
func Generate(n int, r *xrand.Rand) Instance {
	if n < 1 {
		n = 1
	}
	if n > 62 {
		n = 62
	}
	ins := Instance{Weights: make([]int64, n)}
	for i := range ins.Weights {
		ins.Weights[i] = int64(r.Intn(100) + 1)
	}
	mask := uint64(0)
	for mask == 0 {
		mask = r.Uint64() & ((1 << uint(n)) - 1)
	}
	ins.Target = sumOf(ins.Weights, mask)
	return ins
}

func sumOf(ws []int64, mask uint64) int64 {
	var s int64
	for i, w := range ws {
		if mask&(1<<uint(i)) != 0 {
			s += w
		}
	}
	return s
}

// Verify reports whether mask selects a subset of the instance's weights
// summing exactly to the target. This is the user's (efficient) check.
func (ins Instance) Verify(mask uint64) bool {
	if len(ins.Weights) < 64 && mask >= 1<<uint(len(ins.Weights)) {
		return false
	}
	return sumOf(ins.Weights, mask) == ins.Target
}

// Solve finds a witness mask by dynamic programming over reachable sums, or
// reports ok=false if the instance has no solution. This is the server's
// (expensive) search.
func (ins Instance) Solve() (mask uint64, ok bool) {
	// reach maps a reachable sum to some mask achieving it.
	reach := map[int64]uint64{0: 0}
	for i, w := range ins.Weights {
		// Iterate over a snapshot so newly added sums don't cascade
		// within one item (each item used at most once).
		sums := make([]int64, 0, len(reach))
		for s := range reach {
			sums = append(sums, s)
		}
		for _, s := range sums {
			ns := s + w
			if _, seen := reach[ns]; !seen {
				reach[ns] = reach[s] | 1<<uint(i)
			}
		}
		if m, done := reach[ins.Target]; done && m != 0 {
			return m, true
		}
	}
	m, ok := reach[ins.Target]
	if !ok || m == 0 {
		return 0, false
	}
	return m, true
}

// Encode serializes the instance as "w1,w2,...,wn;target".
func (ins Instance) Encode() string {
	parts := make([]string, len(ins.Weights))
	for i, w := range ins.Weights {
		parts[i] = strconv.FormatInt(w, 10)
	}
	return strings.Join(parts, ",") + ";" + strconv.FormatInt(ins.Target, 10)
}

// ParseInstance inverts Encode. ok is false on malformed input.
func ParseInstance(s string) (Instance, bool) {
	weightsPart, targetPart, found := strings.Cut(s, ";")
	if !found {
		return Instance{}, false
	}
	target, err := strconv.ParseInt(targetPart, 10, 64)
	if err != nil {
		return Instance{}, false
	}
	fields := strings.Split(weightsPart, ",")
	ins := Instance{Weights: make([]int64, 0, len(fields)), Target: target}
	for _, f := range fields {
		w, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Instance{}, false
		}
		ins.Weights = append(ins.Weights, w)
	}
	return ins, true
}

// Goal is the finite delegation goal. Env.Choice seeds the instance.
type Goal struct {
	// N is the number of weights per instance; 0 means 12.
	N int
	// Instances is the number of distinct environments; 0 means 8.
	Instances int
}

var _ goal.FiniteGoal = (*Goal)(nil)

func (g *Goal) n() int {
	if g.N <= 0 {
		return 12
	}
	return g.N
}

// Name implements goal.Goal.
func (g *Goal) Name() string { return "delegation" }

// Kind implements goal.Goal.
func (g *Goal) Kind() goal.Kind { return goal.KindFinite }

// EnvChoices implements goal.Goal.
func (g *Goal) EnvChoices() int {
	if g.Instances <= 0 {
		return 8
	}
	return g.Instances
}

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(env goal.Env) goal.World {
	r := xrand.New(uint64(env.Choice)*0x9E3779B97F4A7C15 + env.Seed + 1)
	return &World{instance: Generate(g.n(), r)}
}

// Achieved implements goal.FiniteGoal: the history is acceptable iff the
// world verified a correct answer.
func (g *Goal) Achieved(h comm.History) bool {
	return strings.Contains(string(h.Last()), "solved=1")
}

// World poses the instance and verifies answers.
//
// World→user message: "INSTANCE <encoded>". User→world answer:
// "ANSWER <mask>". Snapshot: "answered=<0|1>;solved=<0|1>".
type World struct {
	instance Instance
	answered bool
	solved   bool

	announce comm.Message // cached "INSTANCE <encoded>" (instance is fixed per world)
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Instance returns the posed instance (for tests and examples).
func (w *World) Instance() Instance { return w.instance }

// StateGen implements goal.StateVersioned: the world has four states, so
// the generation is the state's index.
func (w *World) StateGen() uint64 {
	return uint64(b2i(w.answered))<<1 | uint64(b2i(w.solved))
}

// Reset implements comm.Strategy.
func (w *World) Reset(*xrand.Rand) {
	w.answered = false
	w.solved = false
}

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if rest, ok := strings.CutPrefix(string(in.FromUser), "ANSWER "); ok {
		w.answered = true
		if mask, err := strconv.ParseUint(rest, 10, 64); err == nil && w.instance.Verify(mask) {
			w.solved = true
		}
	}
	if w.announce == "" {
		w.announce = comm.Message("INSTANCE " + w.instance.Encode())
	}
	return comm.Outbox{ToUser: w.announce}, nil
}

// delegationStates holds the four snapshot encodings; the world's state
// space is tiny, so snapshots never allocate.
var delegationStates = [2][2]comm.WorldState{
	{"answered=0;solved=0", "answered=0;solved=1"},
	{"answered=1;solved=0", "answered=1;solved=1"},
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	return delegationStates[b2i(w.answered)][b2i(w.solved)]
}

// AppendSnapshot implements goal.StateAppender, byte-identical to
// Snapshot.
func (w *World) AppendSnapshot(dst []byte) []byte {
	return append(dst, delegationStates[b2i(w.answered)][b2i(w.solved)]...)
}

// Server is the solver's native protocol: on "SOLVE <instance>" it replies
// "WITNESS <mask>" (or stays silent on unsolvable/malformed instances).
// Wrap with server.Dialected to build the class of foreign-protocol
// solvers.
//
// Step is a pure function of the incoming command; the single-command
// memo spares re-running the witness search when an impatient user
// re-sends the same SOLVE while the previous reply is in flight.
type Server struct {
	memo msgbuf.Memo1[comm.Message, comm.Outbox]
}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy.
func (s *Server) Reset(*xrand.Rand) { s.memo.Reset() }

// Step implements comm.Strategy.
func (s *Server) Step(in comm.Inbox) (comm.Outbox, error) {
	rest, ok := strings.CutPrefix(string(in.FromUser), cmdSolve+" ")
	if !ok {
		return comm.Outbox{}, nil
	}
	if out, ok := s.memo.Get(in.FromUser); ok {
		return out, nil
	}
	out := comm.Outbox{}
	if ins, ok := ParseInstance(rest); ok {
		if mask, ok := ins.Solve(); ok {
			out.ToUser = comm.Message(rspWitness + " " + strconv.FormatUint(mask, 10))
		}
	}
	s.memo.Put(in.FromUser, out)
	return out, nil
}

// Candidate is the dialect-d delegation user: relay the instance to the
// server, decode the witness, submit it to the world, halt.
type Candidate struct {
	// D is the dialect this candidate speaks to the server.
	D dialect.Dialect

	instance  string
	submitted bool
	halted    bool
	elapsed   int
	solveCmd  msgbuf.Memo1[string, comm.Message] // encoded "SOLVE <instance>", built once per instance
}

var (
	_ comm.Strategy = (*Candidate)(nil)
	_ comm.Halter   = (*Candidate)(nil)
)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) {
	c.instance = ""
	c.submitted = false
	c.halted = false
	c.elapsed = 0
}

// Step implements comm.Strategy.
func (c *Candidate) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { c.elapsed++ }()

	if rest, ok := strings.CutPrefix(string(in.FromWorld), "INSTANCE "); ok {
		c.instance = rest
	}

	// After submitting, wait one round (so the world processes the
	// answer) and halt.
	if c.submitted {
		c.halted = true
		return comm.Outbox{}, nil
	}

	// A decodable witness ends the conversation with the server.
	plain := c.D.Decode(in.FromServer)
	if rest, ok := strings.CutPrefix(string(plain), rspWitness+" "); ok {
		if _, err := strconv.ParseUint(rest, 10, 64); err == nil {
			c.submitted = true
			return comm.Outbox{ToWorld: comm.Message("ANSWER " + rest)}, nil
		}
	}

	if c.instance == "" {
		return comm.Outbox{}, nil
	}
	// (Re)issue the solve request every other round; the instance is
	// fixed per execution, so the encoded request is built once
	// (dialects are pure).
	if c.elapsed%2 == 0 {
		cmd, ok := c.solveCmd.Get(c.instance)
		if !ok {
			cmd = c.D.Encode(comm.Message(cmdSolve + " " + c.instance))
			c.solveCmd.Put(c.instance, cmd)
		}
		return comm.Outbox{ToServer: cmd}, nil
	}
	return comm.Outbox{}, nil
}

// Halted implements comm.Halter.
func (c *Candidate) Halted() bool { return c.halted }

// Enum enumerates one Candidate per dialect in the family.
func Enum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("delegation/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &Candidate{D: fam.Dialect(i)}
	})
}

// Sense is the finite-goal sensing function: replayed over a completed
// attempt's view, it is positive iff the view contains an instance
// announcement and a submitted answer whose witness the *user itself*
// verifies against the instance. Safety holds by construction — a positive
// indication implies a correct witness was submitted, hence an acceptable
// history.
func Sense() sensing.Sense {
	return &verifySense{}
}

type verifySense struct {
	instance string
	verified bool
}

var _ sensing.Sense = (*verifySense)(nil)

func (s *verifySense) Reset() {
	s.instance = ""
	s.verified = false
}

func (s *verifySense) Observe(rv comm.RoundView) bool {
	if rest, ok := strings.CutPrefix(string(rv.In.FromWorld), "INSTANCE "); ok {
		s.instance = rest
	}
	if rest, ok := strings.CutPrefix(string(rv.Out.ToWorld), "ANSWER "); ok && s.instance != "" {
		ins, insOK := ParseInstance(s.instance)
		mask, err := strconv.ParseUint(rest, 10, 64)
		if insOK && err == nil && ins.Verify(mask) {
			s.verified = true
		}
	}
	return s.verified
}
