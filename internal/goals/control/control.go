// Package control implements an actuation goal with a different flavour of
// incompatibility: the server *understands* every command but interprets
// its numeric argument in its own calibration (a constant offset in raw
// units). Misunderstanding here is quantitative, not lexical — wrong
// candidates actively move the plant to the wrong place rather than being
// ignored.
//
// The cast:
//
//   - World: a one-dimensional plant. The server applies bounded forces;
//     the world reports position and setpoint to the user. The compact goal
//     is achieved once the plant sits at the setpoint.
//   - Server: an actuator whose zero point is offset by its calibration
//     (Units dialect). A command "MOVE w" moves the plant by clamp(w − o).
//   - Users: Candidate i assumes calibration i (the enumeration class);
//     Adaptive identifies the calibration from one probe and then controls
//     exactly — the paper's closing observation that special classes admit
//     algorithms far better than generic enumeration.
//
// With a mismatched candidate the closed loop has a non-zero fixed point
// (steady-state error equal to the calibration difference), so the plant
// never reaches the setpoint and progress sensing evicts the candidate.
package control

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// MaxForce bounds the per-round actuation in native units.
const MaxForce = 10

// DefaultPatience is the progress-sensing patience: rounds without the
// error shrinking before a candidate is evicted.
const DefaultPatience = 6

func clamp(x, bound int) int {
	if x > bound {
		return bound
	}
	if x < -bound {
		return -bound
	}
	return x
}

// Units is the calibration dialect: it shifts the numeric argument of MOVE
// commands by a constant offset, leaving every other message untouched.
// Encode adds the offset (user's intended value → wire), Decode subtracts
// it (wire → server's native units).
type Units struct {
	// Off is the calibration offset; the matching server cancels it.
	Off int
	// Idx is the dialect's index within its family.
	Idx int
}

var _ dialect.Dialect = Units{}

// ID implements dialect.Dialect.
func (u Units) ID() int { return u.Idx }

// Name implements dialect.Dialect.
func (u Units) Name() string { return fmt.Sprintf("units(%+d)#%d", u.Off, u.Idx) }

// Cached protocol messages for the force range commands and replies
// actually use: |argument| never exceeds 2*MaxForce (a clamped intent
// shifted by a calibration offset that is itself at most MaxForce), so
// the steady-state control loop allocates no message strings at all.
const msgCacheSpan = 2 * MaxForce

var (
	moveMsgs  [2*msgCacheSpan + 1]comm.Message
	movedMsgs [2*msgCacheSpan + 1]comm.Message
	forceMsgs [2*msgCacheSpan + 1]comm.Message
)

func init() {
	for n := -msgCacheSpan; n <= msgCacheSpan; n++ {
		moveMsgs[n+msgCacheSpan] = comm.Message("MOVE " + strconv.Itoa(n))
		movedMsgs[n+msgCacheSpan] = comm.Message("MOVED " + strconv.Itoa(n))
		forceMsgs[n+msgCacheSpan] = comm.Message("FORCE " + strconv.Itoa(n))
	}
}

// moveMsg returns "MOVE <n>", cached for the protocol's argument range.
func moveMsg(n int) comm.Message {
	if n >= -msgCacheSpan && n <= msgCacheSpan {
		return moveMsgs[n+msgCacheSpan]
	}
	return comm.Message("MOVE " + strconv.Itoa(n))
}

func shiftMove(m comm.Message, delta int) comm.Message {
	rest, ok := strings.CutPrefix(string(m), "MOVE ")
	if !ok {
		return m
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return m
	}
	return moveMsg(n + delta)
}

// Encode implements dialect.Dialect.
func (u Units) Encode(m comm.Message) comm.Message { return shiftMove(m, u.Off) }

// Decode implements dialect.Dialect.
func (u Units) Decode(m comm.Message) comm.Message { return shiftMove(m, -u.Off) }

// OffsetFor returns the calibration offset assigned to family index i:
// 0, +1, −1, +2, −2, ... so that |offset| ≤ ⌈n/2⌉ stays within the force
// bound for the class sizes the experiments use.
func OffsetFor(i int) int {
	if i == 0 {
		return 0
	}
	mag := (i + 1) / 2
	if i%2 == 1 {
		return mag
	}
	return -mag
}

// NewUnitsFamily builds the calibration class of size n. Offsets exceeding
// MaxForce would make the actuator unable to cancel its own calibration on
// small commands, so n is capped at 2*MaxForce+1.
func NewUnitsFamily(n int) (*dialect.Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("control: family size %d < 1", n)
	}
	if n > 2*MaxForce+1 {
		return nil, fmt.Errorf("control: family size %d exceeds calibration range %d",
			n, 2*MaxForce+1)
	}
	ds := make([]dialect.Dialect, n)
	for i := range ds {
		ds[i] = Units{Off: OffsetFor(i), Idx: i}
	}
	return dialect.NewFamily("units", ds)
}

// Goal is the compact actuation goal: the plant must sit at the setpoint.
// Env.Choice selects the (setpoint, start) pair.
type Goal struct {
	// Span bounds the |setpoint| and |start| magnitude; 0 means 40.
	Span int
}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

func (g *Goal) span() int {
	if g.Span <= 0 {
		return 40
	}
	return g.Span
}

// Name implements goal.Goal.
func (g *Goal) Name() string { return "control" }

// Kind implements goal.Goal.
func (g *Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (g *Goal) EnvChoices() int { return 8 }

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(env goal.Env) goal.World {
	r := xrand.New(uint64(env.Choice)*0xD1B54A32D192ED03 + env.Seed + 7)
	span := g.span()
	initPos := r.Intn(2*span+1) - span
	return &World{
		initPos: initPos,
		pos:     initPos,
		set:     r.Intn(2*span+1) - span,
	}
}

// Acceptable implements goal.CompactGoal.
func (g *Goal) Acceptable(prefix comm.History) bool {
	return strings.HasSuffix(string(prefix.Last()), "at=1")
}

// AcceptableWorld implements goal.WorldJudge: the same predicate as
// Acceptable ("at=1" iff the plant sits at the setpoint), judged on the
// live plant.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if pw, ok := w.(*World); ok {
		return pw.pos == pw.set
	}
	return strings.HasSuffix(string(w.Snapshot()), "at=1")
}

// ForgivingGoal implements goal.Forgiving: the plant can always still be
// driven to the setpoint.
func (g *Goal) ForgivingGoal() bool { return true }

// World is the plant. It applies "FORCE <f>" from the server (clamped to
// MaxForce) and reports "POS <p>|SET <s>" to the user every round.
// Snapshot: "pos=<p>;set=<s>;at=<0|1>".
// Hot-path layout: the plant is three scalars (initPos, pos, set) plus a
// generation counter that bumps exactly when the plant moves — which is
// exactly when the telemetry and the snapshot change — so state-change
// detection is one integer compare. Telemetry strings are pure functions
// of (pos, set) with set fixed per instance, so they are memoized in a
// Reset-surviving table keyed by pos: a trajectory revisiting a position
// (or a reused world replaying a run) serves cached strings.
type World struct {
	initPos  int
	pos, set int
	gen      uint64 // snapshot/status generation: bumps when the plant moves

	status    comm.Message                    // cached telemetry, rebuilt when pos changes
	statusTab msgbuf.Table[int, comm.Message] // pos → telemetry, survives Reset
	statusGen uint64
	buf       []byte // reusable build buffer for status and snapshots
	snap      []byte // cached snapshot bytes, valid while snapGen == gen
	snapGen   uint64
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Reset implements comm.Strategy. The telemetry table persists across
// Reset: initPos and set are fixed per instance, so last run's strings
// remain correct.
func (w *World) Reset(*xrand.Rand) {
	w.pos = w.initPos
	w.status = ""
	w.gen++ // invalidates the status and snapshot caches
}

// Pos returns the current plant position (for tests).
func (w *World) Pos() int { return w.pos }

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if rest, ok := strings.CutPrefix(string(in.FromServer), "FORCE "); ok {
		if f, err := strconv.Atoi(rest); err == nil && f != 0 {
			w.pos += clamp(f, MaxForce)
			w.gen++
		}
	}
	// The telemetry message only changes when the plant moves; a settled
	// loop re-sends one cached string.
	if w.status == "" || w.statusGen != w.gen {
		if s, ok := w.statusTab.Get(w.pos); ok {
			w.status = s
		} else {
			w.buf = append(w.buf[:0], "POS "...)
			w.buf = msgbuf.AppendInt(w.buf, w.pos)
			w.buf = append(w.buf, "|SET "...)
			w.buf = msgbuf.AppendInt(w.buf, w.set)
			w.status = comm.Message(w.buf) // string conversion copies
			w.statusTab.Put(w.pos, w.status)
		}
		w.statusGen = w.gen
	}
	return comm.Outbox{ToUser: w.status}, nil
}

// StateGen implements goal.StateVersioned: the generation advances
// exactly when the plant moves (or the world resets), which is exactly
// when the snapshot's pos/at fields change.
func (w *World) StateGen() uint64 { return w.gen }

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	return comm.WorldState(w.AppendSnapshot(nil))
}

// AppendSnapshot implements goal.StateAppender:
// "pos=<p>;set=<s>;at=<0|1>", byte-identical to Snapshot. The encoding
// is cached per generation, so a settled loop copies bytes instead of
// re-formatting.
func (w *World) AppendSnapshot(dst []byte) []byte {
	if len(w.snap) == 0 || w.snapGen != w.gen {
		b := append(w.snap[:0], "pos="...)
		b = msgbuf.AppendInt(b, w.pos)
		b = append(b, ";set="...)
		b = msgbuf.AppendInt(b, w.set)
		if w.pos == w.set {
			b = append(b, ";at=1"...)
		} else {
			b = append(b, ";at=0"...)
		}
		w.snap = b
		w.snapGen = w.gen
	}
	return append(dst, w.snap...)
}

// ParsePlant decodes the world's status message.
func ParsePlant(m comm.Message) (pos, set int, ok bool) {
	posPart, setPart, found := strings.Cut(string(m), "|")
	if !found {
		return 0, 0, false
	}
	ps, ok1 := strings.CutPrefix(posPart, "POS ")
	ss, ok2 := strings.CutPrefix(setPart, "SET ")
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	p, err1 := strconv.Atoi(ps)
	s, err2 := strconv.Atoi(ss)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return p, s, true
}

// Server is the actuator's native protocol: "MOVE <n>" applies a force of
// n native units (clamped) and acknowledges "MOVED <n>". Wrap with
// server.Dialected and a Units dialect to obtain a calibration-offset
// class.
type Server struct{}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy.
func (*Server) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (*Server) Step(in comm.Inbox) (comm.Outbox, error) {
	rest, ok := strings.CutPrefix(string(in.FromUser), "MOVE ")
	if !ok {
		return comm.Outbox{}, nil
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return comm.Outbox{}, nil
	}
	n = clamp(n, MaxForce)
	return comm.Outbox{
		ToUser:  movedMsgs[n+msgCacheSpan],
		ToWorld: forceMsgs[n+msgCacheSpan],
	}, nil
}

// CycleRounds is the command→actuation→telemetry feedback latency: a
// command sent at round t moves the plant at t+2 and is visible to the
// user at t+3. Controllers issue one command per cycle; acting every round
// against stale telemetry would triple-apply each correction and oscillate.
const CycleRounds = 3

// Candidate is the calibration-i controller: proportional control encoded
// in dialect i, one command per feedback cycle. With the matching server
// the applied force equals the intended correction; otherwise the closed
// loop sticks at a non-zero steady-state error.
type Candidate struct {
	// D is the calibration dialect this candidate assumes.
	D dialect.Dialect

	phase int
}

var _ comm.Strategy = (*Candidate)(nil)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) { c.phase = 0 }

// Step implements comm.Strategy.
func (c *Candidate) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { c.phase++ }()
	if c.phase%CycleRounds != 0 {
		return comm.Outbox{}, nil
	}
	pos, set, ok := ParsePlant(in.FromWorld)
	if !ok || pos == set {
		return comm.Outbox{}, nil
	}
	d := clamp(set-pos, MaxForce)
	return comm.Outbox{ToServer: c.D.Encode(moveMsg(d))}, nil
}

// Enum enumerates one Candidate per calibration in the family.
func Enum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("control/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &Candidate{D: fam.Dialect(i)}
	})
}

// Sense is positive while the plant is at the setpoint or the absolute
// error shrank within the patience window. Safe — a stuck non-zero error
// is exactly goal failure — and viable, since the matching candidate
// shrinks the error every control cycle.
func Sense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return &errorSense{patience: patience}
}

type errorSense struct {
	patience int
	started  bool
	best     int
	idle     int
}

var _ sensing.Sense = (*errorSense)(nil)

func (s *errorSense) Reset() {
	s.started = false
	s.best = 0
	s.idle = 0
}

func (s *errorSense) Observe(rv comm.RoundView) bool {
	pos, set, ok := ParsePlant(rv.In.FromWorld)
	if !ok {
		return true // no telemetry yet: grace
	}
	errAbs := pos - set
	if errAbs < 0 {
		errAbs = -errAbs
	}
	if errAbs == 0 {
		s.idle = 0
		return true
	}
	if !s.started || errAbs < s.best {
		s.started = true
		s.best = errAbs
		s.idle = 0
		return true
	}
	s.idle++
	return s.idle < s.patience
}

// Adaptive is the system-identification controller: it sends a zero-force
// probe, waits one feedback cycle, reads off the server's calibration from
// the plant's reaction, and from then on compensates exactly — one command
// per cycle. One strategy compatible with the entire calibration class,
// the "better performance in special cases of interest" the paper's
// discussion closes with.
type Adaptive struct {
	phase   int
	probed  bool
	probeAt int // phase at which the probe was sent; -1 = not sent
	lastPos int
	offset  int
}

var _ comm.Strategy = (*Adaptive)(nil)

// Reset implements comm.Strategy.
func (a *Adaptive) Reset(*xrand.Rand) {
	a.phase = 0
	a.probed = false
	a.probeAt = -1
	a.lastPos = 0
	a.offset = 0
}

// Offset returns the identified calibration (valid once probing is done).
func (a *Adaptive) Offset() int { return a.offset }

// Step implements comm.Strategy.
func (a *Adaptive) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { a.phase++ }()
	pos, set, ok := ParsePlant(in.FromWorld)
	if !ok {
		return comm.Outbox{}, nil
	}

	if !a.probed {
		if a.probeAt < 0 {
			// Probe: "MOVE 0" in wire units; the server applies
			// clamp(0 − offset) one cycle later.
			a.probeAt = a.phase
			a.lastPos = pos
			return comm.Outbox{ToServer: "MOVE 0"}, nil
		}
		if a.phase < a.probeAt+CycleRounds {
			return comm.Outbox{}, nil // probe still in flight
		}
		a.offset = -(pos - a.lastPos)
		a.probed = true
		// Fall through into the control law this same round.
	}

	if (a.phase-a.probeAt)%CycleRounds != 0 {
		return comm.Outbox{}, nil
	}
	if pos == set {
		return comm.Outbox{}, nil
	}
	// Intended native force d must satisfy |d + offset| ≤ MaxForce so
	// the server's clamp doesn't distort it.
	d := clamp(set-pos, MaxForce-abs(a.offset))
	if d == 0 {
		d = sign(set - pos)
	}
	return comm.Outbox{ToServer: moveMsg(d + a.offset)}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
