package control

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestOffsetFor(t *testing.T) {
	t.Parallel()

	want := []int{0, 1, -1, 2, -2, 3, -3}
	for i, w := range want {
		if got := OffsetFor(i); got != w {
			t.Fatalf("OffsetFor(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestNewUnitsFamilyValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewUnitsFamily(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewUnitsFamily(2*MaxForce + 2); err == nil {
		t.Error("oversized family accepted")
	}
	fam, err := NewUnitsFamily(9)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 9 {
		t.Fatalf("size = %d", fam.Size())
	}
}

func TestUnitsDialectRoundTrip(t *testing.T) {
	t.Parallel()

	u := Units{Off: 3, Idx: 1}
	for _, m := range []comm.Message{"MOVE 5", "MOVE -7", "MOVE 0"} {
		if got := u.Decode(u.Encode(m)); got != m {
			t.Fatalf("round trip of %q = %q", m, got)
		}
	}
	// Non-MOVE messages pass through.
	if u.Encode("STATUS") != "STATUS" || u.Decode("MOVED 3") != "MOVED 3" {
		t.Fatal("units dialect touched a non-MOVE message")
	}
	if u.Encode("MOVE x") != "MOVE x" {
		t.Fatal("units dialect touched a malformed MOVE")
	}
}

func TestServerAppliesClampedForce(t *testing.T) {
	t.Parallel()

	s := &Server{}
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{FromUser: "MOVE 4"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "FORCE 4" || out.ToUser != "MOVED 4" {
		t.Fatalf("MOVE 4 → %+v", out)
	}
	out, err = s.Step(comm.Inbox{FromUser: "MOVE 99"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "FORCE 10" {
		t.Fatalf("force not clamped: %+v", out)
	}
	out, err = s.Step(comm.Inbox{FromUser: "MOVE x"})
	if err != nil {
		t.Fatal(err)
	}
	if out != (comm.Outbox{}) {
		t.Fatalf("malformed MOVE produced %+v", out)
	}
}

func TestWorldPlantDynamics(t *testing.T) {
	t.Parallel()

	w := &World{initPos: 5, pos: 5, set: 8}
	w.Reset(xrand.New(1))
	out, err := w.Step(comm.Inbox{FromServer: "FORCE 2"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Pos() != 7 {
		t.Fatalf("pos = %d, want 7", w.Pos())
	}
	pos, set, ok := ParsePlant(out.ToUser)
	if !ok || pos != 7 || set != 8 {
		t.Fatalf("status = %q", out.ToUser)
	}
	if w.Snapshot() != "pos=7;set=8;at=0" {
		t.Fatalf("snapshot = %q", w.Snapshot())
	}
	if _, err := w.Step(comm.Inbox{FromServer: "FORCE 1"}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "pos=8;set=8;at=1" {
		t.Fatalf("snapshot at target = %q", w.Snapshot())
	}
}

func runControl(t *testing.T, usr comm.Strategy, srvOff dialect.Dialect, env int, rounds int) (*system.Result, *Goal) {
	t.Helper()
	g := &Goal{}
	srv := server.Dialected(&Server{}, srvOff)
	res, err := system.Run(usr, srv, g.NewWorld(goal.Env{Choice: env}), system.Config{
		MaxRounds: rounds, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestMatchingCandidateReachesSetpoint(t *testing.T) {
	t.Parallel()

	fam, err := NewUnitsFamily(9)
	if err != nil {
		t.Fatal(err)
	}
	for env := 0; env < 4; env++ {
		res, g := runControl(t, &Candidate{D: fam.Dialect(4)}, fam.Dialect(4), env, 120)
		if !goal.CompactAchieved(g, res.History, 10) {
			t.Fatalf("matching candidate failed env %d: %q", env, res.History.Last())
		}
	}
}

func TestMismatchedCandidateSticksOffTarget(t *testing.T) {
	t.Parallel()

	fam, err := NewUnitsFamily(9)
	if err != nil {
		t.Fatal(err)
	}
	res, g := runControl(t, &Candidate{D: fam.Dialect(1)}, fam.Dialect(6), 1, 300)
	if goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("mismatched calibration reached the setpoint exactly")
	}
}

func TestUniversalControllerAllCalibrations(t *testing.T) {
	t.Parallel()

	const n = 9
	fam, err := NewUnitsFamily(n)
	if err != nil {
		t.Fatal(err)
	}
	for srvIdx := 0; srvIdx < n; srvIdx++ {
		srvIdx := srvIdx
		t.Run(fmt.Sprintf("calibration-%d", srvIdx), func(t *testing.T) {
			t.Parallel()
			u, err := universal.NewCompactUser(Enum(fam), Sense(0))
			if err != nil {
				t.Fatal(err)
			}
			res, g := runControl(t, u, fam.Dialect(srvIdx), 2, 200*n)
			if !goal.CompactAchieved(g, res.History, 10) {
				t.Fatalf("universal controller failed calibration %d (index %d)",
					srvIdx, u.Index())
			}
		})
	}
}

func TestAdaptiveIdentifiesEveryCalibration(t *testing.T) {
	t.Parallel()

	const n = 15
	fam, err := NewUnitsFamily(n)
	if err != nil {
		t.Fatal(err)
	}
	for srvIdx := 0; srvIdx < n; srvIdx++ {
		a := &Adaptive{}
		res, g := runControl(t, a, fam.Dialect(srvIdx), 3, 200)
		if !goal.CompactAchieved(g, res.History, 10) {
			t.Fatalf("adaptive failed calibration %d: %q", srvIdx, res.History.Last())
		}
		if a.Offset() != OffsetFor(srvIdx) {
			t.Fatalf("identified offset %d, want %d", a.Offset(), OffsetFor(srvIdx))
		}
	}
}

func TestAdaptiveBeatsEnumerationOnWorstCase(t *testing.T) {
	t.Parallel()

	const n = 15
	fam, err := NewUnitsFamily(n)
	if err != nil {
		t.Fatal(err)
	}
	worst := n - 1

	u, err := universal.NewCompactUser(Enum(fam), Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	resEnum, g := runControl(t, u, fam.Dialect(worst), 2, 400*n)
	resAdpt, _ := runControl(t, &Adaptive{}, fam.Dialect(worst), 2, 400*n)

	if !goal.CompactAchieved(g, resEnum.History, 10) || !goal.CompactAchieved(g, resAdpt.History, 10) {
		t.Fatal("one of the controllers failed")
	}
	enumRounds := goal.LastUnacceptable(g, resEnum.History)
	adptRounds := goal.LastUnacceptable(g, resAdpt.History)
	if adptRounds*2 >= enumRounds {
		t.Fatalf("adaptive (%d rounds) should clearly beat enumeration (%d rounds)",
			adptRounds, enumRounds)
	}
}

func TestSenseSemantics(t *testing.T) {
	t.Parallel()

	s := Sense(2)
	status := func(pos, set int) comm.RoundView {
		return comm.RoundView{In: comm.Inbox{
			FromWorld: comm.Message(fmt.Sprintf("POS %d|SET %d", pos, set)),
		}}
	}
	if !s.Observe(status(10, 0)) {
		t.Fatal("first status should start the tracker positively")
	}
	if !s.Observe(status(6, 0)) {
		t.Fatal("improvement should be positive")
	}
	if !s.Observe(status(6, 0)) {
		t.Fatal("one idle round within patience 2")
	}
	if s.Observe(status(6, 0)) {
		t.Fatal("stuck error should turn negative")
	}
	if !s.Observe(status(0, 0)) {
		t.Fatal("at-target must be positive")
	}
	if !s.Observe(status(0, 0)) {
		t.Fatal("at-target must stay positive")
	}
}

func TestGoalEnvDeterminism(t *testing.T) {
	t.Parallel()

	g := &Goal{}
	a, _ := g.NewWorld(goal.Env{Choice: 3}).(*World)
	b, _ := g.NewWorld(goal.Env{Choice: 3}).(*World)
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("same env produced different plants")
	}
	c, _ := g.NewWorld(goal.Env{Choice: 4}).(*World)
	if a.Snapshot() == c.Snapshot() {
		t.Fatal("different envs produced identical plants")
	}
}

// TestWorldMatchesReferenceModel drives the SoA plant (ISSUE 6: scalar
// pos/gen layout with Reset-surviving memoized telemetry) against a plain
// integer reference with Sprintf encodings, over random FORCE traffic
// including zero forces, over-bound forces, and junk — across several
// Reset cycles. Telemetry and snapshot must be byte-identical every
// round, and StateGen must change exactly when the snapshot bytes change.
func TestWorldMatchesReferenceModel(t *testing.T) {
	t.Parallel()

	w := &World{initPos: -3, pos: -3, set: 5}
	r := xrand.New(42)
	for run := 0; run < 3; run++ {
		w.Reset(nil)
		refPos := -3
		lastGen := w.StateGen()
		lastSnap := string(w.Snapshot())
		for round := 0; round < 300; round++ {
			var in comm.Inbox
			switch r.Intn(4) {
			case 0: // in-range force (may be 0: no-op)
				f := r.Intn(2*MaxForce+1) - MaxForce
				in.FromServer = comm.Message(fmt.Sprintf("FORCE %d", f))
				refPos += f
			case 1: // beyond the clamp
				f := 3 * MaxForce
				in.FromServer = comm.Message(fmt.Sprintf("FORCE %d", f))
				refPos += MaxForce
			case 2: // malformed
				in.FromServer = "FORCE much"
			}
			out, err := w.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			wantStatus := fmt.Sprintf("POS %d|SET %d", refPos, 5)
			if string(out.ToUser) != wantStatus {
				t.Fatalf("run %d round %d: telemetry %q, want %q", run, round, out.ToUser, wantStatus)
			}
			at := 0
			if refPos == 5 {
				at = 1
			}
			wantSnap := fmt.Sprintf("pos=%d;set=%d;at=%d", refPos, 5, at)
			if got := string(w.Snapshot()); got != wantSnap {
				t.Fatalf("run %d round %d: snapshot %q, want %q", run, round, got, wantSnap)
			}
			if got := string(w.AppendSnapshot([]byte("pre:"))); got != "pre:"+wantSnap {
				t.Fatalf("run %d round %d: AppendSnapshot = %q", run, round, got)
			}
			gen := w.StateGen()
			if (gen != lastGen) != (wantSnap != lastSnap) {
				t.Fatalf("run %d round %d: gen changed=%v but snapshot changed=%v",
					run, round, gen != lastGen, wantSnap != lastSnap)
			}
			lastGen, lastSnap = gen, wantSnap
		}
	}
}
