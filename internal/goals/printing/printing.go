// Package printing implements the paper's motivating example: the goal of
// using a printer to produce a document — a goal that "cannot be cast as a
// problem of delegating computation in any reasonable sense" but is
// captured naturally by the goal-oriented model.
//
// The cast:
//
//   - World: owns the physical printout. It assigns the user a target
//     document (the task), appends whatever the printer emits to the output
//     tape, and lets the user observe the printout — which is exactly the
//     feedback that makes safe and viable sensing possible.
//   - Server: the printer. Its native protocol is "PRINT <doc>" / "STATUS",
//     but the class of possible printers speaks unknown dialects
//     (server.Dialected).
//   - User: wants the target document to appear on the printout. Candidate
//     strategy i speaks dialect i; the universal user enumerates candidates
//     under print-progress sensing.
//
// The goal is compact and forgiving: a prefix is acceptable iff the target
// document has been printed, and any finite prefix can still be extended to
// success by printing it now.
package printing

import (
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// Protocol vocabulary (the native command language of printers).
const (
	cmdPrint  = "PRINT"
	cmdStatus = "STATUS"
	rspAck    = "ACK"
	rspReady  = "READY"
)

// Vocabulary returns the printer protocol's verbs, the token set that word
// dialects permute.
func Vocabulary() []string {
	return []string{cmdPrint, cmdStatus, rspAck, rspReady}
}

// DefaultPatience is the sensing patience used by the stock universal user:
// a candidate gets this many rounds to produce print progress before a
// negative indication. The user→server→world→user feedback loop takes 3
// rounds, so 5 leaves margin for one retry.
const DefaultPatience = 5

// Goal is the printing goal. Env.Choice selects the target document.
type Goal struct {
	// Docs is the set of possible target documents (the world's
	// non-deterministic choice). Empty means DefaultDocs.
	Docs []string

	// Paper bounds how many documents the printer's tray can produce;
	// 0 means unlimited. A positive Paper makes the goal NON-forgiving:
	// a history that wastes the last sheet without printing the target
	// can no longer be extended to success. Used by ablation A1 to show
	// why the paper restricts attention to forgiving goals.
	Paper int
}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

// DefaultDocs are the target documents used when none are configured.
func DefaultDocs() []string {
	return []string{"report7", "thesis3", "memo42", "poster9"}
}

func (g *Goal) docs() []string {
	if len(g.Docs) == 0 {
		return DefaultDocs()
	}
	return g.Docs
}

// Name implements goal.Goal.
func (g *Goal) Name() string { return "printing" }

// Kind implements goal.Goal.
func (g *Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (g *Goal) EnvChoices() int { return len(g.docs()) }

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(env goal.Env) goal.World {
	docs := g.docs()
	choice := env.Choice % len(docs)
	if choice < 0 {
		choice += len(docs)
	}
	return &World{target: docs[choice], paper: g.Paper}
}

// Acceptable implements goal.CompactGoal: a prefix is acceptable iff the
// target has been printed.
func (g *Goal) Acceptable(prefix comm.History) bool {
	return strings.HasSuffix(string(prefix.Last()), "done=1")
}

// AcceptableWorld implements goal.WorldJudge: the same predicate as
// Acceptable, judged on the live printout.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if pw, ok := w.(*World); ok {
		return pw.done
	}
	return strings.HasSuffix(string(w.Snapshot()), "done=1")
}

// ForgivingGoal implements goal.Forgiving. The goal is forgiving only with
// an unlimited paper tray.
func (g *Goal) ForgivingGoal() bool { return g.Paper == 0 }

// World is the printing environment. Each round it (re)announces the task
// to the user along with the most recently printed document, and it appends
// any "EMIT <doc>" from the server to the printout (paper permitting).
//
// World→user message format: "TASK <target>|PRINTED <lastPrinted>".
// Snapshot format: "target=<target>;printed=<count>;done=<0|1>".
// Hot-path layout: the round loop reads only the scalar fields (count,
// last, done) — the printed log is kept for Printout() and appended to,
// never scanned. State-change detection is the gen counter: it bumps
// exactly when a document lands, which is exactly when the announcement
// and the snapshot change, so both caches key on one integer compare.
type World struct {
	target  string
	paper   int      // 0 = unlimited
	printed []string // full log, storage reused across Reset
	last    string   // printed[len-1], the only log entry the loop reads
	done    bool
	gen     uint64 // snapshot/status generation: bumps when a doc lands

	status     comm.Message // cached announcement, keyed on the document it reports
	statusLast string
	buf        []byte // reusable build buffer
	snap       []byte // cached snapshot bytes, valid while snapGen == gen
	snapGen    uint64
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Target returns the document the user is tasked with printing.
func (w *World) Target() string { return w.target }

// Printout returns a copy of the printed documents in order.
func (w *World) Printout() []string {
	out := make([]string, len(w.printed))
	copy(out, w.printed)
	return out
}

// PaperLeft returns the remaining sheets, or -1 when unlimited.
func (w *World) PaperLeft() int {
	if w.paper == 0 {
		return -1
	}
	left := w.paper - len(w.printed)
	if left < 0 {
		left = 0
	}
	return left
}

// Reset implements comm.Strategy. The printed log keeps its storage
// (entries are cleared so no document string outlives its run), so a
// reused world re-runs without regrowing the slice.
func (w *World) Reset(*xrand.Rand) {
	clear(w.printed)
	w.printed = w.printed[:0]
	w.last = ""
	w.done = false
	w.gen++ // invalidates the status and snapshot caches
}

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if doc, ok := strings.CutPrefix(string(in.FromServer), "EMIT "); ok {
		if w.paper == 0 || len(w.printed) < w.paper {
			w.printed = append(w.printed, doc)
			w.last = doc
			if doc == w.target {
				w.done = true
			}
			w.gen++
		}
	}
	// The announcement depends only on the most recent document, not the
	// count, so it is keyed on that string (not the generation): a
	// printer re-emitting the same page — the converged steady state —
	// re-sends one cached announcement. Usually a pointer-equal compare.
	if w.status == "" || w.statusLast != w.last {
		w.buf = append(w.buf[:0], "TASK "...)
		w.buf = append(w.buf, w.target...)
		w.buf = append(w.buf, "|PRINTED "...)
		w.buf = append(w.buf, w.last...)
		w.status = comm.Message(w.buf)
		w.statusLast = w.last
	}
	return comm.Outbox{ToUser: w.status}, nil
}

// StateGen implements goal.StateVersioned: the generation advances
// exactly when a document lands (or the world resets), which is exactly
// when the snapshot's count/done fields change.
func (w *World) StateGen() uint64 { return w.gen }

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	return comm.WorldState(w.AppendSnapshot(nil))
}

// AppendSnapshot implements goal.StateAppender:
// "target=<target>;printed=<count>;done=<0|1>", byte-identical to
// Snapshot. The encoding is cached per generation, so quiescent rounds
// copy bytes instead of re-formatting.
func (w *World) AppendSnapshot(dst []byte) []byte {
	if len(w.snap) == 0 || w.snapGen != w.gen {
		b := append(w.snap[:0], "target="...)
		b = append(b, w.target...)
		b = append(b, ";printed="...)
		b = msgbuf.AppendInt(b, len(w.printed))
		if w.done {
			b = append(b, ";done=1"...)
		} else {
			b = append(b, ";done=0"...)
		}
		w.snap = b
		w.snapGen = w.gen
	}
	return append(dst, w.snap...)
}

// ParseWorldMsg extracts the task and last-printed fields from a world
// message; ok is false if the message is not a world announcement.
func ParseWorldMsg(m comm.Message) (task, printed string, ok bool) {
	s := string(m)
	taskPart, printedPart, found := strings.Cut(s, "|")
	if !found {
		return "", "", false
	}
	task, ok1 := strings.CutPrefix(taskPart, "TASK ")
	printed, ok2 := strings.CutPrefix(printedPart, "PRINTED ")
	if !ok1 || !ok2 {
		return "", "", false
	}
	return task, printed, true
}

// Server is the printer's native protocol: on "PRINT <doc>" it emits the
// document to the world and acknowledges to the user; on "STATUS" it
// reports readiness. Wrap with server.Dialected to obtain the class of
// printers the paper's user must cope with.
//
// Step is a pure function of the incoming command; the single-command
// memo only spares rebuilding the reply a retrying user provokes every
// other round.
type Server struct {
	memo msgbuf.Memo1[comm.Message, comm.Outbox]
}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy. The memo persists: Step is a pure
// function of the incoming command, so its entry from a previous run is
// still correct.
func (s *Server) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (s *Server) Step(in comm.Inbox) (comm.Outbox, error) {
	msg := string(in.FromUser)
	switch {
	case strings.HasPrefix(msg, cmdPrint+" "):
		if out, ok := s.memo.Get(in.FromUser); ok {
			return out, nil
		}
		doc := strings.TrimPrefix(msg, cmdPrint+" ")
		out := comm.Outbox{
			ToUser:  comm.Message(rspAck + " " + doc),
			ToWorld: comm.Message("EMIT " + doc),
		}
		s.memo.Put(in.FromUser, out)
		return out, nil
	case msg == cmdStatus:
		return comm.Outbox{ToUser: rspReady}, nil
	default:
		return comm.Outbox{}, nil
	}
}

// TouchyServer behaves like Server on well-formed commands but reacts to
// every non-empty command it does not understand by printing an error page
// — as real printers do with garbage input. Combined with a finite paper
// tray (Goal.Paper > 0) this makes probing costly and the goal
// non-forgiving: a universal user that burns the tray on wrong-dialect
// probes can no longer succeed. Used by ablation A1.
type TouchyServer struct {
	inner Server
}

var _ comm.Strategy = (*TouchyServer)(nil)

// ErrorPage is the document a touchy printer emits on garbage input.
const ErrorPage = "errorpage"

// Reset implements comm.Strategy.
func (*TouchyServer) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (s *TouchyServer) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	if out == (comm.Outbox{}) && !in.FromUser.Empty() {
		return comm.Outbox{ToWorld: "EMIT " + ErrorPage}, nil
	}
	return out, nil
}

// LyingServer acknowledges every command but never prints anything. It is
// unhelpful; it exists to expose unsafe sensing (trusting ACKs) in the T4
// ablation.
type LyingServer struct{}

var _ comm.Strategy = (*LyingServer)(nil)

// Reset implements comm.Strategy.
func (*LyingServer) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (*LyingServer) Step(in comm.Inbox) (comm.Outbox, error) {
	if in.FromUser.Empty() {
		return comm.Outbox{}, nil
	}
	return comm.Outbox{ToUser: rspAck + " anything"}, nil
}

// Candidate is the dialect-d printing user: it reads the task from the
// world and periodically sends "PRINT <task>" encoded in its dialect.
type Candidate struct {
	// D is the dialect this candidate speaks to the server.
	D dialect.Dialect
	// Resend is the retry period in rounds; 0 means every other round.
	Resend int

	task    string
	elapsed int
	cmd     msgbuf.Memo1[string, comm.Message] // encoded "PRINT <task>", built once per task
}

var _ comm.Strategy = (*Candidate)(nil)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) {
	c.task = ""
	c.elapsed = 0
}

// Step implements comm.Strategy.
func (c *Candidate) Step(in comm.Inbox) (comm.Outbox, error) {
	if task, _, ok := ParseWorldMsg(in.FromWorld); ok {
		c.task = task
	}
	if c.task == "" {
		return comm.Outbox{}, nil
	}
	period := c.Resend
	if period <= 0 {
		period = 2
	}
	defer func() { c.elapsed++ }()
	if c.elapsed%period == 0 {
		// The task is fixed per execution, so the encoded command is
		// built once (dialects are pure).
		cmd, ok := c.cmd.Get(c.task)
		if !ok {
			cmd = c.D.Encode(comm.Message(cmdPrint + " " + c.task))
			c.cmd.Put(c.task, cmd)
		}
		return comm.Outbox{ToServer: cmd}, nil
	}
	return comm.Outbox{}, nil
}

// Enum enumerates one Candidate per dialect in the family — the class of
// user strategies the universal printing user searches.
func Enum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("printing/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &Candidate{D: fam.Dialect(i)}
	})
}

// Sense is the print-progress sensing function: the indication is positive
// as long as, within the patience window, the world has confirmed that the
// most recent printout equals the task. It is safe (positive indications
// require the target actually printed — the world does not lie) and viable
// (the matching candidate prints within the window). patience <= 0 selects
// DefaultPatience.
func Sense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		task, printed, ok := ParseWorldMsg(rv.In.FromWorld)
		return ok && task != "" && printed == task
	}), patience)
}

// TrustingSense is the deliberately unsafe sensing variant for the T4
// ablation: it reports positive as soon as the server has acknowledged
// anything, trusting the server instead of observing the world. A lying
// server keeps it positive forever while the goal goes unachieved.
func TrustingSense() sensing.Sense {
	return sensing.Sticky(sensing.New(func(rv comm.RoundView) bool {
		return strings.HasPrefix(string(rv.In.FromServer), rspAck)
	}))
}

// ParanoidSense is the deliberately non-viable sensing variant for the T4
// ablation: it demands confirmation that no printer can produce (a printout
// equal to the task with a "!" suffix the protocol never emits), so no
// candidate ever earns a lasting positive indication.
func ParanoidSense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		task, printed, ok := ParseWorldMsg(rv.In.FromWorld)
		return ok && task != "" && printed == task+"!"
	}), patience)
}
