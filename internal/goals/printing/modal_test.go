package printing

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func asleep(v bool) *bool { return &v }

func TestModalServerModes(t *testing.T) {
	t.Parallel()

	s := &ModalServer{StartAsleep: asleep(true)}
	s.Reset(xrand.New(1))

	out, err := s.Step(comm.Inbox{FromUser: "PRINT doc"})
	if err != nil {
		t.Fatal(err)
	}
	if out != (comm.Outbox{}) {
		t.Fatalf("asleep printer printed: %+v", out)
	}

	out, err = s.Step(comm.Inbox{FromUser: "STATUS"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "READY" || s.Asleep() {
		t.Fatalf("STATUS did not wake printer: %+v asleep=%v", out, s.Asleep())
	}

	out, err = s.Step(comm.Inbox{FromUser: "PRINT doc"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "EMIT doc" {
		t.Fatalf("awake printer refused to print: %+v", out)
	}
}

func TestModalServerArbitraryStartState(t *testing.T) {
	t.Parallel()

	// With no pinned mode, Reset draws the mode from the generator —
	// both modes must occur across seeds.
	modes := map[bool]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		s := &ModalServer{}
		s.Reset(xrand.New(seed))
		modes[s.Asleep()] = true
	}
	if len(modes) != 2 {
		t.Fatalf("start-state distribution degenerate: %v", modes)
	}
}

func TestPlainCandidateNotAWitnessForModalServer(t *testing.T) {
	t.Parallel()

	// The plain candidate never wakes the printer: with an asleep start
	// state it fails even speaking the right dialect — helpfulness is
	// relative to the candidate class.
	fam := wordFam(t, 4)
	g := &Goal{}
	srv := server.Dialected(&ModalServer{StartAsleep: asleep(true)}, fam.Dialect(2))
	usr := &Candidate{D: fam.Dialect(2)}
	res, err := system.Run(usr, srv, g.NewWorld(goal.Env{}), system.Config{
		MaxRounds: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("plain candidate should not wake a sleeping printer")
	}
}

func TestRobustCandidateHandlesBothStartStates(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	for _, startAsleep := range []bool{false, true} {
		g := &Goal{}
		srv := server.Dialected(&ModalServer{StartAsleep: asleep(startAsleep)}, fam.Dialect(2))
		usr := &RobustCandidate{D: fam.Dialect(2)}
		res, err := system.Run(usr, srv, g.NewWorld(goal.Env{}), system.Config{
			MaxRounds: 200, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 10) {
			t.Fatalf("robust candidate failed with startAsleep=%v", startAsleep)
		}
	}
}

func TestRobustUniversalUserOverModalClass(t *testing.T) {
	t.Parallel()

	// Theorem 1 with arbitrary start states: the universal user over the
	// ROBUST candidate class achieves the goal with every dialected
	// modal printer in either initial mode.
	const n = 5
	fam := wordFam(t, n)
	for srvIdx := 0; srvIdx < n; srvIdx++ {
		for _, startAsleep := range []bool{false, true} {
			srvIdx, startAsleep := srvIdx, startAsleep
			t.Run(fmt.Sprintf("dialect-%d-asleep-%v", srvIdx, startAsleep), func(t *testing.T) {
				t.Parallel()
				g := &Goal{}
				u, err := universal.NewCompactUser(RobustEnum(fam), Sense(7))
				if err != nil {
					t.Fatal(err)
				}
				srv := server.Dialected(
					&ModalServer{StartAsleep: asleep(startAsleep)}, fam.Dialect(srvIdx))
				res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
					MaxRounds: 800, Seed: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !goal.CompactAchieved(g, res.History, 10) {
					t.Fatalf("robust universal user failed (dialect %d, asleep %v)",
						srvIdx, startAsleep)
				}
			})
		}
	}
}

func TestRobustCandidateWorksWithPlainServer(t *testing.T) {
	t.Parallel()

	// Robustness must not cost compatibility with the plain printer.
	fam := wordFam(t, 4)
	g := &Goal{}
	srv := server.Dialected(&Server{}, fam.Dialect(1))
	usr := &RobustCandidate{D: fam.Dialect(1)}
	res, err := system.Run(usr, srv, g.NewWorld(goal.Env{}), system.Config{
		MaxRounds: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("robust candidate failed with the plain printer")
	}
}

func TestInterleavedClassHandlesMixedServers(t *testing.T) {
	t.Parallel()

	// Composing candidate families with enumerate.Interleave yields a
	// universal user for the UNION of server classes: plain printers
	// (handled by plain candidates) and sleeping modal printers
	// (handled only by robust candidates).
	fam := wordFam(t, 4)
	combined, err := enumerate.Interleave(Enum(fam), RobustEnum(fam))
	if err != nil {
		t.Fatal(err)
	}
	if combined.Size() != 8 {
		t.Fatalf("combined size = %d", combined.Size())
	}

	servers := []struct {
		name string
		mk   func(i int) comm.Strategy
	}{
		{"plain", func(i int) comm.Strategy {
			return server.Dialected(&Server{}, fam.Dialect(i))
		}},
		{"modal-asleep", func(i int) comm.Strategy {
			return server.Dialected(&ModalServer{StartAsleep: asleep(true)}, fam.Dialect(i))
		}},
	}
	g := &Goal{}
	for _, sv := range servers {
		for i := 0; i < fam.Size(); i++ {
			u, err := universal.NewCompactUser(combined, Sense(7))
			if err != nil {
				t.Fatal(err)
			}
			res, err := system.Run(u, sv.mk(i), g.NewWorld(goal.Env{}), system.Config{
				MaxRounds: 1000, Seed: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !goal.CompactAchieved(g, res.History, 10) {
				t.Fatalf("combined class failed on %s server, dialect %d", sv.name, i)
			}
		}
	}
}
