package printing

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestPaperTrayLimits(t *testing.T) {
	t.Parallel()

	g := &Goal{Docs: []string{"target"}, Paper: 2}
	w, ok := g.NewWorld(goal.Env{}).(*World)
	if !ok {
		t.Fatal("world type")
	}
	w.Reset(xrand.New(1))

	if w.PaperLeft() != 2 {
		t.Fatalf("initial paper = %d", w.PaperLeft())
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Step(comm.Inbox{FromServer: "EMIT junk"}); err != nil {
			t.Fatal(err)
		}
	}
	if w.PaperLeft() != 0 {
		t.Fatalf("paper after 3 emits = %d", w.PaperLeft())
	}
	if len(w.Printout()) != 2 {
		t.Fatalf("printed %d docs on a 2-sheet tray", len(w.Printout()))
	}
	// The target can no longer be printed: non-forgiving.
	if _, err := w.Step(comm.Inbox{FromServer: "EMIT target"}); err != nil {
		t.Fatal(err)
	}
	if g.Acceptable(comm.History{States: []comm.WorldState{w.Snapshot()}}) {
		t.Fatal("goal achieved after tray exhausted")
	}
}

func TestUnlimitedPaper(t *testing.T) {
	t.Parallel()

	g := &Goal{}
	if !g.ForgivingGoal() {
		t.Fatal("unlimited-paper goal should be forgiving")
	}
	if (&Goal{Paper: 3}).ForgivingGoal() {
		t.Fatal("finite-paper goal should not be forgiving")
	}
	w, ok := g.NewWorld(goal.Env{}).(*World)
	if !ok {
		t.Fatal("world type")
	}
	w.Reset(xrand.New(1))
	if w.PaperLeft() != -1 {
		t.Fatalf("unlimited tray PaperLeft = %d", w.PaperLeft())
	}
}

func TestTouchyServerPrintsErrorPages(t *testing.T) {
	t.Parallel()

	s := &TouchyServer{}
	s.Reset(xrand.New(1))

	out, err := s.Step(comm.Inbox{FromUser: "PRINT doc"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "EMIT doc" {
		t.Fatalf("valid command mishandled: %+v", out)
	}

	out, err = s.Step(comm.Inbox{FromUser: "gibberish"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "EMIT "+ErrorPage {
		t.Fatalf("garbage should print an error page: %+v", out)
	}

	out, err = s.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out != (comm.Outbox{}) {
		t.Fatalf("silence should not print: %+v", out)
	}
}

func TestUniversalBurnsPaperOnTouchyPrinter(t *testing.T) {
	t.Parallel()

	// The crux of ablation A1: with a touchy printer and a small tray,
	// universal probing destroys achievability — the goal is not
	// forgiving, so Theorem 1's guarantee (stated for forgiving goals)
	// rightly does not apply.
	fam := wordFam(t, 8)
	const serverIdx = 6

	run := func(paper int) bool {
		g := &Goal{Docs: []string{"target"}, Paper: paper}
		u, err := universal.NewCompactUser(Enum(fam), Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		srv := server.Dialected(&TouchyServer{}, fam.Dialect(serverIdx))
		res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
			MaxRounds: 500, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return goal.CompactAchieved(g, res.History, 10)
	}

	if !run(0) {
		t.Fatal("unlimited paper: universal user should succeed")
	}
	if run(3) {
		t.Fatal("3-sheet tray: probing should exhaust the paper before dialect 6 is reached")
	}
}

func TestOraclePrintsWithinTinyTray(t *testing.T) {
	t.Parallel()

	// The oracle needs one sheet: the tray is not the obstacle, the
	// probing is.
	fam := wordFam(t, 8)
	g := &Goal{Docs: []string{"target"}, Paper: 1}
	usr := &Candidate{D: fam.Dialect(6), Resend: 100}
	srv := server.Dialected(&TouchyServer{}, fam.Dialect(6))
	res, err := system.Run(usr, srv, g.NewWorld(goal.Env{}), system.Config{
		MaxRounds: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("oracle failed on a 1-sheet tray")
	}
}
