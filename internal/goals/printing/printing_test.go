package printing

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func wordFam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewWordFamily(Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func permFam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewPermutationFamily(n, 17)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestGoalMetadata(t *testing.T) {
	t.Parallel()

	g := &Goal{}
	if g.Name() != "printing" || g.Kind() != goal.KindCompact {
		t.Fatal("metadata wrong")
	}
	if g.EnvChoices() != len(DefaultDocs()) {
		t.Fatal("env choices should match default docs")
	}
	if !g.ForgivingGoal() {
		t.Fatal("printing goal must be forgiving")
	}
}

func TestNewWorldSelectsDoc(t *testing.T) {
	t.Parallel()

	g := &Goal{Docs: []string{"a", "b", "c"}}
	for choice := 0; choice < 6; choice++ {
		w, ok := g.NewWorld(goal.Env{Choice: choice}).(*World)
		if !ok {
			t.Fatal("world type")
		}
		if want := g.Docs[choice%3]; w.Target() != want {
			t.Fatalf("choice %d → target %q, want %q", choice, w.Target(), want)
		}
	}
}

func TestWorldRecordsEmits(t *testing.T) {
	t.Parallel()

	w := &World{target: "doc1"}
	w.Reset(xrand.New(1))

	out, err := w.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	task, printed, ok := ParseWorldMsg(out.ToUser)
	if !ok || task != "doc1" || printed != "" {
		t.Fatalf("announcement = %q", out.ToUser)
	}
	if w.Snapshot() != "target=doc1;printed=0;done=0" {
		t.Fatalf("snapshot = %q", w.Snapshot())
	}

	out, err = w.Step(comm.Inbox{FromServer: "EMIT other"})
	if err != nil {
		t.Fatal(err)
	}
	if _, printed, _ := ParseWorldMsg(out.ToUser); printed != "other" {
		t.Fatalf("printed field = %q", printed)
	}
	if w.Snapshot() != "target=doc1;printed=1;done=0" {
		t.Fatalf("snapshot after wrong doc = %q", w.Snapshot())
	}

	if _, err = w.Step(comm.Inbox{FromServer: "EMIT doc1"}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "target=doc1;printed=2;done=1" {
		t.Fatalf("snapshot after target = %q", w.Snapshot())
	}
	if got := w.Printout(); len(got) != 2 || got[1] != "doc1" {
		t.Fatalf("printout = %v", got)
	}
}

func TestParseWorldMsg(t *testing.T) {
	t.Parallel()

	tests := []struct {
		msg         comm.Message
		task, print string
		ok          bool
	}{
		{"TASK d|PRINTED ", "d", "", true},
		{"TASK d|PRINTED x", "d", "x", true},
		{"garbage", "", "", false},
		{"TASK d", "", "", false},
		{"FOO d|PRINTED x", "", "", false},
		{"", "", "", false},
	}
	for _, tt := range tests {
		task, printed, ok := ParseWorldMsg(tt.msg)
		if task != tt.task || printed != tt.print || ok != tt.ok {
			t.Errorf("ParseWorldMsg(%q) = (%q,%q,%v), want (%q,%q,%v)",
				tt.msg, task, printed, ok, tt.task, tt.print, tt.ok)
		}
	}
}

func TestServerNativeProtocol(t *testing.T) {
	t.Parallel()

	s := &Server{}
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{FromUser: "PRINT memo"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "EMIT memo" || out.ToUser != "ACK memo" {
		t.Fatalf("PRINT handling = %+v", out)
	}
	out, err = s.Step(comm.Inbox{FromUser: "STATUS"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "READY" {
		t.Fatalf("STATUS reply = %q", out.ToUser)
	}
	out, err = s.Step(comm.Inbox{FromUser: "gibberish"})
	if err != nil {
		t.Fatal(err)
	}
	if out != (comm.Outbox{}) {
		t.Fatalf("gibberish produced output: %+v", out)
	}
}

func TestCandidateWaitsForTask(t *testing.T) {
	t.Parallel()

	c := &Candidate{D: dialect.Identity(0)}
	c.Reset(xrand.New(1))
	out, err := c.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out != (comm.Outbox{}) {
		t.Fatal("candidate acted before receiving a task")
	}
	out, err = c.Step(comm.Inbox{FromWorld: "TASK memo|PRINTED "})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToServer != "PRINT memo" {
		t.Fatalf("candidate command = %q", out.ToServer)
	}
}

func TestCandidateRetries(t *testing.T) {
	t.Parallel()

	c := &Candidate{D: dialect.Identity(0), Resend: 3}
	c.Reset(xrand.New(1))
	sent := 0
	for i := 0; i < 9; i++ {
		out, err := c.Step(comm.Inbox{FromWorld: "TASK m|PRINTED "})
		if err != nil {
			t.Fatal(err)
		}
		if !out.ToServer.Empty() {
			sent++
		}
	}
	if sent != 3 {
		t.Fatalf("sent %d commands in 9 rounds with period 3", sent)
	}
}

// endToEnd runs one full printing execution and reports achievement.
func endToEnd(t *testing.T, fam *dialect.Family, usr comm.Strategy, srv comm.Strategy, rounds int) (*system.Result, bool) {
	t.Helper()
	g := &Goal{}
	w := g.NewWorld(goal.Env{Choice: 1})
	res, err := system.Run(usr, srv, w, system.Config{MaxRounds: rounds, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return res, goal.CompactAchieved(g, res.History, 10)
}

func TestOracleUserSucceeds(t *testing.T) {
	t.Parallel()

	for _, mk := range []func(*testing.T, int) *dialect.Family{wordFam, permFam} {
		fam := mk(t, 6)
		srv := server.Dialected(&Server{}, fam.Dialect(4))
		usr := &Candidate{D: fam.Dialect(4)}
		if _, ok := endToEnd(t, fam, usr, srv, 60); !ok {
			t.Errorf("%s: oracle user failed", fam.Name())
		}
	}
}

func TestFixedUserFailsOnMismatch(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 6)
	srv := server.Dialected(&Server{}, fam.Dialect(3))
	usr := &Candidate{D: fam.Dialect(0)}
	if _, ok := endToEnd(t, fam, usr, srv, 200); ok {
		t.Fatal("fixed-protocol user succeeded against a mismatched dialect")
	}
}

func TestUniversalUserSucceedsWithEveryDialect(t *testing.T) {
	t.Parallel()

	const n = 6
	for _, mk := range []func(*testing.T, int) *dialect.Family{wordFam, permFam} {
		fam := mk(t, n)
		for i := 0; i < n; i++ {
			i := i
			t.Run(fmt.Sprintf("%s-%d", fam.Name(), i), func(t *testing.T) {
				t.Parallel()
				u, err := universal.NewCompactUser(Enum(fam), Sense(0))
				if err != nil {
					t.Fatal(err)
				}
				srv := server.Dialected(&Server{}, fam.Dialect(i))
				if _, ok := endToEnd(t, fam, u, srv, 400); !ok {
					t.Fatalf("universal user failed on dialect %d", i)
				}
			})
		}
	}
}

func TestUniversalUserWithDelayedPrinter(t *testing.T) {
	t.Parallel()

	// A helpful-but-slow printer: still within sensing patience if we
	// give a larger window.
	fam := wordFam(t, 4)
	u, err := universal.NewCompactUser(Enum(fam), Sense(9))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Delayed(server.Dialected(&Server{}, fam.Dialect(2)), 2)
	if _, ok := endToEnd(t, fam, u, srv, 600); !ok {
		t.Fatal("universal user failed with delayed printer")
	}
}

func TestSenseSafety(t *testing.T) {
	t.Parallel()

	// The safe sense must never go (and stay) positive with the lying
	// printer: replaying any losing execution yields a negative final
	// indication.
	fam := wordFam(t, 4)
	u, err := universal.NewCompactUser(Enum(fam), Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := endToEnd(t, fam, u, &LyingServer{}, 200)
	if ok {
		t.Fatal("goal achieved with lying printer?!")
	}
	if sensing.Replay(Sense(0), res.View) {
		t.Fatal("safe sense positive on a failing execution")
	}
}

func TestTrustingSenseIsUnsafe(t *testing.T) {
	t.Parallel()

	// The ablation sense goes positive with the lying printer even
	// though the goal is not achieved — a safety violation by design.
	fam := wordFam(t, 4)
	u, err := universal.NewCompactUser(Enum(fam), TrustingSense())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := endToEnd(t, fam, u, &LyingServer{}, 200)
	if ok {
		t.Fatal("goal achieved with lying printer?!")
	}
	if !sensing.Replay(TrustingSense(), res.View) {
		t.Fatal("trusting sense failed to be fooled — ablation broken")
	}
}

func TestParanoidSenseIsNonViable(t *testing.T) {
	t.Parallel()

	// With the non-viable sense the universal user churns forever even
	// against a perfectly good printer (it may still stumble into
	// printing, but never earns a positive indication).
	fam := wordFam(t, 4)
	u, err := universal.NewCompactUser(Enum(fam), ParanoidSense(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Dialected(&Server{}, fam.Dialect(1))
	res, _ := endToEnd(t, fam, u, srv, 200)
	if sensing.Replay(ParanoidSense(0), res.View) {
		t.Fatal("paranoid sense produced a positive indication")
	}
	if u.Switches() < 10 {
		t.Fatalf("paranoid user should churn; switches = %d", u.Switches())
	}
}

func TestRefereeMonotone(t *testing.T) {
	t.Parallel()

	// Once acceptable, prefixes stay acceptable (done flag persists).
	fam := wordFam(t, 3)
	u, err := universal.NewCompactUser(Enum(fam), Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Dialected(&Server{}, fam.Dialect(2))
	g := &Goal{}
	w := g.NewWorld(goal.Env{})
	res, err := system.Run(u, srv, w, system.Config{MaxRounds: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := goal.LastUnacceptable(g, res.History)
	for n := first + 1; n <= res.History.Len(); n++ {
		if !g.Acceptable(res.History.Prefix(n)) {
			t.Fatalf("referee not monotone at prefix %d", n)
		}
	}
}

// TestWorldMatchesReferenceModel drives the SoA printout (ISSUE 6: scalar
// last/done/gen layout with a string-keyed announcement cache) against a
// straightforward string-slice reference with Sprintf encodings, over
// random EMIT traffic including repeats of the same page and junk —
// across several Reset cycles. Announcement and snapshot must be
// byte-identical every round, and StateGen must change exactly when the
// snapshot bytes change.
func TestWorldMatchesReferenceModel(t *testing.T) {
	t.Parallel()

	docs := []string{"report7", "thesis3", "memo42"}
	w := &World{target: "thesis3"}
	r := xrand.New(17)
	for run := 0; run < 3; run++ {
		w.Reset(nil)
		var printed []string
		refDone := false
		lastGen := w.StateGen()
		lastSnap := string(w.Snapshot())
		for round := 0; round < 300; round++ {
			var in comm.Inbox
			switch r.Intn(4) {
			case 0, 1: // emit a page (repeats are common in steady state)
				doc := docs[r.Intn(len(docs))]
				in.FromServer = comm.Message("EMIT " + doc)
				printed = append(printed, doc)
				if doc == "thesis3" {
					refDone = true
				}
			case 2: // junk
				in.FromServer = "READY"
			}
			out, err := w.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			last := ""
			if len(printed) > 0 {
				last = printed[len(printed)-1]
			}
			wantStatus := fmt.Sprintf("TASK %s|PRINTED %s", "thesis3", last)
			if string(out.ToUser) != wantStatus {
				t.Fatalf("run %d round %d: announcement %q, want %q", run, round, out.ToUser, wantStatus)
			}
			done := 0
			if refDone {
				done = 1
			}
			wantSnap := fmt.Sprintf("target=%s;printed=%d;done=%d", "thesis3", len(printed), done)
			if got := string(w.Snapshot()); got != wantSnap {
				t.Fatalf("run %d round %d: snapshot %q, want %q", run, round, got, wantSnap)
			}
			if got := string(w.AppendSnapshot([]byte("pre:"))); got != "pre:"+wantSnap {
				t.Fatalf("run %d round %d: AppendSnapshot = %q", run, round, got)
			}
			gen := w.StateGen()
			if (gen != lastGen) != (wantSnap != lastSnap) {
				t.Fatalf("run %d round %d: gen changed=%v but snapshot changed=%v",
					run, round, gen != lastGen, wantSnap != lastSnap)
			}
			lastGen, lastSnap = gen, wantSnap
		}
	}
}
