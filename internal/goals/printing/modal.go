package printing

import (
	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/xrand"
)

// ModalServer is a printer with internal modes: it may start ASLEEP — the
// paper's helpfulness definition quantifies over all server start states,
// so a universal user must cope with whatever mode it finds the printer
// in. While asleep it ignores print commands; a "STATUS" command wakes it.
//
// The plain Candidate never sends STATUS and so is NOT a witness of this
// server's helpfulness; RobustCandidate (wake then print) is. This is the
// paper's "helpful for a goal and a class of user strategies" nuance made
// executable: helpfulness is relative to the candidate class.
type ModalServer struct {
	// StartAsleep pins the initial mode; if nil, the mode is drawn from
	// the Reset generator (an arbitrary start state).
	StartAsleep *bool

	asleep bool
	inner  Server
}

var _ comm.Strategy = (*ModalServer)(nil)

// Reset implements comm.Strategy.
func (s *ModalServer) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if s.StartAsleep != nil {
		s.asleep = *s.StartAsleep
	} else if r != nil {
		s.asleep = r.Bool()
	} else {
		s.asleep = true
	}
}

// Asleep reports the current mode (for tests).
func (s *ModalServer) Asleep() bool { return s.asleep }

// Step implements comm.Strategy.
func (s *ModalServer) Step(in comm.Inbox) (comm.Outbox, error) {
	if string(in.FromUser) == cmdStatus {
		s.asleep = false
		return comm.Outbox{ToUser: rspReady}, nil
	}
	if s.asleep {
		return comm.Outbox{}, nil
	}
	return s.inner.Step(in)
}

// RobustCandidate is the dialect-d printing user hardened against modal
// printers: every cycle it first wakes the printer ("STATUS"), then issues
// the print command. It also achieves the goal with the plain Server, so
// the robust candidate class certifies helpfulness for both server kinds.
type RobustCandidate struct {
	// D is the dialect this candidate speaks to the server.
	D dialect.Dialect

	task    string
	elapsed int
}

var _ comm.Strategy = (*RobustCandidate)(nil)

// Reset implements comm.Strategy.
func (c *RobustCandidate) Reset(*xrand.Rand) {
	c.task = ""
	c.elapsed = 0
}

// Step implements comm.Strategy.
func (c *RobustCandidate) Step(in comm.Inbox) (comm.Outbox, error) {
	if task, _, ok := ParseWorldMsg(in.FromWorld); ok {
		c.task = task
	}
	if c.task == "" {
		return comm.Outbox{}, nil
	}
	defer func() { c.elapsed++ }()
	switch c.elapsed % 3 {
	case 0:
		return comm.Outbox{ToServer: c.D.Encode(comm.Message(cmdStatus))}, nil
	case 1:
		return comm.Outbox{
			ToServer: c.D.Encode(comm.Message(cmdPrint + " " + c.task)),
		}, nil
	default:
		return comm.Outbox{}, nil
	}
}

// RobustEnum enumerates one RobustCandidate per dialect in the family.
func RobustEnum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("printing-robust/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &RobustCandidate{D: fam.Dialect(i)}
	})
}
