package treasure

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestWorldUnlocks(t *testing.T) {
	t.Parallel()

	w := &World{}
	w.Reset(xrand.New(1))
	out, err := w.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "LOCKED" || w.Snapshot() != "vault=locked" {
		t.Fatalf("initial state wrong: %q %q", out.ToUser, w.Snapshot())
	}
	out, err = w.Step(comm.Inbox{FromServer: "UNLOCK"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "OPEN" || w.Snapshot() != "vault=open" {
		t.Fatalf("unlock failed: %q %q", out.ToUser, w.Snapshot())
	}
	// The vault stays open.
	if _, err := w.Step(comm.Inbox{}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "vault=open" {
		t.Fatal("vault re-locked")
	}
}

func TestServerSecretHandling(t *testing.T) {
	t.Parallel()

	s := &Server{Secret: 5}
	s.Reset(xrand.New(1))

	tests := []struct {
		msg     comm.Message
		toUser  comm.Message
		toWorld comm.Message
	}{
		{"pass 5", "GRANTED", "UNLOCK"},
		{"pass 4", "DENIED", ""},
		{"pass x", "DENIED", ""},
		{"open sesame", "", ""},
		{"", "", ""},
	}
	for _, tt := range tests {
		out, err := s.Step(comm.Inbox{FromUser: tt.msg})
		if err != nil {
			t.Fatal(err)
		}
		if out.ToUser != tt.toUser || out.ToWorld != tt.toWorld {
			t.Errorf("Step(%q) = %+v", tt.msg, out)
		}
	}
}

func TestWrongGuessesIndistinguishable(t *testing.T) {
	t.Parallel()

	// The lower bound requires that wrong guesses leak nothing: two
	// servers with different secrets respond identically to any guess
	// that matches neither secret.
	a, b := &Server{Secret: 3}, &Server{Secret: 9}
	a.Reset(xrand.New(1))
	b.Reset(xrand.New(1))
	for guess := 0; guess < 12; guess++ {
		if guess == 3 || guess == 9 {
			continue
		}
		msg := comm.Message(fmt.Sprintf("pass %d", guess))
		outA, errA := a.Step(comm.Inbox{FromUser: msg})
		outB, errB := b.Step(comm.Inbox{FromUser: msg})
		if errA != nil || errB != nil || outA != outB {
			t.Fatalf("guess %d distinguishes servers: %+v vs %+v", guess, outA, outB)
		}
	}
}

func TestUniversalOpensEveryVault(t *testing.T) {
	t.Parallel()

	const n = 10
	cls := Class(n)
	g := &Goal{}
	for i := 0; i < n; i++ {
		u, err := universal.NewCompactUser(Enum(n), Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := system.Run(u, cls.New(i), g.NewWorld(goal.Env{}), system.Config{
			MaxRounds: 30 * n, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 10) {
			t.Fatalf("vault %d not opened", i)
		}
	}
}

func TestOverheadLinearInSecret(t *testing.T) {
	t.Parallel()

	// Rounds to convergence must grow roughly linearly with the secret's
	// position in the enumeration — the Ω(N) worst case.
	const n = 32
	g := &Goal{}
	rounds := func(secret int) int {
		u, err := universal.NewCompactUser(Enum(n), Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := system.Run(u, &Server{Secret: secret}, g.NewWorld(goal.Env{}),
			system.Config{MaxRounds: 40 * n, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 5) {
			t.Fatalf("secret %d not found", secret)
		}
		return goal.LastUnacceptable(g, res.History)
	}
	r4, r16, r31 := rounds(4), rounds(16), rounds(31)
	if !(r4 < r16 && r16 < r31) {
		t.Fatalf("overhead not increasing: %d, %d, %d", r4, r16, r31)
	}
	// Roughly linear: doubling the index should land within [1.2x, 4x].
	if ratio := float64(r31) / float64(r16); ratio < 1.2 || ratio > 4 {
		t.Fatalf("overhead ratio %v not plausibly linear (r16=%d, r31=%d)", ratio, r16, r31)
	}
}

func TestShuffledOrderStillUniversal(t *testing.T) {
	t.Parallel()

	// Any enumeration order works; only the overhead profile changes.
	const n = 16
	shuffled, err := enumerate.Shuffled(Enum(n), 77)
	if err != nil {
		t.Fatal(err)
	}
	g := &Goal{}
	for _, secret := range []int{0, 7, 15} {
		u, err := universal.NewCompactUser(shuffled, Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := system.Run(u, &Server{Secret: secret}, g.NewWorld(goal.Env{}),
			system.Config{MaxRounds: 40 * n, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 5) {
			t.Fatalf("shuffled user failed on secret %d", secret)
		}
	}
}

func TestClassSizeAndSecrets(t *testing.T) {
	t.Parallel()

	cls := Class(5)
	if cls.Size() != 5 {
		t.Fatalf("size = %d", cls.Size())
	}
	// Server i must hold secret i.
	for i := 0; i < 5; i++ {
		s := cls.New(i)
		s.Reset(xrand.New(1))
		out, err := s.Step(comm.Inbox{FromUser: comm.Message(fmt.Sprintf("pass %d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if out.ToWorld != "UNLOCK" {
			t.Fatalf("server %d does not accept password %d", i, i)
		}
	}
}

func TestGoalRefereeOnHistories(t *testing.T) {
	t.Parallel()

	g := &Goal{}
	h := comm.History{States: []comm.WorldState{"vault=locked", "vault=open"}}
	if g.Acceptable(h.Prefix(1)) {
		t.Fatal("locked prefix acceptable")
	}
	if !g.Acceptable(h) {
		t.Fatal("open prefix unacceptable")
	}
}
