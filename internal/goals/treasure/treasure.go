// Package treasure implements the password-vault goal used to demonstrate
// that the enumeration overhead of universal users is essentially necessary
// (paper §3: "there exist natural cases in which any universal strategy
// must incur such an overhead").
//
// The server guards a vault with a secret password drawn from [0, N). Only
// the correct password makes the server unlock the vault (a message to the
// world); the server's replies to wrong guesses carry no information about
// the secret. Any user strategy that works against the entire class of N
// password servers must therefore try Ω(N) passwords in the worst case —
// the information-theoretic core of the lower bound.
package treasure

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/xrand"
)

// DefaultPatience gives each password candidate time for one full
// user→server→world→user feedback loop plus margin.
const DefaultPatience = 5

// Goal is the compact vault goal: a prefix is acceptable iff the vault is
// open. The world's non-deterministic choice is trivial (one environment);
// the adversarial choice lives in the server class.
type Goal struct{}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

// Name implements goal.Goal.
func (*Goal) Name() string { return "treasure" }

// Kind implements goal.Goal.
func (*Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (*Goal) EnvChoices() int { return 1 }

// NewWorld implements goal.Goal.
func (*Goal) NewWorld(goal.Env) goal.World { return &World{} }

// Acceptable implements goal.CompactGoal.
func (*Goal) Acceptable(prefix comm.History) bool { return prefix.Last() == "vault=open" }

// AcceptableWorld implements goal.WorldJudge: the same predicate as
// Acceptable, judged on the live vault instead of its serialized state.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if vw, ok := w.(*World); ok {
		return vw.open
	}
	return w.Snapshot() == "vault=open"
}

// ForgivingGoal implements goal.Forgiving.
func (*Goal) ForgivingGoal() bool { return true }

// World is the vault: locked until the server sends "UNLOCK", and it tells
// the user the vault's state every round ("LOCKED" / "OPEN").
type World struct {
	open bool
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Reset implements comm.Strategy.
func (w *World) Reset(*xrand.Rand) { w.open = false }

// StateGen implements goal.StateVersioned: the vault has exactly two
// states, so the generation is the state itself.
func (w *World) StateGen() uint64 {
	if w.open {
		return 1
	}
	return 0
}

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if in.FromServer == "UNLOCK" {
		w.open = true
	}
	if w.open {
		return comm.Outbox{ToUser: "OPEN"}, nil
	}
	return comm.Outbox{ToUser: "LOCKED"}, nil
}

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	if w.open {
		return "vault=open"
	}
	return "vault=locked"
}

// AppendSnapshot implements goal.StateAppender, byte-identical to
// Snapshot.
func (w *World) AppendSnapshot(dst []byte) []byte {
	if w.open {
		return append(dst, "vault=open"...)
	}
	return append(dst, "vault=locked"...)
}

// Server guards the vault with the given secret. On "pass <k>" it unlocks
// the vault iff k equals the secret; all wrong guesses receive the same
// "DENIED" reply, so replies carry no information beyond failure.
type Server struct {
	Secret int
}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy.
func (*Server) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (s *Server) Step(in comm.Inbox) (comm.Outbox, error) {
	rest, ok := strings.CutPrefix(string(in.FromUser), "pass ")
	if !ok {
		return comm.Outbox{}, nil
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k != s.Secret {
		return comm.Outbox{ToUser: "DENIED"}, nil
	}
	return comm.Outbox{ToUser: "GRANTED", ToWorld: "UNLOCK"}, nil
}

// Class returns the password-server class of size n: server i holds secret
// i. A universal user must cope with all of them.
func Class(n int) *server.Class {
	factories := make([]func() comm.Strategy, n)
	for i := range factories {
		secret := i
		factories[i] = func() comm.Strategy { return &Server{Secret: secret} }
	}
	return server.NewClass(fmt.Sprintf("password(%d)", n), factories)
}

// Candidate is the user strategy that tries one fixed password repeatedly.
type Candidate struct {
	Guess int

	elapsed int
	cmd     msgbuf.Memo1[int, comm.Message] // "pass <Guess>", built once per guess
}

var _ comm.Strategy = (*Candidate)(nil)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) { c.elapsed = 0 }

// Step implements comm.Strategy.
func (c *Candidate) Step(comm.Inbox) (comm.Outbox, error) {
	defer func() { c.elapsed++ }()
	if c.elapsed%2 == 0 {
		msg, ok := c.cmd.Get(c.Guess)
		if !ok {
			msg = comm.Message("pass " + strconv.Itoa(c.Guess))
			c.cmd.Put(c.Guess, msg)
		}
		return comm.Outbox{ToServer: msg}, nil
	}
	return comm.Outbox{}, nil
}

// Enum enumerates the n password candidates in numeric order.
func Enum(n int) enumerate.Enumerator {
	return enumerate.FromFunc(fmt.Sprintf("treasure(%d)", n), n, func(i int) comm.Strategy {
		return &Candidate{Guess: i}
	})
}

// Sense is positive while the vault has been observed OPEN within the
// patience window. It is safe (the world reports the real vault state) and
// viable (the correct password opens the vault within the window).
func Sense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "OPEN"
	}), patience)
}
