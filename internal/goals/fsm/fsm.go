// Package fsm implements a mechanically generated family of goals: driving
// a finite-state machine (a Mealy transducer from internal/fst) to emit a
// designated target symbol.
//
// Where the stock goals are four hand-written demonstrations, every machine
// index of every fst.Space is an fsm goal — a countable goal family with
// content-derived identity (space dimensions + machine index fully determine
// the referee), which is what lets sweeps scale the scenario matrix from
// hundreds to hundreds of thousands without hand-writing worlds. The model
// is a control panel: the user presses buttons (input symbols) through the
// server, the world steps the machine and announces its state, and the goal
// is achieved once the machine has emitted the target output symbol
// (always NumOut-1, the space's designated "accept" symbol).
//
// Machines whose target is unreachable from the initial state are valid
// goals that no strategy can achieve — sweeps pin them failing, the
// infeasible class of the sensing-bound tests.
package fsm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/fst"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// FamilyVersion identifies the fsm family's binding semantics for result
// caching: it is composed into the registry version (see
// scenario.Builtin), so bumping it on any behavioral change here
// invalidates exactly the cached aggregates this package produced.
const FamilyVersion = "fsm/1"

// DefaultPatience gives a candidate three full user→server→world→user
// loops (one per press of a shortest winning input sequence on the stock
// small spaces) plus margin.
const DefaultPatience = 12

// Vocabulary is the token vocabulary of the panel protocol, the domain of
// its word-dialect families. Symbol numbers are payload and pass through
// dialects untouched.
func Vocabulary() []string { return []string{"press", "PRESSED"} }

// ParseSpace parses the "NxAxB" spelling of an fst.Space (states x inputs
// x outputs), e.g. "2x3x2".
func ParseSpace(s string) (fst.Space, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return fst.Space{}, fmt.Errorf("fsm: bad space %q: want NxAxB (e.g. 2x3x2)", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return fst.Space{}, fmt.Errorf("fsm: bad space %q: dimension %q is not a positive integer", s, p)
		}
		dims[i] = v
	}
	return fst.Space{NumStates: dims[0], NumIn: dims[1], NumOut: dims[2]}, nil
}

// FormatSpace renders a space in the "NxAxB" spelling ParseSpace reads.
func FormatSpace(s fst.Space) string {
	return fmt.Sprintf("%dx%dx%d", s.NumStates, s.NumIn, s.NumOut)
}

// Goal is the compact panel goal for one machine of one space: a prefix is
// acceptable iff the machine has emitted the target symbol. All machine
// analysis (shortest-path policy, feasibility, forgiveness) happens once
// at construction; worlds, servers and candidates share the precomputed
// tables read-only, keeping the per-round path allocation-free.
type Goal struct {
	space  fst.Space
	index  uint64
	target int
	m      *fst.Machine

	// policy[q] is the first input of a shortest input sequence from
	// state q whose final step emits the target, or -1 if no sequence
	// exists from q.
	policy []int

	feasible  bool
	forgiving bool

	// Precomputed protocol messages, indexed by state/input/doneness.
	runMsg  []comm.Message    // world→user "RUN q<q>"
	snapMsg []comm.WorldState // snapshot per state<<1|done
	pressed []comm.Message    // server→user "PRESSED <k>"
	sym     []comm.Message    // server→world "sym <k>"
}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

// New builds the goal for machine `index` of `space`. The index must lie
// below the space's size — wrapping it silently would let two different
// axis values name the same referee and corrupt content-derived scenario
// identity.
func New(space fst.Space, index uint64) (*Goal, error) {
	if !space.Valid() {
		return nil, fmt.Errorf("fsm: invalid space %s", FormatSpace(space))
	}
	if size := space.Size(); index >= size {
		return nil, fmt.Errorf("fsm: machine index %d outside space %s of size %d", index, FormatSpace(space), size)
	}
	m, err := space.Machine(index)
	if err != nil {
		return nil, err
	}
	g := &Goal{space: space, index: index, target: space.NumOut - 1, m: m}
	g.analyze()
	g.precompute()
	return g, nil
}

// analyze computes, per state, the shortest number of steps to emit the
// target and the first input of such a sequence (Bellman-Ford over a
// graph of at most a few dozen nodes), then feasibility from the initial
// state and forgiveness (target reachable from every state reachable from
// the initial one).
func (g *Goal) analyze() {
	n, a := g.space.NumStates, g.space.NumIn
	const inf = 1 << 30
	dist := make([]int, n)
	g.policy = make([]int, n)
	for q := range dist {
		dist[q] = inf
		g.policy[q] = -1
	}
	for changed := true; changed; {
		changed = false
		for q := 0; q < n; q++ {
			for i := 0; i < a; i++ {
				cell := q*a + i
				var cand int
				switch {
				case g.m.Out[cell] == g.target:
					cand = 1
				case dist[g.m.Next[cell]] < inf:
					cand = 1 + dist[g.m.Next[cell]]
				default:
					continue
				}
				if cand < dist[q] {
					dist[q], g.policy[q] = cand, i
					changed = true
				}
			}
		}
	}
	g.feasible = dist[0] < inf

	// Forgiving iff no reachable state is a dead end.
	reached := make([]bool, n)
	reached[0] = true
	queue := []int{0}
	g.forgiving = g.feasible
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if dist[q] == inf {
			g.forgiving = false
		}
		for i := 0; i < a; i++ {
			if next := g.m.Next[q*a+i]; !reached[next] {
				reached[next] = true
				queue = append(queue, next)
			}
		}
	}
}

// precompute materializes every protocol message once, so the round loop
// only ever hands out shared strings.
func (g *Goal) precompute() {
	n, a := g.space.NumStates, g.space.NumIn
	g.runMsg = make([]comm.Message, n)
	g.snapMsg = make([]comm.WorldState, 2*n)
	for q := 0; q < n; q++ {
		g.runMsg[q] = comm.Message("RUN q" + msgbuf.Itoa(q))
		g.snapMsg[q<<1] = comm.WorldState(fmt.Sprintf("fsm=%s#%d;q=%d;done=0", FormatSpace(g.space), g.index, q))
		g.snapMsg[q<<1|1] = comm.WorldState(fmt.Sprintf("fsm=%s#%d;q=%d;done=1", FormatSpace(g.space), g.index, q))
	}
	g.pressed = make([]comm.Message, a)
	g.sym = make([]comm.Message, a)
	for k := 0; k < a; k++ {
		g.pressed[k] = comm.Message("PRESSED " + msgbuf.Itoa(k))
		g.sym[k] = comm.Message("sym " + msgbuf.Itoa(k))
	}
}

// Name implements goal.Goal. The name is the family name; a scenario's
// space/machine axes carry the instance identity.
func (*Goal) Name() string { return "fsm" }

// Instance identifies the specific machine, e.g. "fsm/2x3x2#1729".
func (g *Goal) Instance() string {
	return fmt.Sprintf("fsm/%s#%d", FormatSpace(g.space), g.index)
}

// Space returns the goal's machine space.
func (g *Goal) Space() fst.Space { return g.space }

// Index returns the goal's machine index within its space.
func (g *Goal) Index() uint64 { return g.index }

// Target returns the output symbol whose emission achieves the goal.
func (g *Goal) Target() int { return g.target }

// Feasible reports whether the target is emittable from the initial
// state — whether any strategy can achieve the goal at all.
func (g *Goal) Feasible() bool { return g.feasible }

// Kind implements goal.Goal.
func (*Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (*Goal) EnvChoices() int { return 1 }

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(goal.Env) goal.World { return &World{g: g} }

// Acceptable implements goal.CompactGoal: the machine has emitted the
// target iff the snapshot's done flag is set.
func (*Goal) Acceptable(prefix comm.History) bool {
	return strings.HasSuffix(string(prefix.Last()), "done=1")
}

// AcceptableWorld implements goal.WorldJudge: the same predicate, judged
// on the live machine.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if pw, ok := w.(*World); ok {
		return pw.done
	}
	return strings.HasSuffix(string(w.Snapshot()), "done=1")
}

// ForgivingGoal implements goal.Forgiving: the goal is forgiving iff no
// reachable state is a dead end, so early missteps never strand the
// machine (computed mechanically at construction).
func (g *Goal) ForgivingGoal() bool { return g.forgiving }

// World runs the machine: each "sym <k>" from the server steps it, the
// emission of the target symbol latches done, and the user is told the
// current state ("RUN q<i>", "DONE" once done) every round.
type World struct {
	g     *Goal
	state int
	done  bool
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Reset implements comm.Strategy.
func (w *World) Reset(*xrand.Rand) { w.state, w.done = 0, false }

// StateGen implements goal.StateVersioned: (state, done) fully determines
// the snapshot, so it is its own generation.
func (w *World) StateGen() uint64 {
	gen := uint64(w.state) << 1
	if w.done {
		gen |= 1
	}
	return gen
}

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if rest, ok := strings.CutPrefix(string(in.FromServer), "sym "); ok {
		if k, err := strconv.Atoi(rest); err == nil && k >= 0 && k < w.g.space.NumIn {
			cell := w.state*w.g.space.NumIn + k
			if w.g.m.Out[cell] == w.g.target {
				w.done = true
			}
			w.state = w.g.m.Next[cell]
		}
	}
	if w.done {
		return comm.Outbox{ToUser: "DONE"}, nil
	}
	return comm.Outbox{ToUser: w.g.runMsg[w.state]}, nil
}

func (w *World) snapIdx() int {
	i := w.state << 1
	if w.done {
		i |= 1
	}
	return i
}

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState { return w.g.snapMsg[w.snapIdx()] }

// AppendSnapshot implements goal.StateAppender, byte-identical to
// Snapshot.
func (w *World) AppendSnapshot(dst []byte) []byte {
	return append(dst, w.g.snapMsg[w.snapIdx()]...)
}

// Server is the honest native-protocol panel operator: on "press <k>" it
// acknowledges the user and forwards the symbol to the panel. All replies
// are the goal's precomputed strings.
type Server struct {
	G *Goal
}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy.
func (*Server) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (s *Server) Step(in comm.Inbox) (comm.Outbox, error) {
	rest, ok := strings.CutPrefix(string(in.FromUser), "press ")
	if !ok {
		return comm.Outbox{}, nil
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 0 || k >= s.G.space.NumIn {
		return comm.Outbox{}, nil
	}
	return comm.Outbox{ToUser: s.G.pressed[k], ToWorld: s.G.sym[k]}, nil
}

// Candidate is the user strategy for one dialect: every third round (one
// full user→server→world→user feedback loop) it presses the
// shortest-path input for the state the world last announced. It stays
// silent once done, and from states the analysis marked dead (or when the
// goal is infeasible) there is nothing useful to press.
type Candidate struct {
	D dialect.Dialect
	G *Goal

	elapsed int
	state   int
	done    bool
	cmd     msgbuf.Table[int, comm.Message] // encoded "press <k>" per input
}

var _ comm.Strategy = (*Candidate)(nil)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) { c.elapsed, c.state, c.done = 0, 0, false }

// Step implements comm.Strategy.
func (c *Candidate) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { c.elapsed++ }()
	switch {
	case in.FromWorld == "DONE":
		c.done = true
	default:
		if rest, ok := strings.CutPrefix(string(in.FromWorld), "RUN q"); ok {
			if q, err := strconv.Atoi(rest); err == nil && q >= 0 && q < c.G.space.NumStates {
				c.state = q
			}
		}
	}
	if c.done || c.elapsed%3 != 0 {
		return comm.Outbox{}, nil
	}
	k := c.G.policy[c.state]
	if k < 0 {
		return comm.Outbox{}, nil
	}
	msg, ok := c.cmd.Get(k)
	if !ok {
		msg = c.D.Encode(comm.Message("press " + msgbuf.Itoa(k)))
		c.cmd.Put(k, msg)
	}
	return comm.Outbox{ToServer: msg}, nil
}

// Enum enumerates one candidate per dialect of the family.
func (g *Goal) Enum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc(g.Instance()+"/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &Candidate{D: fam.Dialect(i), G: g}
	})
}

// Sense is positive while the world has been observed DONE within the
// patience window. It is safe (the panel itself reports completion on the
// world channel, which no adversary wrapper rewrites) and viable on
// feasible machines (the matching candidate reaches DONE within the
// window).
func Sense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "DONE"
	}), patience)
}
