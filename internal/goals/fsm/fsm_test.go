package fsm

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/fst"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func TestParseSpaceRoundTrip(t *testing.T) {
	t.Parallel()

	sp, err := ParseSpace("2x3x2")
	if err != nil {
		t.Fatal(err)
	}
	if sp != (fst.Space{NumStates: 2, NumIn: 3, NumOut: 2}) {
		t.Fatalf("parsed %+v", sp)
	}
	if got := FormatSpace(sp); got != "2x3x2" {
		t.Fatalf("round trip = %q", got)
	}
	for _, bad := range []string{"", "2x3", "2x3x2x2", "0x1x1", "ax1x1", "2x-1x2"} {
		if _, err := ParseSpace(bad); err == nil {
			t.Fatalf("ParseSpace(%q) accepted", bad)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	t.Parallel()

	sp := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	if _, err := New(sp, sp.Size()); err == nil {
		t.Fatal("index == Size accepted")
	}
	if _, err := New(fst.Space{}, 0); err == nil {
		t.Fatal("invalid space accepted")
	}
}

// winnable returns the index (in 2x2x2) of a machine where pressing 1
// from state 0 moves to state 1 silently, and pressing 0 from state 1
// emits the target: feasible in two presses, forgiving.
func winnable(t *testing.T) (fst.Space, uint64) {
	t.Helper()
	sp := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	m := &fst.Machine{
		NumStates: 2, NumIn: 2, NumOut: 2,
		// cells: (q0,i0) (q0,i1) (q1,i0) (q1,i1)
		Next: []int{0, 1, 1, 0},
		Out:  []int{0, 0, 1, 0},
	}
	idx, err := sp.Index(m)
	if err != nil {
		t.Fatal(err)
	}
	return sp, idx
}

func TestAnalysisComputesPolicyAndFlags(t *testing.T) {
	t.Parallel()

	sp, idx := winnable(t)
	g, err := New(sp, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Feasible() || !g.ForgivingGoal() {
		t.Fatalf("winnable machine analyzed as feasible=%v forgiving=%v", g.Feasible(), g.ForgivingGoal())
	}
	if g.policy[0] != 1 || g.policy[1] != 0 {
		t.Fatalf("policy = %v, want [1 0]", g.policy)
	}
	if g.Target() != 1 {
		t.Fatalf("target = %d", g.Target())
	}

	// Machine 0 of any space maps every cell to (state 0, output 0):
	// the target output 1 is never emitted — the canonical infeasible
	// machine.
	g0, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.Feasible() || g0.ForgivingGoal() {
		t.Fatal("all-zero machine analyzed as feasible")
	}
	if g0.policy[0] != -1 {
		t.Fatalf("dead state has policy %d", g0.policy[0])
	}
}

func TestWorldRunsMachineAndLatchesDone(t *testing.T) {
	t.Parallel()

	sp, idx := winnable(t)
	g, err := New(sp, idx)
	if err != nil {
		t.Fatal(err)
	}
	w := g.NewWorld(goal.Env{}).(*World)
	w.Reset(xrand.New(1))

	out, err := w.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "RUN q0" || string(w.Snapshot()) != "fsm=2x2x2#"+itoa(idx)+";q=0;done=0" {
		t.Fatalf("initial round: %q %q", out.ToUser, w.Snapshot())
	}
	gen0 := w.StateGen()

	out, err = w.Step(comm.Inbox{FromServer: "sym 1"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "RUN q1" {
		t.Fatalf("after sym 1: %q", out.ToUser)
	}
	if w.StateGen() == gen0 {
		t.Fatal("state changed but generation did not")
	}

	out, err = w.Step(comm.Inbox{FromServer: "sym 0"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToUser != "DONE" {
		t.Fatalf("target emission not announced: %q", out.ToUser)
	}
	if !g.AcceptableWorld(w) {
		t.Fatal("live judge rejects done world")
	}
	// done latches across further (even garbage) symbols.
	for _, msg := range []comm.Message{"sym 1", "sym 9", "nonsense", ""} {
		out, err = w.Step(comm.Inbox{FromServer: msg})
		if err != nil {
			t.Fatal(err)
		}
		if out.ToUser != "DONE" {
			t.Fatalf("done unlatched by %q", msg)
		}
	}
	// Snapshot and AppendSnapshot must agree byte for byte.
	if got := string(w.AppendSnapshot(nil)); got != string(w.Snapshot()) {
		t.Fatalf("AppendSnapshot %q != Snapshot %q", got, w.Snapshot())
	}
	h := comm.History{States: []comm.WorldState{w.Snapshot()}}
	if !g.Acceptable(h) {
		t.Fatal("referee rejects done snapshot")
	}
}

func itoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	return string(b[i:])
}

func TestServerPanelProtocol(t *testing.T) {
	t.Parallel()

	sp, idx := winnable(t)
	g, err := New(sp, idx)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{G: g}
	s.Reset(xrand.New(1))
	tests := []struct {
		msg     comm.Message
		toUser  comm.Message
		toWorld comm.Message
	}{
		{"press 0", "PRESSED 0", "sym 0"},
		{"press 1", "PRESSED 1", "sym 1"},
		{"press 2", "", ""},
		{"press -1", "", ""},
		{"press x", "", ""},
		{"open", "", ""},
		{"", "", ""},
	}
	for _, tt := range tests {
		out, err := s.Step(comm.Inbox{FromUser: tt.msg})
		if err != nil {
			t.Fatal(err)
		}
		if out.ToUser != tt.toUser || out.ToWorld != tt.toWorld {
			t.Errorf("Step(%q) = %+v", tt.msg, out)
		}
	}
}

func family(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewWordFamily(Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestUniversalDrivesFeasibleMachines(t *testing.T) {
	t.Parallel()

	sp := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	fam := family(t, 4)
	tried, achieved := 0, 0
	for idx := uint64(0); idx < 40 && tried < 6; idx++ {
		g, err := New(sp, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Feasible() || !g.ForgivingGoal() {
			continue
		}
		tried++
		// Pair the universal user with every dialect member of the class.
		for d := 0; d < fam.Size(); d++ {
			u, err := universal.NewCompactUser(g.Enum(fam), Sense(0))
			if err != nil {
				t.Fatal(err)
			}
			srv := server.Dialected(&Server{G: g}, fam.Dialect(d))
			res, err := system.Run(u, srv, g.NewWorld(goal.Env{}),
				system.Config{MaxRounds: 400, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if !goal.CompactAchieved(g, res.History, 10) {
				t.Fatalf("machine %d, dialect %d: goal not achieved", idx, d)
			}
		}
		achieved++
	}
	if achieved == 0 {
		t.Fatal("no feasible forgiving machine found in the probe range")
	}
}

func TestInfeasibleMachinePinnedFailing(t *testing.T) {
	t.Parallel()

	sp := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	g, err := New(sp, 0) // all-zero machine: target unreachable
	if err != nil {
		t.Fatal(err)
	}
	fam := family(t, 4)
	u, err := universal.NewCompactUser(g.Enum(fam), Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run(u, server.Dialected(&Server{G: g}, fam.Dialect(0)), g.NewWorld(goal.Env{}),
		system.Config{MaxRounds: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("infeasible machine was achieved")
	}
}
