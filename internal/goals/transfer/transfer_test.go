package transfer

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

func fam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	f, err := dialect.NewWordFamily(Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWorldValidatesChunks(t *testing.T) {
	t.Parallel()

	w := &World{K: 3}
	w.Reset(xrand.New(1))

	// Wrong content is rejected.
	if _, err := w.Step(comm.Inbox{FromServer: "REL 0 wrongdata"}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "have=0/3;done=0" {
		t.Fatalf("wrong content accepted: %q", w.Snapshot())
	}

	// Out-of-range index is rejected.
	if _, err := w.Step(comm.Inbox{FromServer: comm.Message("REL 9 " + Data(9))}); err != nil {
		t.Fatal(err)
	}
	if w.Snapshot() != "have=0/3;done=0" {
		t.Fatalf("out-of-range chunk accepted: %q", w.Snapshot())
	}

	for i := 0; i < 3; i++ {
		msg := comm.Message(fmt.Sprintf("REL %d %s", i, Data(i)))
		if _, err := w.Step(comm.Inbox{FromServer: msg}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Snapshot() != "have=3/3;done=1" {
		t.Fatalf("snapshot after full transfer: %q", w.Snapshot())
	}
}

func TestParseStatus(t *testing.T) {
	t.Parallel()

	k, mask, ok := ParseStatus("WANT 4|HAVE 5")
	if !ok || k != 4 || mask != 5 {
		t.Fatalf("parsed (%d,%d,%v)", k, mask, ok)
	}
	for _, bad := range []comm.Message{"", "WANT 4", "WANT x|HAVE 1", "WANT 4|HAVE x", "W 4|H 1"} {
		if _, _, ok := ParseStatus(bad); ok {
			t.Errorf("ParseStatus(%q) accepted", bad)
		}
	}
}

func TestServerRelay(t *testing.T) {
	t.Parallel()

	s := &Server{}
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{FromUser: "STORE 2 blob2"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ToWorld != "REL 2 blob2" || out.ToUser != "STORED 2" {
		t.Fatalf("relay output: %+v", out)
	}
	for _, bad := range []comm.Message{"STORE", "STORE x y", "junk", ""} {
		out, err := s.Step(comm.Inbox{FromUser: bad})
		if err != nil {
			t.Fatal(err)
		}
		if out != (comm.Outbox{}) {
			t.Fatalf("malformed %q produced %+v", bad, out)
		}
	}
}

func TestOracleCandidateTransfersAll(t *testing.T) {
	t.Parallel()

	f := fam(t, 4)
	g := &Goal{K: 6}
	usr := &Candidate{D: f.Dialect(2)}
	srv := server.Dialected(&Server{}, f.Dialect(2))
	res, err := system.Run(usr, srv, g.NewWorld(goal.Env{}), system.Config{
		MaxRounds: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatalf("transfer incomplete: %q", res.History.Last())
	}
}

func TestUniversalTransferAllDialects(t *testing.T) {
	t.Parallel()

	const n = 5
	f := fam(t, n)
	g := &Goal{K: 4}
	for i := 0; i < n; i++ {
		u, err := universal.NewCompactUser(Enum(f), Sense(0))
		if err != nil {
			t.Fatal(err)
		}
		srv := server.Dialected(&Server{}, f.Dialect(i))
		res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
			MaxRounds: 100 * n, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !goal.CompactAchieved(g, res.History, 10) {
			t.Fatalf("universal transfer failed on dialect %d", i)
		}
	}
}

func TestUniversalTransferUnderNoise(t *testing.T) {
	t.Parallel()

	// Forgiving goal + retransmission: the universal user tolerates a
	// lossy server (p=0.3) with a patience large enough to ride out
	// drop streaks.
	f := fam(t, 4)
	g := &Goal{K: 6}
	u, err := universal.NewCompactUser(Enum(f), Sense(16))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Noisy(server.Dialected(&Server{}, f.Dialect(3)), 0.3)
	res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
		MaxRounds: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatalf("noisy transfer failed: %q", res.History.Last())
	}
}

func TestCandidateRoundRobinRetransmission(t *testing.T) {
	t.Parallel()

	c := &Candidate{D: dialect.Identity(0)}
	c.Reset(xrand.New(1))

	// World reports chunk 1 stored out of 3: candidate must cycle over
	// chunks 0 and 2 only.
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		out, err := c.Step(comm.Inbox{FromWorld: "WANT 3|HAVE 2"})
		if err != nil {
			t.Fatal(err)
		}
		seen[string(out.ToServer)]++
	}
	if seen["STORE 0 blob0"] != 3 || seen["STORE 2 blob2"] != 3 {
		t.Fatalf("round-robin over missing chunks wrong: %v", seen)
	}
	if seen["STORE 1 blob1"] != 0 {
		t.Fatal("candidate resent an already-stored chunk")
	}
}

func TestCandidateSilentWhenComplete(t *testing.T) {
	t.Parallel()

	c := &Candidate{D: dialect.Identity(0)}
	c.Reset(xrand.New(1))
	out, err := c.Step(comm.Inbox{FromWorld: "WANT 2|HAVE 3"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.ToServer.Empty() {
		t.Fatalf("candidate kept sending after completion: %q", out.ToServer)
	}
}

func TestSenseProgressSemantics(t *testing.T) {
	t.Parallel()

	s := Sense(2)
	status := func(mask int) comm.RoundView {
		return comm.RoundView{In: comm.Inbox{
			FromWorld: comm.Message(fmt.Sprintf("WANT 3|HAVE %d", mask)),
		}}
	}
	if !s.Observe(status(0)) {
		t.Fatal("first status should be grace")
	}
	if !s.Observe(status(1)) {
		t.Fatal("progress should be positive")
	}
	if !s.Observe(status(1)) {
		t.Fatal("one idle round within patience 2")
	}
	if s.Observe(status(1)) {
		t.Fatal("two idle rounds should be negative")
	}
	if !s.Observe(status(7)) {
		t.Fatal("completion should be positive")
	}
	if !s.Observe(status(7)) {
		t.Fatal("completion must stay positive despite no further progress")
	}
}

func TestGoalMetadata(t *testing.T) {
	t.Parallel()

	g := &Goal{}
	if g.Name() != "transfer" || g.Kind() != goal.KindCompact || !g.ForgivingGoal() {
		t.Fatal("metadata wrong")
	}
	if g.EnvChoices() != 1 {
		t.Fatal("env choices")
	}
	if w, ok := g.NewWorld(goal.Env{}).(*World); !ok || w.K != 8 {
		t.Fatal("default K wrong")
	}
}

// TestWorldMatchesReferenceModel drives the SoA world (ISSUE 6: scalar
// count/bitmask/generation layout with cached status and snapshot bytes)
// against a straightforward bool-slice reference model with Sprintf
// encodings, over random REL traffic including duplicates, bad indices,
// corrupt payloads, and junk — across several Reset cycles. Status and
// snapshot must be byte-identical every round, and StateGen must change
// exactly when the snapshot bytes change.
func TestWorldMatchesReferenceModel(t *testing.T) {
	t.Parallel()

	const K = 8
	w := &World{K: K}
	r := xrand.New(99)
	for run := 0; run < 3; run++ {
		w.Reset(nil)
		ref := make([]bool, K)
		lastGen := w.StateGen()
		lastSnap := string(w.Snapshot())
		for round := 0; round < 300; round++ {
			var in comm.Inbox
			switch r.Intn(6) {
			case 0: // valid chunk (possibly a duplicate re-release)
				i := r.Intn(K)
				in.FromServer = comm.Message(fmt.Sprintf("REL %d %s", i, Data(i)))
				ref[i] = true
			case 1: // wrong payload: must be rejected
				in.FromServer = comm.Message(fmt.Sprintf("REL %d junk", r.Intn(K)))
			case 2: // out-of-range index: must be rejected
				in.FromServer = comm.Message(fmt.Sprintf("REL %d %s", K+r.Intn(4), Data(K)))
			case 3: // malformed
				in.FromServer = "REL nope"
			case 4:
				in.FromServer = "HELLO"
			}
			out, err := w.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			n, mask := 0, uint64(0)
			for i, h := range ref {
				if h {
					n++
					mask |= 1 << uint(i)
				}
			}
			wantStatus := fmt.Sprintf("WANT %d|HAVE %d", K, mask)
			if string(out.ToUser) != wantStatus {
				t.Fatalf("run %d round %d: status %q, want %q", run, round, out.ToUser, wantStatus)
			}
			done := 0
			if n == K {
				done = 1
			}
			wantSnap := fmt.Sprintf("have=%d/%d;done=%d", n, K, done)
			if got := string(w.Snapshot()); got != wantSnap {
				t.Fatalf("run %d round %d: snapshot %q, want %q", run, round, got, wantSnap)
			}
			if got := string(w.AppendSnapshot([]byte("pre:"))); got != "pre:"+wantSnap {
				t.Fatalf("run %d round %d: AppendSnapshot = %q", run, round, got)
			}
			gen := w.StateGen()
			if (gen != lastGen) != (wantSnap != lastSnap) {
				t.Fatalf("run %d round %d: gen changed=%v but snapshot changed=%v",
					run, round, gen != lastGen, wantSnap != lastSnap)
			}
			lastGen, lastSnap = gen, wantSnap
		}
	}
}
