// Package transfer implements a data-transfer goal: the user must get a
// K-chunk payload stored with the world, but the only route is through a
// storage server speaking an unknown dialect — and possibly dropping
// messages. It exercises two robustness properties of the framework at
// once: universality over the dialect class and tolerance of message loss
// on forgiving goals (a dropped chunk can always be retransmitted).
//
// Protocol (native):
//
//	world → user:   "WANT <K>|HAVE <bitmask>"          (status, every round)
//	user  → server: "STORE <i> <data>"                  (dialected)
//	server→ world:  "REL <i> <data>"                    (physical channel)
//	server→ user:   "STORED <i>"                        (dialected ack)
//
// The world validates chunk contents (chunk i must carry Data(i)); the
// compact goal is achieved once every chunk is stored.
package transfer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// Protocol vocabulary.
const (
	cmdStore  = "STORE"
	rspStored = "STORED"
)

// Vocabulary returns the storage protocol's verbs for word-dialect
// families.
func Vocabulary() []string { return []string{cmdStore, rspStored} }

// DefaultPatience is the sensing patience: how many rounds without storage
// progress a candidate survives. Noisy channels need larger values.
const DefaultPatience = 8

// dataCache precomputes chunk contents for the indices real payloads use
// (K defaults to 8), so the world's per-arrival validation — which
// compares each released chunk against Data(i) — allocates nothing.
var dataCache = func() (a [64]string) {
	for i := range a {
		a[i] = "blob" + strconv.Itoa(i)
	}
	return
}()

// Data returns the canonical content of chunk i.
func Data(i int) string {
	if i >= 0 && i < len(dataCache) {
		return dataCache[i]
	}
	return fmt.Sprintf("blob%d", i)
}

// Goal is the compact transfer goal. K is the number of chunks (0 means
// 8); the environment choice is trivial — the payload is canonical.
type Goal struct {
	K int
}

var (
	_ goal.CompactGoal = (*Goal)(nil)
	_ goal.Forgiving   = (*Goal)(nil)
	_ goal.WorldJudge  = (*Goal)(nil)
)

func (g *Goal) k() int {
	if g.K <= 0 {
		return 8
	}
	return g.K
}

// Name implements goal.Goal.
func (g *Goal) Name() string { return "transfer" }

// Kind implements goal.Goal.
func (g *Goal) Kind() goal.Kind { return goal.KindCompact }

// EnvChoices implements goal.Goal.
func (g *Goal) EnvChoices() int { return 1 }

// NewWorld implements goal.Goal.
func (g *Goal) NewWorld(goal.Env) goal.World { return &World{K: g.k()} }

// Acceptable implements goal.CompactGoal.
func (g *Goal) Acceptable(prefix comm.History) bool {
	return strings.HasSuffix(string(prefix.Last()), "done=1")
}

// AcceptableWorld implements goal.WorldJudge: the same predicate as
// Acceptable, judged on the live store.
func (g *Goal) AcceptableWorld(w goal.World) bool {
	if sw, ok := w.(*World); ok {
		return sw.count() == sw.K
	}
	return strings.HasSuffix(string(w.Snapshot()), "done=1")
}

// ForgivingGoal implements goal.Forgiving: chunks can always be resent.
func (g *Goal) ForgivingGoal() bool { return true }

// World is the storage endpoint: it validates released chunks and reports
// the stored set every round. Snapshot: "have=<n>/<K>;done=<0|1>".
// Hot-path layout: the stored set is carried as incrementally-maintained
// scalars (count, bitmask, generation) — the have slice is touched only
// on chunk arrival, to dedupe re-releases. State-change detection is the
// gen counter: it bumps exactly when a new chunk lands, which is exactly
// when the status and snapshot change.
type World struct {
	K int

	have  []bool
	cnt   int    // number of stored chunks, maintained incrementally
	cmask uint64 // bitmask of stored chunks < 64, maintained incrementally
	gen   uint64 // snapshot/status generation: bumps when a new chunk lands

	status    comm.Message                       // cached status, rebuilt when the stored set changes
	statusTab msgbuf.Table[uint64, comm.Message] // mask → status, survives Reset
	statusK   int                                // K the table was built for
	statusGen uint64
	buf       []byte // reusable build buffer
	snap      []byte // cached snapshot bytes, valid while snapGen == gen
	snapGen   uint64
}

var (
	_ goal.World          = (*World)(nil)
	_ goal.StateAppender  = (*World)(nil)
	_ goal.StateVersioned = (*World)(nil)
)

// Reset implements comm.Strategy. The status table persists across Reset:
// statuses are pure functions of (K, mask), so a reused world re-serves
// last run's strings instead of rebuilding them.
func (w *World) Reset(*xrand.Rand) {
	if len(w.have) == w.K {
		clear(w.have)
	} else {
		w.have = make([]bool, w.K)
	}
	w.cnt = 0
	w.cmask = 0
	w.status = ""
	if w.statusK != w.K {
		w.statusTab.Reset()
		w.statusK = w.K
	}
	w.gen++ // invalidates the status and snapshot caches
}

func (w *World) count() int { return w.cnt }

// Step implements comm.Strategy.
func (w *World) Step(in comm.Inbox) (comm.Outbox, error) {
	if rest, ok := strings.CutPrefix(string(in.FromServer), "REL "); ok {
		if idx, data, found := strings.Cut(rest, " "); found {
			if i, err := strconv.Atoi(idx); err == nil &&
				i >= 0 && i < w.K && data == Data(i) && !w.have[i] {
				w.have[i] = true
				w.cnt++
				if i < 64 {
					w.cmask |= 1 << uint(i)
				}
				w.gen++
			}
		}
	}
	// The status only changes when a chunk lands; between arrivals one
	// cached string is re-sent. Distinct masks are memoized in a
	// Reset-surviving table, so a reused world's whole run serves cached
	// strings.
	if w.status == "" || w.statusGen != w.gen {
		if s, ok := w.statusTab.Get(w.cmask); ok {
			w.status = s
		} else {
			w.buf = append(w.buf[:0], "WANT "...)
			w.buf = msgbuf.AppendInt(w.buf, w.K)
			w.buf = append(w.buf, "|HAVE "...)
			w.buf = msgbuf.AppendUint(w.buf, w.cmask)
			w.status = comm.Message(w.buf) // string conversion copies
			w.statusTab.Put(w.cmask, w.status)
		}
		w.statusGen = w.gen
	}
	return comm.Outbox{ToUser: w.status}, nil
}

// StateGen implements goal.StateVersioned: the generation advances
// exactly when a new chunk is stored (or the world resets), which is
// exactly when the snapshot's count/done fields change.
func (w *World) StateGen() uint64 { return w.gen }

// Snapshot implements goal.World.
func (w *World) Snapshot() comm.WorldState {
	return comm.WorldState(w.AppendSnapshot(nil))
}

// AppendSnapshot implements goal.StateAppender:
// "have=<n>/<K>;done=<0|1>", byte-identical to Snapshot. The encoding is
// cached per generation, so quiescent rounds copy bytes instead of
// re-formatting.
func (w *World) AppendSnapshot(dst []byte) []byte {
	if len(w.snap) == 0 || w.snapGen != w.gen {
		b := append(w.snap[:0], "have="...)
		b = msgbuf.AppendInt(b, w.cnt)
		b = append(b, '/')
		b = msgbuf.AppendInt(b, w.K)
		if w.cnt == w.K {
			b = append(b, ";done=1"...)
		} else {
			b = append(b, ";done=0"...)
		}
		w.snap = b
		w.snapGen = w.gen
	}
	return append(dst, w.snap...)
}

// ParseStatus decodes the world's status message.
func ParseStatus(m comm.Message) (k int, mask uint64, ok bool) {
	wantPart, havePart, found := strings.Cut(string(m), "|")
	if !found {
		return 0, 0, false
	}
	ws, ok1 := strings.CutPrefix(wantPart, "WANT ")
	hs, ok2 := strings.CutPrefix(havePart, "HAVE ")
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	k, err1 := strconv.Atoi(ws)
	mask, err2 := strconv.ParseUint(hs, 10, 64)
	if err1 != nil || err2 != nil || k < 0 {
		return 0, 0, false
	}
	return k, mask, true
}

// Server is the storage relay's native protocol.
//
// Step is a pure function of the incoming command; the memo only spares
// rebuilding replies for the handful of STORE commands a retransmitting
// user cycles through (a transfer moves K chunks, so real traffic holds
// at most K distinct commands — comfortably under the table's cap).
type Server struct {
	memo msgbuf.Table[comm.Message, comm.Outbox]
}

var _ comm.Strategy = (*Server)(nil)

// Reset implements comm.Strategy. The memo persists: Step is a pure
// function of the incoming command, so entries from a previous run are
// still correct and a reused server replays a transfer allocation-free.
func (s *Server) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (s *Server) Step(in comm.Inbox) (comm.Outbox, error) {
	rest, ok := strings.CutPrefix(string(in.FromUser), cmdStore+" ")
	if !ok {
		return comm.Outbox{}, nil
	}
	if out, ok := s.memo.Get(in.FromUser); ok {
		return out, nil
	}
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		return comm.Outbox{}, nil
	}
	if _, err := strconv.Atoi(fields[0]); err != nil {
		return comm.Outbox{}, nil
	}
	out := comm.Outbox{
		ToUser:  comm.Message(rspStored + " " + fields[0]),
		ToWorld: comm.Message("REL " + rest),
	}
	s.memo.Put(in.FromUser, out)
	return out, nil
}

// Candidate is the dialect-d transfer user: read the world's status,
// (re)send missing chunks round-robin in its dialect.
type Candidate struct {
	// D is the dialect this candidate speaks to the server.
	D dialect.Dialect

	k    int
	mask uint64
	next int
	cmds []comm.Message // cached encoded "STORE <i> <data>" per chunk
}

var _ comm.Strategy = (*Candidate)(nil)

// Reset implements comm.Strategy.
func (c *Candidate) Reset(*xrand.Rand) {
	c.k = 0
	c.mask = 0
	c.next = 0
}

// storeCmd returns the encoded store command for chunk i, built once per
// chunk (dialects are pure and chunk contents are canonical).
func (c *Candidate) storeCmd(i int) comm.Message {
	if i >= len(c.cmds) {
		cmds := make([]comm.Message, c.k)
		copy(cmds, c.cmds)
		c.cmds = cmds
	}
	if c.cmds[i] == "" {
		cmd := fmt.Sprintf("%s %d %s", cmdStore, i, Data(i))
		c.cmds[i] = c.D.Encode(comm.Message(cmd))
	}
	return c.cmds[i]
}

// Step implements comm.Strategy.
func (c *Candidate) Step(in comm.Inbox) (comm.Outbox, error) {
	if k, mask, ok := ParseStatus(in.FromWorld); ok {
		c.k = k
		c.mask = mask
	}
	if c.k == 0 {
		return comm.Outbox{}, nil
	}
	// Find the next missing chunk, round-robin so retransmissions
	// interleave fairly under loss.
	for probe := 0; probe < c.k; probe++ {
		i := (c.next + probe) % c.k
		if i < 64 && c.mask&(1<<uint(i)) != 0 {
			continue
		}
		c.next = (i + 1) % c.k
		return comm.Outbox{ToServer: c.storeCmd(i)}, nil
	}
	return comm.Outbox{}, nil
}

// Enum enumerates one Candidate per dialect in the family.
func Enum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("transfer/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &Candidate{D: fam.Dialect(i)}
	})
}

// Sense is positive while the transfer is complete or still progressing:
// it tracks the stored-chunk count from the world's status and reports
// negative once patience rounds pass with no new chunk stored (and the
// transfer incomplete). Safe — stalling forever with an incomplete
// transfer is exactly goal failure — and viable, since the matching
// candidate stores a chunk every few rounds even under moderate loss.
func Sense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	return &progressSense{patience: patience}
}

type progressSense struct {
	patience int
	started  bool
	lastHave int
	idle     int
}

var _ sensing.Sense = (*progressSense)(nil)

func (s *progressSense) Reset() {
	s.started = false
	s.lastHave = 0
	s.idle = 0
}

func (s *progressSense) Observe(rv comm.RoundView) bool {
	k, mask, ok := ParseStatus(rv.In.FromWorld)
	if !ok {
		// No status yet: grace.
		return true
	}
	have := 0
	for i := 0; i < k && i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			have++
		}
	}
	if have == k {
		return true
	}
	if !s.started || have > s.lastHave {
		s.started = true
		s.lastHave = have
		s.idle = 0
		return true
	}
	s.idle++
	return s.idle < s.patience
}
