// Package sensing implements the feedback notion of the theory.
//
// Sensing is a predicate of the history of the portion of the system visible
// to the user — its view. A sensing function produces Boolean indications
// that a universal user consumes: positive ("keep going / accept") or
// negative ("this pairing is not working").
//
// Two properties make sensing useful as feedback (paper §3):
//
//   - Safety: for compact goals, negative indications are (eventually)
//     obtained whenever the current pairing does not lead to achieving the
//     goal; for finite goals, positive indications are only obtained on
//     acceptable histories.
//   - Viability: for compact goals, some pairing yields only positive
//     indications while achieving the goal; for finite goals, some user
//     strategy obtains a positive indication with every helpful server.
//
// Safety and viability are semantic properties relating a sensing function
// to a goal and a server class; they are certified empirically by
// internal/harness. This package provides the Sense interface and generic
// combinators.
package sensing

import "repro/internal/comm"

// Sense is an incremental sensing function. The engine (or a universal user)
// feeds it the user's view one round at a time; after each round it reports
// the current Boolean indication.
//
// Implementations accumulate whatever summary of the view they need. Reset
// discards that summary; universal users call Reset when they switch to a
// new candidate strategy so that indications refer to the current pairing.
type Sense interface {
	// Reset clears accumulated view state.
	Reset()

	// Observe consumes the next round of the user's view and returns the
	// indication after that round: true = positive, false = negative.
	Observe(rv comm.RoundView) bool
}

// Func adapts a stateless predicate over the most recent round to a Sense.
type Func func(rv comm.RoundView) bool

var _ Sense = (*funcSense)(nil)

type funcSense struct {
	f Func
	v bool
}

// New wraps a per-round predicate into a Sense whose indication is the
// predicate's value on the latest round.
func New(f Func) Sense { return &funcSense{f: f} }

func (s *funcSense) Reset() { s.v = false }
func (s *funcSense) Observe(rv comm.RoundView) bool {
	s.v = s.f(rv)
	return s.v
}

// Sticky wraps a sense so that once a positive indication is produced it
// never reverts to negative. Useful for "goal reached" detectors on
// monotone goals.
func Sticky(inner Sense) Sense { return &sticky{inner: inner} }

type sticky struct {
	inner Sense
	hit   bool
}

var _ Sense = (*sticky)(nil)

func (s *sticky) Reset() {
	s.inner.Reset()
	s.hit = false
}

func (s *sticky) Observe(rv comm.RoundView) bool {
	if s.inner.Observe(rv) {
		s.hit = true
	}
	return s.hit
}

// Patience wraps a sense so that a negative indication is only reported
// after the inner sense has been negative for n consecutive rounds. This is
// the standard way to give each candidate strategy time to act before a
// universal user evicts it.
func Patience(inner Sense, n int) Sense {
	if n < 1 {
		n = 1
	}
	return &patience{inner: inner, n: n}
}

type patience struct {
	inner  Sense
	n      int
	negRun int
}

var _ Sense = (*patience)(nil)

func (p *patience) Reset() {
	p.inner.Reset()
	p.negRun = 0
}

func (p *patience) Observe(rv comm.RoundView) bool {
	if p.inner.Observe(rv) {
		p.negRun = 0
		return true
	}
	p.negRun++
	return p.negRun < p.n
}

// ProgressTimeout reports positive as long as "progress" has occurred within
// the last n rounds, where progress is defined by the supplied predicate on
// rounds. It reports negative once n rounds elapse with no progress. The
// very first round counts as progress (grace period).
func ProgressTimeout(progress Func, n int) Sense {
	if n < 1 {
		n = 1
	}
	return &progressTimeout{progress: progress, n: n}
}

type progressTimeout struct {
	progress Func
	n        int
	idle     int
	started  bool
}

var _ Sense = (*progressTimeout)(nil)

func (p *progressTimeout) Reset() {
	p.idle = 0
	p.started = false
}

func (p *progressTimeout) Observe(rv comm.RoundView) bool {
	if !p.started {
		p.started = true
		p.idle = 0
		return true
	}
	if p.progress(rv) {
		p.idle = 0
		return true
	}
	p.idle++
	return p.idle < p.n
}

// Const is a sense with a fixed indication — the degenerate (unsafe or
// non-viable) sensing used in ablation experiments.
func Const(v bool) Sense { return constSense(v) }

type constSense bool

var _ Sense = constSense(false)

func (constSense) Reset()                        {}
func (c constSense) Observe(comm.RoundView) bool { return bool(c) }

// And combines senses; the indication is positive iff all components are.
func And(ss ...Sense) Sense { return &and{ss: ss} }

type and struct{ ss []Sense }

var _ Sense = (*and)(nil)

func (a *and) Reset() {
	for _, s := range a.ss {
		s.Reset()
	}
}

func (a *and) Observe(rv comm.RoundView) bool {
	all := true
	for _, s := range a.ss {
		// Every component must observe every round, so no
		// short-circuiting.
		if !s.Observe(rv) {
			all = false
		}
	}
	return all
}

// Replay feeds an entire view through a (freshly Reset) sense and returns
// the final indication. Used by finite-goal runners that judge a completed
// attempt.
func Replay(s Sense, v comm.View) bool {
	s.Reset()
	verdict := false
	for _, rv := range v.Rounds {
		verdict = s.Observe(rv)
	}
	return verdict
}

// Indications feeds an entire view through a (freshly Reset) sense and
// returns the per-round indication sequence. Used by the certification
// harness to check "eventually always positive" conditions.
func Indications(s Sense, v comm.View) []bool {
	s.Reset()
	out := make([]bool, 0, v.Len())
	for _, rv := range v.Rounds {
		out = append(out, s.Observe(rv))
	}
	return out
}
