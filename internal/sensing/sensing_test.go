package sensing

import (
	"testing"

	"repro/internal/comm"
)

func worldSays(msg string) comm.RoundView {
	return comm.RoundView{In: comm.Inbox{FromWorld: comm.Message(msg)}}
}

func TestNewPerRound(t *testing.T) {
	t.Parallel()

	s := New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "ok" })
	if s.Observe(worldSays("no")) {
		t.Fatal("positive on wrong round")
	}
	if !s.Observe(worldSays("ok")) {
		t.Fatal("negative on matching round")
	}
	if s.Observe(worldSays("no")) {
		t.Fatal("plain Func sense should not be sticky")
	}
}

func TestSticky(t *testing.T) {
	t.Parallel()

	s := Sticky(New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "ok" }))
	s.Observe(worldSays("no"))
	s.Observe(worldSays("ok"))
	if !s.Observe(worldSays("no")) {
		t.Fatal("sticky sense reverted")
	}
	s.Reset()
	if s.Observe(worldSays("no")) {
		t.Fatal("Reset did not clear sticky state")
	}
}

func TestPatience(t *testing.T) {
	t.Parallel()

	s := Patience(Const(false), 3)
	if !s.Observe(worldSays("")) {
		t.Fatal("negative after 1 round, patience 3")
	}
	if !s.Observe(worldSays("")) {
		t.Fatal("negative after 2 rounds, patience 3")
	}
	if s.Observe(worldSays("")) {
		t.Fatal("still positive after 3 negative rounds")
	}
}

func TestPatienceResetOnPositive(t *testing.T) {
	t.Parallel()

	inner := New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "ok" })
	s := Patience(inner, 2)
	s.Observe(worldSays(""))
	s.Observe(worldSays("ok")) // resets the negative run
	if !s.Observe(worldSays("")) {
		t.Fatal("negative run not reset by positive indication")
	}
}

func TestPatienceClampsToOne(t *testing.T) {
	t.Parallel()

	s := Patience(Const(false), 0)
	if s.Observe(worldSays("")) {
		t.Fatal("patience 0 should behave as 1: immediate negative")
	}
}

func TestProgressTimeout(t *testing.T) {
	t.Parallel()

	progress := func(rv comm.RoundView) bool { return rv.In.FromWorld == "tick" }
	s := ProgressTimeout(progress, 2)
	if !s.Observe(worldSays("")) {
		t.Fatal("first round should be grace")
	}
	if !s.Observe(worldSays("")) {
		t.Fatal("one idle round within timeout 2")
	}
	if s.Observe(worldSays("")) {
		t.Fatal("two idle rounds should time out")
	}
	s.Reset()
	s.Observe(worldSays(""))
	if !s.Observe(worldSays("tick")) {
		t.Fatal("progress round reported negative")
	}
	if !s.Observe(worldSays("")) {
		t.Fatal("idle counter not reset by progress")
	}
}

func TestConst(t *testing.T) {
	t.Parallel()

	if !Const(true).Observe(worldSays("")) {
		t.Fatal("Const(true) negative")
	}
	if Const(false).Observe(worldSays("")) {
		t.Fatal("Const(false) positive")
	}
}

func TestAnd(t *testing.T) {
	t.Parallel()

	s := And(Const(true), Const(true))
	if !s.Observe(worldSays("")) {
		t.Fatal("all-true And negative")
	}
	s = And(Const(true), Const(false))
	if s.Observe(worldSays("")) {
		t.Fatal("And with false component positive")
	}
}

func TestAndObservesAllComponents(t *testing.T) {
	t.Parallel()

	// A sticky component must see every round even when an earlier
	// component is negative.
	sticky := Sticky(New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "ok" }))
	s := And(Const(false), sticky)
	s.Observe(worldSays("ok"))
	s.Reset()
	_ = s
}

func TestReplay(t *testing.T) {
	t.Parallel()

	s := Sticky(New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "ok" }))
	v := comm.View{Rounds: []comm.RoundView{
		worldSays(""), worldSays("ok"), worldSays(""),
	}}
	if !Replay(s, v) {
		t.Fatal("replay missed the positive round")
	}
	empty := comm.View{}
	if Replay(s, empty) {
		t.Fatal("replay on empty view should be negative")
	}
}
