package comm

import (
	"testing"
	"testing/quick"
)

func TestPartyString(t *testing.T) {
	t.Parallel()

	tests := []struct {
		party Party
		want  string
	}{
		{PartyUser, "user"},
		{PartyServer, "server"},
		{PartyWorld, "world"},
		{Party(9), "party(9)"},
	}
	for _, tt := range tests {
		if got := tt.party.String(); got != tt.want {
			t.Errorf("Party(%d).String() = %q, want %q", int(tt.party), got, tt.want)
		}
	}
}

func TestMessageEmpty(t *testing.T) {
	t.Parallel()

	if !Message("").Empty() {
		t.Error("empty message reported non-empty")
	}
	if Message("x").Empty() {
		t.Error("non-empty message reported empty")
	}
}

func TestHistoryLastAndLen(t *testing.T) {
	t.Parallel()

	var h History
	if h.Len() != 0 {
		t.Fatalf("empty history Len = %d", h.Len())
	}
	if h.Last() != "" {
		t.Fatalf("empty history Last = %q", h.Last())
	}
	h = History{States: []WorldState{"a", "b", "c"}}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.Last() != "c" {
		t.Fatalf("Last = %q, want c", h.Last())
	}
}

func TestHistoryPrefix(t *testing.T) {
	t.Parallel()

	h := History{States: []WorldState{"a", "b", "c"}}
	p := h.Prefix(2)
	if p.Len() != 2 || p.Last() != "b" {
		t.Fatalf("Prefix(2) = %v", p.States)
	}
	if h.Prefix(0).Len() != 0 {
		t.Fatal("Prefix(0) not empty")
	}
}

func TestViewAppendImmutable(t *testing.T) {
	t.Parallel()

	base := View{}
	a := base.Append(RoundView{In: Inbox{FromWorld: "w1"}})
	b := base.Append(RoundView{In: Inbox{FromWorld: "w2"}})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("lengths: %d, %d", a.Len(), b.Len())
	}
	if a.Last().In.FromWorld != "w1" {
		t.Fatalf("a corrupted: %q", a.Last().In.FromWorld)
	}
	if b.Last().In.FromWorld != "w2" {
		t.Fatalf("b corrupted: %q", b.Last().In.FromWorld)
	}
}

func TestViewAppendChain(t *testing.T) {
	t.Parallel()

	v := View{}
	for i := 0; i < 10; i++ {
		v = v.Append(RoundView{Out: Outbox{ToServer: "m"}})
	}
	if v.Len() != 10 {
		t.Fatalf("Len = %d, want 10", v.Len())
	}
}

func TestViewLastEmpty(t *testing.T) {
	t.Parallel()

	var v View
	if got := v.Last(); got != (RoundView{}) {
		t.Fatalf("Last on empty view = %+v", got)
	}
}

func TestHistoryPrefixProperty(t *testing.T) {
	t.Parallel()

	// Prefix(n).Len() == n for all valid n, and prefixes agree with the
	// original history element-wise.
	f := func(raw []byte) bool {
		states := make([]WorldState, len(raw))
		for i, b := range raw {
			states[i] = WorldState(string(rune('a' + int(b)%26)))
		}
		h := History{States: states}
		for n := 0; n <= h.Len(); n++ {
			p := h.Prefix(n)
			if p.Len() != n {
				return false
			}
			for i := 0; i < n; i++ {
				if p.States[i] != h.States[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
