// Package comm defines the communication model of Goldreich, Juba and
// Sudan's "A Theory of Goal-Oriented Communication" (PODC 2011).
//
// The model is a synchronous system of three parties — a user, a server and
// a world (the environment / referee's view of "the rest of the system").
// Each party is described by a strategy: a probabilistic function taking an
// internal state and an incoming message profile to a new state and an
// outgoing message profile. This package defines the message types, the
// strategy interface and the recorded artifacts of an execution (world-state
// histories and user views) that goals and sensing functions are defined
// over.
package comm

import (
	"fmt"

	"repro/internal/xrand"
)

// Party identifies one of the three roles in the two-party-plus-world model.
type Party int

// The three parties of the model. The user represents "our point of view";
// the server is the entity whose help is sought; the world monitors the
// communication and carries the goal's semantics.
const (
	PartyUser Party = iota + 1
	PartyServer
	PartyWorld
)

// String returns the lower-case party name.
func (p Party) String() string {
	switch p {
	case PartyUser:
		return "user"
	case PartyServer:
		return "server"
	case PartyWorld:
		return "world"
	default:
		return fmt.Sprintf("party(%d)", int(p))
	}
}

// Message is a single unit of communication on a directed channel during one
// round. The empty message denotes silence; strategies are free to ascribe
// structure (tokens, framing) to non-empty messages.
type Message string

// Empty reports whether the message is silence.
func (m Message) Empty() bool { return len(m) == 0 }

// Inbox is the profile of messages a party receives at the start of a round,
// indexed by sender. A party never receives from itself; the corresponding
// field is ignored by the engine.
type Inbox struct {
	FromUser   Message
	FromServer Message
	FromWorld  Message
}

// Outbox is the profile of messages a party emits at the end of a round,
// indexed by recipient. A party never sends to itself; the corresponding
// field is ignored by the engine.
type Outbox struct {
	ToUser   Message
	ToServer Message
	ToWorld  Message
}

// Strategy is a party's behaviour: a (probabilistic) state-transition
// function from (internal state, incoming message profile) to (new state,
// outgoing message profile). Implementations carry their state internally;
// Reset returns the strategy to an initial state and installs the source of
// randomness for the run.
//
// The same Strategy value is reused across executions by calling Reset, so
// implementations must not retain state across Reset calls.
type Strategy interface {
	// Reset prepares the strategy for a fresh execution. The provided
	// generator is the strategy's only permitted source of randomness;
	// a nil generator indicates the strategy should behave
	// deterministically (implementations may keep a private default).
	Reset(r *xrand.Rand)

	// Step consumes the messages delivered this round and returns the
	// messages to deliver next round. An error aborts the execution.
	Step(in Inbox) (Outbox, error)
}

// Halter is implemented by user strategies for finite goals: once Halted
// reports true the execution engine stops the run. The engine checks Halted
// after each Step.
type Halter interface {
	Halted() bool
}

// WorldState is an opaque encoding of the world's instantaneous state.
// Referees — the predicates that define goals — are functions of sequences
// of world states, so anything a referee must see has to be serialized into
// this encoding by the world strategy.
type WorldState string

// History is the sequence of world states produced by an execution, one per
// completed round. Referee predicates are defined over histories.
//
// Under windowed recording (see the execution engine's retention policy)
// only the trailing States are materialized and Dropped counts the
// discarded leading rounds; Len still reports the logical length. Referees
// that judge a history by its recent states — every stock goal in this
// repository serializes cumulative world state into each snapshot — are
// unaffected by the missing prefix.
type History struct {
	// States holds the world state recorded after each round; States[i]
	// is the state at the end of round Dropped+i (0-based).
	States []WorldState

	// Dropped is the number of leading rounds whose states were
	// discarded by windowed recording; 0 for fully recorded histories.
	Dropped int
}

// Len returns the number of completed rounds, including dropped ones.
func (h History) Len() int { return h.Dropped + len(h.States) }

// Last returns the most recent world state, or the empty state if no round
// was recorded.
func (h History) Last() WorldState {
	if len(h.States) == 0 {
		return ""
	}
	return h.States[len(h.States)-1]
}

// Prefix returns the history truncated to its first n states. It panics if
// n is out of range, mirroring slice semantics, or — with a descriptive
// message — if n reaches into the rounds a windowed recording dropped.
func (h History) Prefix(n int) History {
	if n < h.Dropped {
		panic(fmt.Sprintf("comm: Prefix(%d) reaches into the %d dropped rounds of a windowed history", n, h.Dropped))
	}
	return History{States: h.States[:n-h.Dropped], Dropped: h.Dropped}
}

// RoundView is what the user observed and did during a single round: the
// messages delivered to it and the messages it emitted.
type RoundView struct {
	In  Inbox
	Out Outbox
}

// View is the portion of the execution visible to the user: its own rounds,
// in order. Sensing functions — the feedback mechanism of the theory — are
// predicates over views, never over hidden server or world internals.
//
// Like History, a view produced under windowed recording keeps only the
// trailing Rounds and counts the discarded prefix in Dropped.
type View struct {
	Rounds []RoundView

	// Dropped is the number of leading rounds discarded by windowed
	// recording; 0 for fully recorded views.
	Dropped int
}

// Len returns the number of rounds in the view, including dropped ones.
func (v View) Len() int { return v.Dropped + len(v.Rounds) }

// Last returns the most recent round view. It returns a zero RoundView when
// the view is empty.
func (v View) Last() RoundView {
	if len(v.Rounds) == 0 {
		return RoundView{}
	}
	return v.Rounds[len(v.Rounds)-1]
}

// Append returns a copy-on-write extension of the view with one more round.
// The underlying array may be shared; callers must treat views as immutable.
func (v View) Append(rv RoundView) View {
	return View{
		Rounds:  append(v.Rounds[:len(v.Rounds):len(v.Rounds)], rv),
		Dropped: v.Dropped,
	}
}
