package multiparty

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/xrand"
)

func fam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	f, err := dialect.NewWordFamily(Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMemberAnswersOwnDialectOnly(t *testing.T) {
	t.Parallel()

	f := fam(t, 4)
	m := &Member{Value: 42, D: f.Dialect(2)}
	m.Reset(xrand.New(1))

	out, err := m.Step(comm.Inbox{FromUser: f.Dialect(2).Encode("ASK")})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Dialect(2).Decode(out.ToUser); got != "VAL 42" {
		t.Fatalf("own-dialect reply decodes to %q", got)
	}

	out, err = m.Step(comm.Inbox{FromUser: f.Dialect(1).Encode("ASK")})
	if err != nil {
		t.Fatal(err)
	}
	if !out.ToUser.Empty() {
		t.Fatalf("member answered a foreign dialect: %q", out.ToUser)
	}
	out, err = m.Step(comm.Inbox{FromUser: "ASK"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.ToUser.Empty() {
		t.Fatal("member with non-identity dialect answered plain ASK")
	}
}

func TestLearnValuesUniversal(t *testing.T) {
	t.Parallel()

	f := fam(t, 5)
	members := []*Member{
		{Value: 7, D: f.Dialect(3)},
		{Value: 19, D: f.Dialect(0)},
		{Value: 4, D: f.Dialect(4)},
	}
	res, err := LearnValues(members, f, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("sessions failed: %+v", res.Sessions)
	}
	want := []int{7, 19, 4}
	for i, v := range res.Values() {
		if v != want[i] {
			t.Fatalf("values = %v, want %v", res.Values(), want)
		}
	}
	maxV, err := res.Max()
	if err != nil {
		t.Fatal(err)
	}
	if maxV != 19 {
		t.Fatalf("max = %d", maxV)
	}
}

func TestOracleBaselineCheaper(t *testing.T) {
	t.Parallel()

	f := fam(t, 8)
	members := []*Member{
		{Value: 1, D: f.Dialect(6)},
		{Value: 2, D: f.Dialect(7)},
		{Value: 3, D: f.Dialect(5)},
	}
	reduction, err := LearnValues(members, f, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := LearnValues(members, f, Config{Seed: 2, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reduction.AllOK() || !oracle.AllOK() {
		t.Fatal("collection failed")
	}
	if oracle.TotalRounds >= reduction.TotalRounds {
		t.Fatalf("oracle (%d rounds) should beat reduction (%d rounds)",
			oracle.TotalRounds, reduction.TotalRounds)
	}
}

func TestLearnValuesScalesWithMembers(t *testing.T) {
	t.Parallel()

	f := fam(t, 4)
	mk := func(k int) []*Member {
		ms := make([]*Member, k)
		for i := range ms {
			ms[i] = &Member{Value: i, D: f.Dialect(i % 4)}
		}
		return ms
	}
	small, err := LearnValues(mk(2), f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := LearnValues(mk(6), f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !small.AllOK() || !large.AllOK() {
		t.Fatal("collection failed")
	}
	if large.TotalRounds <= small.TotalRounds {
		t.Fatalf("6 members (%d rounds) should cost more than 2 (%d rounds)",
			large.TotalRounds, small.TotalRounds)
	}
}

func TestLearnValuesValidation(t *testing.T) {
	t.Parallel()

	f := fam(t, 2)
	if _, err := LearnValues(nil, f, Config{}); err == nil {
		t.Error("empty members accepted")
	}
	if _, err := LearnValues([]*Member{{Value: 1, D: f.Dialect(0)}}, nil, Config{}); err == nil {
		t.Error("nil family accepted")
	}
}

func TestMaxErrorsOnFailure(t *testing.T) {
	t.Parallel()

	r := &Result{Sessions: []SessionResult{{OK: false}}}
	if _, err := r.Max(); err == nil {
		t.Error("Max on failed session accepted")
	}
	empty := &Result{}
	if _, err := empty.Max(); err == nil {
		t.Error("Max on empty result accepted")
	}
}

func TestFailedSessionReported(t *testing.T) {
	t.Parallel()

	// A member whose dialect is outside the coordinator's family can
	// never be understood; the session must fail cleanly.
	f := fam(t, 3)
	foreign := fam(t, 6) // dialects 3..5 are outside f
	members := []*Member{{Value: 9, D: foreign.Dialect(5)}}
	res, err := LearnValues(members, f, Config{Seed: 4, MaxRoundsPerSession: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllOK() {
		t.Fatal("foreign-dialect member understood?!")
	}
	if res.Sessions[0].Rounds != 120 {
		t.Fatalf("failed session rounds = %d, want full bound", res.Sessions[0].Rounds)
	}
}
