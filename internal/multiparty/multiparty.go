// Package multiparty implements the symmetric, more-than-two-party setting
// the paper's full version sketches (footnote 1), which "primarily consists
// of a reduction to the two-party setting".
//
// The scenario: k members each hold a private value and speak their own
// dialect; a coordinator must learn every value (e.g. to compute their
// maximum) without knowing who speaks what. The reduction treats each
// member as a *server* in a two-party goal-oriented session and runs the
// compact universal user (enumeration over the dialect family with
// report-sensing) against each member in turn. The native baseline — all
// parties designed together, sharing dialect 0 — needs a constant number of
// rounds per member; the reduction pays the enumeration overhead per
// member, quantified by experiment T6.
package multiparty

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

// Protocol vocabulary.
const (
	cmdAsk = "ASK"
	rspVal = "VAL"
)

// Vocabulary returns the query protocol's verbs for word-dialect families.
func Vocabulary() []string { return []string{cmdAsk, rspVal} }

// DefaultPatience is the per-candidate sensing patience for query sessions.
const DefaultPatience = 4

// Member is a party holding a private value and speaking dialect D. As a
// comm.Strategy it behaves as a server: a correctly-encoded "ASK" earns a
// correctly-encoded "VAL <value>".
type Member struct {
	Value int
	D     dialect.Dialect
}

var _ comm.Strategy = (*Member)(nil)

// Reset implements comm.Strategy.
func (*Member) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (m *Member) Step(in comm.Inbox) (comm.Outbox, error) {
	if m.D.Decode(in.FromUser) == cmdAsk {
		reply := comm.Message(rspVal + " " + strconv.Itoa(m.Value))
		return comm.Outbox{ToUser: m.D.Encode(reply)}, nil
	}
	return comm.Outbox{}, nil
}

// askCandidate is the dialect-i query strategy: ask in dialect i, decode
// the reply, report the value to the world.
type askCandidate struct {
	d dialect.Dialect

	reported bool
	elapsed  int
}

var _ comm.Strategy = (*askCandidate)(nil)

func (c *askCandidate) Reset(*xrand.Rand) {
	c.reported = false
	c.elapsed = 0
}

func (c *askCandidate) Step(in comm.Inbox) (comm.Outbox, error) {
	defer func() { c.elapsed++ }()
	if !c.reported {
		plain := c.d.Decode(in.FromServer)
		if rest, ok := strings.CutPrefix(string(plain), rspVal+" "); ok {
			if _, err := strconv.Atoi(rest); err == nil {
				c.reported = true
				return comm.Outbox{ToWorld: comm.Message("REPORT " + rest)}, nil
			}
		}
		if c.elapsed%2 == 0 {
			return comm.Outbox{ToServer: c.d.Encode(cmdAsk)}, nil
		}
	}
	return comm.Outbox{}, nil
}

// queryEnum enumerates one askCandidate per dialect.
func queryEnum(fam *dialect.Family) enumerate.Enumerator {
	return enumerate.FromFunc("multiparty/"+fam.Name(), fam.Size(), func(i int) comm.Strategy {
		return &askCandidate{d: fam.Dialect(i)}
	})
}

// reportSense is positive once the user has reported a value — visible in
// the user's own outbox, hence a legitimate function of the view.
func reportSense(patience int) sensing.Sense {
	if patience <= 0 {
		patience = DefaultPatience
	}
	reported := sensing.Sticky(sensing.New(func(rv comm.RoundView) bool {
		return strings.HasPrefix(string(rv.Out.ToWorld), "REPORT ")
	}))
	return sensing.Patience(reported, patience)
}

// reportWorld records the first reported value.
type reportWorld struct {
	got   bool
	value int
}

var _ goal.World = (*reportWorld)(nil)

func (w *reportWorld) Reset(*xrand.Rand) {
	w.got = false
	w.value = 0
}

func (w *reportWorld) Step(in comm.Inbox) (comm.Outbox, error) {
	if rest, ok := strings.CutPrefix(string(in.FromUser), "REPORT "); ok && !w.got {
		if v, err := strconv.Atoi(rest); err == nil {
			w.got = true
			w.value = v
		}
	}
	return comm.Outbox{}, nil
}

func (w *reportWorld) Snapshot() comm.WorldState {
	if !w.got {
		return "report=none"
	}
	return comm.WorldState("report=" + strconv.Itoa(w.value))
}

// Config controls the coordinator's sessions.
type Config struct {
	// MaxRoundsPerSession bounds each two-party session; 0 means
	// 40 × family size.
	MaxRoundsPerSession int
	// Patience is the sensing patience; 0 means DefaultPatience.
	Patience int
	// Seed drives all randomness.
	Seed uint64
	// Oracle, if true, skips enumeration: the coordinator is told each
	// member's dialect (the "designed together" native baseline).
	Oracle bool
	// Parallel bounds the worker pool the pairwise sessions run on
	// (via system.RunBatch); values < 1 mean GOMAXPROCS. Results are
	// identical at every setting.
	Parallel int
}

// SessionResult records one coordinator↔member session.
type SessionResult struct {
	// Value is the learned value.
	Value int
	// Rounds is the session length.
	Rounds int
	// OK reports whether a value was learned before the session bound.
	OK bool
}

// Result aggregates a full value-collection run.
type Result struct {
	// Sessions holds one entry per member, in order.
	Sessions []SessionResult
	// TotalRounds sums all session lengths — the reduction's cost.
	TotalRounds int
}

// Values returns the learned values (valid where Sessions[i].OK).
func (r *Result) Values() []int {
	vs := make([]int, len(r.Sessions))
	for i, s := range r.Sessions {
		vs[i] = s.Value
	}
	return vs
}

// AllOK reports whether every session learned a value.
func (r *Result) AllOK() bool {
	for _, s := range r.Sessions {
		if !s.OK {
			return false
		}
	}
	return true
}

// Max returns the maximum learned value; it returns an error if any
// session failed or there are no sessions.
func (r *Result) Max() (int, error) {
	if len(r.Sessions) == 0 {
		return 0, errors.New("multiparty: no sessions")
	}
	if !r.AllOK() {
		return 0, errors.New("multiparty: incomplete value collection")
	}
	maxV := r.Sessions[0].Value
	for _, s := range r.Sessions[1:] {
		if s.Value > maxV {
			maxV = s.Value
		}
	}
	return maxV, nil
}

// LearnValues has the coordinator learn every member's value through
// pairwise goal-oriented sessions: the reduction of the symmetric
// multi-party goal to the two-party setting. With cfg.Oracle it instead
// runs the native (agreed-standard) protocol as the baseline.
func LearnValues(members []*Member, fam *dialect.Family, cfg Config) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("multiparty: no members")
	}
	if fam == nil {
		return nil, errors.New("multiparty: nil dialect family")
	}
	maxRounds := cfg.MaxRoundsPerSession
	if maxRounds <= 0 {
		maxRounds = 40 * fam.Size()
	}

	// Each coordinator↔member session is an independent trial; seeds are
	// drawn in member order at submission so parallel results are
	// identical to the former serial loop.
	root := xrand.New(cfg.Seed)
	trials := make([]system.Trial, len(members))
	for idx, m := range members {
		trials[idx] = system.Trial{
			User: func() (comm.Strategy, error) {
				if cfg.Oracle {
					return &askCandidate{d: m.D}, nil
				}
				return universal.NewCompactUser(queryEnum(fam), reportSense(cfg.Patience))
			},
			// Member is stateless (immutable value and dialect), so
			// sharing it across the engine's Reset is safe.
			Server: func() comm.Strategy { return m },
			World:  func() goal.World { return &reportWorld{} },
			Config: system.Config{MaxRounds: maxRounds, Seed: root.Uint64()},
		}
	}
	execs, err := system.RunBatch(trials, system.BatchConfig{Parallelism: cfg.Parallel})
	if err != nil {
		return nil, fmt.Errorf("multiparty: %w", err)
	}

	res := &Result{Sessions: make([]SessionResult, 0, len(members))}
	for _, exec := range execs {
		// The session's effective length is the round at which the
		// report landed in the world (the compact user itself never
		// halts); a failed session costs the full bound.
		sr := SessionResult{Rounds: exec.Rounds}
		for i, st := range exec.History.States {
			if rest, ok := strings.CutPrefix(string(st), "report="); ok && rest != "none" {
				if v, err := strconv.Atoi(rest); err == nil {
					sr.OK = true
					sr.Value = v
					sr.Rounds = i + 1
					break
				}
			}
		}
		res.Sessions = append(res.Sessions, sr)
		res.TotalRounds += sr.Rounds
		system.ReleaseResult(exec)
	}
	return res, nil
}
