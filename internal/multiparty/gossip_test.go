package multiparty

import (
	"testing"
)

func TestGossipAllFullExchange(t *testing.T) {
	t.Parallel()

	f := fam(t, 4)
	members := []*Member{
		{Value: 11, D: f.Dialect(2)},
		{Value: 29, D: f.Dialect(0)},
		{Value: 5, D: f.Dialect(3)},
	}
	res, err := GossipAll(members, f, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("gossip incomplete: %+v", res.Values)
	}
	want := []int{11, 29, 5}
	for i, row := range res.Values {
		for j, v := range row {
			if v != want[j] {
				t.Fatalf("member %d learned %d for member %d, want %d", i, v, j, want[j])
			}
		}
	}
	maxV, err := res.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	if maxV != 29 {
		t.Fatalf("consensus max = %d", maxV)
	}
}

func TestGossipQuadraticCost(t *testing.T) {
	t.Parallel()

	f := fam(t, 4)
	mk := func(k int) []*Member {
		ms := make([]*Member, k)
		for i := range ms {
			ms[i] = &Member{Value: i * 3, D: f.Dialect(i % 4)}
		}
		return ms
	}
	small, err := GossipAll(mk(2), f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := GossipAll(mk(4), f, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !small.OK || !large.OK {
		t.Fatal("gossip failed")
	}
	// k(k−1) sessions: 2 → 2 sessions, 4 → 12 sessions; cost must grow
	// super-linearly.
	if large.TotalRounds < 3*small.TotalRounds {
		t.Fatalf("gossip cost not quadratic-ish: k=2→%d k=4→%d",
			small.TotalRounds, large.TotalRounds)
	}
}

func TestGossipValidation(t *testing.T) {
	t.Parallel()

	f := fam(t, 2)
	if _, err := GossipAll(nil, f, Config{}); err == nil {
		t.Error("empty members accepted")
	}
	if _, err := GossipAll([]*Member{{Value: 1, D: f.Dialect(0)}}, nil, Config{}); err == nil {
		t.Error("nil family accepted")
	}
}

func TestGossipSingleMember(t *testing.T) {
	t.Parallel()

	f := fam(t, 2)
	res, err := GossipAll([]*Member{{Value: 7, D: f.Dialect(1)}}, f, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxV, err := res.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	if maxV != 7 {
		t.Fatalf("single-member consensus = %d", maxV)
	}
}

func TestGossipConsensusDetectsFailure(t *testing.T) {
	t.Parallel()

	// A member speaking a dialect outside the family breaks its
	// sessions; Consensus must refuse.
	f := fam(t, 2)
	foreign := fam(t, 5)
	members := []*Member{
		{Value: 1, D: f.Dialect(0)},
		{Value: 2, D: foreign.Dialect(4)},
	}
	res, err := GossipAll(members, f, Config{Seed: 1, MaxRoundsPerSession: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("foreign member's sessions should fail")
	}
	if _, err := res.Consensus(); err == nil {
		t.Fatal("consensus on incomplete gossip accepted")
	}
}
