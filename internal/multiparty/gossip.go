package multiparty

import (
	"errors"
	"fmt"

	"repro/internal/dialect"
)

// GossipResult records a fully symmetric value exchange: every member
// learns every other member's value through pairwise universal sessions.
type GossipResult struct {
	// Values[i][j] is what member i learned about member j (j == i is
	// the member's own value).
	Values [][]int
	// TotalRounds sums all session lengths across all ordered pairs.
	TotalRounds int
	// OK reports whether every session succeeded.
	OK bool
}

// Consensus returns the maximum value if every member agrees on the full
// value vector, or an error otherwise — the symmetric goal "all parties
// know the maximum" in checkable form.
func (g *GossipResult) Consensus() (int, error) {
	if !g.OK {
		return 0, errors.New("multiparty: gossip incomplete")
	}
	if len(g.Values) == 0 {
		return 0, errors.New("multiparty: no members")
	}
	first := g.Values[0]
	for i, row := range g.Values {
		for j := range row {
			if row[j] != first[j] {
				return 0, fmt.Errorf("multiparty: member %d disagrees at %d", i, j)
			}
		}
	}
	maxV := first[0]
	for _, v := range first[1:] {
		if v > maxV {
			maxV = v
		}
	}
	return maxV, nil
}

// GossipAll runs the fully symmetric setting: every member acts as
// coordinator in turn and learns every other member's value via two-party
// universal sessions — k·(k−1) sessions in total, the quadratic cost of
// reducing the symmetric goal pairwise. cfg has the same meaning as for
// LearnValues.
func GossipAll(members []*Member, fam *dialect.Family, cfg Config) (*GossipResult, error) {
	if len(members) == 0 {
		return nil, errors.New("multiparty: no members")
	}
	if fam == nil {
		return nil, errors.New("multiparty: nil dialect family")
	}

	k := len(members)
	res := &GossipResult{
		Values: make([][]int, k),
		OK:     true,
	}
	for i := range res.Values {
		res.Values[i] = make([]int, k)
		res.Values[i][i] = members[i].Value
	}

	if k == 1 {
		// A lone member trivially knows the full vector.
		return res, nil
	}

	for i := 0; i < k; i++ {
		// Coordinator i queries every peer j ≠ i.
		peers := make([]*Member, 0, k-1)
		idx := make([]int, 0, k-1)
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			peers = append(peers, members[j])
			idx = append(idx, j)
		}
		perCfg := cfg
		perCfg.Seed = cfg.Seed*uint64(k+1) + uint64(i) + 1
		lr, err := LearnValues(peers, fam, perCfg)
		if err != nil {
			return nil, fmt.Errorf("multiparty: coordinator %d: %w", i, err)
		}
		res.TotalRounds += lr.TotalRounds
		for p, s := range lr.Sessions {
			if !s.OK {
				res.OK = false
				continue
			}
			res.Values[i][idx[p]] = s.Value
		}
	}
	return res, nil
}
