// Package dialect models the "language mismatch" at the heart of the paper:
// components built at different times, by different groups, speaking
// different encodings of the same underlying protocol.
//
// A Dialect is an invertible message transformation. Servers are wrapped so
// that they only understand commands encoded in their own dialect
// (internal/server.Dialected); the class of possible servers the paper's
// user must cope with is then a Family of dialects, and a universal user
// must achieve its goal without knowing which family member it is paired
// with.
//
// Every dialect satisfies Decode(Encode(m)) == m for all messages m over its
// domain; families are generated deterministically from a seed so that
// experiments are reproducible.
package dialect

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/xrand"
)

// Dialect is an invertible encoding of messages.
//
// Implementations must be pure functions of the message: Encode and
// Decode may not depend on call order, randomness or external state.
// Callers rely on this — server.Dialected memoizes translations and
// candidate strategies cache encoded commands, so an impure dialect
// would be served stale translations. Model randomness (noise, drops)
// with a server transform (server.Noisy), not inside a dialect.
type Dialect interface {
	// ID is the dialect's index within its family.
	ID() int

	// Name identifies the dialect for logs and tables.
	Name() string

	// Encode maps a plain message to its wire form.
	Encode(m comm.Message) comm.Message

	// Decode maps a wire-form message back to plain form. For messages
	// produced by Encode it is an exact inverse; on other inputs it
	// applies the inverse transformation mechanically (garbage in,
	// garbage out), which is precisely how a mismatched server
	// misunderstands a foreign protocol.
	Decode(m comm.Message) comm.Message
}

// Family is a finite, indexable set of dialects — the server class of an
// experiment.
type Family struct {
	name     string
	dialects []Dialect
}

// NewFamily assembles a family from explicit dialects. It returns an error
// if the family is empty.
func NewFamily(name string, ds []Dialect) (*Family, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("dialect: family %q has no dialects", name)
	}
	copied := make([]Dialect, len(ds))
	copy(copied, ds)
	return &Family{name: name, dialects: copied}, nil
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Size returns the number of dialects in the family.
func (f *Family) Size() int { return len(f.dialects) }

// Dialect returns the i-th dialect; indices wrap modulo Size so enumerators
// can probe freely.
func (f *Family) Dialect(i int) Dialect {
	n := len(f.dialects)
	i %= n
	if i < 0 {
		i += n
	}
	return f.dialects[i]
}

// identity is dialect 0 of most families: the designers who agree on the
// standard.
type identity struct{ id int }

var _ Dialect = identity{}

func (d identity) ID() int                            { return d.id }
func (d identity) Name() string                       { return fmt.Sprintf("identity#%d", d.id) }
func (d identity) Encode(m comm.Message) comm.Message { return m }
func (d identity) Decode(m comm.Message) comm.Message { return m }

// Identity returns the trivial dialect with the given ID.
func Identity(id int) Dialect { return identity{id: id} }

// rot rotates the letter and digit characters of a message by a fixed
// offset, leaving other bytes (spaces, punctuation) intact so token
// structure is preserved.
type rot struct {
	id     int
	offset int
}

var _ Dialect = rot{}

func (d rot) ID() int      { return d.id }
func (d rot) Name() string { return fmt.Sprintf("rot%d#%d", d.offset, d.id) }

func rotByte(b byte, k int) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return 'a' + byte((int(b-'a')+k%26+26)%26)
	case b >= 'A' && b <= 'Z':
		return 'A' + byte((int(b-'A')+k%26+26)%26)
	case b >= '0' && b <= '9':
		return '0' + byte((int(b-'0')+k%10+10)%10)
	default:
		return b
	}
}

func (d rot) Encode(m comm.Message) comm.Message {
	out := make([]byte, len(m))
	for i := 0; i < len(m); i++ {
		out[i] = rotByte(m[i], d.offset)
	}
	return comm.Message(out)
}

func (d rot) Decode(m comm.Message) comm.Message {
	out := make([]byte, len(m))
	for i := 0; i < len(m); i++ {
		out[i] = rotByte(m[i], -d.offset)
	}
	return comm.Message(out)
}

// NewRotFamily builds a family of n rotation dialects; dialect i rotates by
// i (dialect 0 is the identity).
func NewRotFamily(n int) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("dialect: rot family size %d < 1", n)
	}
	ds := make([]Dialect, n)
	for i := range ds {
		ds[i] = rot{id: i, offset: i}
	}
	return NewFamily("rot", ds)
}

// perm applies a byte permutation over the alphanumeric characters.
type perm struct {
	id      int
	forward [256]byte
	inverse [256]byte
}

var _ Dialect = (*perm)(nil)

func (d *perm) ID() int      { return d.id }
func (d *perm) Name() string { return fmt.Sprintf("perm#%d", d.id) }

func (d *perm) Encode(m comm.Message) comm.Message {
	out := make([]byte, len(m))
	for i := 0; i < len(m); i++ {
		out[i] = d.forward[m[i]]
	}
	return comm.Message(out)
}

func (d *perm) Decode(m comm.Message) comm.Message {
	out := make([]byte, len(m))
	for i := 0; i < len(m); i++ {
		out[i] = d.inverse[m[i]]
	}
	return comm.Message(out)
}

const permDomain = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// NewPermutationFamily builds n dialects, each permuting the alphanumeric
// characters by an independent uniform permutation derived from seed.
// Dialect 0 is the identity permutation (the "standard" encoding).
func NewPermutationFamily(n int, seed uint64) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("dialect: permutation family size %d < 1", n)
	}
	r := xrand.New(seed)
	ds := make([]Dialect, n)
	for i := range ds {
		d := &perm{id: i}
		for b := 0; b < 256; b++ {
			d.forward[b] = byte(b)
			d.inverse[b] = byte(b)
		}
		if i > 0 {
			p := r.Perm(len(permDomain))
			for from, to := range p {
				d.forward[permDomain[from]] = permDomain[to]
			}
			for b := 0; b < 256; b++ {
				d.inverse[d.forward[b]] = byte(b)
			}
		}
		ds[i] = d
	}
	return NewFamily("perm", ds)
}

// wordMap substitutes whole space-separated tokens according to a bijective
// vocabulary table; tokens outside the vocabulary pass through unchanged
// (they are payload, e.g. document contents).
type wordMap struct {
	id      int
	forward map[string]string
	inverse map[string]string
}

var _ Dialect = (*wordMap)(nil)

func (d *wordMap) ID() int      { return d.id }
func (d *wordMap) Name() string { return fmt.Sprintf("words#%d", d.id) }

func mapTokens(m comm.Message, table map[string]string) comm.Message {
	if m.Empty() {
		return m
	}
	tokens := strings.Split(string(m), " ")
	for i, tok := range tokens {
		if repl, ok := table[tok]; ok {
			tokens[i] = repl
		}
	}
	return comm.Message(strings.Join(tokens, " "))
}

func (d *wordMap) Encode(m comm.Message) comm.Message { return mapTokens(m, d.forward) }
func (d *wordMap) Decode(m comm.Message) comm.Message { return mapTokens(m, d.inverse) }

// NewWordFamily builds n dialects over the given vocabulary. Dialect 0 maps
// every word to itself; dialect i > 0 swaps vocabulary words with synthetic
// codewords ("w<i>_<j>"), an involution, so that plain commands are
// gibberish to a mismatched server and no two dialects are mutually
// intelligible. It returns an error for an empty vocabulary or n < 1.
func NewWordFamily(vocab []string, n int) (*Family, error) {
	if n < 1 {
		return nil, fmt.Errorf("dialect: word family size %d < 1", n)
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("dialect: word family needs a vocabulary")
	}
	ds := make([]Dialect, n)
	for i := range ds {
		d := &wordMap{
			id:      i,
			forward: make(map[string]string, 2*len(vocab)),
			inverse: make(map[string]string, 2*len(vocab)),
		}
		for j, w := range vocab {
			code := w
			if i > 0 {
				code = fmt.Sprintf("w%d_%d", i, j)
			}
			// Swap word and codeword in both directions so the
			// map is a bijection on vocab ∪ codewords.
			d.forward[w] = code
			d.forward[code] = w
			d.inverse[code] = w
			d.inverse[w] = code
		}
		ds[i] = d
	}
	return NewFamily("words", ds)
}
