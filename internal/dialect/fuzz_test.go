package dialect

import (
	"testing"

	"repro/internal/comm"
)

func FuzzPermutationRoundTrip(f *testing.F) {
	fam, err := NewPermutationFamily(8, 42)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("PRINT hello 123", uint8(3))
	f.Add("", uint8(0))
	f.Add("\x00\xff binary-ish", uint8(7))
	f.Fuzz(func(t *testing.T, s string, idx uint8) {
		d := fam.Dialect(int(idx) % fam.Size())
		m := comm.Message(s)
		if got := d.Decode(d.Encode(m)); got != m {
			t.Fatalf("round trip broke: %q → %q", m, got)
		}
	})
}

func FuzzRotRoundTrip(f *testing.F) {
	fam, err := NewRotFamily(26)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("The quick brown fox 0123456789", uint8(13))
	f.Fuzz(func(t *testing.T, s string, idx uint8) {
		d := fam.Dialect(int(idx) % fam.Size())
		m := comm.Message(s)
		if got := d.Decode(d.Encode(m)); got != m {
			t.Fatalf("round trip broke: %q → %q", m, got)
		}
	})
}

func FuzzWordRoundTrip(f *testing.F) {
	fam, err := NewWordFamily([]string{"PRINT", "STATUS", "ACK", "READY"}, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("PRINT doc with spaces", uint8(2))
	f.Add("w3_0 payload", uint8(3))
	f.Fuzz(func(t *testing.T, s string, idx uint8) {
		d := fam.Dialect(int(idx) % fam.Size())
		m := comm.Message(s)
		if got := d.Decode(d.Encode(m)); got != m {
			t.Fatalf("round trip broke: %q → %q", m, got)
		}
	})
}
