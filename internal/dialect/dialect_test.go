package dialect

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/comm"
)

func families(t *testing.T) map[string]*Family {
	t.Helper()

	rotF, err := NewRotFamily(8)
	if err != nil {
		t.Fatal(err)
	}
	permF, err := NewPermutationFamily(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	wordF, err := NewWordFamily([]string{"PRINT", "STATUS", "ACK"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Family{"rot": rotF, "perm": permF, "words": wordF}
}

func TestRoundTripAllFamilies(t *testing.T) {
	t.Parallel()

	msgs := []comm.Message{
		"", "PRINT hello world 123", "STATUS", "ACK doc42",
		"Mixed CASE and 0123456789", "payload-not-in-vocab",
	}
	for name, fam := range families(t) {
		for i := 0; i < fam.Size(); i++ {
			d := fam.Dialect(i)
			for _, m := range msgs {
				if got := d.Decode(d.Encode(m)); got != m {
					t.Errorf("%s[%d]: Decode(Encode(%q)) = %q", name, i, m, got)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	t.Parallel()

	fam, err := NewPermutationFamily(16, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte, idx uint8) bool {
		d := fam.Dialect(int(idx) % fam.Size())
		m := comm.Message(raw)
		return d.Decode(d.Encode(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDialectZeroIsIdentity(t *testing.T) {
	t.Parallel()

	for name, fam := range families(t) {
		d := fam.Dialect(0)
		m := comm.Message("PRINT abc 123")
		if got := d.Encode(m); got != m {
			t.Errorf("%s[0].Encode changed message: %q", name, got)
		}
	}
}

func TestDialectsMutuallyUnintelligible(t *testing.T) {
	t.Parallel()

	// For every pair i != j, encoding with i and decoding with j must
	// not recover the plain command (otherwise the class collapses).
	m := comm.Message("PRINT document")
	for name, fam := range families(t) {
		collisions := 0
		for i := 0; i < fam.Size(); i++ {
			for j := 0; j < fam.Size(); j++ {
				if i == j {
					continue
				}
				got := fam.Dialect(j).Decode(fam.Dialect(i).Encode(m))
				if got == m {
					collisions++
				}
			}
		}
		if collisions > 0 {
			t.Errorf("%s: %d cross-dialect collisions on %q", name, collisions, m)
		}
	}
}

func TestWordFamilyPreservesPayload(t *testing.T) {
	t.Parallel()

	fam, err := NewWordFamily([]string{"PRINT"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := fam.Dialect(2)
	enc := d.Encode("PRINT report.txt")
	if !strings.HasSuffix(string(enc), " report.txt") {
		t.Fatalf("payload token was transformed: %q", enc)
	}
	if strings.HasPrefix(string(enc), "PRINT") {
		t.Fatalf("verb not transformed: %q", enc)
	}
}

func TestFamilyIndexWraps(t *testing.T) {
	t.Parallel()

	fam, err := NewRotFamily(4)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Dialect(4).ID() != fam.Dialect(0).ID() {
		t.Error("positive wrap failed")
	}
	if fam.Dialect(-1).ID() != fam.Dialect(3).ID() {
		t.Error("negative wrap failed")
	}
}

func TestNewFamilyValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewFamily("empty", nil); err == nil {
		t.Error("empty family accepted")
	}
	if _, err := NewRotFamily(0); err == nil {
		t.Error("rot family of size 0 accepted")
	}
	if _, err := NewPermutationFamily(0, 1); err == nil {
		t.Error("perm family of size 0 accepted")
	}
	if _, err := NewWordFamily(nil, 3); err == nil {
		t.Error("word family without vocabulary accepted")
	}
	if _, err := NewWordFamily([]string{"A"}, 0); err == nil {
		t.Error("word family of size 0 accepted")
	}
}

func TestPermutationFamilyDeterministic(t *testing.T) {
	t.Parallel()

	a, err := NewPermutationFamily(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPermutationFamily(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := comm.Message("The quick Brown fox 42")
	for i := 0; i < 8; i++ {
		if a.Dialect(i).Encode(m) != b.Dialect(i).Encode(m) {
			t.Fatalf("dialect %d differs across identically-seeded families", i)
		}
	}
}

func TestIdentityDialect(t *testing.T) {
	t.Parallel()

	d := Identity(3)
	if d.ID() != 3 {
		t.Fatal("wrong id")
	}
	if d.Encode("x") != "x" || d.Decode("y") != "y" {
		t.Fatal("identity transformed a message")
	}
}
