package enumerate

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/xrand"
)

func labeled(label rune, n int) Enumerator {
	return FromFunc(string(label), n, func(i int) comm.Strategy {
		msg := comm.Message(string(label) + string(rune('0'+i)))
		return &commtest.Script{Outs: []comm.Outbox{{ToServer: msg}}}
	})
}

func firstOf(t *testing.T, e Enumerator, i int) string {
	t.Helper()
	s := e.Strategy(i)
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	return string(out.ToServer)
}

func TestConcatOrderAndSize(t *testing.T) {
	t.Parallel()

	c, err := Concat(labeled('a', 2), labeled('b', 3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 {
		t.Fatalf("size = %d", c.Size())
	}
	want := []string{"a0", "a1", "b0", "b1", "b2"}
	for i, w := range want {
		if got := firstOf(t, c, i); got != w {
			t.Fatalf("concat[%d] = %q, want %q", i, got, w)
		}
	}
}

func TestConcatRejectsUnbounded(t *testing.T) {
	t.Parallel()

	u := FromFunc("u", Unbounded, func(int) comm.Strategy { return &commtest.Silent{} })
	if _, err := Concat(u, labeled('a', 2)); err == nil {
		t.Fatal("unbounded concat accepted")
	}
}

func TestInterleaveEqualSizes(t *testing.T) {
	t.Parallel()

	il, err := Interleave(labeled('a', 2), labeled('b', 2))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b1"}
	for i, w := range want {
		if got := firstOf(t, il, i); got != w {
			t.Fatalf("interleave[%d] = %q, want %q", i, got, w)
		}
	}
}

func TestInterleaveUnequalSizesIsTotal(t *testing.T) {
	t.Parallel()

	// The shorter family drops out; every strategy of the longer family
	// must still appear exactly once.
	il, err := Interleave(labeled('a', 1), labeled('b', 4))
	if err != nil {
		t.Fatal(err)
	}
	if il.Size() != 5 {
		t.Fatalf("size = %d", il.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < il.Size(); i++ {
		seen[firstOf(t, il, i)] = true
	}
	for _, w := range []string{"a0", "b0", "b1", "b2", "b3"} {
		if !seen[w] {
			t.Fatalf("strategy %q missing from interleave: %v", w, seen)
		}
	}
}

func TestInterleaveAllUnbounded(t *testing.T) {
	t.Parallel()

	mk := func(label rune) Enumerator {
		return FromFunc(string(label), Unbounded, func(i int) comm.Strategy {
			msg := comm.Message(string(label) + string(rune('0'+i%10)))
			return &commtest.Script{Outs: []comm.Outbox{{ToServer: msg}}}
		})
	}
	il, err := Interleave(mk('x'), mk('y'))
	if err != nil {
		t.Fatal(err)
	}
	if il.Size() != Unbounded {
		t.Fatal("all-unbounded interleave should be unbounded")
	}
	if got := firstOf(t, il, 0); got != "x0" {
		t.Fatalf("il[0] = %q", got)
	}
	if got := firstOf(t, il, 3); got != "y1" {
		t.Fatalf("il[3] = %q", got)
	}
}

func TestInterleaveRejectsMixed(t *testing.T) {
	t.Parallel()

	u := FromFunc("u", Unbounded, func(int) comm.Strategy { return &commtest.Silent{} })
	if _, err := Interleave(u, labeled('a', 2)); err == nil {
		t.Fatal("mixed interleave accepted")
	}
	if _, err := Interleave(); err == nil {
		t.Fatal("empty interleave accepted")
	}
}
