package enumerate

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/fst"
	"repro/internal/xrand"
)

func constEnum(n int) Enumerator {
	return FromFunc("const", n, func(i int) comm.Strategy {
		return &commtest.Script{Outs: []comm.Outbox{{ToServer: comm.Message(rune('a' + i))}}}
	})
}

func firstMsg(t *testing.T, s comm.Strategy) comm.Message {
	t.Helper()
	s.Reset(xrand.New(1))
	out, err := s.Step(comm.Inbox{})
	if err != nil {
		t.Fatal(err)
	}
	return out.ToServer
}

func TestFromFuncWraps(t *testing.T) {
	t.Parallel()

	e := constEnum(3)
	if got := firstMsg(t, e.Strategy(4)); got != firstMsg(t, e.Strategy(1)) {
		t.Fatalf("index 4 should wrap to 1, got %q", got)
	}
	if got := firstMsg(t, e.Strategy(-2)); got != firstMsg(t, e.Strategy(2)) {
		t.Fatalf("negative index should map into range, got %q", got)
	}
}

func TestFromFuncValidation(t *testing.T) {
	t.Parallel()

	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("nil func", func() { FromFunc("x", 1, nil) })
	assertPanics("zero size", func() { FromFunc("x", 0, func(int) comm.Strategy { return nil }) })
	assertPanics("bad negative size", func() { FromFunc("x", -2, func(int) comm.Strategy { return nil }) })
}

func TestUnboundedEnumerator(t *testing.T) {
	t.Parallel()

	e := FromFunc("unbounded", Unbounded, func(i int) comm.Strategy {
		return &commtest.Script{Outs: []comm.Outbox{{ToServer: comm.Message(rune(i))}}}
	})
	if e.Size() != Unbounded {
		t.Fatal("size not unbounded")
	}
	if got := firstMsg(t, e.Strategy(1000)); got != comm.Message(rune(1000)) {
		t.Fatalf("unbounded enumerator wrapped: %q", got)
	}
}

func TestReordered(t *testing.T) {
	t.Parallel()

	e := constEnum(3)
	r, err := Reordered(e, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := firstMsg(t, r.Strategy(0)); got != "c" {
		t.Fatalf("reordered[0] = %q, want c", got)
	}
	if got := firstMsg(t, r.Strategy(2)); got != "b" {
		t.Fatalf("reordered[2] = %q, want b", got)
	}
}

func TestReorderedValidation(t *testing.T) {
	t.Parallel()

	e := constEnum(3)
	if _, err := Reordered(e, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Reordered(e, []int{0, 1, 1}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := Reordered(e, []int{0, 1, 3}); err == nil {
		t.Error("out-of-range order accepted")
	}
	unbounded := FromFunc("u", Unbounded, func(int) comm.Strategy { return &commtest.Silent{} })
	if _, err := Reordered(unbounded, nil); err == nil {
		t.Error("reorder of unbounded enumerator accepted")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	t.Parallel()

	e := constEnum(6)
	s, err := Shuffled(e, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[comm.Message]bool)
	for i := 0; i < 6; i++ {
		seen[firstMsg(t, s.Strategy(i))] = true
	}
	if len(seen) != 6 {
		t.Fatalf("shuffle lost strategies: %d distinct", len(seen))
	}
}

func TestShuffledDeterministic(t *testing.T) {
	t.Parallel()

	e := constEnum(6)
	a, err := Shuffled(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shuffled(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if firstMsg(t, a.Strategy(i)) != firstMsg(t, b.Strategy(i)) {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

func testCodec() SymbolCodec {
	return SymbolCodec{
		NumIn:  2,
		NumOut: 2,
		In: func(in comm.Inbox) int {
			if in.FromServer.Empty() {
				return 0
			}
			return 1
		},
		Out: func(sym int) comm.Outbox {
			if sym == 0 {
				return comm.Outbox{}
			}
			return comm.Outbox{ToServer: "ping"}
		},
	}
}

func TestFSTEnumeratorTotal(t *testing.T) {
	t.Parallel()

	space := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	e, err := FST(space, testCodec())
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 256 {
		t.Fatalf("size = %d, want 256", e.Size())
	}
	// Every index must yield a runnable strategy.
	for i := 0; i < e.Size(); i += 17 {
		s := e.Strategy(i)
		s.Reset(xrand.New(1))
		if _, err := s.Step(comm.Inbox{FromServer: "x"}); err != nil {
			t.Fatalf("strategy %d failed: %v", i, err)
		}
	}
}

func TestFSTValidation(t *testing.T) {
	t.Parallel()

	space := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	if _, err := FST(fst.Space{}, testCodec()); err == nil {
		t.Error("invalid space accepted")
	}
	if _, err := FST(space, SymbolCodec{NumIn: 2, NumOut: 2}); err == nil {
		t.Error("nil codec functions accepted")
	}
	bad := testCodec()
	bad.NumIn = 3
	if _, err := FST(space, bad); err == nil {
		t.Error("mismatched codec accepted")
	}
}

func TestFSTStrategyResetRestoresInitialState(t *testing.T) {
	t.Parallel()

	space := fst.Space{NumStates: 2, NumIn: 2, NumOut: 2}
	e, err := FST(space, testCodec())
	if err != nil {
		t.Fatal(err)
	}
	s := e.Strategy(137)
	run := func() []comm.Outbox {
		s.Reset(xrand.New(1))
		var outs []comm.Outbox
		for i := 0; i < 8; i++ {
			out, err := s.Step(comm.Inbox{FromServer: "x"})
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not restore initial FST state")
		}
	}
}
