// Package enumerate provides total enumerations of user strategies.
//
// The universal users of the theory work by enumerating candidate
// strategies: the compact-goal user switches to the next candidate on a
// negative sensing indication, and the finite-goal user dovetails candidates
// Levin-style. An Enumerator is the executable form of "an enumeration of
// the relevant class of user strategies": every index maps to a runnable
// strategy, deterministically.
package enumerate

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/fst"
	"repro/internal/xrand"
)

// Unbounded is returned by Size for enumerators over effectively infinite
// strategy classes.
const Unbounded = -1

// Enumerator is a total, indexable class of user strategies.
//
// Strategy must return a fresh strategy instance on every call: universal
// users Reset and interleave candidates, so shared state between calls would
// corrupt runs.
type Enumerator interface {
	// Name identifies the class in tables and logs.
	Name() string

	// Size returns the number of distinct strategies, or Unbounded.
	Size() int

	// Strategy returns the i-th strategy, for any i >= 0. Bounded
	// enumerators wrap indices modulo Size.
	Strategy(i int) comm.Strategy
}

type funcEnum struct {
	name string
	size int
	f    func(i int) comm.Strategy
}

var _ Enumerator = (*funcEnum)(nil)

// FromFunc builds an enumerator from an index-to-strategy function. size
// may be Unbounded. It panics on a nil function or size == 0, which are
// programming errors, not runtime conditions.
func FromFunc(name string, size int, f func(i int) comm.Strategy) Enumerator {
	if f == nil {
		panic("enumerate: FromFunc requires a non-nil function")
	}
	if size == 0 || size < Unbounded {
		panic(fmt.Sprintf("enumerate: invalid size %d", size))
	}
	return &funcEnum{name: name, size: size, f: f}
}

func (e *funcEnum) Name() string { return e.name }
func (e *funcEnum) Size() int    { return e.size }

func (e *funcEnum) Strategy(i int) comm.Strategy {
	if i < 0 {
		i = -i
	}
	if e.size > 0 {
		i %= e.size
	}
	return e.f(i)
}

// Reordered visits base's strategies in the given order: the i-th strategy
// of the result is base.Strategy(order[i]). It returns an error unless
// order is a permutation of [0, base.Size()).
func Reordered(base Enumerator, order []int) (Enumerator, error) {
	n := base.Size()
	if n == Unbounded {
		return nil, fmt.Errorf("enumerate: cannot reorder unbounded enumerator %q", base.Name())
	}
	if len(order) != n {
		return nil, fmt.Errorf("enumerate: order has %d entries, base %q has %d", len(order), base.Name(), n)
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, fmt.Errorf("enumerate: order is not a permutation of [0,%d)", n)
		}
		seen[idx] = true
	}
	copied := make([]int, n)
	copy(copied, order)
	return FromFunc(base.Name()+"/reordered", n, func(i int) comm.Strategy {
		return base.Strategy(copied[i])
	}), nil
}

// Shuffled returns base's strategies in a uniform random order derived from
// seed — the "no prior knowledge" baseline in overhead experiments.
func Shuffled(base Enumerator, seed uint64) (Enumerator, error) {
	n := base.Size()
	if n == Unbounded {
		return nil, fmt.Errorf("enumerate: cannot shuffle unbounded enumerator %q", base.Name())
	}
	return Reordered(base, xrand.New(seed).Perm(n))
}

// SymbolCodec translates between the message-profile world of strategies
// and the symbol world of finite-state transducers.
type SymbolCodec struct {
	// NumIn and NumOut are the alphabet sizes the codec produces and
	// consumes; they must match the FST space.
	NumIn, NumOut int

	// In classifies an inbox into an input symbol in [0, NumIn).
	In func(in comm.Inbox) int

	// Out renders an output symbol in [0, NumOut) as an outbox.
	Out func(sym int) comm.Outbox
}

// fstStrategy interprets a Mealy machine as a user strategy.
type fstStrategy struct {
	m     *fst.Machine
	codec SymbolCodec
	state int
}

var _ comm.Strategy = (*fstStrategy)(nil)

func (s *fstStrategy) Reset(*xrand.Rand) { s.state = 0 }

func (s *fstStrategy) Step(in comm.Inbox) (comm.Outbox, error) {
	sym := s.codec.In(in)
	next, out, err := s.m.Step(s.state, sym)
	if err != nil {
		return comm.Outbox{}, fmt.Errorf("enumerate: fst strategy: %w", err)
	}
	s.state = next
	return s.codec.Out(out), nil
}

// FST enumerates every finite-state-transducer strategy in the given space,
// interpreted through the codec. It returns an error if the space is
// invalid or the codec's alphabets do not match it.
func FST(space fst.Space, codec SymbolCodec) (Enumerator, error) {
	if !space.Valid() {
		return nil, fmt.Errorf("enumerate: invalid fst space %+v", space)
	}
	if codec.In == nil || codec.Out == nil {
		return nil, fmt.Errorf("enumerate: fst codec missing In/Out")
	}
	if codec.NumIn != space.NumIn || codec.NumOut != space.NumOut {
		return nil, fmt.Errorf("enumerate: codec alphabets (%d,%d) do not match space (%d,%d)",
			codec.NumIn, codec.NumOut, space.NumIn, space.NumOut)
	}
	size := space.Size()
	intSize := Unbounded
	if size < uint64(math.MaxInt) {
		intSize = int(size)
	}
	name := fmt.Sprintf("fst(%d,%d,%d)", space.NumStates, space.NumIn, space.NumOut)
	return FromFunc(name, intSize, func(i int) comm.Strategy {
		m, err := space.Machine(uint64(i))
		if err != nil {
			// Unreachable: the space was validated above. Fall back
			// to a silent machine rather than panicking mid-run.
			return &silent{}
		}
		return &fstStrategy{m: m, codec: codec}
	}), nil
}

// silent is the fallback strategy used if FST decoding ever fails.
type silent struct{}

var _ comm.Strategy = (*silent)(nil)

func (*silent) Reset(*xrand.Rand)                    {}
func (*silent) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }
