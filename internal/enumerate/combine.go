package enumerate

import (
	"fmt"
	"strings"

	"repro/internal/comm"
)

// Concat enumerates all of a's strategies followed by all of b's. Both
// must be bounded. Use it to extend a candidate class with a fallback
// family (e.g. plain printing candidates followed by robust ones).
func Concat(a, b Enumerator) (Enumerator, error) {
	if a.Size() == Unbounded || b.Size() == Unbounded {
		return nil, fmt.Errorf("enumerate: Concat requires bounded enumerators (%q, %q)",
			a.Name(), b.Name())
	}
	an, bn := a.Size(), b.Size()
	name := a.Name() + "+" + b.Name()
	return FromFunc(name, an+bn, func(i int) comm.Strategy {
		if i < an {
			return a.Strategy(i)
		}
		return b.Strategy(i - an)
	}), nil
}

// Interleave alternates between the given enumerators round-robin:
// index 0 → es[0][0], 1 → es[1][0], ..., then the second candidate of each
// family, and so on; families that run out of fresh candidates drop out of
// the rotation. Interleaving keeps every family's early candidates early —
// the right composition when each family might contain the match.
//
// If every member is unbounded the result is unbounded (uniform rotation);
// mixing bounded and unbounded members is rejected to keep the enumeration
// total.
func Interleave(es ...Enumerator) (Enumerator, error) {
	if len(es) == 0 {
		return nil, fmt.Errorf("enumerate: Interleave requires at least one enumerator")
	}
	names := make([]string, len(es))
	bounded, unbounded := 0, 0
	total := 0
	for i, e := range es {
		names[i] = e.Name()
		if e.Size() == Unbounded {
			unbounded++
		} else {
			bounded++
			total += e.Size()
		}
	}
	name := "interleave(" + strings.Join(names, ",") + ")"

	if unbounded > 0 && bounded > 0 {
		return nil, fmt.Errorf("enumerate: Interleave cannot mix bounded and unbounded enumerators")
	}
	if unbounded == len(es) {
		k := len(es)
		return FromFunc(name, Unbounded, func(i int) comm.Strategy {
			return es[i%k].Strategy(i / k)
		}), nil
	}

	// All bounded: precompute the round-robin schedule so every strategy
	// of every family appears exactly once (totality).
	type slot struct{ fam, idx int }
	schedule := make([]slot, 0, total)
	for depth := 0; len(schedule) < total; depth++ {
		for f, e := range es {
			if depth < e.Size() {
				schedule = append(schedule, slot{fam: f, idx: depth})
			}
		}
	}
	return FromFunc(name, total, func(i int) comm.Strategy {
		s := schedule[i]
		return es[s.fam].Strategy(s.idx)
	}), nil
}
