package xrand

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()

	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()

	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	t.Parallel()

	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded stream produced only %d distinct values", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()

	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	t.Parallel()

	r := New(7)
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 8000; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if c < 500 {
			t.Errorf("value %d badly under-represented: %d/8000", v, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()

	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()

	parent := New(5)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams collided %d/100 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	t.Parallel()

	c1 := New(5).Split()
	c2 := New(5).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()

	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	t.Parallel()

	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolBalanced(t *testing.T) {
	t.Parallel()

	r := New(13)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Fatalf("Bool badly unbalanced: %d/10000 true", trues)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
