// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Reproducibility is a core requirement of the experiment harness: every
// execution of a (user, server, world) system must be replayable from a
// single 64-bit seed. The standard library's math/rand is seedable but not
// conveniently splittable into independent per-party streams; xrand is.
//
// The generator is xoshiro256** seeded via splitmix64, following the public
// domain reference designs by Blackman and Vigna. It is not cryptographically
// secure and must not be used for security purposes.
package xrand

import "math/bits"

// Rand is a deterministic pseudo-random number generator.
//
// The zero value is not ready for use; construct instances with New or
// derive them with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed. Two generators
// constructed from the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-seeds r in place from the given 64-bit seed: afterwards r
// produces exactly the stream New(seed) would. It exists so hot loops
// can reuse one generator allocation across logical re-seedings.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitmix64 advances the splitmix state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 bits of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives a new generator whose future stream is independent of the
// parent's (in the statistical, not cryptographic, sense). The parent
// advances by two outputs; the child is seeded from them.
func (r *Rand) Split() *Rand {
	child := &Rand{}
	r.SplitInto(child)
	return child
}

// SplitInto re-seeds child from r exactly as Split would seed the
// generator it returns: the parent advances by the same two outputs and
// the child ends in the same state, so substituting SplitInto for Split
// (reusing one child allocation) never changes any stream.
func (r *Rand) SplitInto(child *Rand) {
	a, b := r.Uint64(), r.Uint64()
	child.Reseed(a ^ bits.RotateLeft64(b, 32))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.Intn; callers must validate n.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
