package harness

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/sensing"
	"repro/internal/system"
)

// refSafetyCompact is a straightforward full-recording, serial reference
// implementation of CertifySafetyCompact's verdict for one
// (candidate, server, env) triple: record everything, replay the sense
// over the complete view, judge the complete history.
func refSafetyVerdicts(
	t *testing.T,
	g goal.CompactGoal,
	mkSense func() sensing.Sense,
	users interface {
		Strategy(int) comm.Strategy
		Size() int
	},
	mkServer func() comm.Strategy,
	cfg CertConfig,
) []bool {
	t.Helper()
	verdicts := make([]bool, users.Size())
	for i := range verdicts {
		res, err := system.Run(users.Strategy(i), mkServer(),
			g.NewWorld(goal.Env{Choice: 0, Seed: cfg.Seed}),
			system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
		if err != nil {
			t.Fatal(err)
		}
		inds := sensing.Indications(mkSense(), res.View)
		eventually := len(inds) >= cfg.window()
		if eventually {
			for _, v := range inds[len(inds)-cfg.window():] {
				if !v {
					eventually = false
					break
				}
			}
		}
		verdicts[i] = eventually && !goal.CompactAchieved(g, res.History, cfg.window())
	}
	return verdicts
}

// TestWindowedRetentionMatchesFullRecording is the acceptance check for
// the Window(k) retention policy: certification — which runs with windowed
// retention and online sensing — must produce exactly the per-candidate
// safety verdicts of a full-recording replay-based reference.
func TestWindowedRetentionMatchesFullRecording(t *testing.T) {
	t.Parallel()

	const n = 4
	g, fam, servers := printingFixture(t, n)
	cfg := CertConfig{MaxRounds: 120, Seed: 1, Envs: 1}
	mkSense := func() sensing.Sense { return printing.TrustingSense() }
	enum := printing.Enum(fam)

	// The lying printer is where the trusting sense produces genuine
	// safety violations; a helpful printer is where it must not.
	for name, mkServer := range map[string]func() comm.Strategy{
		"lying":   func() comm.Strategy { return &printing.LyingServer{} },
		"helpful": servers[1],
	} {
		want := refSafetyVerdicts(t, g, mkSense, enum, mkServer, cfg)
		got := make([]bool, enum.Size())
		for _, v := range CertifySafetyCompact(g, mkSense, enum,
			[]func() comm.Strategy{mkServer}, cfg) {
			got[v.Candidate] = true
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s server, candidate %d: windowed verdict %v, full-recording verdict %v",
					name, i, got[i], want[i])
			}
		}
	}

	// Achievement verdicts under windowed retention: a direct engine-level
	// comparison on the compact printing goal.
	for srvIdx := 0; srvIdx < n; srvIdx++ {
		run := func(rec system.RecordPolicy) bool {
			res, err := system.Run(enum.Strategy(srvIdx), servers[srvIdx](),
				g.NewWorld(goal.Env{}),
				system.Config{MaxRounds: 120, Seed: 1, Record: rec})
			if err != nil {
				t.Fatal(err)
			}
			return goal.CompactAchieved(g, res.History, 10)
		}
		if full, windowed := run(system.RecordFull), run(system.RecordWindow(10)); full != windowed {
			t.Fatalf("server %d: CompactAchieved full=%v windowed=%v", srvIdx, full, windowed)
		}
	}
}
