package harness

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goals/delegation"
	"repro/internal/sensing"
	"repro/internal/server"
)

func delegationFixture(t *testing.T, n int) (*delegation.Goal, *dialect.Family, []func() comm.Strategy) {
	t.Helper()
	fam, err := dialect.NewWordFamily(delegation.Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]func() comm.Strategy, n)
	for i := range servers {
		d := fam.Dialect(i)
		servers[i] = func() comm.Strategy { return server.Dialected(&delegation.Server{}, d) }
	}
	return &delegation.Goal{N: 10, Instances: 2}, fam, servers
}

func TestHelpfulFinite(t *testing.T) {
	t.Parallel()

	g, fam, servers := delegationFixture(t, 4)
	cfg := CertConfig{MaxRounds: 60, Seed: 1}

	ok, witness := HelpfulFinite(g, servers[3], delegation.Enum(fam), cfg)
	if !ok || witness != 3 {
		t.Fatalf("helpful = %v witness = %d, want true/3", ok, witness)
	}

	ok, _ = HelpfulFinite(g, func() comm.Strategy { return server.Obstinate() },
		delegation.Enum(fam), cfg)
	if ok {
		t.Fatal("obstinate server certified helpful for a finite goal")
	}
}

func TestCertifySafetyFiniteAcceptsVerificationSense(t *testing.T) {
	t.Parallel()

	g, fam, servers := delegationFixture(t, 4)
	// Include a fully flaky solver: its corrupted witnesses must never
	// earn a positive verdict.
	all := append(servers, func() comm.Strategy {
		return server.Dialected(&delegation.FlakyServer{P: 1}, fam.Dialect(0))
	})
	cfg := CertConfig{MaxRounds: 60, Seed: 1}
	vs := CertifySafetyFinite(g, func() sensing.Sense { return delegation.Sense() },
		delegation.Enum(fam), all, cfg)
	if len(vs) != 0 {
		t.Fatalf("verification sense flagged: %v", vs)
	}
}

func TestCertifySafetyFiniteRejectsGullibleSense(t *testing.T) {
	t.Parallel()

	// A sense that accepts any halted attempt is unsafe: the naive
	// candidate halts on corrupted witnesses too.
	g, fam, _ := delegationFixture(t, 4)
	flaky := []func() comm.Strategy{
		func() comm.Strategy {
			return server.Dialected(&delegation.FlakyServer{P: 1}, fam.Dialect(0))
		},
	}
	cfg := CertConfig{MaxRounds: 60, Seed: 1}
	vs := CertifySafetyFinite(g, func() sensing.Sense { return sensing.Const(true) },
		delegation.Enum(fam), flaky, cfg)
	if len(vs) == 0 {
		t.Fatal("gullible sense passed finite safety certification")
	}
}

func TestCertifyViabilityFinite(t *testing.T) {
	t.Parallel()

	g, fam, servers := delegationFixture(t, 4)
	cfg := CertConfig{MaxRounds: 60, Seed: 1}

	vs := CertifyViabilityFinite(g, func() sensing.Sense { return delegation.Sense() },
		delegation.Enum(fam), servers, cfg)
	if len(vs) != 0 {
		t.Fatalf("verification sense flagged as non-viable: %v", vs)
	}

	// A never-positive sense is trivially safe but not viable.
	vs = CertifyViabilityFinite(g, func() sensing.Sense { return sensing.Const(false) },
		delegation.Enum(fam), servers, cfg)
	if len(vs) != len(servers)*g.EnvChoices() {
		t.Fatalf("constant-false viability violations = %d, want %d",
			len(vs), len(servers)*g.EnvChoices())
	}
}
