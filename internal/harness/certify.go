package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// CertConfig parameterizes empirical certification runs.
type CertConfig struct {
	// MaxRounds is the execution horizon per run; 0 means the system
	// default.
	MaxRounds int
	// Window is the convergence window for compact goals; 0 means 10.
	Window int
	// Seed drives all randomness.
	Seed uint64
	// Envs is how many environment choices to sweep; 0 means the goal's
	// EnvChoices.
	Envs int
}

func (c CertConfig) window() int {
	if c.Window <= 0 {
		return 10
	}
	return c.Window
}

func (c CertConfig) envs(g goal.Goal) int {
	if c.Envs > 0 {
		return c.Envs
	}
	return g.EnvChoices()
}

// Violation records one certification failure.
type Violation struct {
	// Kind names the violated property ("safety", "viability",
	// "helpfulness", "forgiving").
	Kind string
	// Server and Env identify the failing configuration; Candidate is
	// the strategy index where applicable (-1 otherwise).
	Server, Env, Candidate int
	// Detail is a human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation (server %d, env %d, candidate %d): %s",
		v.Kind, v.Server, v.Env, v.Candidate, v.Detail)
}

// eventuallyPositive reports whether the indication sequence is positive on
// the final window rounds (the empirical reading of "only finitely many
// negative indications").
func eventuallyPositive(inds []bool, window int) bool {
	if len(inds) < window {
		return false
	}
	for _, v := range inds[len(inds)-window:] {
		if !v {
			return false
		}
	}
	return true
}

// HelpfulCompact reports whether the server is helpful for the compact goal
// with respect to the candidate class: some enumerated candidate achieves
// the goal when paired with it, from every swept environment. It returns
// the first witnessing candidate index (or -1).
func HelpfulCompact(
	g goal.CompactGoal,
	mkServer func() comm.Strategy,
	enum enumerate.Enumerator,
	cfg CertConfig,
) (bool, int) {
	size := enum.Size()
	if size == enumerate.Unbounded {
		size = 64 // probe a prefix of an unbounded class
	}
candidates:
	for i := 0; i < size; i++ {
		for env := 0; env < cfg.envs(g); env++ {
			res, err := system.Run(enum.Strategy(i), mkServer(),
				g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
				system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
			if err != nil || !goal.CompactAchieved(g, res.History, cfg.window()) {
				continue candidates
			}
		}
		return true, i
	}
	return false, -1
}

// CertifySafetyCompact checks the safety of a sensing function for a
// compact goal against a set of server factories: whenever a pairing's
// indications are eventually always positive, the execution must achieve
// the goal. mkSense must return a fresh Sense per call; users enumerates
// the user strategies to pair (typically the candidate class itself).
func CertifySafetyCompact(
	g goal.CompactGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := users.Size()
	if size == enumerate.Unbounded {
		size = 64
	}
	for si, mkServer := range servers {
		for i := 0; i < size; i++ {
			for env := 0; env < cfg.envs(g); env++ {
				res, err := system.Run(users.Strategy(i), mkServer(),
					g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
					system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
				if err != nil {
					violations = append(violations, Violation{
						Kind: "safety", Server: si, Env: env, Candidate: i,
						Detail: fmt.Sprintf("execution error: %v", err),
					})
					continue
				}
				inds := sensing.Indications(mkSense(), res.View)
				if eventuallyPositive(inds, cfg.window()) &&
					!goal.CompactAchieved(g, res.History, cfg.window()) {
					violations = append(violations, Violation{
						Kind: "safety", Server: si, Env: env, Candidate: i,
						Detail: "indications eventually positive but goal not achieved",
					})
				}
			}
		}
	}
	return violations
}

// CertifyViabilityCompact checks viability: for every server in the list
// (all assumed helpful), some candidate achieves the goal *and* earns
// eventually-always-positive indications. One violation is reported per
// server lacking such a candidate.
func CertifyViabilityCompact(
	g goal.CompactGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := users.Size()
	if size == enumerate.Unbounded {
		size = 64
	}
	for si, mkServer := range servers {
		for env := 0; env < cfg.envs(g); env++ {
			found := false
			for i := 0; i < size && !found; i++ {
				res, err := system.Run(users.Strategy(i), mkServer(),
					g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
					system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
				if err != nil {
					continue
				}
				inds := sensing.Indications(mkSense(), res.View)
				if eventuallyPositive(inds, cfg.window()) &&
					goal.CompactAchieved(g, res.History, cfg.window()) {
					found = true
				}
			}
			if !found {
				violations = append(violations, Violation{
					Kind: "viability", Server: si, Env: env, Candidate: -1,
					Detail: "no candidate earns lasting positive indications while achieving the goal",
				})
			}
		}
	}
	return violations
}
