package harness

import (
	"fmt"
	"runtime"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// CertConfig parameterizes empirical certification runs.
//
// Certification executes through system.RunEach with windowed retention:
// only the trailing convergence window of world states is materialized and
// sensing indications are computed online, round by round, instead of by
// replaying a fully recorded view. Verdicts are identical to full
// recording for every stock goal (their referees judge a history by its
// recent states), at a fraction of the memory traffic.
type CertConfig struct {
	// MaxRounds is the execution horizon per run; 0 means the system
	// default.
	MaxRounds int
	// Window is the convergence window for compact goals; 0 means 10.
	Window int
	// Seed drives all randomness.
	Seed uint64
	// Envs is how many environment choices to sweep; 0 means the goal's
	// EnvChoices.
	Envs int
	// Parallel bounds the certification worker pool; values < 1 mean
	// GOMAXPROCS. Results are identical at every setting.
	Parallel int
}

func (c CertConfig) window() int {
	if c.Window <= 0 {
		return 10
	}
	return c.Window
}

func (c CertConfig) envs(g goal.Goal) int {
	if c.Envs > 0 {
		return c.Envs
	}
	return g.EnvChoices()
}

func (c CertConfig) batch() system.BatchConfig {
	return system.BatchConfig{Parallelism: c.Parallel}
}

// chunk is how many candidates a chunked search runs per batch: enough to
// feed the worker pool while keeping the early-exit waste bounded.
func (c CertConfig) chunk() int {
	n := c.Parallel
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 4 {
		n = 4
	}
	return n
}

// probeCap bounds the candidate prefix examined for unbounded classes.
const probeCap = 64

func boundedSize(e enumerate.Enumerator) int {
	if size := e.Size(); size != enumerate.Unbounded {
		return size
	}
	return probeCap
}

// Violation records one certification failure.
type Violation struct {
	// Kind names the violated property ("safety", "viability",
	// "helpfulness", "forgiving").
	Kind string `json:"kind"`
	// Server and Env identify the failing configuration; Candidate is
	// the strategy index where applicable (-1 otherwise).
	Server    int `json:"server"`
	Env       int `json:"env"`
	Candidate int `json:"candidate"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation (server %d, env %d, candidate %d): %s",
		v.Kind, v.Server, v.Env, v.Candidate, v.Detail)
}

// senseProbe feeds a sensing function online (via Config.OnRound) and
// tracks what the certifiers need: the total round count, the trailing
// run of positive indications, and the final indication. This replaces
// full-view recording plus replay.
type senseProbe struct {
	sense  sensing.Sense
	rounds int
	streak int
	last   bool
}

func newSenseProbe(s sensing.Sense) *senseProbe {
	s.Reset()
	return &senseProbe{sense: s}
}

func (p *senseProbe) onRound(_ int, rv comm.RoundView, _ comm.WorldState) {
	p.rounds++
	p.last = p.sense.Observe(rv)
	if p.last {
		p.streak++
	} else {
		p.streak = 0
	}
}

// eventuallyPositive reports whether the indication sequence was positive
// on the final window rounds (the empirical reading of "only finitely many
// negative indications").
func (p *senseProbe) eventuallyPositive(window int) bool {
	return p.rounds >= window && p.streak >= window
}

// certTrial builds the standard certification trial for one
// (candidate, server, env) triple. probe may be nil when the run's
// indications are not needed.
func certTrial(
	g goal.Goal,
	users enumerate.Enumerator,
	candidate int,
	mkServer func() comm.Strategy,
	env int,
	probe *senseProbe,
	cfg CertConfig,
) system.Trial {
	sysCfg := system.Config{
		MaxRounds: cfg.MaxRounds,
		Seed:      cfg.Seed,
		Record:    system.RecordWindow(cfg.window()),
	}
	if probe != nil {
		sysCfg.OnRound = probe.onRound
	}
	return system.Trial{
		User:   func() (comm.Strategy, error) { return users.Strategy(candidate), nil },
		Server: mkServer,
		World:  func() goal.World { return g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}) },
		Config: sysCfg,
	}
}

// chunkedWitness scans the candidate class in parallel chunks and returns
// the first candidate index for which ok holds on every swept environment
// — the witness a serial scan would find — or (false, -1). Failed trials
// count as a negative verdict for their candidate.
func chunkedWitness(
	g goal.Goal,
	users enumerate.Enumerator,
	mkServer func() comm.Strategy,
	cfg CertConfig,
	ok func(res *system.Result) bool,
) (bool, int) {
	size := boundedSize(users)
	envs := cfg.envs(g)
	for base := 0; base < size; base += cfg.chunk() {
		hi := min(base+cfg.chunk(), size)
		trials := make([]system.Trial, 0, (hi-base)*envs)
		for i := base; i < hi; i++ {
			for env := 0; env < envs; env++ {
				trials = append(trials, certTrial(g, users, i, mkServer, env, nil, cfg))
			}
		}
		results, errs := system.RunEach(trials, cfg.batch())
		witness := -1
		for i := base; i < hi && witness < 0; i++ {
			good := true
			for env := 0; env < envs; env++ {
				t := (i-base)*envs + env
				if errs[t] != nil || !ok(results[t]) {
					good = false
					break
				}
			}
			if good {
				witness = i
			}
		}
		for _, res := range results {
			system.ReleaseResult(res)
		}
		if witness >= 0 {
			return true, witness
		}
	}
	return false, -1
}

// chunkedFound reports whether some candidate earns a positive verdict
// against one (server, env) pairing, scanning the class in parallel chunks
// with early exit between chunks. Failed trials count as negative.
func chunkedFound(
	g goal.Goal,
	users enumerate.Enumerator,
	mkServer func() comm.Strategy,
	env int,
	mkSense func() sensing.Sense,
	cfg CertConfig,
	ok func(res *system.Result, probe *senseProbe) bool,
) bool {
	size := boundedSize(users)
	for base := 0; base < size; base += cfg.chunk() {
		hi := min(base+cfg.chunk(), size)
		trials := make([]system.Trial, 0, hi-base)
		probes := make([]*senseProbe, 0, hi-base)
		for i := base; i < hi; i++ {
			probe := newSenseProbe(mkSense())
			probes = append(probes, probe)
			trials = append(trials, certTrial(g, users, i, mkServer, env, probe, cfg))
		}
		results, errs := system.RunEach(trials, cfg.batch())
		found := false
		for t := range trials {
			if errs[t] == nil && !found && ok(results[t], probes[t]) {
				found = true
			}
			system.ReleaseResult(results[t])
		}
		if found {
			return true
		}
	}
	return false
}

// HelpfulCompact reports whether the server is helpful for the compact goal
// with respect to the candidate class: some enumerated candidate achieves
// the goal when paired with it, from every swept environment. It returns
// the first witnessing candidate index (or -1). Candidates are probed in
// parallel chunks; the returned witness is the same as a serial scan's.
func HelpfulCompact(
	g goal.CompactGoal,
	mkServer func() comm.Strategy,
	enum enumerate.Enumerator,
	cfg CertConfig,
) (bool, int) {
	return chunkedWitness(g, enum, mkServer, cfg, func(res *system.Result) bool {
		return goal.CompactAchieved(g, res.History, cfg.window())
	})
}

// CertifySafetyCompact checks the safety of a sensing function for a
// compact goal against a set of server factories: whenever a pairing's
// indications are eventually always positive, the execution must achieve
// the goal. mkSense must return a fresh Sense per call; users enumerates
// the user strategies to pair (typically the candidate class itself).
func CertifySafetyCompact(
	g goal.CompactGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := boundedSize(users)
	envs := cfg.envs(g)
	for si, mkServer := range servers {
		// One batch per server: candidates × envs, judged in order.
		trials := make([]system.Trial, 0, size*envs)
		probes := make([]*senseProbe, 0, size*envs)
		for i := 0; i < size; i++ {
			for env := 0; env < envs; env++ {
				probe := newSenseProbe(mkSense())
				probes = append(probes, probe)
				trials = append(trials, certTrial(g, users, i, mkServer, env, probe, cfg))
			}
		}
		results, errs := system.RunEach(trials, cfg.batch())
		for t := range trials {
			i, env := t/envs, t%envs
			if errs[t] != nil {
				violations = append(violations, Violation{
					Kind: "safety", Server: si, Env: env, Candidate: i,
					Detail: fmt.Sprintf("execution error: %v", errs[t]),
				})
				continue
			}
			if probes[t].eventuallyPositive(cfg.window()) &&
				!goal.CompactAchieved(g, results[t].History, cfg.window()) {
				violations = append(violations, Violation{
					Kind: "safety", Server: si, Env: env, Candidate: i,
					Detail: "indications eventually positive but goal not achieved",
				})
			}
			system.ReleaseResult(results[t])
		}
	}
	return violations
}

// CertifyViabilityCompact checks viability: for every server in the list
// (all assumed helpful), some candidate achieves the goal *and* earns
// eventually-always-positive indications. One violation is reported per
// server lacking such a candidate.
func CertifyViabilityCompact(
	g goal.CompactGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	for si, mkServer := range servers {
		for env := 0; env < cfg.envs(g); env++ {
			found := chunkedFound(g, users, mkServer, env, mkSense, cfg,
				func(res *system.Result, probe *senseProbe) bool {
					return probe.eventuallyPositive(cfg.window()) &&
						goal.CompactAchieved(g, res.History, cfg.window())
				})
			if !found {
				violations = append(violations, Violation{
					Kind: "viability", Server: si, Env: env, Candidate: -1,
					Detail: "no candidate earns lasting positive indications while achieving the goal",
				})
			}
		}
	}
	return violations
}
