// Package harness provides the experiment infrastructure: result tables and
// series, summary statistics, and empirical certification of the theory's
// semantic properties (helpfulness of servers, safety and viability of
// sensing functions).
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a rendered experiment result, one row per configuration.
type Table struct {
	// ID is the experiment identifier (e.g. "T1").
	ID string `json:"id"`
	// Title describes what the table shows.
	Title string `json:"title"`
	// Columns are the header cells.
	Columns []string `json:"columns"`
	// Rows are the data cells; each row must have len(Columns) cells.
	Rows [][]string `json:"rows"`
	// Notes are free-form lines rendered under the table.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row. It panics if the cell count does not match the
// header — a programming error in experiment code.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned ASCII rendition.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Line is one named curve of a Series.
type Line struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Series is a figure: one or more lines over a shared x-axis meaning.
type Series struct {
	// ID is the figure identifier (e.g. "F1").
	ID string `json:"id"`
	// Title describes the figure.
	Title string `json:"title"`
	// XLabel and YLabel name the axes.
	XLabel string `json:"xLabel"`
	YLabel string `json:"yLabel"`
	// Lines are the curves.
	Lines []Line `json:"lines"`
}

// Render writes the series as a column-aligned point listing, one block per
// line — the text analogue of a figure.
func (s *Series) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", s.ID, s.Title)
	fmt.Fprintf(&b, "x-axis: %s, y-axis: %s\n", s.XLabel, s.YLabel)
	for _, line := range s.Lines {
		fmt.Fprintf(&b, "-- %s (%d points)\n", line.Name, len(line.X))
		for i := range line.X {
			fmt.Fprintf(&b, "   %12.2f  %12.2f\n", line.X[i], line.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Report bundles the artifacts of one experiment.
type Report struct {
	Tables []*Table  `json:"tables,omitempty"`
	Series []*Series `json:"series,omitempty"`
}

// Render writes every table and series.
func (r *Report) Render(w io.Writer) error {
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if err := s.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)))
}

// Percentile returns the p-th percentile (0–100) of xs by nearest-rank on
// a sorted copy; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Percent formats a ratio as "NN.N%".
func Percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// F formats a float compactly for table cells.
func F(x float64) string { return fmt.Sprintf("%.1f", x) }

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }
