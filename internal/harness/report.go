package harness

// ServerVerdict is one server's helpfulness verdict within a
// certification report.
type ServerVerdict struct {
	// Server labels the class member ("class[3]") or probe
	// ("probe:obstinate").
	Server string `json:"server"`

	// Probe marks known-unhelpful strategies that must not certify.
	Probe bool `json:"probe,omitempty"`

	// Helpful is the verdict; Witness is the first candidate index that
	// achieves the goal with this server, or -1.
	Helpful bool `json:"helpful"`
	Witness int  `json:"witness"`
}

// SweepBench is the sweep throughput artifact (goalsweep -bench):
// deliberately the only sweep output with timings in it, so result
// reports stay byte-diffable while performance is tracked separately
// across commits. Parallel records the effective worker pool size (never
// 0 — a defaulted pool records GOMAXPROCS), so artifacts are comparable
// across hosts with different core counts.
type SweepBench struct {
	Spec        string `json:"spec"`
	Scenarios   int    `json:"scenarios"`
	Trials      int    `json:"trials"`
	TotalRounds int64  `json:"totalRounds"`
	Parallel    int    `json:"parallel"`

	// Workers counts the worker processes that produced the sweep: 1 for
	// a local run, the coordinator's distinct submitter count for a
	// distributed one (Parallel then totals the fleet's trial pools).
	// Absent in artifacts written before distributed execution existed.
	Workers int `json:"workers,omitempty"`

	ElapsedNs    int64   `json:"elapsedNs"`
	TrialsPerSec float64 `json:"trialsPerSec"`
	RoundsPerSec float64 `json:"roundsPerSec"`

	// Mallocs is the producing process's heap-allocation count over the
	// sweep and AllocsPerRound normalizes it by TotalRounds — the
	// host-independent half of the artifact, so allocation regressions
	// are visible even across machines whose timings are incomparable.
	// Absent (0) in artifacts written before allocation accounting.
	// Distributed artifacts sum the per-shard counts each worker
	// measures around its own sweep and reports at submit time; the sum
	// is exact for the one-worker-per-process deployment and an
	// aggregate when workers share a heap.
	Mallocs        int64   `json:"mallocs,omitempty"`
	AllocsPerRound float64 `json:"allocsPerRound,omitempty"`

	// PerGoal breaks the sweep down by goal axis value, each entry
	// measured as its own timed sub-sweep over the goal's restriction of
	// the spec. Present only in locally-produced full-selection artifacts
	// (goalsweep -bench without -sample); a goal whose trials are cheap
	// per round shows up here even when the aggregate rate hides it.
	PerGoal []GoalBench `json:"perGoal,omitempty"`
}

// GoalBench is one goal's slice of a sweep throughput artifact.
type GoalBench struct {
	Goal        string `json:"goal"`
	Scenarios   int    `json:"scenarios"`
	Trials      int    `json:"trials"`
	TotalRounds int64  `json:"totalRounds"`

	ElapsedNs    int64   `json:"elapsedNs"`
	RoundsPerSec float64 `json:"roundsPerSec"`

	Mallocs        int64   `json:"mallocs,omitempty"`
	AllocsPerRound float64 `json:"allocsPerRound,omitempty"`
}

// CertReport is the machine-readable form of a certification run: the
// helpfulness sweep over a server class plus the sensing function's safety
// and viability verdicts. It is fully deterministic given the
// configuration (no timings), so reports can be diffed across commits.
type CertReport struct {
	Goal    string `json:"goal"`
	Class   int    `json:"class"`
	Horizon int    `json:"horizon"`
	Seed    uint64 `json:"seed"`

	Servers []ServerVerdict `json:"servers"`

	// Safety and Viability list the sensing violations found; both
	// empty means Certified.
	Safety    []Violation `json:"safetyViolations"`
	Viability []Violation `json:"viabilityViolations"`

	// Certified reports whether sensing proved safe and viable and no
	// probe certified helpful — the empirical precondition of Theorem 1.
	Certified bool `json:"certified"`
}
