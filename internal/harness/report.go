package harness

// ServerVerdict is one server's helpfulness verdict within a
// certification report.
type ServerVerdict struct {
	// Server labels the class member ("class[3]") or probe
	// ("probe:obstinate").
	Server string `json:"server"`

	// Probe marks known-unhelpful strategies that must not certify.
	Probe bool `json:"probe,omitempty"`

	// Helpful is the verdict; Witness is the first candidate index that
	// achieves the goal with this server, or -1.
	Helpful bool `json:"helpful"`
	Witness int  `json:"witness"`
}

// CertReport is the machine-readable form of a certification run: the
// helpfulness sweep over a server class plus the sensing function's safety
// and viability verdicts. It is fully deterministic given the
// configuration (no timings), so reports can be diffed across commits.
type CertReport struct {
	Goal    string `json:"goal"`
	Class   int    `json:"class"`
	Horizon int    `json:"horizon"`
	Seed    uint64 `json:"seed"`

	Servers []ServerVerdict `json:"servers"`

	// Safety and Viability list the sensing violations found; both
	// empty means Certified.
	Safety    []Violation `json:"safetyViolations"`
	Viability []Violation `json:"viabilityViolations"`

	// Certified reports whether sensing proved safe and viable and no
	// probe certified helpful — the empirical precondition of Theorem 1.
	Certified bool `json:"certified"`
}
