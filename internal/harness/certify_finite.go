package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// HelpfulFinite reports whether the server is helpful for the finite goal
// with respect to the candidate class: some enumerated candidate halts with
// an acceptable history when paired with it, on every swept environment.
// It returns the first witnessing candidate index (or -1). cfg.MaxRounds
// bounds each probe execution.
func HelpfulFinite(
	g goal.FiniteGoal,
	mkServer func() comm.Strategy,
	enum enumerate.Enumerator,
	cfg CertConfig,
) (bool, int) {
	size := enum.Size()
	if size == enumerate.Unbounded {
		size = 64
	}
candidates:
	for i := 0; i < size; i++ {
		for env := 0; env < cfg.envs(g); env++ {
			res, err := system.Run(enum.Strategy(i), mkServer(),
				g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
				system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
			if err != nil || !res.Halted || !g.Achieved(res.History) {
				continue candidates
			}
		}
		return true, i
	}
	return false, -1
}

// CertifySafetyFinite checks finite-goal safety: a positive (replayed)
// sensing verdict on a halted execution must imply the referee accepts the
// history. Every (candidate, server, env) triple is probed.
func CertifySafetyFinite(
	g goal.FiniteGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := users.Size()
	if size == enumerate.Unbounded {
		size = 64
	}
	for si, mkServer := range servers {
		for i := 0; i < size; i++ {
			for env := 0; env < cfg.envs(g); env++ {
				res, err := system.Run(users.Strategy(i), mkServer(),
					g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
					system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
				if err != nil {
					violations = append(violations, Violation{
						Kind: "safety", Server: si, Env: env, Candidate: i,
						Detail: fmt.Sprintf("execution error: %v", err),
					})
					continue
				}
				if !res.Halted {
					continue
				}
				if sensing.Replay(mkSense(), res.View) && !g.Achieved(res.History) {
					violations = append(violations, Violation{
						Kind: "safety", Server: si, Env: env, Candidate: i,
						Detail: "positive verdict on a rejected halted history",
					})
				}
			}
		}
	}
	return violations
}

// CertifyViabilityFinite checks finite-goal viability: for every server in
// the list, some candidate halts with a positive (replayed) sensing verdict
// on every swept environment.
func CertifyViabilityFinite(
	g goal.FiniteGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := users.Size()
	if size == enumerate.Unbounded {
		size = 64
	}
	for si, mkServer := range servers {
		for env := 0; env < cfg.envs(g); env++ {
			found := false
			for i := 0; i < size && !found; i++ {
				res, err := system.Run(users.Strategy(i), mkServer(),
					g.NewWorld(goal.Env{Choice: env, Seed: cfg.Seed}),
					system.Config{MaxRounds: cfg.MaxRounds, Seed: cfg.Seed})
				if err != nil || !res.Halted {
					continue
				}
				if sensing.Replay(mkSense(), res.View) {
					found = true
				}
			}
			if !found {
				violations = append(violations, Violation{
					Kind: "viability", Server: si, Env: env, Candidate: -1,
					Detail: "no candidate halts with a positive verdict",
				})
			}
		}
	}
	return violations
}
