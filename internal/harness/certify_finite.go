package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// HelpfulFinite reports whether the server is helpful for the finite goal
// with respect to the candidate class: some enumerated candidate halts with
// an acceptable history when paired with it, on every swept environment.
// It returns the first witnessing candidate index (or -1). cfg.MaxRounds
// bounds each probe execution. Candidates are probed in parallel chunks;
// the returned witness matches a serial scan's.
func HelpfulFinite(
	g goal.FiniteGoal,
	mkServer func() comm.Strategy,
	enum enumerate.Enumerator,
	cfg CertConfig,
) (bool, int) {
	return chunkedWitness(g, enum, mkServer, cfg, func(res *system.Result) bool {
		return res.Halted && g.Achieved(res.History)
	})
}

// CertifySafetyFinite checks finite-goal safety: a positive final sensing
// indication on a halted execution must imply the referee accepts the
// history. Every (candidate, server, env) triple is probed.
func CertifySafetyFinite(
	g goal.FiniteGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	size := boundedSize(users)
	envs := cfg.envs(g)
	for si, mkServer := range servers {
		trials := make([]system.Trial, 0, size*envs)
		probes := make([]*senseProbe, 0, size*envs)
		for i := 0; i < size; i++ {
			for env := 0; env < envs; env++ {
				probe := newSenseProbe(mkSense())
				probes = append(probes, probe)
				trials = append(trials, certTrial(g, users, i, mkServer, env, probe, cfg))
			}
		}
		results, errs := system.RunEach(trials, cfg.batch())
		for t := range trials {
			i, env := t/envs, t%envs
			if errs[t] != nil {
				violations = append(violations, Violation{
					Kind: "safety", Server: si, Env: env, Candidate: i,
					Detail: fmt.Sprintf("execution error: %v", errs[t]),
				})
				continue
			}
			if results[t].Halted && probes[t].last && !g.Achieved(results[t].History) {
				violations = append(violations, Violation{
					Kind: "safety", Server: si, Env: env, Candidate: i,
					Detail: "positive verdict on a rejected halted history",
				})
			}
			system.ReleaseResult(results[t])
		}
	}
	return violations
}

// CertifyViabilityFinite checks finite-goal viability: for every server in
// the list, some candidate halts with a positive final sensing indication
// on every swept environment.
func CertifyViabilityFinite(
	g goal.FiniteGoal,
	mkSense func() sensing.Sense,
	users enumerate.Enumerator,
	servers []func() comm.Strategy,
	cfg CertConfig,
) []Violation {
	var violations []Violation
	for si, mkServer := range servers {
		for env := 0; env < cfg.envs(g); env++ {
			found := chunkedFound(g, users, mkServer, env, mkSense, cfg,
				func(res *system.Result, probe *senseProbe) bool {
					return res.Halted && probe.last
				})
			if !found {
				violations = append(violations, Violation{
					Kind: "viability", Server: si, Env: env, Candidate: -1,
					Detail: "no candidate halts with a positive verdict",
				})
			}
		}
	}
	return violations
}
