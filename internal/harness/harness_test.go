package harness

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goals/printing"
	"repro/internal/sensing"
	"repro/internal/server"
)

func TestTableRender(t *testing.T) {
	t.Parallel()

	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"just a test"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "23456")

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T0: demo", "name", "alpha", "23456", "note: just a test"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	t.Parallel()

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tbl := &Table{ID: "X", Columns: []string{"a", "b"}}
	tbl.AddRow("only-one")
}

func TestSeriesRender(t *testing.T) {
	t.Parallel()

	s := &Series{
		ID: "F0", Title: "demo", XLabel: "round", YLabel: "mistakes",
		Lines: []Line{{Name: "halving", X: []float64{1, 2}, Y: []float64{0, 1}}},
	}
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"F0: demo", "halving", "x-axis: round"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReportRender(t *testing.T) {
	t.Parallel()

	r := &Report{
		Tables: []*Table{{ID: "T", Title: "t", Columns: []string{"c"}}},
		Series: []*Series{{ID: "F", Title: "f"}},
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "T: t") || !strings.Contains(b.String(), "F: f") {
		t.Fatal("report render incomplete")
	}
}

func TestStats(t *testing.T) {
	t.Parallel()

	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty stats not zero")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Max([]float64{1, 5, 3}); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	if got := Percent(1, 4); got != "25.0%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Fatalf("Percent div0 = %q", got)
	}
	if F(1.25) != "1.2" && F(1.25) != "1.3" {
		t.Fatalf("F = %q", F(1.25))
	}
	if I(7) != "7" {
		t.Fatalf("I = %q", I(7))
	}
}

func printingFixture(t *testing.T, n int) (*printing.Goal, *dialect.Family, []func() comm.Strategy) {
	t.Helper()
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), n)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]func() comm.Strategy, n)
	for i := range servers {
		d := fam.Dialect(i)
		servers[i] = func() comm.Strategy { return server.Dialected(&printing.Server{}, d) }
	}
	return &printing.Goal{Docs: []string{"doc"}}, fam, servers
}

func TestHelpfulCompact(t *testing.T) {
	t.Parallel()

	g, fam, servers := printingFixture(t, 4)
	cfg := CertConfig{MaxRounds: 100, Seed: 1}

	ok, witness := HelpfulCompact(g, servers[2], printing.Enum(fam), cfg)
	if !ok {
		t.Fatal("dialected printer not recognized as helpful")
	}
	if witness != 2 {
		t.Fatalf("witness = %d, want 2", witness)
	}

	ok, _ = HelpfulCompact(g, func() comm.Strategy { return server.Obstinate() },
		printing.Enum(fam), cfg)
	if ok {
		t.Fatal("obstinate server certified helpful")
	}

	ok, _ = HelpfulCompact(g, func() comm.Strategy { return &printing.LyingServer{} },
		printing.Enum(fam), cfg)
	if ok {
		t.Fatal("lying server certified helpful")
	}
}

func TestCertifySafetyCompactAcceptsSafeSense(t *testing.T) {
	t.Parallel()

	g, fam, servers := printingFixture(t, 4)
	all := append(servers,
		func() comm.Strategy { return server.Obstinate() },
		func() comm.Strategy { return &printing.LyingServer{} },
	)
	cfg := CertConfig{MaxRounds: 120, Seed: 1}
	vs := CertifySafetyCompact(g, func() sensing.Sense {
		return printing.Sense(0)
	}, printing.Enum(fam), all, cfg)
	if len(vs) != 0 {
		t.Fatalf("safe sense flagged: %v", vs)
	}
}

func TestCertifySafetyCompactRejectsTrustingSense(t *testing.T) {
	t.Parallel()

	g, fam, _ := printingFixture(t, 4)
	liars := []func() comm.Strategy{
		func() comm.Strategy { return &printing.LyingServer{} },
	}
	cfg := CertConfig{MaxRounds: 120, Seed: 1}
	vs := CertifySafetyCompact(g, func() sensing.Sense {
		return printing.TrustingSense()
	}, printing.Enum(fam), liars, cfg)
	if len(vs) == 0 {
		t.Fatal("trusting sense passed safety certification")
	}
	if !strings.Contains(vs[0].String(), "safety") {
		t.Fatalf("violation string: %s", vs[0])
	}
}

func TestCertifyViabilityCompact(t *testing.T) {
	t.Parallel()

	g, fam, servers := printingFixture(t, 4)
	cfg := CertConfig{MaxRounds: 120, Seed: 1}

	vs := CertifyViabilityCompact(g, func() sensing.Sense {
		return printing.Sense(0)
	}, printing.Enum(fam), servers, cfg)
	if len(vs) != 0 {
		t.Fatalf("viable sense flagged: %v", vs)
	}

	vs = CertifyViabilityCompact(g, func() sensing.Sense {
		return printing.ParanoidSense(0)
	}, printing.Enum(fam), servers, cfg)
	if len(vs) != len(servers) {
		t.Fatalf("paranoid sense violations = %d, want %d", len(vs), len(servers))
	}
}

func TestStddev(t *testing.T) {
	t.Parallel()

	if Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Fatal("degenerate stddev not zero")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got < 1.99 || got > 2.01 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()

	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile not zero")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}
