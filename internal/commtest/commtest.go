// Package commtest provides tiny reusable strategies and worlds for testing
// the execution engine, referees, sensing and universal users without
// pulling in any domain goal.
package commtest

import (
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/xrand"
)

// Silent is a strategy that never sends anything.
type Silent struct{}

var _ comm.Strategy = (*Silent)(nil)

// Reset implements comm.Strategy.
func (*Silent) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (*Silent) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }

// Echo is a server strategy that echoes each party's message back to it,
// with an optional prefix.
type Echo struct {
	Prefix string
}

var _ comm.Strategy = (*Echo)(nil)

// Reset implements comm.Strategy.
func (*Echo) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (e *Echo) Step(in comm.Inbox) (comm.Outbox, error) {
	var out comm.Outbox
	if !in.FromUser.Empty() {
		out.ToUser = comm.Message(e.Prefix) + in.FromUser
	}
	if !in.FromWorld.Empty() {
		out.ToWorld = comm.Message(e.Prefix) + in.FromWorld
	}
	return out, nil
}

// Script is a user strategy that plays a fixed sequence of outboxes, then
// silence. If HaltAfter > 0 it reports Halted once that many steps have run.
type Script struct {
	Outs      []comm.Outbox
	HaltAfter int

	step int
}

var (
	_ comm.Strategy = (*Script)(nil)
	_ comm.Halter   = (*Script)(nil)
)

// Reset implements comm.Strategy.
func (s *Script) Reset(*xrand.Rand) { s.step = 0 }

// Step implements comm.Strategy.
func (s *Script) Step(comm.Inbox) (comm.Outbox, error) {
	defer func() { s.step++ }()
	if s.step < len(s.Outs) {
		return s.Outs[s.step], nil
	}
	return comm.Outbox{}, nil
}

// Halted implements comm.Halter.
func (s *Script) Halted() bool { return s.HaltAfter > 0 && s.step >= s.HaltAfter }

// CountingWorld is a world whose state is the round counter, and which
// records every message it receives from the user and server into its
// snapshot. Snapshot format: "r=<round>;u=<lastUserMsg>;s=<lastServerMsg>".
type CountingWorld struct {
	round    int
	lastUser comm.Message
	lastSrv  comm.Message
}

var _ goal.World = (*CountingWorld)(nil)

// Reset implements comm.Strategy.
func (w *CountingWorld) Reset(*xrand.Rand) {
	w.round = 0
	w.lastUser = ""
	w.lastSrv = ""
}

// Step implements comm.Strategy.
func (w *CountingWorld) Step(in comm.Inbox) (comm.Outbox, error) {
	w.round++
	if !in.FromUser.Empty() {
		w.lastUser = in.FromUser
	}
	if !in.FromServer.Empty() {
		w.lastSrv = in.FromServer
	}
	return comm.Outbox{}, nil
}

// Snapshot implements goal.World.
func (w *CountingWorld) Snapshot() comm.WorldState {
	return comm.WorldState("r=" + strconv.Itoa(w.round) +
		";u=" + string(w.lastUser) + ";s=" + string(w.lastSrv))
}

// ParseCounting extracts the u= field of a CountingWorld snapshot.
func ParseCounting(s comm.WorldState) (userMsg string) {
	for _, part := range strings.Split(string(s), ";") {
		if rest, ok := strings.CutPrefix(part, "u="); ok {
			return rest
		}
	}
	return ""
}

// FlagGoal is a compact goal over CountingWorld: a prefix is acceptable iff
// the world has, at some point, received the message Want from the user.
// Once received the flag persists (the snapshot keeps the last user
// message only, so FlagGoal tracks acceptance itself via prefix scanning).
type FlagGoal struct {
	Want string
}

var (
	_ goal.CompactGoal = (*FlagGoal)(nil)
	_ goal.Forgiving   = (*FlagGoal)(nil)
)

// Name implements goal.Goal.
func (g *FlagGoal) Name() string { return "commtest/flag" }

// Kind implements goal.Goal.
func (g *FlagGoal) Kind() goal.Kind { return goal.KindCompact }

// NewWorld implements goal.Goal.
func (g *FlagGoal) NewWorld(goal.Env) goal.World { return &CountingWorld{} }

// EnvChoices implements goal.Goal.
func (g *FlagGoal) EnvChoices() int { return 1 }

// Acceptable implements goal.CompactGoal.
func (g *FlagGoal) Acceptable(prefix comm.History) bool {
	for _, s := range prefix.States {
		if ParseCounting(s) == g.Want {
			return true
		}
	}
	return false
}

// ForgivingGoal implements goal.Forgiving.
func (g *FlagGoal) ForgivingGoal() bool { return true }

// ErrStrategy fails its Step with the provided error.
type ErrStrategy struct {
	Err error
}

var _ comm.Strategy = (*ErrStrategy)(nil)

// Reset implements comm.Strategy.
func (*ErrStrategy) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (e *ErrStrategy) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, e.Err }
