package commtest

import (
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/xrand"
)

// GreetWorld is a toy compact-goal world: once the server reports "greeted",
// the world confirms "OK" to the user on every subsequent round. Snapshot is
// "greeted=0" or "greeted=1".
type GreetWorld struct {
	greeted bool
}

var _ goal.World = (*GreetWorld)(nil)

// Reset implements comm.Strategy.
func (w *GreetWorld) Reset(*xrand.Rand) { w.greeted = false }

// Step implements comm.Strategy.
func (w *GreetWorld) Step(in comm.Inbox) (comm.Outbox, error) {
	if in.FromServer == "greeted" {
		w.greeted = true
	}
	if w.greeted {
		return comm.Outbox{ToUser: "OK"}, nil
	}
	return comm.Outbox{}, nil
}

// Snapshot implements goal.World.
func (w *GreetWorld) Snapshot() comm.WorldState {
	if w.greeted {
		return "greeted=1"
	}
	return "greeted=0"
}

// GreetGoal is the compact goal over GreetWorld: a prefix is acceptable iff
// the world has been greeted.
type GreetGoal struct{}

var (
	_ goal.CompactGoal = (*GreetGoal)(nil)
	_ goal.Forgiving   = (*GreetGoal)(nil)
)

// Name implements goal.Goal.
func (*GreetGoal) Name() string { return "commtest/greet" }

// Kind implements goal.Goal.
func (*GreetGoal) Kind() goal.Kind { return goal.KindCompact }

// NewWorld implements goal.Goal.
func (*GreetGoal) NewWorld(goal.Env) goal.World { return &GreetWorld{} }

// EnvChoices implements goal.Goal.
func (*GreetGoal) EnvChoices() int { return 1 }

// Acceptable implements goal.CompactGoal.
func (*GreetGoal) Acceptable(prefix comm.History) bool {
	return prefix.Last() == "greeted=1"
}

// ForgivingGoal implements goal.Forgiving.
func (*GreetGoal) ForgivingGoal() bool { return true }

// GreetServer is the native-protocol server for GreetWorld: on the plain
// command "HELLO" from the user it replies "WELCOME" and reports "greeted"
// to the world. Wrap it in server.Dialected to build a language-mismatch
// class.
type GreetServer struct{}

var _ comm.Strategy = (*GreetServer)(nil)

// Reset implements comm.Strategy.
func (*GreetServer) Reset(*xrand.Rand) {}

// Step implements comm.Strategy.
func (*GreetServer) Step(in comm.Inbox) (comm.Outbox, error) {
	if in.FromUser == "HELLO" {
		return comm.Outbox{ToUser: "WELCOME", ToWorld: "greeted"}, nil
	}
	return comm.Outbox{}, nil
}

// SecretWorld is a toy finite-goal world holding a secret integer. On a
// user message "guess <i>" it replies "HIT" or "MISS" and remembers whether
// it was ever hit. Snapshot is "hit=0" or "hit=1".
type SecretWorld struct {
	Secret int

	hit bool
}

var _ goal.World = (*SecretWorld)(nil)

// Reset implements comm.Strategy.
func (w *SecretWorld) Reset(*xrand.Rand) { w.hit = false }

// Step implements comm.Strategy.
func (w *SecretWorld) Step(in comm.Inbox) (comm.Outbox, error) {
	msg := string(in.FromUser)
	if rest, ok := strings.CutPrefix(msg, "guess "); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n == w.Secret {
			w.hit = true
			return comm.Outbox{ToUser: "HIT"}, nil
		}
		return comm.Outbox{ToUser: "MISS"}, nil
	}
	return comm.Outbox{}, nil
}

// Snapshot implements goal.World.
func (w *SecretWorld) Snapshot() comm.WorldState {
	if w.hit {
		return "hit=1"
	}
	return "hit=0"
}

// SecretGoal is the finite goal over SecretWorld: achieved iff the world
// was hit by the time the user halted.
type SecretGoal struct{ Secret int }

var _ goal.FiniteGoal = (*SecretGoal)(nil)

// Name implements goal.Goal.
func (*SecretGoal) Name() string { return "commtest/secret" }

// Kind implements goal.Goal.
func (*SecretGoal) Kind() goal.Kind { return goal.KindFinite }

// NewWorld implements goal.Goal.
func (g *SecretGoal) NewWorld(goal.Env) goal.World { return &SecretWorld{Secret: g.Secret} }

// EnvChoices implements goal.Goal.
func (*SecretGoal) EnvChoices() int { return 1 }

// Achieved implements goal.FiniteGoal.
func (*SecretGoal) Achieved(h comm.History) bool { return h.Last() == "hit=1" }
