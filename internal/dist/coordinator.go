package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// CoordinatorConfig tunes a coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker may go without submitting or renewing
	// its shard before the coordinator assumes it crashed and re-issues
	// the lease; 0 means 2 minutes. Workers renew at a fraction of the
	// TTL while a shard is still computing, so the TTL bounds
	// crash-detection latency, not shard duration.
	LeaseTTL time.Duration

	// Now overrides the clock, for lease-expiry tests; nil means
	// time.Now.
	Now func() time.Time

	// Events, when non-nil, receives one structured event per lease and
	// submit transition (see internal/obs). Nil means silent.
	Events *obs.Logger

	// Registry resolves scenarios for sweeps submitted over POST
	// /v1/sweeps (the plan fingerprint is computed under its version);
	// nil means Builtin().
	Registry *scenario.Registry

	// StateDir, when non-empty, is where the coordinator persists each
	// job's plan and accepted shard envelopes. A coordinator restarted
	// over the same directory resumes every job, re-queueing only the
	// shards whose envelopes are missing or invalid; corrupt or
	// mismatched artifacts are healed (removed or rewritten) rather than
	// left to fail every future restart.
	StateDir string

	// MaxInflightLeases bounds lease requests processed concurrently;
	// excess requests are shed with 429 + Retry-After instead of queueing
	// on the state mutex, so an overloaded coordinator stays responsive
	// to renews and submits. 0 means 1024; negative disables shedding.
	MaxInflightLeases int

	// SpeculateAfter enables speculative re-leasing of straggler shards:
	// when a worker asks for work, finds none open, and some shard's
	// primary lease is older than this (but unexpired — the holder may
	// well be alive, just slow), the shard is leased a second time.
	// Determinism makes the race safe: whichever copy submits first is
	// accepted and the other is acknowledged as a duplicate. 0 disables
	// speculation.
	SpeculateAfter time.Duration
}

// Coordinator is a multi-tenant sweep service: a queue of jobs (each one
// planned sweep), leased shard-by-shard to workers fair-share across
// jobs, with the resulting envelopes collected per job. It is an
// http.Handler serving the versioned /v1 resource API plus the legacy
// single-sweep routes; all state is guarded by one mutex, so a
// coordinator can serve any number of concurrent workers and submitters.
//
// A coordinator built with NewCoordinator is *sealed*: its queue holds
// exactly the one batch job and accepts no submissions, and workers are
// told to exit once it completes — `goalsweep serve`'s one-shot mode.
// NewService builds the unsealed, long-lived variant.
type Coordinator struct {
	leaseTTL    time.Duration
	now         func() time.Time
	events      *obs.Logger
	registry    *scenario.Registry
	stateDir    string
	sealed      bool
	maxInflight int
	speculate   time.Duration
	mux         *http.ServeMux

	inflightLeases atomic.Int64

	mu        sync.Mutex
	jobs      map[string]*job // job ID -> job
	order     []*job          // submission order; order[0] is the default job
	cursor    int             // index into order of the last job granted a lease
	leases    map[string]leaseInfo
	workers   map[string]*workerInfo // every worker that ever polled
	undrained map[string]bool        // workers not yet told StatusDone
	nextID    int

	// Observed lease-grant → accepted-submit latency, for -shards auto.
	shardLatSum float64
	shardLatN   int64

	drained chan struct{}
}

// leaseInfo records who holds (or held) a lease on which shard of which
// job.
type leaseInfo struct {
	job         *job
	shard       int // 1-based
	worker      string
	parallel    int
	granted     time.Time // when the lease was issued, for shard latency
	speculative bool      // a straggler-shard re-lease, not the primary
}

// workerInfo is the coordinator's live view of one worker. Workers are
// job-agnostic: one registration serves however many jobs the worker's
// leases end up spanning.
type workerInfo struct {
	parallel  int
	submitted int
	lastSeen  time.Time
}

// NewCoordinator builds a sealed single-job coordinator for the plan —
// the one-shot batch mode. With cfg.StateDir set, envelopes already on
// disk for this plan are resumed and only the missing shards re-execute.
func NewCoordinator(plan Plan, cfg CoordinatorConfig) (*Coordinator, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	c := newCoordinator(cfg)
	c.sealed = true
	c.mu.Lock()
	_, _, err := c.submitPlanLocked(plan)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewService builds an unsealed multi-job coordinator with an initially
// empty queue — the long-lived service mode. With cfg.StateDir set, the
// directory is scanned and every recorded job resubmitted, its completed
// shard envelopes resumed.
func NewService(cfg CoordinatorConfig) (*Coordinator, error) {
	c := newCoordinator(cfg)
	if c.stateDir != "" {
		if err := ensureDir(c.stateDir); err != nil {
			return nil, err
		}
		c.mu.Lock()
		err := c.recoverJobsLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

func newCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		leaseTTL:    cfg.LeaseTTL,
		now:         cfg.Now,
		events:      cfg.Events,
		registry:    cfg.Registry,
		stateDir:    cfg.StateDir,
		maxInflight: cfg.MaxInflightLeases,
		speculate:   cfg.SpeculateAfter,
		jobs:        make(map[string]*job),
		cursor:      -1,
		leases:      make(map[string]leaseInfo),
		workers:     make(map[string]*workerInfo),
		undrained:   make(map[string]bool),
		drained:     make(chan struct{}),
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.registry == nil {
		c.registry = scenario.Builtin()
	}
	if c.maxInflight == 0 {
		c.maxInflight = 1024
	}
	if c.speculate < 0 {
		c.speculate = 0
	}
	c.mux = http.NewServeMux()
	// Versioned resource surface.
	c.mux.HandleFunc("POST /v1/sweeps", c.handleCreateSweep)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleListSweeps)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleGetSweep)
	c.mux.HandleFunc("GET /v1/sweeps/{id}/events", c.handleEvents)
	c.mux.HandleFunc("POST /v1/sweeps/{id}/leases", c.shedLease(c.handleLeaseScoped))
	c.mux.HandleFunc("POST /v1/leases", c.shedLease(c.handleLeaseGlobal))
	c.mux.HandleFunc("POST /v1/leases/{lease}/renew", c.handleRenewV1)
	c.mux.HandleFunc("POST /v1/leases/{lease}/result", c.handleResultV1)
	// Legacy single-sweep shim, kept for one release: routed to the
	// default (first-submitted) job.
	c.mux.HandleFunc("POST /lease", c.shedLease(c.handleLeaseLegacy))
	c.mux.HandleFunc("POST /renew", c.handleRenewLegacy)
	c.mux.HandleFunc("POST /submit", c.handleSubmitLegacy)
	c.mux.HandleFunc("GET /status", c.handleStatus)
	c.mux.HandleFunc("GET /metrics", handleMetrics)
	return c
}

// shedLease bounds concurrently-processing lease requests. Past the
// bound, the coordinator answers 429 + Retry-After immediately instead
// of letting a thundering herd of pollers pile up on the state mutex
// and starve renews and submits — the client's retry classifier treats
// the shed as retryable and backs off with the hint as a floor. Renews
// and submits are deliberately unshedded: dropping them costs real work
// (expired leases, re-executed shards), while a shed poll costs one
// backoff wait.
func (c *Coordinator) shedLease(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.maxInflight < 0 {
			h(w, r)
			return
		}
		if n := c.inflightLeases.Add(1); n > int64(c.maxInflight) {
			c.inflightLeases.Add(-1)
			mLeaseSheds.Inc()
			c.events.Event(obs.LevelWarn, "lease.shed",
				obs.Int64("inflight", n-1),
				obs.Int("max", c.maxInflight))
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("dist: coordinator overloaded: %d lease requests in flight", n-1),
				http.StatusTooManyRequests)
			return
		}
		defer c.inflightLeases.Add(-1)
		h(w, r)
	}
}

// handleMetrics serves the process-wide metric registry in Prometheus
// text exposition format. Every layer registers against the default
// registry, so a scrape of the coordinator also surfaces engine, sweep
// and cache activity from any in-process workers.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	obs.Default().WriteProm(w)
}

// Plan returns the default job's plan (the batch sweep for a sealed
// coordinator); the zero Plan if the queue is empty.
func (c *Coordinator) Plan() Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Plan{}
	}
	return c.order[0].plan
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// submitPlanLocked resolves a plan into the queue: the existing job if
// one with the same derived ID is already queued (created false), a new
// job otherwise. New jobs resume any valid envelopes already persisted
// under the state directory. Called with c.mu held.
func (c *Coordinator) submitPlanLocked(plan Plan) (*job, bool, error) {
	if err := plan.Validate(); err != nil {
		return nil, false, err
	}
	if j, ok := c.jobs[JobID(plan)]; ok {
		return j, false, nil
	}
	j := newJob(plan)
	c.jobs[j.id] = j
	c.order = append(c.order, j)
	mJobsSubmitted.Inc()
	c.events.Event(obs.LevelInfo, "sweep.submit",
		obs.String("spec", plan.Spec.Name),
		obs.String("fingerprint", plan.Fingerprint),
		obs.Int("shards", plan.Shards),
		obs.String("job", j.id))
	c.persistPlanLocked(j)
	c.resumeShardsLocked(j)
	if j.complete() {
		c.completeJobLocked(j)
	}
	mJobsActive.Set(float64(c.activeJobsLocked()))
	return j, true, nil
}

// activeJobsLocked counts queued jobs that are not yet complete.
func (c *Coordinator) activeJobsLocked() int {
	n := 0
	for _, j := range c.order {
		if !j.complete() {
			n++
		}
	}
	return n
}

// allCompleteLocked reports whether the queue is non-empty and every job
// is complete.
func (c *Coordinator) allCompleteLocked() bool {
	if len(c.order) == 0 {
		return false
	}
	for _, j := range c.order {
		if !j.complete() {
			return false
		}
	}
	return true
}

// completeJobLocked marks one job complete: closes its done channel,
// ends its event streams, and — if the whole sealed queue is drained —
// unblocks WaitDrained. Idempotent; called with c.mu held.
func (c *Coordinator) completeJobLocked(j *job) {
	select {
	case <-j.done:
		return
	default:
	}
	close(j.done)
	c.events.Event(obs.LevelInfo, "sweep.complete",
		obs.String("spec", j.plan.Spec.Name),
		obs.String("fingerprint", j.plan.Fingerprint),
		obs.Int("shards", j.plan.Shards),
		obs.Int64("executed", j.executed),
		obs.String("job", j.id))
	c.publishLocked(j, completeFrame(j))
	c.closeSubsLocked(j)
	mJobsActive.Set(float64(c.activeJobsLocked()))
	c.checkDrainedLocked()
}

// sawWorkerLocked refreshes the coordinator's liveness view of one
// worker. Called with c.mu held; worker may be "" (never recorded).
func (c *Coordinator) sawWorkerLocked(worker string, parallel int) {
	if worker == "" {
		return
	}
	wi := c.workers[worker]
	if wi == nil {
		wi = &workerInfo{}
		c.workers[worker] = wi
	}
	if parallel != 0 {
		wi.parallel = parallel
	}
	wi.lastSeen = c.now()
	mWorkerLastSeen.With(worker).Set(float64(wi.lastSeen.UnixMilli()) / 1000)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// httpErr is a handler outcome carried from a locked state transition to
// the unlocked socket write.
type httpErr struct {
	code int
	msg  string
}

// Auto-sharding (-shards auto) parameters: start from a few shards per
// registered worker (so a fleet keeps its pipeline full and a straggler
// costs 1/perWorker of the job, not half of it), widen the partition
// when observed shard latency exceeds the target (long shards mean
// coarse progress and expensive lease expiries), and never exceed the
// cap or the job's scenario count.
const (
	autoShardPerWorker     = 4
	autoShardTargetSeconds = 10.0
	autoShardMax           = 256
)

// autoShardsLocked sizes a partition for a job of `selection` scenarios
// from the current worker count and the observed lease-grant-to-submit
// latency (the PR 7 shard-seconds histogram feed). Called with c.mu
// held.
func (c *Coordinator) autoShardsLocked(selection int64) int {
	workers := len(c.workers)
	if workers < 1 {
		workers = 1
	}
	n := autoShardPerWorker * workers
	if c.shardLatN > 0 {
		mean := c.shardLatSum / float64(c.shardLatN)
		if k := int(mean / autoShardTargetSeconds); k > 1 {
			n *= k
		}
	}
	if n > autoShardMax {
		n = autoShardMax
	}
	if selection > 0 && int64(n) > selection {
		n = int(selection)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// handleCreateSweep admits one sweep into the queue: POST /v1/sweeps
// with a SweepRequest body answers a SweepResponse — 201 and the new
// job when the sweep was admitted, 200 and the existing job when an
// identical sweep (same fingerprint, same partition) is already queued.
func (c *Coordinator) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("dist: decode sweep request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Protocol != ProtocolVersion {
		http.Error(w, fmt.Sprintf("dist: protocol version %d, want %d", req.Protocol, ProtocolVersion),
			http.StatusBadRequest)
		return
	}
	if req.Spec == nil {
		http.Error(w, "dist: sweep request has no spec", http.StatusBadRequest)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Shards < 0 {
		http.Error(w, fmt.Sprintf("dist: shard count %d < 0", req.Shards), http.StatusBadRequest)
		return
	}
	m, err := scenario.NewMatrix(req.Spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	selection := m.Size()
	if req.SampleN > 0 && int64(req.SampleN) < selection {
		selection = int64(req.SampleN)
	}
	resp, herr := c.createSweepLocked(req, selection)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	code := http.StatusOK
	if resp.Created {
		code = http.StatusCreated
	}
	writeJSONStatus(w, code, resp)
}

func (c *Coordinator) createSweepLocked(req SweepRequest, selection int64) (*SweepResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	shards := req.Shards
	if shards == 0 {
		shards = c.autoShardsLocked(selection)
	}
	cfg := scenario.SweepConfig{Seeds: req.Seeds, Window: req.Window, BaseSeed: req.BaseSeed}
	plan, err := NewPlan(req.Spec, c.registry.Version(), cfg, shards, req.SampleN, req.SampleSeed)
	if err != nil {
		return nil, &httpErr{http.StatusBadRequest, err.Error()}
	}
	if c.sealed {
		// A sealed batch queue admits nothing new, but answering an
		// identical resubmission with the existing job keeps the create
		// call idempotent across both modes.
		if j, ok := c.jobs[JobID(plan)]; ok {
			return &SweepResponse{Protocol: ProtocolVersion, Created: false, Job: c.jobStatusLocked(j, true)}, nil
		}
		return nil, &httpErr{http.StatusConflict, "dist: coordinator runs a sealed batch queue; submit refused"}
	}
	j, created, err := c.submitPlanLocked(plan)
	if err != nil {
		return nil, &httpErr{http.StatusBadRequest, err.Error()}
	}
	return &SweepResponse{Protocol: ProtocolVersion, Created: created, Job: c.jobStatusLocked(j, true)}, nil
}

// handleListSweeps answers GET /v1/sweeps: every queued job, in
// submission order, without per-shard detail.
func (c *Coordinator) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := make([]JobStatus, 0, len(c.order))
	for _, j := range c.order {
		jobs = append(jobs, c.jobStatusLocked(j, false))
	}
	c.mu.Unlock()
	writeJSON(w, jobs)
}

// handleGetSweep answers GET /v1/sweeps/{id}: one job with its shard
// states.
func (c *Coordinator) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	var js JobStatus
	if ok {
		js = c.jobStatusLocked(j, true)
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("dist: unknown sweep %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, js)
}

// jobStatusLocked computes one job's progress accounting. Called with
// c.mu held.
func (c *Coordinator) jobStatusLocked(j *job, withShards bool) JobStatus {
	js := JobStatus{
		ID:          j.id,
		Spec:        j.plan.Spec.Name,
		Fingerprint: j.plan.Fingerprint,
		Shards:      j.plan.Shards,
		Resumed:     j.resumed,
		Complete:    j.complete(),
	}
	now := c.now()
	states := make([]ShardStatus, len(j.shards))
	for i := range j.shards {
		ss := ShardStatus{
			Shard: scenario.Shard{Index: i + 1, Count: j.plan.Shards}.String(),
			Lease: j.shards[i].leaseID,
		}
		if li, ok := c.leases[j.shards[i].leaseID]; ok {
			ss.Worker = li.worker
		}
		switch {
		case j.shards[i].done:
			js.Done++
			ss.State = "done"
		case j.shards[i].leaseID != "" && now.Before(j.shards[i].expires),
			j.shards[i].specLeaseID != "" && now.Before(j.shards[i].specExpires):
			js.Leased++
			ss.State = "leased"
		default:
			js.Pending++
			ss.State = "pending"
			ss.Worker = ""
		}
		states[i] = ss
	}
	if j.plan.Shards > 0 {
		js.Progress = float64(js.Done) / float64(j.plan.Shards)
	}
	if withShards {
		js.ShardStates = states
	}
	return js
}

// handleLeaseLegacy is the pre-/v1 lease route: scoped to the default
// job, and never answering the post-/v1 idle status (a legacy worker
// only understands lease/wait/done).
func (c *Coordinator) handleLeaseLegacy(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseRequest(w, r)
	if !ok {
		return
	}
	resp, herr := c.leaseLocked(req, "", true)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, resp)
}

// handleLeaseGlobal is POST /v1/leases: job-agnostic work pull, granted
// fair-share round-robin across every active job.
func (c *Coordinator) handleLeaseGlobal(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseRequest(w, r)
	if !ok {
		return
	}
	resp, herr := c.leaseLocked(req, "", false)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, resp)
}

// handleLeaseScoped is POST /v1/sweeps/{id}/leases: work pull restricted
// to one job.
func (c *Coordinator) handleLeaseScoped(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseRequest(w, r)
	if !ok {
		return
	}
	resp, herr := c.leaseLocked(req, r.PathValue("id"), false)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, resp)
}

func decodeLeaseRequest(w http.ResponseWriter, r *http.Request) (LeaseRequest, bool) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("dist: decode lease request: %v", err), http.StatusBadRequest)
		return req, false
	}
	if req.Protocol != ProtocolVersion {
		http.Error(w, fmt.Sprintf("dist: protocol version %d, want %d", req.Protocol, ProtocolVersion),
			http.StatusBadRequest)
		return req, false
	}
	return req, true
}

// leaseLocked is the lease state transition; it returns the response to
// send after the lock is released — a stalled client connection must
// never block the other endpoints (a blocked /renew would expire healthy
// leases). jobScope restricts the grant to one job ID; legacy scopes to
// the default job and suppresses StatusIdle.
func (c *Coordinator) leaseLocked(req LeaseRequest, jobScope string, legacy bool) (LeaseResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.Worker, req.Parallel)

	// Resolve the candidate job list.
	var scope *job
	if jobScope != "" {
		j, ok := c.jobs[jobScope]
		if !ok {
			return LeaseResponse{}, &httpErr{http.StatusNotFound, fmt.Sprintf("dist: unknown sweep %q", jobScope)}
		}
		scope = j
	} else if legacy {
		if len(c.order) == 0 {
			// No default job yet: a legacy worker against an empty
			// service polls until one is submitted.
			return LeaseResponse{Protocol: ProtocolVersion, Status: StatusWait}, nil
		}
		scope = c.order[0]
	}

	if scope != nil {
		if scope.complete() {
			// This worker now knows its job is over and will exit; once
			// every known worker has heard a terminal answer the sealed
			// coordinator can tear down its listener without stranding
			// anyone mid-poll.
			delete(c.undrained, req.Worker)
			c.checkDrainedLocked()
			return LeaseResponse{Protocol: ProtocolVersion, Status: StatusDone}, nil
		}
		if req.Worker != "" {
			c.undrained[req.Worker] = true
		}
		if resp := c.tryGrantLocked(scope, req); resp != nil {
			return *resp, nil
		}
		return LeaseResponse{Protocol: ProtocolVersion, Status: StatusWait}, nil
	}

	// Job-agnostic pull: fair-share round-robin. The scan starts at the
	// job after the last one granted, so a long job and a short one
	// alternate grants instead of the long one starving the short.
	if c.allCompleteLocked() || len(c.order) == 0 {
		delete(c.undrained, req.Worker)
		c.checkDrainedLocked()
		if c.sealed {
			return LeaseResponse{Protocol: ProtocolVersion, Status: StatusDone}, nil
		}
		return LeaseResponse{Protocol: ProtocolVersion, Status: StatusIdle}, nil
	}
	if req.Worker != "" {
		c.undrained[req.Worker] = true
	}
	n := len(c.order)
	for k := 1; k <= n; k++ {
		j := c.order[(c.cursor+k+n)%n]
		if j.complete() {
			continue
		}
		if resp := c.tryGrantLocked(j, req); resp != nil {
			c.cursor = (c.cursor + k + n) % n
			return *resp, nil
		}
	}
	return LeaseResponse{Protocol: ProtocolVersion, Status: StatusWait}, nil
}

// tryGrantLocked leases the lowest open (or expired-lease) shard of one
// job to the asking worker; with no such shard and speculation enabled,
// it speculatively re-leases the oldest straggler shard instead. It
// returns nil if nothing is grantable. Called with c.mu held. The
// embedded *Plan is immutable after construction, so sharing the
// pointer outside the lock is safe.
func (c *Coordinator) tryGrantLocked(j *job, req LeaseRequest) *LeaseResponse {
	now := c.now()
	for i := range j.shards {
		st := &j.shards[i]
		if st.done || (st.leaseID != "" && now.Before(st.expires)) {
			continue
		}
		if st.leaseID != "" {
			mLeasesExpired.With(j.id).Inc()
			c.events.Event(obs.LevelWarn, "lease.expire",
				obs.String("lease", st.leaseID),
				obs.String("shard", scenario.Shard{Index: i + 1, Count: j.plan.Shards}.String()),
				obs.String("worker", c.leases[st.leaseID].worker),
				obs.String("job", j.id))
		}
		c.nextID++
		st.leaseID = fmt.Sprintf("lease-%d", c.nextID)
		st.expires = now.Add(c.leaseTTL)
		c.leases[st.leaseID] = leaseInfo{job: j, shard: i + 1, worker: req.Worker, parallel: req.Parallel, granted: now}
		mLeasesGranted.With(j.id).Inc()
		c.events.Event(obs.LevelInfo, "lease.grant",
			obs.String("lease", st.leaseID),
			obs.String("shard", scenario.Shard{Index: i + 1, Count: j.plan.Shards}.String()),
			obs.String("worker", req.Worker),
			obs.Int64("ttlMs", c.leaseTTL.Milliseconds()),
			obs.String("job", j.id))
		return c.leaseResponseLocked(j, i+1, st.leaseID)
	}
	return c.trySpeculateLocked(j, req, now)
}

// trySpeculateLocked re-leases a straggler shard before its primary
// lease expires: every shard is live-leased, the asking worker would
// otherwise idle, and a shard whose primary lease is older than the
// speculation threshold may well be held by a worker that is slow (or
// quietly dead but still renewing its way through a wedged sweep).
// Rather than waste the idle worker, race it: determinism makes both
// copies byte-identical, first-accept idempotency makes the race safe,
// and the loser's submit is acknowledged as a duplicate. At most one
// speculative lease per shard is live at a time, the oldest primary is
// speculated first, and a worker never races itself. Called with c.mu
// held.
func (c *Coordinator) trySpeculateLocked(j *job, req LeaseRequest, now time.Time) *LeaseResponse {
	if c.speculate <= 0 {
		return nil
	}
	best := -1
	var bestGranted time.Time
	for i := range j.shards {
		st := &j.shards[i]
		if st.done || st.leaseID == "" || !now.Before(st.expires) {
			continue // open or expired shards belong to the primary pass
		}
		if st.specLeaseID != "" && now.Before(st.specExpires) {
			continue // already racing
		}
		li := c.leases[st.leaseID]
		if li.worker != "" && li.worker == req.Worker {
			continue // don't race yourself
		}
		if now.Sub(li.granted) < c.speculate {
			continue // not a straggler yet
		}
		if best == -1 || li.granted.Before(bestGranted) {
			best, bestGranted = i, li.granted
		}
	}
	if best == -1 {
		return nil
	}
	st := &j.shards[best]
	c.nextID++
	st.specLeaseID = fmt.Sprintf("lease-%d", c.nextID)
	st.specExpires = now.Add(c.leaseTTL)
	c.leases[st.specLeaseID] = leaseInfo{job: j, shard: best + 1, worker: req.Worker, parallel: req.Parallel,
		granted: now, speculative: true}
	mLeasesSpeculated.With(j.id).Inc()
	c.events.Event(obs.LevelWarn, "lease.speculate",
		obs.String("lease", st.specLeaseID),
		obs.String("primary", st.leaseID),
		obs.String("shard", scenario.Shard{Index: best + 1, Count: j.plan.Shards}.String()),
		obs.String("worker", req.Worker),
		obs.Dur("primaryAge", now.Sub(bestGranted)),
		obs.String("job", j.id))
	return c.leaseResponseLocked(j, best+1, st.specLeaseID)
}

// leaseResponseLocked shapes the grant answer for one shard lease.
func (c *Coordinator) leaseResponseLocked(j *job, shard int, leaseID string) *LeaseResponse {
	return &LeaseResponse{
		Protocol: ProtocolVersion,
		Status:   StatusLease,
		LeaseID:  leaseID,
		Job:      j.id,
		Shard:    scenario.Shard{Index: shard, Count: j.plan.Shards},
		Plan:     &j.plan,
		TTLMs:    c.leaseTTL.Milliseconds(),
	}
}

// handleRenewLegacy extends a live lease via the legacy query-param
// route.
func (c *Coordinator) handleRenewLegacy(w http.ResponseWriter, r *http.Request) {
	c.renewCommon(w, r.URL.Query().Get("lease"), "dist: renew without lease ID")
}

// handleRenewV1 extends a live lease via POST /v1/leases/{lease}/renew.
func (c *Coordinator) handleRenewV1(w http.ResponseWriter, r *http.Request) {
	c.renewCommon(w, r.PathValue("lease"), "dist: renew without lease ID")
}

func (c *Coordinator) renewCommon(w http.ResponseWriter, leaseID, missingMsg string) {
	if leaseID == "" {
		http.Error(w, missingMsg, http.StatusBadRequest)
		return
	}
	rr, herr := c.renewLocked(leaseID)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, rr)
}

// renewLocked extends a live lease: workers renew while a shard's sweep
// is still running, so the lease TTL bounds crash *detection* latency,
// not shard duration. A renewal is refused (Renewed false, not an error)
// when the lease is no longer the shard's current one — the shard was
// submitted, or the lease expired and was re-issued.
func (c *Coordinator) renewLocked(leaseID string) (RenewResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.leases[leaseID]
	if !ok {
		return RenewResponse{}, &httpErr{http.StatusNotFound, fmt.Sprintf("dist: unknown lease %q", leaseID)}
	}
	st := &li.job.shards[li.shard-1]
	switch {
	case st.done:
		return RenewResponse{Renewed: false}, nil
	case st.leaseID == leaseID:
		st.expires = c.now().Add(c.leaseTTL)
	case st.specLeaseID == leaseID:
		st.specExpires = c.now().Add(c.leaseTTL)
	default:
		return RenewResponse{Renewed: false}, nil
	}
	c.sawWorkerLocked(li.worker, li.parallel)
	mLeasesRenewed.Inc()
	c.events.Event(obs.LevelDebug, "lease.renew",
		obs.String("lease", leaseID),
		obs.String("shard", scenario.Shard{Index: li.shard, Count: li.job.plan.Shards}.String()),
		obs.String("worker", li.worker),
		obs.String("job", li.job.id))
	return RenewResponse{Renewed: true, TTLMs: c.leaseTTL.Milliseconds()}, nil
}

// handleSubmitLegacy stores one shard envelope via the legacy
// query-param route.
func (c *Coordinator) handleSubmitLegacy(w http.ResponseWriter, r *http.Request) {
	c.submitCommon(w, r, r.URL.Query().Get("lease"))
}

// handleResultV1 stores one shard envelope via POST
// /v1/leases/{lease}/result.
func (c *Coordinator) handleResultV1(w http.ResponseWriter, r *http.Request) {
	c.submitCommon(w, r, r.PathValue("lease"))
}

// submitCommon validates and stores one shard envelope. Submissions
// under an expired lease are accepted as long as the shard is still open
// — sweeps are deterministic, so a straggler's envelope is
// byte-identical to the re-leased worker's — and submissions for an
// already-completed shard are acknowledged idempotently and discarded.
func (c *Coordinator) submitCommon(w http.ResponseWriter, r *http.Request, leaseID string) {
	if leaseID == "" {
		c.rejectSubmit("no_lease", "dist: submit without lease ID")
		http.Error(w, "dist: submit without lease ID", http.StatusBadRequest)
		return
	}
	sr, err := scenario.ReadShardResult(r.Body)
	if err != nil {
		c.rejectSubmit("decode", err.Error())
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	q := r.URL.Query()
	ack, herr := c.submitLocked(leaseID, sr, q.Get("executed"), q.Get("mallocs"))
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, ack)
}

// rejectSubmit records one refused envelope in the metrics and the event
// log.
func (c *Coordinator) rejectSubmit(reason, detail string) {
	mSubmitsRejected.With(reason).Inc()
	c.events.Event(obs.LevelWarn, "submit.reject",
		obs.String("reason", reason),
		obs.String("detail", detail))
}

func (c *Coordinator) submitLocked(leaseID string, sr *scenario.ShardResult, executed, mallocs string) (SubmitResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.leases[leaseID]
	if !ok {
		c.rejectSubmit("unknown_lease", leaseID)
		return SubmitResponse{}, &httpErr{http.StatusNotFound, fmt.Sprintf("dist: unknown lease %q", leaseID)}
	}
	c.sawWorkerLocked(li.worker, li.parallel)
	j := li.job
	idx := li.shard
	// Validate the envelope against the job's plan before it can reach
	// MergeShards: the fingerprint proves the worker ran the same sweep
	// (same spec content, registry version, seeds, window, base seed and
	// sample selection), and the shard coordinates must be the leased
	// ones.
	if sr.Fingerprint != j.plan.Fingerprint {
		c.rejectSubmit("fingerprint", sr.Fingerprint)
		return SubmitResponse{}, &httpErr{http.StatusConflict,
			fmt.Sprintf("dist: envelope fingerprint %s does not match plan %s — worker ran a different sweep",
				sr.Fingerprint, j.plan.Fingerprint)}
	}
	if sr.Shard.Index != idx || sr.Shard.Count != j.plan.Shards {
		c.rejectSubmit("shard", sr.Shard.String())
		return SubmitResponse{}, &httpErr{http.StatusConflict,
			fmt.Sprintf("dist: envelope covers shard %s but lease %s names shard %d/%d",
				sr.Shard, leaseID, idx, j.plan.Shards)}
	}
	if j.shards[idx-1].done {
		// A straggler finished after its shard was re-leased and
		// resubmitted; its bytes are identical by determinism, so just
		// acknowledge.
		mSubmitsDuplicate.With(j.id).Inc()
		c.events.Event(obs.LevelInfo, "submit.duplicate",
			obs.String("lease", leaseID),
			obs.String("shard", sr.Shard.String()),
			obs.String("worker", li.worker),
			obs.String("job", j.id))
		return SubmitResponse{Accepted: true, Done: j.complete()}, nil
	}
	j.results[idx] = sr
	j.shards[idx-1].done = true
	j.submitters[li.worker] = li.parallel
	if wi := c.workers[li.worker]; wi != nil {
		wi.submitted++
	}
	// Workers report how many trials they actually executed (as opposed
	// to served from a shared cache) alongside the envelope; the sum
	// decides whether a throughput artifact for this sweep would be
	// honest. Exactly one submission per shard is counted, so a
	// re-executed straggler shard cannot double-count. The worker's
	// heap-allocation delta rides the same way and aggregates under the
	// same discipline.
	if n, err := strconv.ParseInt(executed, 10, 64); err != nil {
		j.execKnown = false
	} else {
		j.executed += n
	}
	if n, err := strconv.ParseInt(mallocs, 10, 64); err != nil {
		j.mallocsKnown = false
	} else {
		j.mallocs += n
	}
	mSubmitsAccepted.With(j.id).Inc()
	if !li.granted.IsZero() {
		secs := c.now().Sub(li.granted).Seconds()
		mShardSeconds.With(j.id).Observe(secs)
		c.shardLatSum += secs
		c.shardLatN++
	}
	c.persistShardLocked(j, sr)
	c.events.Event(obs.LevelInfo, "submit.accept",
		obs.String("lease", leaseID),
		obs.String("shard", sr.Shard.String()),
		obs.String("worker", li.worker),
		obs.Int("done", len(j.results)),
		obs.Int("shards", j.plan.Shards),
		obs.String("job", j.id))
	c.publishShardLocked(j, sr)
	complete := j.complete()
	if complete {
		c.completeJobLocked(j)
	}
	return SubmitResponse{Accepted: true, Done: complete}, nil
}

// handleStatus reports progress: the whole queue under Jobs, plus flat
// default-job fields mirroring the pre-/v1 response shape.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.statusLocked())
}

func (c *Coordinator) statusLocked() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{
		Protocol: ProtocolVersion,
		Workers:  len(c.workers),
		Sealed:   c.sealed,
		Complete: c.allCompleteLocked(),
		Jobs:     make([]JobStatus, 0, len(c.order)),
	}
	for _, j := range c.order {
		st.Jobs = append(st.Jobs, c.jobStatusLocked(j, true))
	}
	if len(st.Jobs) > 0 {
		d := st.Jobs[0]
		st.Spec = d.Spec
		st.Fingerprint = d.Fingerprint
		st.Shards = d.Shards
		st.Done = d.Done
		st.Leased = d.Leased
		st.Pending = d.Pending
		st.Progress = d.Progress
		st.ShardStates = d.ShardStates
	}
	now := c.now()
	st.WorkerStates = make([]WorkerStatus, 0, len(c.workers))
	for id, wi := range c.workers {
		st.WorkerStates = append(st.WorkerStates, WorkerStatus{
			ID:         id,
			Parallel:   wi.parallel,
			Submitted:  wi.submitted,
			LastSeenMs: now.Sub(wi.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(st.WorkerStates, func(i, j int) bool { return st.WorkerStates[i].ID < st.WorkerStates[j].ID })
	return st
}

// checkDrainedLocked closes the drained channel once a sealed queue is
// fully complete and every known worker has been answered StatusDone.
// Called with c.mu held.
func (c *Coordinator) checkDrainedLocked() {
	if !c.sealed || !c.allCompleteLocked() || len(c.undrained) != 0 {
		return
	}
	select {
	case <-c.drained:
	default:
		close(c.drained)
	}
}

// Jobs returns every queued job's status, in submission order, with
// shard states.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	jobs := make([]JobStatus, 0, len(c.order))
	for _, j := range c.order {
		jobs = append(jobs, c.jobStatusLocked(j, true))
	}
	return jobs
}

// Wait blocks until the default job's every shard has been submitted or
// the context ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	return c.WaitJob(ctx, "")
}

// WaitJob blocks until the named job (default job when id is "") is
// complete or the context ends.
func (c *Coordinator) WaitJob(ctx context.Context, id string) error {
	j, err := c.jobByID(id)
	if err != nil {
		return err
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jobByID resolves a job, "" meaning the default (first-submitted) one.
func (c *Coordinator) jobByID(id string) (*job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		if len(c.order) == 0 {
			return nil, fmt.Errorf("dist: no jobs queued")
		}
		return c.order[0], nil
	}
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("dist: unknown sweep %q", id)
	}
	return j, nil
}

// WaitDrained blocks until a sealed queue is complete AND every worker
// that ever asked for a lease has been told StatusDone — the
// graceful-shutdown point after which tearing down the listener cannot
// strand a live worker mid-poll. A worker that crashed never drains, so
// callers bound this with a context deadline.
func (c *Coordinator) WaitDrained(ctx context.Context) error {
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Merged reassembles the default job's collected envelopes into the
// unsharded sweep's stats stream and summary; it errors if any shard is
// still missing.
func (c *Coordinator) Merged() ([]*scenario.Stats, *scenario.Summary, error) {
	return c.JobMerged("")
}

// JobMerged reassembles the named job's (default job when id is "")
// collected envelopes.
func (c *Coordinator) JobMerged(id string) ([]*scenario.Stats, *scenario.Summary, error) {
	j, err := c.jobByID(id)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	shards := make([]*scenario.ShardResult, 0, len(j.results))
	for _, sr := range j.results {
		shards = append(shards, sr)
	}
	missing := j.plan.Shards - len(j.results)
	c.mu.Unlock()
	if missing > 0 {
		return nil, nil, fmt.Errorf("dist: %d of %d shards not yet submitted", missing, j.plan.Shards)
	}
	return scenario.MergeShards(shards)
}

// Workers returns how many distinct workers have asked for leases —
// observability, not accounting: a worker that only ever polled counts
// too.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Submitters returns how many distinct workers had an envelope accepted
// for the default job and the sum of their reported trial-pool sizes
// (each clamped to at least 1, so the total is usable as a bench
// artifact's effective parallelism). Unlike Workers, this counts only
// the fleet that actually produced the sweep.
func (c *Coordinator) Submitters() (count, totalParallel int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0, 0
	}
	for _, p := range c.order[0].submitters {
		if p < 1 {
			p = 1
		}
		totalParallel += p
	}
	return len(c.order[0].submitters), totalParallel
}

// ExecutedTrials returns the default job's total executed-trial count
// and whether every accepted submission reported one. known is false
// when any worker omitted the count (an older or foreign client) or the
// job resumed shards from disk, in which case the total is a lower bound
// and throughput artifacts should not be written from it.
func (c *Coordinator) ExecutedTrials() (total int64, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0, false
	}
	return c.order[0].executed, c.order[0].execKnown
}

// Mallocs returns the default job's total heap-allocation delta (summed
// over each shard's executing worker, one submission per shard) and
// whether every accepted submission reported one. Fleet bench artifacts
// use it so distributed runs carry real allocation counts instead of
// zeros.
func (c *Coordinator) Mallocs() (total int64, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0, false
	}
	return c.order[0].mallocs, c.order[0].mallocsKnown
}
