package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// CoordinatorConfig tunes a coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker may go without submitting or renewing
	// its shard before the coordinator assumes it crashed and re-issues
	// the lease; 0 means 2 minutes. Workers renew at a fraction of the
	// TTL while a shard is still computing, so the TTL bounds
	// crash-detection latency, not shard duration.
	LeaseTTL time.Duration

	// Now overrides the clock, for lease-expiry tests; nil means
	// time.Now.
	Now func() time.Time

	// Events, when non-nil, receives one structured event per lease and
	// submit transition (see internal/obs). Nil means silent.
	Events *obs.Logger
}

// shardState is the coordinator's bookkeeping for one shard.
type shardState struct {
	done    bool
	leaseID string    // current lease, "" if never leased
	expires time.Time // current lease's deadline
}

// Coordinator plans a sweep's shards, leases them to workers over HTTP
// and collects the resulting envelopes. It is an http.Handler serving
// /lease, /submit and /status; all state is guarded by one mutex, so a
// coordinator can serve any number of concurrent workers.
type Coordinator struct {
	plan     Plan
	leaseTTL time.Duration
	now      func() time.Time
	events   *obs.Logger
	mux      *http.ServeMux

	mu           sync.Mutex
	shards       []shardState                  // index i-1 holds shard i/n
	leases       map[string]leaseInfo          // lease ID -> holder
	results      map[int]*scenario.ShardResult // 1-based shard index -> envelope
	workers      map[string]*workerInfo        // every worker that ever polled
	submitters   map[string]int                // workers whose envelopes were accepted -> parallelism
	undrained    map[string]bool               // workers not yet told StatusDone
	executed     int64                         // trials the fleet reported actually executing
	execKnown    bool                          // every accepted submit carried an executed count
	mallocs      int64                         // worker heap allocations across all executed shards
	mallocsKnown bool                          // every accepted submit carried a mallocs count
	nextID       int
	done         chan struct{}
	drained      chan struct{}
}

// leaseInfo records who holds (or held) a lease on which shard.
type leaseInfo struct {
	shard    int // 1-based
	worker   string
	parallel int
	granted  time.Time // when the lease was issued, for shard latency
}

// workerInfo is the coordinator's live view of one worker.
type workerInfo struct {
	parallel  int
	submitted int
	lastSeen  time.Time
}

// NewCoordinator builds a coordinator for the plan.
func NewCoordinator(plan Plan, cfg CoordinatorConfig) (*Coordinator, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		plan:         plan,
		leaseTTL:     cfg.LeaseTTL,
		now:          cfg.Now,
		events:       cfg.Events,
		shards:       make([]shardState, plan.Shards),
		leases:       make(map[string]leaseInfo),
		results:      make(map[int]*scenario.ShardResult),
		workers:      make(map[string]*workerInfo),
		submitters:   make(map[string]int),
		undrained:    make(map[string]bool),
		execKnown:    true,
		mallocsKnown: true,
		done:         make(chan struct{}),
		drained:      make(chan struct{}),
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /lease", c.handleLease)
	c.mux.HandleFunc("POST /renew", c.handleRenew)
	c.mux.HandleFunc("POST /submit", c.handleSubmit)
	c.mux.HandleFunc("GET /status", c.handleStatus)
	c.mux.HandleFunc("GET /metrics", handleMetrics)
	return c, nil
}

// handleMetrics serves the process-wide metric registry in Prometheus
// text exposition format. Every layer registers against the default
// registry, so a scrape of the coordinator also surfaces engine, sweep
// and cache activity from any in-process workers.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	obs.Default().WriteProm(w)
}

// Plan returns the plan the coordinator distributes.
func (c *Coordinator) Plan() Plan { return c.plan }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// sawWorkerLocked refreshes the coordinator's liveness view of one
// worker. Called with c.mu held; worker may be "" (never recorded).
func (c *Coordinator) sawWorkerLocked(worker string, parallel int) {
	if worker == "" {
		return
	}
	wi := c.workers[worker]
	if wi == nil {
		wi = &workerInfo{}
		c.workers[worker] = wi
	}
	if parallel != 0 {
		wi.parallel = parallel
	}
	wi.lastSeen = c.now()
	mWorkerLastSeen.With(worker).Set(float64(wi.lastSeen.UnixMilli()) / 1000)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleLease hands the lowest pending (or expired-lease) shard to the
// asking worker, or tells it to wait or exit. The response is computed
// under the state lock but written to the socket after releasing it — a
// stalled client connection must never block the other endpoints (a
// blocked /renew would expire healthy leases).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("dist: decode lease request: %v", err), http.StatusBadRequest)
		return
	}
	if req.Protocol != ProtocolVersion {
		http.Error(w, fmt.Sprintf("dist: protocol version %d, want %d", req.Protocol, ProtocolVersion),
			http.StatusBadRequest)
		return
	}
	writeJSON(w, c.leaseLocked(req))
}

// leaseLocked is handleLease's state transition; it returns the response
// to send. The embedded *Plan is immutable after construction, so sharing
// the pointer outside the lock is safe.
func (c *Coordinator) leaseLocked(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.Worker, req.Parallel)
	if len(c.results) == c.plan.Shards {
		// This worker now knows the sweep is over and will exit; once
		// every known worker has heard it the coordinator can tear down
		// its listener without stranding anyone mid-poll.
		delete(c.undrained, req.Worker)
		c.checkDrainedLocked()
		return LeaseResponse{Protocol: ProtocolVersion, Status: StatusDone}
	}
	if req.Worker != "" {
		c.undrained[req.Worker] = true
	}
	now := c.now()
	for i := range c.shards {
		st := &c.shards[i]
		if st.done || (st.leaseID != "" && now.Before(st.expires)) {
			continue
		}
		if st.leaseID != "" {
			mLeasesExpired.Inc()
			c.events.Event(obs.LevelWarn, "lease.expire",
				obs.String("lease", st.leaseID),
				obs.String("shard", scenario.Shard{Index: i + 1, Count: c.plan.Shards}.String()),
				obs.String("worker", c.leases[st.leaseID].worker))
		}
		c.nextID++
		st.leaseID = fmt.Sprintf("lease-%d", c.nextID)
		st.expires = now.Add(c.leaseTTL)
		c.leases[st.leaseID] = leaseInfo{shard: i + 1, worker: req.Worker, parallel: req.Parallel, granted: now}
		mLeasesGranted.Inc()
		c.events.Event(obs.LevelInfo, "lease.grant",
			obs.String("lease", st.leaseID),
			obs.String("shard", scenario.Shard{Index: i + 1, Count: c.plan.Shards}.String()),
			obs.String("worker", req.Worker),
			obs.Int64("ttlMs", c.leaseTTL.Milliseconds()))
		return LeaseResponse{
			Protocol: ProtocolVersion,
			Status:   StatusLease,
			LeaseID:  st.leaseID,
			Shard:    scenario.Shard{Index: i + 1, Count: c.plan.Shards},
			Plan:     &c.plan,
			TTLMs:    c.leaseTTL.Milliseconds(),
		}
	}
	return LeaseResponse{Protocol: ProtocolVersion, Status: StatusWait}
}

// handleRenew extends a live lease: workers renew while a shard's sweep
// is still running, so the lease TTL bounds crash *detection* latency,
// not shard duration. A renewal is refused (Renewed false, not an error)
// when the lease is no longer the shard's current one — the shard was
// submitted, or the lease expired and was re-issued.
func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	leaseID := r.URL.Query().Get("lease")
	if leaseID == "" {
		http.Error(w, "dist: renew without lease ID", http.StatusBadRequest)
		return
	}
	rr, herr := c.renewLocked(leaseID)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, rr)
}

// httpErr is a handler outcome carried from a locked state transition to
// the unlocked socket write.
type httpErr struct {
	code int
	msg  string
}

func (c *Coordinator) renewLocked(leaseID string) (RenewResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.leases[leaseID]
	if !ok {
		return RenewResponse{}, &httpErr{http.StatusNotFound, fmt.Sprintf("dist: unknown lease %q", leaseID)}
	}
	st := &c.shards[li.shard-1]
	if st.done || st.leaseID != leaseID {
		return RenewResponse{Renewed: false}, nil
	}
	c.sawWorkerLocked(li.worker, li.parallel)
	st.expires = c.now().Add(c.leaseTTL)
	mLeasesRenewed.Inc()
	c.events.Event(obs.LevelDebug, "lease.renew",
		obs.String("lease", leaseID),
		obs.String("shard", scenario.Shard{Index: li.shard, Count: c.plan.Shards}.String()),
		obs.String("worker", li.worker))
	return RenewResponse{Renewed: true, TTLMs: c.leaseTTL.Milliseconds()}, nil
}

// handleSubmit validates and stores one shard envelope. Submissions under
// an expired lease are accepted as long as the shard is still open —
// sweeps are deterministic, so a straggler's envelope is byte-identical
// to the re-leased worker's — and submissions for an already-completed
// shard are acknowledged idempotently and discarded.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	leaseID := r.URL.Query().Get("lease")
	if leaseID == "" {
		c.rejectSubmit("no_lease", "dist: submit without lease ID")
		http.Error(w, "dist: submit without lease ID", http.StatusBadRequest)
		return
	}
	sr, err := scenario.ReadShardResult(r.Body)
	if err != nil {
		c.rejectSubmit("decode", err.Error())
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	q := r.URL.Query()
	ack, herr := c.submitLocked(leaseID, sr, q.Get("executed"), q.Get("mallocs"))
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	writeJSON(w, ack)
}

// rejectSubmit records one refused envelope in the metrics and the event
// log.
func (c *Coordinator) rejectSubmit(reason, detail string) {
	mSubmitsRejected.With(reason).Inc()
	c.events.Event(obs.LevelWarn, "submit.reject",
		obs.String("reason", reason),
		obs.String("detail", detail))
}

func (c *Coordinator) submitLocked(leaseID string, sr *scenario.ShardResult, executed, mallocs string) (SubmitResponse, *httpErr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, ok := c.leases[leaseID]
	if !ok {
		c.rejectSubmit("unknown_lease", leaseID)
		return SubmitResponse{}, &httpErr{http.StatusNotFound, fmt.Sprintf("dist: unknown lease %q", leaseID)}
	}
	c.sawWorkerLocked(li.worker, li.parallel)
	idx := li.shard
	// Validate the envelope against the plan before it can reach
	// MergeShards: the fingerprint proves the worker ran the same sweep
	// (same spec content, registry version, seeds, window, base seed and
	// sample selection), and the shard coordinates must be the leased
	// ones.
	if sr.Fingerprint != c.plan.Fingerprint {
		c.rejectSubmit("fingerprint", sr.Fingerprint)
		return SubmitResponse{}, &httpErr{http.StatusConflict,
			fmt.Sprintf("dist: envelope fingerprint %s does not match plan %s — worker ran a different sweep",
				sr.Fingerprint, c.plan.Fingerprint)}
	}
	if sr.Shard.Index != idx || sr.Shard.Count != c.plan.Shards {
		c.rejectSubmit("shard", sr.Shard.String())
		return SubmitResponse{}, &httpErr{http.StatusConflict,
			fmt.Sprintf("dist: envelope covers shard %s but lease %s names shard %d/%d",
				sr.Shard, leaseID, idx, c.plan.Shards)}
	}
	if c.shards[idx-1].done {
		// A straggler finished after its shard was re-leased and
		// resubmitted; its bytes are identical by determinism, so just
		// acknowledge.
		mSubmitsDuplicate.Inc()
		c.events.Event(obs.LevelInfo, "submit.duplicate",
			obs.String("lease", leaseID),
			obs.String("shard", sr.Shard.String()),
			obs.String("worker", li.worker))
		return SubmitResponse{Accepted: true, Done: len(c.results) == c.plan.Shards}, nil
	}
	c.results[idx] = sr
	c.shards[idx-1].done = true
	c.submitters[li.worker] = li.parallel
	if wi := c.workers[li.worker]; wi != nil {
		wi.submitted++
	}
	// Workers report how many trials they actually executed (as opposed
	// to served from a shared cache) alongside the envelope; the sum
	// decides whether a throughput artifact for this sweep would be
	// honest. Exactly one submission per shard is counted, so a
	// re-executed straggler shard cannot double-count. The worker's
	// heap-allocation delta rides the same way and aggregates under the
	// same discipline.
	if n, err := strconv.ParseInt(executed, 10, 64); err != nil {
		c.execKnown = false
	} else {
		c.executed += n
	}
	if n, err := strconv.ParseInt(mallocs, 10, 64); err != nil {
		c.mallocsKnown = false
	} else {
		c.mallocs += n
	}
	mSubmitsAccepted.Inc()
	if !li.granted.IsZero() {
		mShardSeconds.Observe(c.now().Sub(li.granted).Seconds())
	}
	complete := len(c.results) == c.plan.Shards
	c.events.Event(obs.LevelInfo, "submit.accept",
		obs.String("lease", leaseID),
		obs.String("shard", sr.Shard.String()),
		obs.String("worker", li.worker),
		obs.Int("done", len(c.results)),
		obs.Int("shards", c.plan.Shards))
	if complete {
		c.events.Event(obs.LevelInfo, "sweep.complete",
			obs.String("spec", c.plan.Spec.Name),
			obs.String("fingerprint", c.plan.Fingerprint),
			obs.Int("shards", c.plan.Shards),
			obs.Int64("executed", c.executed))
		close(c.done)
		c.checkDrainedLocked()
	}
	return SubmitResponse{Accepted: true, Done: complete}, nil
}

// handleStatus reports progress.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.statusLocked())
}

func (c *Coordinator) statusLocked() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{
		Protocol:    ProtocolVersion,
		Spec:        c.plan.Spec.Name,
		Fingerprint: c.plan.Fingerprint,
		Shards:      c.plan.Shards,
		Workers:     len(c.workers),
		Complete:    len(c.results) == c.plan.Shards,
	}
	now := c.now()
	st.ShardStates = make([]ShardStatus, len(c.shards))
	for i := range c.shards {
		ss := ShardStatus{
			Shard: scenario.Shard{Index: i + 1, Count: c.plan.Shards}.String(),
			Lease: c.shards[i].leaseID,
		}
		if li, ok := c.leases[c.shards[i].leaseID]; ok {
			ss.Worker = li.worker
		}
		switch {
		case c.shards[i].done:
			st.Done++
			ss.State = "done"
		case c.shards[i].leaseID != "" && now.Before(c.shards[i].expires):
			st.Leased++
			ss.State = "leased"
		default:
			st.Pending++
			ss.State = "pending"
			ss.Worker = ""
		}
		st.ShardStates[i] = ss
	}
	if c.plan.Shards > 0 {
		st.Progress = float64(st.Done) / float64(c.plan.Shards)
	}
	st.WorkerStates = make([]WorkerStatus, 0, len(c.workers))
	for id, wi := range c.workers {
		st.WorkerStates = append(st.WorkerStates, WorkerStatus{
			ID:         id,
			Parallel:   wi.parallel,
			Submitted:  wi.submitted,
			LastSeenMs: now.Sub(wi.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(st.WorkerStates, func(i, j int) bool { return st.WorkerStates[i].ID < st.WorkerStates[j].ID })
	return st
}

// checkDrainedLocked closes the drained channel once the sweep is
// complete and every known worker has been answered StatusDone. Called
// with c.mu held.
func (c *Coordinator) checkDrainedLocked() {
	if len(c.results) != c.plan.Shards || len(c.undrained) != 0 {
		return
	}
	select {
	case <-c.drained:
	default:
		close(c.drained)
	}
}

// Wait blocks until every shard has been submitted or the context ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitDrained blocks until the sweep is complete AND every worker that
// ever asked for a lease has been told StatusDone — the graceful-shutdown
// point after which tearing down the listener cannot strand a live worker
// mid-poll. A worker that crashed never drains, so callers bound this
// with a context deadline.
func (c *Coordinator) WaitDrained(ctx context.Context) error {
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Merged reassembles the collected envelopes into the unsharded sweep's
// stats stream and summary; it errors if any shard is still missing.
func (c *Coordinator) Merged() ([]*scenario.Stats, *scenario.Summary, error) {
	c.mu.Lock()
	shards := make([]*scenario.ShardResult, 0, len(c.results))
	for _, sr := range c.results {
		shards = append(shards, sr)
	}
	missing := c.plan.Shards - len(c.results)
	c.mu.Unlock()
	if missing > 0 {
		return nil, nil, fmt.Errorf("dist: %d of %d shards not yet submitted", missing, c.plan.Shards)
	}
	return scenario.MergeShards(shards)
}

// Workers returns how many distinct workers have asked for leases —
// observability, not accounting: a worker that only ever polled counts
// too.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Submitters returns how many distinct workers had an envelope accepted
// and the sum of their reported trial-pool sizes (each clamped to at
// least 1, so the total is usable as a bench artifact's effective
// parallelism). Unlike Workers, this counts only the fleet that actually
// produced the sweep.
func (c *Coordinator) Submitters() (count, totalParallel int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.submitters {
		if p < 1 {
			p = 1
		}
		totalParallel += p
	}
	return len(c.submitters), totalParallel
}

// ExecutedTrials returns the fleet's total executed-trial count and
// whether every accepted submission reported one. known is false when any
// worker omitted the count (an older or foreign client), in which case
// the total is a lower bound and throughput artifacts should not be
// written from it.
func (c *Coordinator) ExecutedTrials() (total int64, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.executed, c.execKnown
}

// Mallocs returns the fleet's total heap-allocation delta (summed over
// each shard's executing worker, one submission per shard) and whether
// every accepted submission reported one. Fleet bench artifacts use it
// so distributed runs carry real allocation counts instead of zeros.
func (c *Coordinator) Mallocs() (total int64, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mallocs, c.mallocsKnown
}
