package dist

import "repro/internal/obs"

// Coordinator- and worker-layer metrics. Everything here is per-request
// or per-shard, far off any hot path; the interesting properties are
// the label sets (submit rejections carry a reason, liveness is
// per-worker) and that one process can host both sides (loopback tests,
// `goalsweep serve` with in-process workers) against the shared default
// registry.
var (
	mLeasesGranted = obs.Default().Counter("goalsweep_coord_leases_granted_total",
		"Shard leases issued to workers (including re-issues).")
	mLeasesRenewed = obs.Default().Counter("goalsweep_coord_leases_renewed_total",
		"Lease renewals honored.")
	mLeasesExpired = obs.Default().Counter("goalsweep_coord_leases_expired_total",
		"Leases that expired and were re-issued to another worker.")
	mSubmitsAccepted = obs.Default().Counter("goalsweep_coord_submits_accepted_total",
		"Shard envelopes accepted and stored.")
	mSubmitsDuplicate = obs.Default().Counter("goalsweep_coord_submits_duplicate_total",
		"Straggler envelopes for already-complete shards, acknowledged idempotently.")
	mSubmitsRejected = obs.Default().CounterVec("goalsweep_coord_submits_rejected_total",
		"Shard envelopes refused, by reason.", "reason")
	mShardSeconds = obs.Default().Histogram("goalsweep_coord_shard_seconds",
		"Lease-grant to accepted-submit latency per shard.", nil)
	mWorkerLastSeen = obs.Default().GaugeVec("goalsweep_coord_worker_last_seen_timestamp_seconds",
		"Unix time the coordinator last heard from each worker.", "worker")

	mPollWaits = obs.Default().Counter("goalsweep_worker_poll_waits_total",
		"Lease polls answered wait (all shards claimed elsewhere).")
	mTransportRetries = obs.Default().Counter("goalsweep_worker_transport_retries_total",
		"Lease/submit transport attempts that failed and were retried.")
	mWorkerShards = obs.Default().Counter("goalsweep_worker_shards_completed_total",
		"Shards this process's workers executed and submitted.")
	mComputeSeconds = obs.Default().Histogram("goalsweep_worker_compute_seconds",
		"Local sweep wall-clock per executed shard.", nil)
)
