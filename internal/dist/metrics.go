package dist

import "repro/internal/obs"

// Coordinator- and worker-layer metrics. Everything here is per-request
// or per-shard, far off any hot path; the interesting properties are
// the label sets (lease and submit families carry the job ID so one
// service's tenants are tellable apart, submit rejections carry a
// reason, liveness is per-worker) and that one process can host both
// sides (loopback tests, `goalsweep serve` with in-process workers)
// against the shared default registry.
var (
	mLeasesGranted = obs.Default().CounterVec("goalsweep_coord_leases_granted_total",
		"Shard leases issued to workers (including re-issues), by job.", "job")
	mLeasesRenewed = obs.Default().Counter("goalsweep_coord_leases_renewed_total",
		"Lease renewals honored.")
	mLeasesExpired = obs.Default().CounterVec("goalsweep_coord_leases_expired_total",
		"Leases that expired and were re-issued to another worker, by job.", "job")
	mSubmitsAccepted = obs.Default().CounterVec("goalsweep_coord_submits_accepted_total",
		"Shard envelopes accepted and stored, by job.", "job")
	mSubmitsDuplicate = obs.Default().CounterVec("goalsweep_coord_submits_duplicate_total",
		"Straggler envelopes for already-complete shards, acknowledged idempotently, by job.", "job")
	mSubmitsRejected = obs.Default().CounterVec("goalsweep_coord_submits_rejected_total",
		"Shard envelopes refused, by reason.", "reason")
	mShardSeconds = obs.Default().HistogramVec("goalsweep_coord_shard_seconds",
		"Lease-grant to accepted-submit latency per shard, by job.", nil, "job")
	mWorkerLastSeen = obs.Default().GaugeVec("goalsweep_coord_worker_last_seen_timestamp_seconds",
		"Unix time the coordinator last heard from each worker.", "worker")
	mJobsSubmitted = obs.Default().Counter("goalsweep_coord_jobs_submitted_total",
		"Sweep jobs admitted into the queue (including recovered ones).")
	mJobsActive = obs.Default().Gauge("goalsweep_coord_jobs_active",
		"Queued jobs not yet complete.")

	mLeaseSheds = obs.Default().Counter("goalsweep_coord_lease_sheds_total",
		"Lease requests shed with 429 + Retry-After because the in-flight bound was reached.")
	mLeasesSpeculated = obs.Default().CounterVec("goalsweep_coord_leases_speculated_total",
		"Speculative re-leases of straggler shards granted before the primary lease's TTL expired, by job.", "job")
	mStateHealed = obs.Default().CounterVec("goalsweep_coord_state_healed_total",
		"Corrupt or mismatched state-dir artifacts healed during resume (re-queued or rewritten), by kind.", "kind")

	mPollWaits = obs.Default().Counter("goalsweep_worker_poll_waits_total",
		"Lease polls answered wait or idle (no grantable shard).")
	mTransportRetries = obs.Default().Counter("goalsweep_worker_transport_retries_total",
		"Lease/submit transport attempts that failed and were retried.")
	mWorkerShards = obs.Default().Counter("goalsweep_worker_shards_completed_total",
		"Shards this process's workers executed and submitted.")
	mComputeSeconds = obs.Default().Histogram("goalsweep_worker_compute_seconds",
		"Local sweep wall-clock per executed shard.", nil)
	mRetryBackoff = obs.Default().Histogram("goalsweep_worker_retry_backoff_seconds",
		"Jittered exponential backoff waits before retried lease/submit attempts.", nil)
	mEventReconnects = obs.Default().Counter("goalsweep_client_event_reconnects_total",
		"Dropped job event streams re-subscribed by FollowEvents.")
)
