package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// TestChaosDistributedByteIdentical is the robustness acceptance
// criterion: a 2-worker distributed sweep under a nonzero seeded fault
// schedule — drops, delays, a duplicate, a truncation, 503s — plus a
// deliberate straggler holding one shard hostage and a corrupt state-dir
// envelope, still completes with a merged report byte-identical to a
// fresh serial run. Deliberately not parallel: it asserts deltas of
// process-global metrics.
func TestChaosDistributedByteIdentical(t *testing.T) {
	stateDir := t.TempDir()
	plan := builtinPlan(t, "quick", 6)

	// Pre-damage the state directory: a truncated envelope for shard 1
	// that resume must heal (remove and re-queue), not trust or die on.
	jobDir := filepath.Join(stateDir, JobID(plan))
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, shardFile(1)), []byte(`{"version":1,"fingerp`), 0o644); err != nil {
		t.Fatal(err)
	}

	healed0 := mStateHealed.With("envelope").Value()
	spec0 := mLeasesSpeculated.With(JobID(plan)).Value()

	// LeaseTTL is a minute of real time, so the straggler's shard can
	// only complete through a speculative re-lease, never TTL expiry.
	coord, err := NewCoordinator(plan, CoordinatorConfig{
		LeaseTTL:       time.Minute,
		SpeculateAfter: time.Millisecond,
		StateDir:       stateDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mStateHealed.With("envelope").Value() - healed0; got != 1 {
		t.Fatalf("healed %d envelopes on resume, want 1", got)
	}

	plain := LoopbackClient(coord)
	straggler, _ := postLease(t, plain, LeaseRequest{Protocol: ProtocolVersion, Worker: "straggler"})
	if straggler.Status != StatusLease {
		t.Fatalf("straggler lease = %+v, want a grant", straggler)
	}

	cs, err := chaos.ParseSpec("drop=2,delay=2:5ms,dup=1,trunc=1,err=2,horizon=6")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.New(cs, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Both workers share one chaos client: the injected faults land on
	// whichever request reaches each scheduled (op, seq) coordinate.
	client := inj.Client(plain)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{
				Coordinator: "http://coordinator",
				Client:      client,
				ID:          fmt.Sprintf("chaos-w%d", i),
				Poll:        2 * time.Millisecond,
				Retries:     200,
			}
			_, errs[i] = w.Run(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("chaotic merged report differs from fresh serial run")
	}
	if fired := inj.Log(); len(fired) != cs.Total() {
		t.Fatalf("%d of %d scheduled faults fired:\n%s", len(fired), cs.Total(), chaos.FormatLog(fired))
	}
	if got := mLeasesSpeculated.With(JobID(plan)).Value() - spec0; got < 1 {
		t.Fatalf("no speculative re-lease recorded, yet the straggler's shard completed (%d)", got)
	}
}

// TestChaosDeterministicFaultLog pins fault-schedule reproducibility:
// two runs under the same chaos spec and seed fire the identical fault
// log (canonical formatting, byte for byte) and produce byte-identical
// merged reports; a different seed produces a different schedule.
func TestChaosDeterministicFaultLog(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "quick", 4)
	cs, err := chaos.ParseSpec("drop=1,delay=1:5ms,dup=1,err=1,horizon=4")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(seed uint64) (flog, merged string) {
		t.Helper()
		inj, err := chaos.New(cs, seed)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(plan, CoordinatorConfig{
			LeaseTTL:       time.Minute,
			SpeculateAfter: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		client := inj.Client(LoopbackClient(coord))
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := range errs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := &Worker{
					Coordinator: "http://coordinator",
					Client:      client,
					ID:          fmt.Sprintf("det-w%d-%d", seed, i),
					Poll:        2 * time.Millisecond,
					Retries:     200,
				}
				_, errs[i] = w.Run(ctx)
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
		}
		if err := coord.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		fired := inj.Log()
		if len(fired) != cs.Total() {
			t.Fatalf("%d of %d scheduled faults fired", len(fired), cs.Total())
		}
		return chaos.FormatLog(fired), mergedReport(t, coord)
	}

	log1, rep1 := runOnce(11)
	log2, rep2 := runOnce(11)
	if log1 != log2 {
		t.Fatalf("same chaos seed, different fault logs:\nrun 1:\n%srun 2:\n%s", log1, log2)
	}
	if rep1 != rep2 {
		t.Fatal("same chaos seed, different merged reports")
	}
	if want := serialReport(t, plan); rep1 != want {
		t.Fatal("chaotic merged report differs from fresh serial run")
	}
	if log3, _ := runOnce(12); log3 == log1 {
		t.Fatal("different chaos seeds produced the identical fault log")
	}
}

// TestResumeHealsDamagedState damages a completed job's state directory
// three ways — truncated plan, corrupt envelope, fingerprint-mismatched
// envelope — and pins that a restarted coordinator re-queues exactly the
// two damaged shards (zero re-executed trials for the intact one),
// rewrites the plan, and still merges byte-identical to a serial run.
// Not parallel: asserts deltas of process-global metrics.
func TestResumeHealsDamagedState(t *testing.T) {
	stateDir := t.TempDir()
	plan := builtinPlan(t, "quick", 3)

	coord1, err := NewCoordinator(plan, CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	w1 := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(coord1), ID: "h1", Poll: time.Millisecond}
	if n, err := w1.Run(context.Background()); err != nil || n != 3 {
		t.Fatalf("first run: (%d, %v), want (3, nil)", n, err)
	}

	jobDir := filepath.Join(stateDir, JobID(plan))
	// Damage 1: the plan file is truncated mid-JSON.
	if err := os.WriteFile(filepath.Join(jobDir, jobPlanFile), []byte(`{"spec":`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage 2: shard 2's envelope is garbage.
	if err := os.WriteFile(filepath.Join(jobDir, shardFile(2)), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage 3: shard 3's envelope is internally valid but belongs to a
	// different sweep — its fingerprint does not match the plan.
	data, err := os.ReadFile(filepath.Join(jobDir, shardFile(3)))
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := scenario.ReadShardResult(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	foreign.Fingerprint = "00000000deadbeef"
	var buf bytes.Buffer
	if err := foreign.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, shardFile(3)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	healedEnv0 := mStateHealed.With("envelope").Value()
	healedPlan0 := mStateHealed.With("plan").Value()
	trialCounter := obs.Default().Counter("goalsweep_engine_trials_started_total",
		"Trials handed to the batch engine.")
	trials0 := trialCounter.Value()

	coord2, err := NewCoordinator(plan, CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	if got := mStateHealed.With("envelope").Value() - healedEnv0; got != 2 {
		t.Fatalf("healed %d envelopes, want 2 (shards 2 and 3)", got)
	}
	if got := mStateHealed.With("plan").Value() - healedPlan0; got != 1 {
		t.Fatalf("healed %d plans, want 1 (truncated job.json rewritten)", got)
	}
	jobs := coord2.Jobs()
	if len(jobs) != 1 || jobs[0].Resumed != 1 || jobs[0].Done != 1 || jobs[0].Pending != 2 {
		t.Fatalf("jobs after damaged resume = %+v, want 1 resumed / 1 done / 2 pending", jobs)
	}

	w2 := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(coord2), ID: "h2", Poll: time.Millisecond}
	if n, err := w2.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("drain after damage: (%d, %v), want (2, nil)", n, err)
	}
	// Exactly the two damaged shards re-executed: quick = 12 scenarios x
	// 1 seed over 3 shards = 4 trials per shard, so 8 trials, not 12.
	if got := trialCounter.Value() - trials0; got != 8 {
		t.Fatalf("engine started %d trials after damaged resume, want 8 (intact shard re-executed?)", got)
	}
	if got, want := mergedReport(t, coord2), serialReport(t, plan); got != want {
		t.Fatal("merged report after healing differs from fresh serial run")
	}
	// The rewritten plan file is intact again.
	planData, err := os.ReadFile(filepath.Join(jobDir, jobPlanFile))
	if err != nil {
		t.Fatal(err)
	}
	var healedPlan Plan
	if err := decodeJSONStrict(planData, &healedPlan); err != nil {
		t.Fatalf("plan file still corrupt after heal: %v", err)
	}
}

// TestServiceRecoveryQuarantinesCorruptPlan: a service coordinator whose
// state directory holds an unrecoverable plan starts anyway, moves the
// plan aside (job.json.corrupt) so every future restart is clean, and a
// later identical submission can reuse the directory.
func TestServiceRecoveryQuarantinesCorruptPlan(t *testing.T) {
	t.Parallel()

	stateDir := t.TempDir()
	dir := filepath.Join(stateDir, "sw-0123456789abcdef-2")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobPlanFile), []byte(`{"spec": tru`), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, err := NewService(CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatalf("service refused to start over a corrupt plan: %v", err)
	}
	if jobs := svc.Jobs(); len(jobs) != 0 {
		t.Fatalf("recovered %d jobs from a corrupt plan, want 0", len(jobs))
	}
	if _, err := os.Stat(filepath.Join(dir, jobPlanFile+".corrupt")); err != nil {
		t.Fatalf("corrupt plan not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, jobPlanFile)); !os.IsNotExist(err) {
		t.Fatalf("corrupt plan still in place: %v", err)
	}
}

// TestShedLease pins overload shedding: with the in-flight lease bound
// saturated, a lease request is refused with 429 + Retry-After, the
// client classifies the refusal retryable with the hint attached, and
// the path clears once the bound frees up. Renews and submits are never
// shed (their routes are unwrapped), so sheds can only delay work.
func TestShedLease(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{MaxInflightLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the bound as an in-flight lease call would.
	svc.inflightLeases.Add(1)

	_, resp := postLease(t, LoopbackClient(svc), LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated lease answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("shed Retry-After = %q, want \"1\"", got)
	}

	_, err = loopbackAPI(svc).Lease(context.Background(), "", LeaseRequest{Worker: "w"})
	if err == nil {
		t.Fatal("lease succeeded past a saturated bound")
	}
	if !Retryable(err) {
		t.Fatalf("shed not classified retryable: %v", err)
	}
	if hint := RetryAfterHint(err); hint != time.Second {
		t.Fatalf("RetryAfterHint = %v, want 1s", hint)
	}

	svc.inflightLeases.Add(-1)
	if _, err := loopbackAPI(svc).Lease(context.Background(), "", LeaseRequest{Worker: "w"}); err != nil {
		t.Fatalf("lease still refused after the bound freed: %v", err)
	}
}

// TestWorkerRetries429 pins the worker side of shedding: a coordinator
// that sheds the first lease attempts does not kill the fleet — the
// worker backs off and the sweep completes.
func TestWorkerRetries429(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "quick", 2)
	coord, err := NewCoordinator(plan, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	shedding := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/leases") && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		coord.ServeHTTP(w, r)
	})
	w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(shedding), ID: "shed-w", Poll: time.Millisecond, Retries: 10}
	if n, err := w.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("worker under shedding: (%d, %v), want (2, nil)", n, err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// cutEventsOnce passes requests through untouched except the first
// /events response, whose body it cuts after the first SSE frame —
// simulating a connection dropped mid-stream.
type cutEventsOnce struct {
	base http.RoundTripper
	cut  atomic.Bool
}

func (c *cutEventsOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/events") || c.cut.Swap(true) {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	end := bytes.Index(body, []byte("\n\n")) + 2
	resp.Body = io.NopCloser(bytes.NewReader(body[:end]))
	resp.ContentLength = int64(end)
	return resp, nil
}

// TestFollowEventsReconnect pins the watch fix: a stream dropped after
// the first shard frame is re-subscribed, the replayed frames are
// deduplicated by shard index, and the callback sees every shard exactly
// once plus one completion — no dead watch, no double counting.
func TestFollowEventsReconnect(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	created, err := loopbackAPI(svc).CreateSweep(context.Background(), SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(svc), Poll: time.Millisecond, ExitOnIdle: true}
	if n, err := w.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("worker: (%d, %v), want (2, nil)", n, err)
	}

	cutting := &cutEventsOnce{base: LoopbackClient(svc).Transport}
	cl := NewClient("http://coordinator", &http.Client{Transport: cutting})
	shards := map[string]int{}
	completes := 0
	retries := 0
	opt := FollowOptions{
		Backoff: time.Millisecond,
		OnRetry: func(err error, wait time.Duration) {
			retries++
			if !errors.Is(err, errStreamEnded) {
				t.Errorf("reconnect for unexpected error: %v", err)
			}
		},
	}
	err = cl.FollowEvents(context.Background(), created.Job.ID, opt, func(ev SweepEvent) error {
		switch ev.Type {
		case EventShard:
			shards[ev.ID]++
		case EventComplete:
			completes++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Fatalf("FollowEvents reconnected %d times, want exactly 1", retries)
	}
	if len(shards) != 2 || shards["1"] != 1 || shards["2"] != 1 || completes != 1 {
		t.Fatalf("callback saw shards %v and %d completions, want each shard once and one completion", shards, completes)
	}
}

// TestClientDecodeErrorRetryable: a response truncated mid-JSON is a cut
// wire, not a verdict — it must classify as a retryable transport error.
func TestClientDecodeErrorRetryable(t *testing.T) {
	t.Parallel()

	truncating := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"protocol": 1, "stat`)
	})
	_, err := NewClient("http://coordinator", LoopbackClient(truncating)).
		Lease(context.Background(), "", LeaseRequest{Worker: "w"})
	if err == nil {
		t.Fatal("lease decoded a truncated response")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("truncated response classified as %T, want *TransportError: %v", err, err)
	}
	if !Retryable(err) {
		t.Fatalf("truncated response not retryable: %v", err)
	}
}

// TestRetryBackoffShape pins the worker backoff: jittered waits double
// from the poll base up to the cap, stay within [d/2, d), honor a
// Retry-After floor, and reset cleanly.
func TestRetryBackoffShape(t *testing.T) {
	t.Parallel()

	w := &Worker{ID: "backoff-shape"}
	base := 10 * time.Millisecond
	b := w.newBackoff(base)
	cap := 16 * base
	for i := 0; i < 8; i++ {
		d := min(base<<i, cap)
		wait := b.next(0)
		if wait < d/2 || wait >= d {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", i, wait, d/2, d)
		}
	}
	if wait := b.next(time.Second); wait != time.Second {
		t.Fatalf("Retry-After floor ignored: wait %v, want 1s", wait)
	}
	b.reset()
	if wait := b.next(0); wait < base/2 || wait >= base {
		t.Fatalf("after reset: wait %v outside [%v, %v)", wait, base/2, base)
	}
}
