// Package dist is the distributed execution backend for scenario sweeps:
// a coordinator/worker split over the shard envelope that internal/scenario
// already treats as a complete wire format.
//
// A Coordinator owns a Plan — the spec, the effective sweep parameters
// (seeds, window, base seed, sample selection), the shard count and the
// sweep Fingerprint derived from all of them — and serves work units over
// three HTTP endpoints:
//
//	POST /lease   a worker asks for work and receives either a lease
//	              (shard coordinates + the full plan), a wait hint (all
//	              shards are leased but not all submitted), or done
//	POST /renew   a worker extends its lease while a shard is still
//	              computing, so the TTL bounds crash-detection latency,
//	              not shard duration
//	POST /submit  a worker pushes back the shard's ShardResult envelope
//	              under its lease ID; the coordinator validates the
//	              envelope's framing and fingerprint before accepting it
//	GET  /status  progress accounting for humans and scripts
//
// Leases expire: a worker that crashes mid-shard stops renewing its
// claim, and after the lease TTL the coordinator re-issues the same shard
// to the next worker that asks. Because sweeps are deterministic — trial
// seeds derive from scenario content, never from placement — a re-executed
// shard produces byte-identical results, so a stale submit racing a
// re-lease is accepted idempotently rather than rejected: every writer of
// a shard writes the same bytes.
//
// A Worker pulls a lease, recomputes the sweep fingerprint locally from
// the leased spec and its own registry version (refusing the lease on
// mismatch, which catches coordinator/worker version skew), runs the
// ordinary Matrix.Sweep over the shard's index range — sharing a
// content-addressed result Cache with colocated workers when configured —
// and submits the envelope. When every shard has been submitted the
// coordinator reassembles them with MergeShards into a report
// byte-identical to a fresh serial run of the same sweep.
//
// The protocol is testable hermetically: LoopbackClient wraps the
// coordinator's http.Handler in an in-process http.Client, so the whole
// lease/crash/re-lease/submit cycle runs in one process with no sockets.
// cmd/goalsweep exposes the backend as "goalsweep serve" and "goalsweep
// work".
package dist
