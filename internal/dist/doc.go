// Package dist is the distributed execution backend for scenario sweeps:
// a multi-tenant job queue (coordinator) and job-agnostic workers split
// over the shard envelope that internal/scenario already treats as a
// complete wire format.
//
// A Coordinator owns a queue of jobs — each one planned sweep: the spec,
// the effective sweep parameters (seeds, window, base seed, sample
// selection), the shard count and the sweep Fingerprint derived from all
// of them — and serves a versioned resource API:
//
//	POST /v1/sweeps                    submit a sweep (spec + overrides);
//	                                   answers the job, idempotently —
//	                                   job IDs derive from the sweep
//	                                   fingerprint and partition
//	GET  /v1/sweeps                    list the queue
//	GET  /v1/sweeps/{id}               one job's status and shard states
//	GET  /v1/sweeps/{id}/events        SSE stream: every accepted shard
//	                                   envelope (replayed, then live),
//	                                   then one complete frame
//	POST /v1/sweeps/{id}/leases        pull work from one job
//	POST /v1/leases                    pull work fair-share across jobs
//	POST /v1/leases/{lease}/renew      extend a lease while computing
//	POST /v1/leases/{lease}/result     push back the shard's ShardResult
//	                                   envelope; validated (framing,
//	                                   fingerprint, shard coordinates)
//	                                   before acceptance
//	GET  /status                       progress accounting for humans and
//	                                   scripts (whole queue + flat
//	                                   default-job mirror)
//
// The pre-/v1 routes — POST /lease, /renew, /submit — remain as a compat
// shim for one release, routed to the default (first-submitted) job.
//
// Leases are granted fair-share: the coordinator round-robins across
// active jobs (lowest open shard within a job), so one tenant's
// million-scenario matrix cannot starve another's quick sweep. Leases
// expire: a worker that crashes mid-shard stops renewing its claim, and
// after the lease TTL the coordinator re-issues the same shard to the
// next worker that asks. Because sweeps are deterministic — trial seeds
// derive from scenario content, never from placement — a re-executed
// shard produces byte-identical results, so a stale submit racing a
// re-lease is accepted idempotently rather than rejected: every writer
// of a shard writes the same bytes.
//
// Jobs are resumable. With a state directory configured the coordinator
// persists each job's plan and every accepted envelope; a restart
// rescans the directory, revalidates each envelope exactly as a live
// submit would (ReadShardResult framing plus fingerprint and shard
// coordinates), and re-queues only the missing shards — completed work
// is never re-executed.
//
// A Worker pulls a lease (job-agnostic by default, pinnable to one job),
// recomputes the sweep fingerprint locally from the leased spec and its
// own registry version (refusing the lease on mismatch, which catches
// coordinator/worker version skew), runs the ordinary Matrix.Sweep over
// the shard's index range — sharing a content-addressed result Cache
// with colocated workers when configured — and submits the envelope.
// When every shard has been submitted the job's envelopes reassemble
// with MergeShards into a report byte-identical to a fresh serial run of
// the same sweep.
//
// Worker and the `goalsweep submit`/`watch` CLI verbs are built on the
// same Client, and the protocol is testable hermetically: LoopbackClient
// wraps the coordinator's http.Handler in an in-process http.Client, so
// the whole submit/lease/crash/re-lease/result cycle runs in one process
// with no sockets. cmd/goalsweep exposes the backend as "goalsweep
// serve" (one-shot batch or -service), "goalsweep work", "goalsweep
// submit" and "goalsweep watch".
package dist
