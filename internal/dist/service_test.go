package dist

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// quickSpec returns the quick builtin spec.
func quickSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// loopbackAPI builds a /v1 client over an in-process coordinator.
func loopbackAPI(c *Coordinator) *Client {
	return NewClient("http://coordinator", LoopbackClient(c))
}

// TestCoordinatorRestartResume is the resume acceptance criterion: a
// coordinator dies mid-job, a new one starts over the same state
// directory, only the missing shards re-execute (zero re-executed trials
// for the done shard, pinned via the engine's trial counter), and the
// merged report is byte-identical to a fresh serial run. Deliberately
// not parallel: it asserts deltas of the process-global engine counter.
func TestCoordinatorRestartResume(t *testing.T) {
	stateDir := t.TempDir()
	plan := builtinPlan(t, "quick", 3)

	// First incarnation: one worker completes shard 1/3, then the
	// process "crashes" (the coordinator is simply dropped).
	coord1, err := NewCoordinator(plan, CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	client1 := LoopbackClient(coord1)
	w1 := &Worker{Coordinator: "http://coordinator", Client: client1, ID: "w1", Poll: time.Millisecond}
	lease, _ := postLease(t, client1, LeaseRequest{Protocol: ProtocolVersion, Worker: "w1"})
	if lease.Status != StatusLease || lease.Shard.Index != 1 {
		t.Fatalf("leased %+v, want shard 1/3", lease)
	}
	sr, err := w1.runShard(lease)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.submit(context.Background(), lease.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Second incarnation over the same directory: shard 1 resumes from
	// its on-disk envelope, shards 2 and 3 are still open.
	coord2, err := NewCoordinator(plan, CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	jobs := coord2.Jobs()
	if len(jobs) != 1 || jobs[0].Resumed != 1 || jobs[0].Done != 1 || jobs[0].Pending != 2 {
		t.Fatalf("restarted coordinator jobs = %+v, want 1 job with 1 resumed / 1 done / 2 pending", jobs)
	}

	// Drain the remaining shards and count trials the engine actually
	// started: exactly the two open shards' worth (quick = 12 scenarios
	// x 1 seed over 3 shards = 4 trials per shard), zero for the
	// resumed one.
	trialCounter := obs.Default().Counter("goalsweep_engine_trials_started_total",
		"Trials handed to the batch engine.")
	trials0 := trialCounter.Value()
	w2 := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(coord2), ID: "w2", Poll: time.Millisecond}
	if n, err := w2.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("worker after restart: (%d, %v), want (2, nil)", n, err)
	}
	if got := trialCounter.Value() - trials0; got != 8 {
		t.Fatalf("engine started %d trials after restart, want 8 (resumed shard re-executed?)", got)
	}
	if got, want := mergedReport(t, coord2), serialReport(t, plan); got != want {
		t.Fatal("resumed merged report differs from fresh serial run")
	}
	// Resumed shards carry no executed accounting, so the fleet total is
	// honest-unknown rather than an undercount.
	if _, known := coord2.ExecutedTrials(); known {
		t.Fatal("executed-trial accounting claims known after a resume")
	}
}

// TestServiceRecoverState: a service coordinator restarted over its
// state directory rebuilds the whole queue — jobs, completion, merged
// results — from the persisted plans and envelopes.
func TestServiceRecoverState(t *testing.T) {
	t.Parallel()

	stateDir := t.TempDir()
	svc1, err := NewService(CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	api1 := loopbackAPI(svc1)
	created, err := api1.CreateSweep(context.Background(), SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !created.Created {
		t.Fatalf("first submission not created: %+v", created)
	}
	w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(svc1), Poll: time.Millisecond, ExitOnIdle: true}
	if n, err := w.Run(context.Background()); err != nil || n != 2 {
		t.Fatalf("worker: (%d, %v), want (2, nil)", n, err)
	}

	svc2, err := NewService(CoordinatorConfig{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	jobs := svc2.Jobs()
	if len(jobs) != 1 || !jobs[0].Complete || jobs[0].Resumed != 2 || jobs[0].ID != created.Job.ID {
		t.Fatalf("recovered jobs = %+v, want the completed job %s", jobs, created.Job.ID)
	}
	if _, _, err := svc2.JobMerged(created.Job.ID); err != nil {
		t.Fatalf("recovered job not mergeable: %v", err)
	}
	// Resubmitting the same sweep to the recovered service is idempotent.
	again, err := loopbackAPI(svc2).CreateSweep(context.Background(), SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.Created || again.Job.ID != created.Job.ID {
		t.Fatalf("resubmission after recovery: %+v, want existing job %s", again, created.Job.ID)
	}
}

// TestFairShareLeasing pins the multi-tenant grant order: with two
// active jobs, job-agnostic leases alternate between them instead of
// draining the first job before touching the second.
func TestFairShareLeasing(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	api := loopbackAPI(svc)
	ctx := context.Background()
	// Two sweeps with distinct fingerprints (the seeds override) and two
	// shards each.
	a, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Job.ID == b.Job.ID {
		t.Fatalf("expected two distinct jobs, got %s twice", a.Job.ID)
	}

	var grants []string
	for i := 0; i < 4; i++ {
		lease, err := api.Lease(ctx, "", LeaseRequest{Worker: "w"})
		if err != nil {
			t.Fatal(err)
		}
		if lease.Status != StatusLease {
			t.Fatalf("grant %d answered %q, want a lease", i, lease.Status)
		}
		grants = append(grants, lease.Job+"#"+strconv.Itoa(lease.Shard.Index))
	}
	want := []string{a.Job.ID + "#1", b.Job.ID + "#1", a.Job.ID + "#2", b.Job.ID + "#2"}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grant order %v, want interleaved %v", grants, want)
		}
	}
	// Every shard is leased: the next ask waits.
	if lease, err := api.Lease(ctx, "", LeaseRequest{Worker: "w"}); err != nil || lease.Status != StatusWait {
		t.Fatalf("fifth ask = (%+v, %v), want wait", lease, err)
	}
}

// TestTwoConcurrentJobsByteIdentical is the multi-tenant acceptance
// criterion: two jobs on one coordinator, drained by a shared fleet,
// each merge byte-identical to a fresh serial run of their spec.
func TestTwoConcurrentJobsByteIdentical(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	api := loopbackAPI(svc)
	ctx := context.Background()
	a, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 3, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(svc),
				ID: "w" + strconv.Itoa(i), Poll: time.Millisecond, ExitOnIdle: true}
			_, errs[i] = w.Run(context.Background())
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	planA := builtinPlan(t, "quick", 2)
	specB := quickSpec(t)
	planB, err := NewPlan(specB, scenario.Builtin().Version(), scenario.SweepConfig{Seeds: 2}, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   string
		plan Plan
	}{{a.Job.ID, planA}, {b.Job.ID, planB}} {
		stats, sum, err := svc.JobMerged(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := marshalReport(t, stats, sum), serialReport(t, tc.plan); got != want {
			t.Fatalf("job %s merged report differs from fresh serial run", tc.id)
		}
	}
}

// TestSweepEventsStream drives the SSE surface through the loopback
// client: a subscriber collects every shard envelope plus the complete
// frame, and the envelopes merge byte-identically to a serial run. A
// second subscription after completion replays the whole stream.
func TestSweepEventsStream(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	api := loopbackAPI(svc)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	created, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobID := created.Job.ID

	// The worker drains the job concurrently; the subscription completes
	// when the job does (the loopback transport delivers the buffered
	// stream once the handler returns).
	var wg sync.WaitGroup
	wg.Add(1)
	var workerErr error
	go func() {
		defer wg.Done()
		w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(svc),
			Poll: time.Millisecond, ExitOnIdle: true}
		_, workerErr = w.Run(ctx)
	}()

	collect := func() (shards []*scenario.ShardResult, complete *CompleteEvent) {
		t.Helper()
		err := api.Events(ctx, jobID, func(ev SweepEvent) error {
			switch ev.Type {
			case EventShard:
				sr, err := scenario.ReadShardResult(bytes.NewReader(ev.Data))
				if err != nil {
					return err
				}
				shards = append(shards, sr)
			case EventComplete:
				var ce CompleteEvent
				if err := decodeJSONStrict(ev.Data, &ce); err != nil {
					return err
				}
				complete = &ce
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return shards, complete
	}

	shards, complete := collect()
	wg.Wait()
	if workerErr != nil {
		t.Fatal(workerErr)
	}
	if len(shards) != 2 || complete == nil || complete.ID != jobID || complete.Shards != 2 {
		t.Fatalf("stream delivered %d shards, complete=%+v; want 2 shards + complete", len(shards), complete)
	}
	stats, sum, err := scenario.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalReport(t, stats, sum), serialReport(t, builtinPlan(t, "quick", 2)); got != want {
		t.Fatal("streamed envelopes merge differently from a fresh serial run")
	}

	// Replay: subscribing to the completed job delivers the whole stream
	// again, in shard-index order.
	replayed, complete2 := collect()
	if len(replayed) != 2 || complete2 == nil {
		t.Fatalf("replay delivered %d shards, complete=%v; want 2 + complete", len(replayed), complete2 != nil)
	}
	for i, sr := range replayed {
		if sr.Shard.Index != i+1 {
			t.Fatalf("replay order wrong: frame %d carries shard %d", i, sr.Shard.Index)
		}
	}
}

// TestSubmitSweepIdempotent: resubmitting an identical sweep returns the
// existing job instead of forking a duplicate.
func TestSubmitSweepIdempotent(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	api := loopbackAPI(svc)
	ctx := context.Background()
	first, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Created || second.Created || first.Job.ID != second.Job.ID {
		t.Fatalf("idempotency broken: first %+v, second %+v", first, second)
	}
	jobs, err := api.Sweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("queue holds %d jobs after a resubmission, want 1", len(jobs))
	}
	// A different partition of the same sweep is a different job.
	third, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Created || third.Job.ID == first.Job.ID {
		t.Fatalf("3-shard resubmission not a new job: %+v", third)
	}
}

// TestAutoShards pins the -shards auto sizing: a few shards per known
// worker, widened when observed shard latency exceeds the target,
// clamped to the cap and the job's scenario count.
func TestAutoShards(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	if got := svc.autoShardsLocked(1000); got != autoShardPerWorker {
		t.Errorf("no workers, no history: %d shards, want %d", got, autoShardPerWorker)
	}
	svc.workers["a"] = &workerInfo{}
	svc.workers["b"] = &workerInfo{}
	if got := svc.autoShardsLocked(1000); got != 2*autoShardPerWorker {
		t.Errorf("two workers: %d shards, want %d", got, 2*autoShardPerWorker)
	}
	// Observed shards averaging 60s against the 10s target widen the
	// partition 6x.
	svc.shardLatSum, svc.shardLatN = 120, 2
	if got := svc.autoShardsLocked(1000); got != 48 {
		t.Errorf("60s mean latency: %d shards, want 48", got)
	}
	// Never more shards than scenarios, never more than the cap.
	if got := svc.autoShardsLocked(12); got != 12 {
		t.Errorf("12-scenario job: %d shards, want 12", got)
	}
	svc.shardLatSum = 1e6
	if got := svc.autoShardsLocked(100000); got != autoShardMax {
		t.Errorf("huge latency: %d shards, want the %d cap", got, autoShardMax)
	}
	svc.mu.Unlock()

	// Through the API: Shards 0 means auto.
	auto, err := loopbackAPI(svc).CreateSweep(context.Background(), SweepRequest{Spec: quickSpec(t), Shards: 0, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Job.Shards != 12 {
		t.Fatalf("auto-sharded quick sweep got %d shards, want 12 (scenario clamp)", auto.Job.Shards)
	}
}

// TestLegacyAndV1Surfaces pins both wire surfaces against one
// coordinator: the legacy query-param routes and the /v1 resource
// routes interoperate on the same job, shard by shard.
func TestLegacyAndV1Surfaces(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "quick", 2)
	coord, err := NewCoordinator(plan, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)
	api := loopbackAPI(coord)
	ctx := context.Background()
	w := &Worker{Coordinator: "http://coordinator", Client: client, Poll: time.Millisecond}

	// Shard 1 over the legacy surface.
	legacyLease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "legacy"})
	if legacyLease.Status != StatusLease || legacyLease.Shard.Index != 1 {
		t.Fatalf("legacy lease %+v, want shard 1/2", legacyLease)
	}
	if rr, _ := postRenew(t, client, legacyLease.LeaseID); rr == nil || !rr.Renewed {
		t.Fatalf("legacy renew refused: %+v", rr)
	}

	// Shard 2 over /v1.
	v1Lease, err := api.Lease(ctx, "", LeaseRequest{Worker: "modern"})
	if err != nil {
		t.Fatal(err)
	}
	if v1Lease.Status != StatusLease || v1Lease.Shard.Index != 2 || v1Lease.Job != JobID(plan) {
		t.Fatalf("v1 lease %+v, want shard 2/2 of job %s", v1Lease, JobID(plan))
	}
	if rr, err := api.Renew(ctx, v1Lease.LeaseID); err != nil || !rr.Renewed {
		t.Fatalf("v1 renew = (%+v, %v), want renewed", rr, err)
	}

	// Legacy submit for shard 1 (the Worker helper's legacy path is
	// gone, so post the envelope raw).
	sr1, err := w.runShard(legacyLease)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sr1.Write(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://coordinator/submit?lease="+legacyLease.LeaseID, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("legacy submit answered %d", resp.StatusCode)
	}

	// v1 result for shard 2.
	sr2, err := w.runShard(v1Lease)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := api.SubmitResult(ctx, v1Lease.LeaseID, sr2, int64(sr2.Summary.ExecutedTrials), sr2.Mallocs)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || !ack.Done {
		t.Fatalf("v1 result ack %+v, want accepted and done", ack)
	}

	// Both surfaces agree the job is complete.
	if st := getStatus(t, client); !st.Complete || len(st.Jobs) != 1 || !st.Jobs[0].Complete {
		t.Fatalf("status after mixed-surface drain: %+v", st)
	}
	js, err := api.Sweep(ctx, JobID(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !js.Complete || js.Done != 2 {
		t.Fatalf("GET /v1/sweeps/{id} = %+v, want complete", js)
	}
	if _, err := api.Sweep(ctx, "sw-nope-1"); err == nil {
		t.Fatal("unknown sweep ID did not 404")
	}
	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("mixed-surface merged report differs from fresh serial run")
	}
	// A sealed batch coordinator refuses new sweeps but answers the
	// existing one idempotently.
	if _, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 5}); err == nil {
		t.Fatal("sealed coordinator admitted a new sweep")
	}
	same, err := api.CreateSweep(ctx, SweepRequest{Spec: quickSpec(t), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if same.Created || same.Job.ID != JobID(plan) {
		t.Fatalf("sealed idempotent resubmission = %+v", same)
	}
}
