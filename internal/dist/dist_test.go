package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// fakeClock is an injectable coordinator clock for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// builtinPlan plans a distributed sweep of the named builtin spec.
func builtinPlan(t *testing.T, name string, shards int) Plan {
	t.Helper()
	spec, err := scenario.BuiltinSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(spec, scenario.Builtin().Version(), scenario.SweepConfig{}, shards, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// serialReport runs the plan's sweep serially in-process and marshals
// stats plus summary — the byte-identity reference for merged output.
func serialReport(t *testing.T, plan Plan) string {
	t.Helper()
	m, err := scenario.NewMatrix(plan.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var stats []*scenario.Stats
	sum, err := m.Sweep(plan.Selection(m), scenario.SweepConfig{
		Seeds:    plan.Seeds,
		Window:   plan.Window,
		BaseSeed: plan.BaseSeed,
		OnStats:  func(st *scenario.Stats) error { stats = append(stats, st); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return marshalReport(t, stats, sum)
}

func marshalReport(t *testing.T, stats []*scenario.Stats, sum *scenario.Summary) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Stats   []*scenario.Stats
		Summary *scenario.Summary
	}{stats, sum})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mergedReport(t *testing.T, coord *Coordinator) string {
	t.Helper()
	stats, sum, err := coord.Merged()
	if err != nil {
		t.Fatal(err)
	}
	return marshalReport(t, stats, sum)
}

// postLease sends one raw lease request through the loopback client.
func postLease(t *testing.T, client *http.Client, req LeaseRequest) (*LeaseResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://coordinator/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var lease LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	return &lease, resp
}

// TestDistributedByteIdentical is the tentpole acceptance criterion: a
// coordinator plus two concurrent workers sweeping the 288-scenario
// builtin matrix over the loopback protocol produce a merged report
// byte-identical to a fresh serial run.
func TestDistributedByteIdentical(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "default", 3)
	coord, err := NewCoordinator(plan, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	done := make([]int, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{
				Coordinator: "http://coordinator",
				Client:      client,
				ID:          fmt.Sprintf("w%d", i),
				Poll:        time.Millisecond,
			}
			done[i], errs[i] = w.Run(context.Background())
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if done[0]+done[1] != 3 {
		t.Fatalf("workers completed %d+%d shards, want 3 total", done[0], done[1])
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Both workers exited through StatusDone, so the coordinator is
	// already drained: safe to tear the listener down.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := coord.WaitDrained(drainCtx); err != nil {
		t.Fatalf("workers exited but coordinator not drained: %v", err)
	}
	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("distributed merged report differs from fresh serial run")
	}
	if n := coord.Workers(); n != 2 {
		t.Fatalf("coordinator saw %d workers, want 2", n)
	}
	// Fresh run: the fleet reported executing every trial (default spec:
	// 288 scenarios x 2 seeds), so a throughput artifact would be honest.
	if executed, known := coord.ExecutedTrials(); !known || executed != 576 {
		t.Fatalf("fleet executed-trial accounting = (%d, %v), want (576, true)", executed, known)
	}
}

// TestCrashedWorkerReLease pins the retry path: a worker leases a shard
// and vanishes; after the lease TTL the coordinator re-issues the shard,
// a healthy worker drains the sweep, and the merged report is still
// byte-identical to a serial run. A straggler submit under the dead lease
// is then acknowledged idempotently.
func TestCrashedWorkerReLease(t *testing.T) {
	t.Parallel()

	clock := newFakeClock()
	plan := builtinPlan(t, "default", 3)
	coord, err := NewCoordinator(plan, CoordinatorConfig{LeaseTTL: time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)

	// The doomed worker takes shard 1/3 and never comes back.
	dead, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "doomed"})
	if dead.Status != StatusLease || dead.Shard.Index != 1 {
		t.Fatalf("doomed worker leased %+v, want shard 1/3", dead)
	}

	// Before the TTL passes, the shard must NOT be re-issued: a healthy
	// worker gets shards 2 and 3, then is told to wait.
	w := &Worker{Coordinator: "http://coordinator", Client: client, ID: "healthy", Poll: time.Millisecond}
	for _, want := range []int{2, 3} {
		lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "healthy"})
		if lease.Status != StatusLease || lease.Shard.Index != want {
			t.Fatalf("healthy worker leased %+v, want shard %d/3", lease, want)
		}
		sr, err := w.runShard(lease)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.submit(context.Background(), lease.LeaseID, sr, 1, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "healthy"}); lease.Status != StatusWait {
		t.Fatalf("live lease was re-issued before its TTL: %+v", lease)
	}

	// Past the TTL the shard comes back, and the healthy worker finishes
	// the sweep.
	clock.Advance(time.Minute + time.Second)
	n, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("healthy worker completed %d shards after re-lease, want 1", n)
	}
	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("merged report after crash/re-lease differs from fresh serial run")
	}

	// The doomed worker finally finishes and submits under its expired
	// lease: deterministic bytes, so the coordinator just acknowledges.
	sr, err := w.runShard(dead)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.submit(context.Background(), dead.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatalf("straggler submit under expired lease rejected: %v", err)
	}
	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("straggler resubmission changed the merged report")
	}
	// Only the worker whose envelopes were accepted counts as a
	// submitter — the doomed worker polled but produced nothing.
	if n, _ := coord.Submitters(); n != 1 {
		t.Fatalf("coordinator counted %d submitters, want 1 (the healthy worker)", n)
	}
	if n := coord.Workers(); n != 2 {
		t.Fatalf("coordinator saw %d workers, want 2 (doomed + healthy)", n)
	}
}

// TestStragglerSubmitBeforeReLease: an expired lease whose shard nobody
// re-claimed yet still lands its result.
func TestStragglerSubmitBeforeReLease(t *testing.T) {
	t.Parallel()

	clock := newFakeClock()
	plan := builtinPlan(t, "quick", 1)
	coord, err := NewCoordinator(plan, CoordinatorConfig{LeaseTTL: time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)
	w := &Worker{Coordinator: "http://coordinator", Client: client, Poll: time.Millisecond}
	lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "slow"})
	clock.Advance(2 * time.Minute)
	sr, err := w.runShard(lease)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.submit(context.Background(), lease.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatalf("submit under expired-but-unreclaimed lease rejected: %v", err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// postRenew sends one raw renew request through the loopback client.
func postRenew(t *testing.T, client *http.Client, leaseID string) (*RenewResponse, *http.Response) {
	t.Helper()
	resp, err := client.Post("http://coordinator/renew?lease="+leaseID, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var rr RenewResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return &rr, resp
}

// TestLeaseRenewal pins the renewal protocol: a renewed lease is not
// re-issued past its original TTL (slow shards are not treated as
// crashes), a lapsed-then-re-issued lease refuses further renewals, and
// a submitted shard's lease refuses them too.
func TestLeaseRenewal(t *testing.T) {
	t.Parallel()

	clock := newFakeClock()
	plan := builtinPlan(t, "quick", 1)
	coord, err := NewCoordinator(plan, CoordinatorConfig{LeaseTTL: time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)
	w := &Worker{Coordinator: "http://coordinator", Client: client, Poll: time.Millisecond}

	slow, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "slow"})
	if slow.Status != StatusLease || slow.TTLMs != time.Minute.Milliseconds() {
		t.Fatalf("lease response %+v", slow)
	}

	// Renew at t=50s: the lease now runs to t=110s.
	clock.Advance(50 * time.Second)
	if rr, _ := postRenew(t, client, slow.LeaseID); rr == nil || !rr.Renewed {
		t.Fatalf("live lease renewal refused: %+v", rr)
	}
	// At t=100s — past the original expiry, inside the renewed one — the
	// shard must NOT be re-issued.
	clock.Advance(50 * time.Second)
	if lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "vulture"}); lease.Status != StatusWait {
		t.Fatalf("renewed lease was re-issued: %+v", lease)
	}
	// At t=120s the renewed lease has lapsed: re-issued, and the old
	// lease can no longer renew.
	clock.Advance(20 * time.Second)
	release, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "vulture"})
	if release.Status != StatusLease || release.Shard.Index != 1 {
		t.Fatalf("lapsed lease not re-issued: %+v", release)
	}
	if rr, _ := postRenew(t, client, slow.LeaseID); rr == nil || rr.Renewed {
		t.Fatalf("superseded lease renewed: %+v", rr)
	}

	// A submitted shard's lease refuses renewal, and unknown leases 404.
	sr, err := w.runShard(release)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.submit(context.Background(), release.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rr, _ := postRenew(t, client, release.LeaseID); rr == nil || rr.Renewed {
		t.Fatalf("completed shard's lease renewed: %+v", rr)
	}
	if rr, resp := postRenew(t, client, "lease-999"); rr != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown lease renewal answered %d, want 404", resp.StatusCode)
	}
}

// TestSampledPlanDistributes checks the sample selection survives the
// plan round trip: a distributed sweep of a sampled selection matches the
// serial sampled sweep.
func TestSampledPlanDistributes(t *testing.T) {
	t.Parallel()

	spec, err := scenario.BuiltinSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(spec, scenario.Builtin().Version(), scenario.SweepConfig{}, 2, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(plan, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(coord), Poll: time.Millisecond}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := mergedReport(t, coord), serialReport(t, plan); got != want {
		t.Fatal("distributed sampled sweep differs from serial sampled run")
	}
}

// TestSharedCacheAcrossWorkers: two workers pointed at one store — the
// second sweep of the same scenarios executes zero trials and the output
// is unchanged.
func TestSharedCacheAcrossWorkers(t *testing.T) {
	t.Parallel()

	dir := t.TempDir()
	cache, err := scenario.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Coordinator, string) {
		plan := builtinPlan(t, "quick", 2)
		coord, err := NewCoordinator(plan, CoordinatorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(coord), Cache: cache,
			Poll: time.Millisecond, Events: obs.NewLogger(&log, obs.LevelDebug)}
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return coord, log.String()
	}
	cold, coldLog := run()
	warm, warmLog := run()
	if got, want := mergedReport(t, warm), mergedReport(t, cold); got != want {
		t.Fatal("warm-cache distributed run differs from cold run")
	}
	// The quick spec is 12 scenarios over 2 shards: the cold run executes
	// 6 trials per shard, the warm run serves every scenario from the
	// shared store and executes none. The worker's shard.done events
	// carry that accounting.
	if strings.Count(coldLog, "event=shard.done") != 2 || strings.Count(coldLog, "executed=6") != 2 {
		t.Fatalf("cold run accounting wrong:\n%s", coldLog)
	}
	if strings.Count(warmLog, "executed=0") != 2 {
		t.Fatalf("warm run did not serve from the shared cache:\n%s", warmLog)
	}
	// The coordinator's fleet accounting sees the same split, which is
	// what gates honest -bench artifacts: cold executed everything, warm
	// executed nothing.
	if executed, known := cold.ExecutedTrials(); !known || executed != 12 {
		t.Fatalf("cold fleet accounting = (%d, %v), want (12, true)", executed, known)
	}
	if executed, known := warm.ExecutedTrials(); !known || executed != 0 {
		t.Fatalf("warm fleet accounting = (%d, %v), want (0, true)", executed, known)
	}
}

// TestSubmitValidation pins the coordinator's envelope checks: unknown
// leases, foreign fingerprints and mismatched shard coordinates are
// refused before anything reaches MergeShards.
func TestSubmitValidation(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "quick", 2)
	coord, err := NewCoordinator(plan, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)
	w := &Worker{Coordinator: "http://coordinator", Client: client, Poll: time.Millisecond}
	lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	sr, err := w.runShard(lease)
	if err != nil {
		t.Fatal(err)
	}

	submit := func(leaseID string, sr *scenario.ShardResult) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		if err := sr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post("http://coordinator/submit?lease="+leaseID, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := submit("lease-999", sr); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown lease answered %d, want 404", resp.StatusCode)
	}
	tampered := *sr
	tampered.Fingerprint = "deadbeefdeadbeef"
	if resp := submit(lease.LeaseID, &tampered); resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign fingerprint answered %d, want 409", resp.StatusCode)
	}
	wrongShard := *sr
	wrongShard.Shard = scenario.Shard{Index: 2, Count: 2}
	if resp := submit(lease.LeaseID, &wrongShard); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched shard coordinates answered %d, want 409", resp.StatusCode)
	}
	if resp := submit(lease.LeaseID, sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid submit answered %d", resp.StatusCode)
	}
}

// TestLeaseProtocolVersion: a worker speaking another protocol version is
// turned away at the door.
func TestLeaseProtocolVersion(t *testing.T) {
	t.Parallel()

	coord, err := NewCoordinator(builtinPlan(t, "quick", 1), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lease, resp := postLease(t, LoopbackClient(coord), LeaseRequest{Protocol: 99, Worker: "future"})
	if lease != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("protocol 99 lease answered %d, want 400", resp.StatusCode)
	}
}

// TestWorkerRefusesSkewedPlan: the worker recomputes the fingerprint
// locally and refuses a plan whose fingerprint disagrees — the
// coordinator/worker version-skew guard.
func TestWorkerRefusesSkewedPlan(t *testing.T) {
	t.Parallel()

	plan := builtinPlan(t, "quick", 1)
	plan.Fingerprint = "0123456789abcdef" // a different build's digest
	w := &Worker{}
	_, err := w.runShard(&LeaseResponse{
		Protocol: ProtocolVersion,
		Status:   StatusLease,
		LeaseID:  "lease-1",
		Shard:    scenario.Shard{Index: 1, Count: 1},
		Plan:     &plan,
	})
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("skewed plan accepted: %v", err)
	}
}

// TestStatusEndpoint tracks a shard through pending -> leased -> done.
func TestStatusEndpoint(t *testing.T) {
	t.Parallel()

	coord, err := NewCoordinator(builtinPlan(t, "quick", 2), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)
	status := func() StatusResponse {
		t.Helper()
		resp, err := client.Get("http://coordinator/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := status(); st.Pending != 2 || st.Done != 0 || st.Complete {
		t.Fatalf("initial status %+v", st)
	}
	w := &Worker{Coordinator: "http://coordinator", Client: client, Poll: time.Millisecond}
	lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if st := status(); st.Pending != 1 || st.Leased != 1 || st.Workers != 1 {
		t.Fatalf("status after lease %+v", st)
	}
	sr, err := w.runShard(lease)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.submit(context.Background(), lease.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st := status(); st.Done != 1 || st.Complete {
		t.Fatalf("status after one submit %+v", st)
	}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := status(); st.Done != 2 || !st.Complete {
		t.Fatalf("final status %+v", st)
	}
}

// TestMergedRefusesIncomplete: asking for the merged report before every
// shard landed is an error naming the missing count.
func TestMergedRefusesIncomplete(t *testing.T) {
	t.Parallel()

	coord, err := NewCoordinator(builtinPlan(t, "quick", 3), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.Merged(); err == nil || !strings.Contains(err.Error(), "3 of 3") {
		t.Fatalf("incomplete merge: %v", err)
	}
}

// TestNewPlanValidates rejects nonsense shard counts and bad specs.
func TestNewPlanValidates(t *testing.T) {
	t.Parallel()

	spec, err := scenario.BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(spec, "v", scenario.SweepConfig{}, 0, 0, 0); err == nil {
		t.Fatal("0-shard plan accepted")
	}
	if _, err := NewPlan(&scenario.Spec{}, "v", scenario.SweepConfig{}, 1, 0, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// Overrides flow into the effective parameters and the fingerprint.
	a, err := NewPlan(spec, "v", scenario.SweepConfig{}, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec, "v", scenario.SweepConfig{Seeds: 7}, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("seeds override did not change the plan fingerprint")
	}
	if b.Seeds != 7 {
		t.Fatalf("plan seeds %d, want 7", b.Seeds)
	}
}
