package dist

import (
	"fmt"

	"repro/internal/scenario"
)

// ProtocolVersion versions the lease/submit wire protocol; both sides
// reject peers speaking any other version, so a mixed deployment fails
// loudly instead of mis-partitioning a sweep.
const ProtocolVersion = 1

// Plan is everything a worker needs to reproduce one sweep's result
// stream: the spec, the effective execution parameters, the sample
// selection, the shard count, and the Fingerprint derived from all of
// them. The coordinator computes the plan once; workers recompute the
// fingerprint locally from the leased spec and their own registry version
// and refuse mismatches, so version skew between coordinator and worker
// binaries cannot silently corrupt a merged report.
type Plan struct {
	Spec        *scenario.Spec `json:"spec"`
	Shards      int            `json:"shards"`
	Seeds       int            `json:"seeds"`
	Window      int            `json:"window"`
	BaseSeed    uint64         `json:"baseSeed"`
	SampleN     int            `json:"sampleN,omitempty"`
	SampleSeed  uint64         `json:"sampleSeed,omitempty"`
	Fingerprint string         `json:"fingerprint"`
}

// NewPlan resolves a sweep into its distributed execution plan: effective
// parameters come from the config against the spec's defaults (exactly as
// a local sweep would resolve them), and the fingerprint is computed under
// the given registry version.
func NewPlan(spec *scenario.Spec, registryVersion string, cfg scenario.SweepConfig,
	shards, sampleN int, sampleSeed uint64) (Plan, error) {
	if err := spec.Validate(); err != nil {
		return Plan{}, err
	}
	if shards < 1 {
		return Plan{}, fmt.Errorf("dist: shard count %d < 1", shards)
	}
	seeds, window, base := cfg.Effective(spec)
	if sampleN <= 0 {
		sampleN, sampleSeed = 0, 0
	}
	return Plan{
		Spec:        spec,
		Shards:      shards,
		Seeds:       seeds,
		Window:      window,
		BaseSeed:    base,
		SampleN:     sampleN,
		SampleSeed:  sampleSeed,
		Fingerprint: scenario.Fingerprint(spec, registryVersion, seeds, window, base, sampleN, sampleSeed),
	}, nil
}

// Validate checks the plan's structural well-formedness on receipt.
func (p *Plan) Validate() error {
	if p.Spec == nil {
		return fmt.Errorf("dist: plan has no spec")
	}
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.Shards < 1 {
		return fmt.Errorf("dist: plan shard count %d < 1", p.Shards)
	}
	if p.Fingerprint == "" {
		return fmt.Errorf("dist: plan has no fingerprint")
	}
	return nil
}

// Selection materializes the plan's scenario selection over m: the sample
// when one is planned, otherwise nil (the full enumeration).
func (p *Plan) Selection(m *scenario.Matrix) []int64 {
	if p.SampleN > 0 {
		return m.Sample(p.SampleN, p.SampleSeed)
	}
	return nil
}

// Lease response statuses.
const (
	// StatusLease carries a work unit: run the shard, submit the envelope.
	StatusLease = "lease"
	// StatusWait means every remaining shard is leased to someone else;
	// poll again — a lease may yet expire.
	StatusWait = "wait"
	// StatusDone means there is no work left and none can appear: the
	// queue is sealed (batch mode) and every job is complete, or the
	// asked-for job is complete. The worker can exit.
	StatusDone = "done"
	// StatusIdle means every job in the queue is complete but the queue
	// is still accepting submissions (service mode): a worker may poll on
	// or exit, its choice. The legacy /lease route never answers idle —
	// it maps to wait for pre-/v1 workers.
	StatusIdle = "idle"
)

// LeaseRequest is a worker's ask for work.
type LeaseRequest struct {
	Protocol int    `json:"protocol"`
	Worker   string `json:"worker"`
	Parallel int    `json:"parallel,omitempty"`
}

// LeaseResponse answers a lease request; Status selects which fields are
// meaningful.
type LeaseResponse struct {
	Protocol int    `json:"protocol"`
	Status   string `json:"status"`
	LeaseID  string `json:"leaseID,omitempty"`
	// Job names the job the lease belongs to (StatusLease only). Legacy
	// clients ignore the field; /v1 clients use it for accounting and
	// event streams.
	Job   string         `json:"job,omitempty"`
	Shard scenario.Shard `json:"shard"`
	Plan  *Plan          `json:"plan,omitempty"`
	// TTLMs is the lease's lifetime in milliseconds (StatusLease only):
	// the worker must submit or renew within it, and renews at a
	// fraction of it while computing.
	TTLMs int64 `json:"ttlMs,omitempty"`
}

// RenewResponse answers a lease renewal. Renewed is false when the lease
// is no longer current — its shard was already submitted, or it expired
// and was re-issued to another worker. A worker whose renewal fails keeps
// computing: its eventual submit is still accepted (idempotently if the
// re-leased worker finished first).
type RenewResponse struct {
	Renewed bool  `json:"renewed"`
	TTLMs   int64 `json:"ttlMs,omitempty"`
}

// SubmitResponse acknowledges an accepted envelope.
type SubmitResponse struct {
	Accepted bool `json:"accepted"`
	// Done reports whether this submission completed the envelope's job.
	Done bool `json:"done"`
}

// SweepRequest is the POST /v1/sweeps body: the same spec JSON the local
// CLI takes, plus the execution overrides a -spec sweep would pass as
// flags. Zero overrides mean the spec's defaults; Shards 0 asks the
// coordinator to size the partition itself from worker count and the
// observed per-shard latency (-shards auto).
type SweepRequest struct {
	Protocol   int            `json:"protocol"`
	Spec       *scenario.Spec `json:"spec"`
	Shards     int            `json:"shards,omitempty"`
	Seeds      int            `json:"seeds,omitempty"`
	Window     int            `json:"window,omitempty"`
	BaseSeed   uint64         `json:"baseSeed,omitempty"`
	SampleN    int            `json:"sampleN,omitempty"`
	SampleSeed uint64         `json:"sampleSeed,omitempty"`
}

// SweepResponse answers a sweep submission. Job IDs are derived from the
// sweep fingerprint and shard count, so resubmitting the same sweep
// returns the existing job (Created false) instead of forking a duplicate.
type SweepResponse struct {
	Protocol int       `json:"protocol"`
	Created  bool      `json:"created"`
	Job      JobStatus `json:"job"`
}

// JobStatus is one job's progress accounting.
type JobStatus struct {
	ID          string `json:"id"`
	Spec        string `json:"spec"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Done        int    `json:"done"`
	Leased      int    `json:"leased"`
	Pending     int    `json:"pending"`
	// Resumed counts shards restored from on-disk envelopes when the
	// coordinator (re)started, rather than executed under this process.
	Resumed  int  `json:"resumed,omitempty"`
	Complete bool `json:"complete"`
	// Progress is Done/Shards in [0,1].
	Progress float64 `json:"progress"`
	// ShardStates holds one entry per shard, in shard-index order; the
	// job list (GET /v1/sweeps) omits it, the single-job view carries it.
	ShardStates []ShardStatus `json:"shardStates,omitempty"`
}

// StatusResponse is the coordinator's progress accounting. Jobs carries
// the whole queue; the flat single-sweep fields mirror the default
// (first-submitted) job so pre-/v1 scripts keep reading the same shape
// they always did.
type StatusResponse struct {
	Protocol    int    `json:"protocol"`
	Spec        string `json:"spec"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Done        int    `json:"done"`
	Leased      int    `json:"leased"`
	Pending     int    `json:"pending"`
	Workers     int    `json:"workers"`
	// Complete reports whether every job in the queue is complete (and at
	// least one exists) — for a batch coordinator, exactly the old
	// single-sweep meaning.
	Complete bool `json:"complete"`
	// Sealed reports batch mode: the queue accepts no further jobs and
	// workers are told done (not idle) once everything is complete.
	Sealed bool `json:"sealed"`

	// Progress is Done/Shards in [0,1] for the default job.
	Progress float64 `json:"progress"`
	// Jobs holds one entry per job in submission order, each with its
	// shard states.
	Jobs []JobStatus `json:"jobs"`
	// ShardStates holds one entry per default-job shard, in shard-index
	// order.
	ShardStates []ShardStatus `json:"shardStates,omitempty"`
	// WorkerStates holds one entry per known worker, sorted by ID.
	WorkerStates []WorkerStatus `json:"workerStates,omitempty"`
}

// ShardStatus is one shard's live state.
type ShardStatus struct {
	Shard string `json:"shard"` // "i/n"
	State string `json:"state"` // "pending", "leased" or "done"
	// Lease is the shard's current (or, when done, final) lease ID.
	Lease string `json:"lease,omitempty"`
	// Worker holds the lease's worker ID.
	Worker string `json:"worker,omitempty"`
}

// WorkerStatus is one worker's live state as the coordinator sees it.
type WorkerStatus struct {
	ID       string `json:"id"`
	Parallel int    `json:"parallel,omitempty"`
	// Submitted counts envelopes accepted from this worker.
	Submitted int `json:"submitted"`
	// LastSeenMs is how long ago (milliseconds) the coordinator last
	// heard from this worker.
	LastSeenMs int64 `json:"lastSeenMs"`
}

// SSE event types on GET /v1/sweeps/{id}/events.
const (
	// EventShard carries one accepted shard envelope (the ShardResult
	// JSON, compact) in its data field; the event ID is the shard index.
	// Subscribing to a job replays every already-accepted shard first, in
	// shard-index order, then streams the rest as they land.
	EventShard = "shard"
	// EventComplete closes a job's stream: every shard has been accepted.
	// Its data is a CompleteEvent.
	EventComplete = "complete"
)

// CompleteEvent is the data payload of an EventComplete frame.
type CompleteEvent struct {
	ID     string `json:"id"`
	Spec   string `json:"spec"`
	Shards int    `json:"shards"`
}
