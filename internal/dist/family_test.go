package dist

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// familySpec returns the composed family builtin: a generated fsm
// machine space plus a stock-goal block, over 130,000 scenarios.
func familySpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.BuiltinSpec("family")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestFamilySpecEnumeratesLazily pins the scale acceptance criterion:
// the composed family builtin holds over 10^5 scenarios, and planning a
// distributed sweep over it — fingerprint, sharding, sampling — touches
// only the scenarios it needs, so it stays fast enough to sit in a unit
// test.
func TestFamilySpecEnumeratesLazily(t *testing.T) {
	t.Parallel()

	spec := familySpec(t)
	m, err := scenario.NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() < 100_000 {
		t.Fatalf("family spec enumerates %d scenarios, want >= 100000", m.Size())
	}
	// Decoding the far end of the space is O(1), not O(Size).
	first, last := m.At(0), m.At(m.Size()-1)
	if first.ID() == last.ID() {
		t.Fatal("first and last scenario share an ID")
	}
	// A sampled plan over the full space selects exactly n indices.
	plan, err := NewPlan(spec, scenario.Builtin().Version(), scenario.SweepConfig{}, 3, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Selection(m); len(got) != 24 {
		t.Fatalf("sampled selection has %d indices, want 24", len(got))
	}
}

// TestFamilySweepDistributedByteIdentical drives a sampled slice of the
// 130k-scenario family builtin through the full service path — submit,
// concurrent workers, merge — and requires the merged report to be
// byte-identical to a fresh serial run of the same selection.
func TestFamilySweepDistributedByteIdentical(t *testing.T) {
	t.Parallel()

	svc, err := NewService(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	api := loopbackAPI(svc)
	ctx := context.Background()
	const sampleN, sampleSeed = 24, 7
	created, err := api.CreateSweep(ctx, SweepRequest{
		Spec: familySpec(t), Shards: 3, SampleN: sampleN, SampleSeed: sampleSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !created.Created {
		t.Fatalf("family sweep not created: %+v", created)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{Coordinator: "http://coordinator", Client: LoopbackClient(svc),
				ID: "w" + strconv.Itoa(i), Poll: time.Millisecond, ExitOnIdle: true}
			_, errs[i] = w.Run(context.Background())
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	stats, sum, err := svc.JobMerged(created.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(familySpec(t), scenario.Builtin().Version(),
		scenario.SweepConfig{}, 3, sampleN, sampleSeed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalReport(t, stats, sum), serialReport(t, plan); got != want {
		t.Fatal("distributed family sweep differs from fresh serial run")
	}
	if sum.Scenarios != sampleN {
		t.Fatalf("merged report covers %d scenarios, want the %d sampled", sum.Scenarios, sampleN)
	}
}
