package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// JobID derives a job's identity from its plan: the sweep fingerprint
// plus the shard count (the same sweep split differently is a different
// stream of envelopes). The derivation makes POST /v1/sweeps idempotent —
// resubmitting a sweep lands on the live job — and names the on-disk
// state directory a restarted coordinator resumes from.
func JobID(plan Plan) string {
	return fmt.Sprintf("sw-%s-%d", plan.Fingerprint, plan.Shards)
}

// shardState is the coordinator's bookkeeping for one shard of one job.
// A shard can carry two live leases at once: the primary, and — when the
// primary has aged past the coordinator's speculation threshold without
// expiring — one speculative re-lease racing it. Determinism makes the
// race safe: both copies produce identical bytes and the first submit
// wins.
type shardState struct {
	done    bool
	leaseID string    // current primary lease, "" if never leased
	expires time.Time // primary lease's deadline

	specLeaseID string    // speculative straggler re-lease, "" if none
	specExpires time.Time // speculative lease's deadline
}

// job is one queued sweep: a plan, its shard states, the collected
// envelopes, and the per-job accounting that used to be the whole
// coordinator. All fields are guarded by the owning Coordinator's mutex.
type job struct {
	id   string
	plan Plan

	shards       []shardState                  // index i-1 holds shard i/n
	results      map[int]*scenario.ShardResult // 1-based shard index -> envelope
	submitters   map[string]int                // workers whose envelopes were accepted -> parallelism
	executed     int64                         // trials the fleet reported actually executing
	execKnown    bool                          // every accepted submit carried an executed count
	mallocs      int64                         // worker heap allocations across executed shards
	mallocsKnown bool                          // every accepted submit carried a mallocs count
	resumed      int                           // shards restored from on-disk envelopes
	done         chan struct{}                 // closed when every shard has been accepted
	subs         []chan []byte                 // live SSE subscribers (see events.go)
}

func newJob(plan Plan) *job {
	return &job{
		id:           JobID(plan),
		plan:         plan,
		shards:       make([]shardState, plan.Shards),
		results:      make(map[int]*scenario.ShardResult),
		submitters:   make(map[string]int),
		execKnown:    true,
		mallocsKnown: true,
		done:         make(chan struct{}),
	}
}

func (j *job) complete() bool { return len(j.results) == j.plan.Shards }

// stateFile names the persisted artifact paths under one job's state
// directory.
const (
	jobPlanFile     = "job.json"
	shardFilePrefix = "shard-"
)

func (j *job) dir(stateDir string) string { return filepath.Join(stateDir, j.id) }

func shardFile(idx int) string { return fmt.Sprintf("%s%d.json", shardFilePrefix, idx) }

// persistPlanLocked writes the job's plan under the state directory so a
// restarted coordinator can rebuild the queue. Atomic (temp + rename) so
// a crash mid-write never leaves a half plan for recovery to trip on.
// An existing plan file is kept only if it still decodes to this job —
// a truncated or corrupt one (torn disk, partial copy) is rewritten, so
// one bad write can never permanently poison the job's state directory.
func (c *Coordinator) persistPlanLocked(j *job) {
	if c.stateDir == "" {
		return
	}
	dir := j.dir(c.stateDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
		return
	}
	path := filepath.Join(dir, jobPlanFile)
	if data, err := os.ReadFile(path); err == nil {
		var existing Plan
		if decodeJSONStrict(data, &existing) == nil && existing.Validate() == nil && JobID(existing) == j.id {
			return // already persisted intact by an earlier submit or run
		}
		mStateHealed.With("plan").Inc()
		c.events.Event(obs.LevelWarn, "state.heal",
			obs.String("job", j.id), obs.String("kind", "plan"),
			obs.String("detail", "corrupt plan file rewritten"))
	}
	var buf bytes.Buffer
	if err := writeJSONIndent(&buf, &j.plan); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
		return
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
	}
}

// persistShardLocked writes one accepted envelope under the job's state
// directory. Persistence failures are logged, not fatal: the job still
// completes in memory, the shard just re-executes after a restart.
func (c *Coordinator) persistShardLocked(j *job, sr *scenario.ShardResult) {
	if c.stateDir == "" {
		return
	}
	dir := j.dir(c.stateDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
		return
	}
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
		return
	}
	if err := writeFileAtomic(filepath.Join(dir, shardFile(sr.Shard.Index)), buf.Bytes()); err != nil {
		c.events.Event(obs.LevelWarn, "state.persist_fail",
			obs.String("job", j.id), obs.String("err", err.Error()))
	}
}

// resumeShardsLocked rescans a job's state directory for completed shard
// envelopes and marks the valid ones done, so a restarted coordinator
// re-queues only the missing shards. Every envelope revalidates through
// ReadShardResult plus the fingerprint and shard-coordinate checks a live
// submit would pass; anything corrupt, truncated or foreign is healed —
// the bad file is removed, the shard re-queues, and the re-executed
// envelope overwrites it — instead of being left to trip every future
// restart. Resumed shards carry no executed/mallocs counts, so the job's
// accounting turns unknown — a bench artifact over a resumed job would
// lie.
func (c *Coordinator) resumeShardsLocked(j *job) {
	if c.stateDir == "" {
		return
	}
	dir := j.dir(c.stateDir)
	for idx := 1; idx <= j.plan.Shards; idx++ {
		if j.results[idx] != nil {
			continue
		}
		path := filepath.Join(dir, shardFile(idx))
		f, err := os.Open(path)
		if err != nil {
			continue // not persisted: the shard is still open
		}
		sr, err := scenario.ReadShardResult(f)
		f.Close()
		if err != nil {
			c.healEnvelopeLocked(j, idx, path, err.Error())
			continue
		}
		if sr.Fingerprint != j.plan.Fingerprint || sr.Shard.Index != idx || sr.Shard.Count != j.plan.Shards {
			c.healEnvelopeLocked(j, idx, path, "envelope does not match the job's plan")
			continue
		}
		j.results[idx] = sr
		j.shards[idx-1].done = true
		j.resumed++
	}
	if j.resumed > 0 {
		// The executing workers' trial and allocation counts did not
		// survive the restart; report the totals as unknown rather than
		// undercounting.
		j.execKnown = false
		j.mallocsKnown = false
		c.events.Event(obs.LevelInfo, "state.resume",
			obs.String("job", j.id),
			obs.Int("resumed", j.resumed),
			obs.Int("shards", j.plan.Shards))
	}
}

// healEnvelopeLocked removes one unusable shard envelope so the shard
// re-queues cleanly: resume already treats the shard as open, and with
// the bad file gone, the re-executed worker's envelope lands in its
// place instead of fighting a corpse on every restart.
func (c *Coordinator) healEnvelopeLocked(j *job, idx int, path, reason string) {
	mStateHealed.With("envelope").Inc()
	detail := "corrupt envelope removed, shard re-queued"
	if err := os.Remove(path); err != nil {
		detail = "corrupt envelope could not be removed: " + err.Error()
	}
	c.events.Event(obs.LevelWarn, "state.heal",
		obs.String("job", j.id), obs.Int("shard", idx),
		obs.String("kind", "envelope"),
		obs.String("detail", detail),
		obs.String("err", reason))
}

// recoverJobsLocked rebuilds the queue from the state directory: every
// subdirectory with a valid plan whose derived job ID matches its name is
// resubmitted (which in turn rescans its envelopes). A directory whose
// plan is corrupt or truncated cannot be rebuilt from nothing, so its
// plan file is quarantined (renamed aside) — the next identical
// `goalsweep submit` recreates the job and re-persists a clean plan over
// the same directory, resuming whatever envelopes survived. Directory
// order is lexical, so the queue order after a restart is deterministic
// even though the original submission order is gone.
func (c *Coordinator) recoverJobsLocked() error {
	entries, err := os.ReadDir(c.stateDir)
	if err != nil {
		return fmt.Errorf("dist: scan state dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(c.stateDir, e.Name(), jobPlanFile)
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) {
				c.quarantinePlanLocked(e.Name(), path, err.Error())
			}
			continue
		}
		var plan Plan
		if err := decodeJSONStrict(data, &plan); err != nil {
			c.quarantinePlanLocked(e.Name(), path, err.Error())
			continue
		}
		if err := plan.Validate(); err != nil {
			c.quarantinePlanLocked(e.Name(), path, err.Error())
			continue
		}
		if JobID(plan) != e.Name() {
			c.quarantinePlanLocked(e.Name(), path, "directory name does not match the plan's job ID")
			continue
		}
		if _, _, err := c.submitPlanLocked(plan); err != nil {
			c.events.Event(obs.LevelWarn, "state.recover_skip",
				obs.String("dir", e.Name()), obs.String("err", err.Error()))
		}
	}
	return nil
}

// quarantinePlanLocked moves an unusable plan file aside so recovery
// stops tripping on it and a future resubmission can heal the directory.
func (c *Coordinator) quarantinePlanLocked(dir, path, reason string) {
	mStateHealed.With("plan").Inc()
	detail := "plan quarantined to " + jobPlanFile + ".corrupt"
	if err := os.Rename(path, path+".corrupt"); err != nil {
		detail = "plan could not be quarantined: " + err.Error()
	}
	c.events.Event(obs.LevelWarn, "state.heal",
		obs.String("dir", dir),
		obs.String("kind", "plan"),
		obs.String("detail", detail),
		obs.String("err", reason))
}

// ensureDir creates the state directory if it does not exist.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: create state dir: %w", err)
	}
	return nil
}

// writeFileAtomic writes data under a temp name in the target's
// directory, then renames it into place.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeJSONIndent encodes v as indented JSON — the on-disk plan format,
// matching the envelope files' human-inspectable style.
func writeJSONIndent(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// decodeJSONStrict decodes data into v, rejecting unknown fields — a
// recovered plan written by a different build should be skipped, not
// half-read.
func decodeJSONStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
