package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsAcrossWorkerCrash drives a 2-worker sweep with an injected
// worker crash through the loopback harness and asserts the /metrics
// counters and /status progress tell the incident's story: one lease
// expired and was re-issued, exactly one envelope per shard was
// accepted, the straggler's late submit was counted as a duplicate, a
// bogus-lease submit was counted as rejected, and progress reached
// 100%. Deliberately not parallel: it asserts deltas of process-global
// counters.
func TestMetricsAcrossWorkerCrash(t *testing.T) {
	clock := newFakeClock()
	plan := builtinPlan(t, "quick", 3)
	jobID := JobID(plan)
	granted0 := mLeasesGranted.With(jobID).Value()
	expired0 := mLeasesExpired.With(jobID).Value()
	accepted0 := mSubmitsAccepted.With(jobID).Value()
	duplicate0 := mSubmitsDuplicate.With(jobID).Value()
	rejectedUnknown0 := mSubmitsRejected.With("unknown_lease").Value()
	shards0 := mWorkerShards.Value()

	var events bytes.Buffer
	coord, err := NewCoordinator(plan, CoordinatorConfig{
		LeaseTTL: time.Minute,
		Now:      clock.Now,
		Events:   obs.NewLogger(&events, obs.LevelDebug),
	})
	if err != nil {
		t.Fatal(err)
	}
	client := LoopbackClient(coord)

	// Worker "doomed" takes shard 1/3 and crashes (never submits).
	dead, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "doomed", Parallel: 1})
	if dead.Status != StatusLease || dead.Shard.Index != 1 {
		t.Fatalf("doomed worker leased %+v, want shard 1/3", dead)
	}

	// Worker "healthy" drains shards 2 and 3, then mid-sweep progress is
	// visible on /status.
	w := &Worker{Coordinator: "http://coordinator", Client: client, ID: "healthy", Parallel: 1, Poll: time.Millisecond}
	for _, want := range []int{2, 3} {
		lease, _ := postLease(t, client, LeaseRequest{Protocol: ProtocolVersion, Worker: "healthy", Parallel: 1})
		if lease.Status != StatusLease || lease.Shard.Index != want {
			t.Fatalf("healthy worker leased %+v, want shard %d/3", lease, want)
		}
		sr, err := w.runShard(lease)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.submit(context.Background(), lease.LeaseID, sr, 1, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if st := getStatus(t, client); st.Progress <= 0.6 || st.Progress >= 0.7 {
		t.Fatalf("mid-sweep progress = %v, want 2/3", st.Progress)
	}

	// Past the TTL the crashed shard is re-issued and the healthy worker
	// finishes the sweep.
	clock.Advance(time.Minute + time.Second)
	if n, err := w.Run(context.Background()); err != nil || n != 1 {
		t.Fatalf("healthy worker after re-lease: (%d, %v), want (1, nil)", n, err)
	}

	// The straggler finally submits under its expired lease: acknowledged
	// idempotently, counted as a duplicate.
	sr, err := w.runShard(dead)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.submit(context.Background(), dead.LeaseID, sr, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A submit under a lease that never existed is refused and counted.
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://coordinator/submit?lease=lease-999", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus-lease submit answered %d, want 404", resp.StatusCode)
	}

	// Counter deltas: 4 grants (3 shards + 1 re-issue), 1 expiry, one
	// accepted envelope per shard, 1 duplicate, 1 rejection, 3 shards
	// executed by this process's workers (the doomed "worker" never ran
	// Worker.Run, so its straggler shard counts under runShard's caller).
	if got := mLeasesGranted.With(jobID).Value() - granted0; got != 4 {
		t.Errorf("leases granted delta = %d, want 4", got)
	}
	if got := mLeasesExpired.With(jobID).Value() - expired0; got != 1 {
		t.Errorf("leases expired (re-issued) delta = %d, want 1", got)
	}
	if got := mSubmitsAccepted.With(jobID).Value() - accepted0; got != int64(plan.Shards) {
		t.Errorf("submits accepted delta = %d, want %d (shard count)", got, plan.Shards)
	}
	if got := mSubmitsDuplicate.With(jobID).Value() - duplicate0; got != 1 {
		t.Errorf("duplicate straggler submits delta = %d, want 1", got)
	}
	if got := mSubmitsRejected.With("unknown_lease").Value() - rejectedUnknown0; got != 1 {
		t.Errorf("rejected submits delta = %d, want 1", got)
	}
	if got := mWorkerShards.Value() - shards0; got != 1 {
		t.Errorf("worker shards completed delta = %d, want 1 (only Run-driven shards count)", got)
	}

	// /status: progress reached 100%, every shard done, both workers
	// accounted with their submit counts.
	st := getStatus(t, client)
	if st.Progress != 1 || !st.Complete || st.Done != 3 {
		t.Fatalf("final status = %+v, want progress 1 / complete / 3 done", st)
	}
	for _, ss := range st.ShardStates {
		if ss.State != "done" {
			t.Errorf("shard %s state %q, want done", ss.Shard, ss.State)
		}
	}
	if len(st.WorkerStates) != 2 {
		t.Fatalf("status lists %d workers, want 2", len(st.WorkerStates))
	}
	if st.WorkerStates[0].ID != "doomed" || st.WorkerStates[1].ID != "healthy" {
		t.Fatalf("worker states not sorted by ID: %+v", st.WorkerStates)
	}
	if st.WorkerStates[1].Submitted != 3 {
		t.Errorf("healthy worker submitted %d, want 3", st.WorkerStates[1].Submitted)
	}

	// /metrics: the coordinator mux serves the Prometheus exposition with
	// families from every layer (engine and sweep ran in-process here).
	mresp, err := client.Get("http://coordinator/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics content-type %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, fam := range []string{
		"# TYPE goalsweep_engine_trials_started_total counter",
		"# TYPE goalsweep_engine_rounds_total counter",
		"# TYPE goalsweep_sweep_scenarios_total counter",
		"# TYPE goalsweep_sweep_chunk_seconds histogram",
		"# TYPE goalsweep_cache_hits_total counter",
		"# TYPE goalsweep_coord_leases_granted_total counter",
		"# TYPE goalsweep_coord_leases_expired_total counter",
		"# TYPE goalsweep_coord_submits_rejected_total counter",
		"# TYPE goalsweep_coord_worker_last_seen_timestamp_seconds gauge",
		"# TYPE goalsweep_worker_shards_completed_total counter",
		"# TYPE goalsweep_worker_compute_seconds histogram",
		`goalsweep_coord_submits_rejected_total{reason="unknown_lease"}`,
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}

	// The event log reconstructs the incident by lease ID.
	log := events.String()
	for _, want := range []string{
		"event=lease.grant", "event=lease.expire lease=lease-1",
		"event=submit.accept", "event=submit.duplicate", "event=submit.reject reason=unknown_lease",
		"event=sweep.complete",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q in:\n%s", want, log)
		}
	}
}

// getStatus fetches and decodes /status through the loopback client.
func getStatus(t *testing.T, client *http.Client) StatusResponse {
	t.Helper()
	resp, err := client.Get("http://coordinator/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
