package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/scenario"
)

// Server-sent events: GET /v1/sweeps/{id}/events streams a job's
// results shard-by-shard. A new subscriber first replays every
// already-accepted shard envelope in shard-index order, then receives
// the remaining ones as workers land them, and finally one complete
// frame, after which the stream ends. A subscriber therefore always
// observes exactly Shards shard frames plus one complete frame — enough
// to MergeShards the job client-side without a second fetch — no matter
// when it connected.
//
// Frames are published under the coordinator mutex into per-subscriber
// buffered channels sized to hold the whole job, so a slow consumer can
// never block a submit; the socket writes happen outside the lock.

// sseFrame encodes one server-sent event. data must be a single line
// (compact JSON never contains raw newlines).
func sseFrame(event, id string, data []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(data) + len(event) + len(id) + 32)
	fmt.Fprintf(&b, "event: %s\n", event)
	if id != "" {
		fmt.Fprintf(&b, "id: %s\n", id)
	}
	b.WriteString("data: ")
	b.Write(data)
	b.WriteString("\n\n")
	return b.Bytes()
}

// shardFrame encodes one accepted envelope as an EventShard frame; the
// event ID is the shard index.
func shardFrame(sr *scenario.ShardResult) ([]byte, error) {
	data, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	return sseFrame(EventShard, strconv.Itoa(sr.Shard.Index), data), nil
}

// completeFrame encodes a job's terminal EventComplete frame.
func completeFrame(j *job) []byte {
	data, _ := json.Marshal(CompleteEvent{ID: j.id, Spec: j.plan.Spec.Name, Shards: j.plan.Shards})
	return sseFrame(EventComplete, j.id, data)
}

// publishShardLocked fans one accepted envelope out to the job's live
// subscribers. Called with c.mu held.
func (c *Coordinator) publishShardLocked(j *job, sr *scenario.ShardResult) {
	if len(j.subs) == 0 {
		return
	}
	frame, err := shardFrame(sr)
	if err != nil {
		return
	}
	c.publishLocked(j, frame)
}

// publishLocked sends one frame to every live subscriber. Sends are
// non-blocking: each channel is buffered to hold the job's full frame
// count, so a send can only be dropped if a subscriber somehow consumed
// nothing while more frames than the job owns were published — which
// the replay/publish accounting rules out.
func (c *Coordinator) publishLocked(j *job, frame []byte) {
	for _, sub := range j.subs {
		select {
		case sub <- frame:
		default:
		}
	}
}

// closeSubsLocked ends every live subscription; each handler drains its
// remaining buffered frames and returns. Called with c.mu held.
func (c *Coordinator) closeSubsLocked(j *job) {
	for _, sub := range j.subs {
		close(sub)
	}
	j.subs = nil
}

// removeSub detaches one subscriber (client went away mid-stream).
func (c *Coordinator) removeSub(j *job, sub chan []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range j.subs {
		if s == sub {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// handleEvents serves GET /v1/sweeps/{id}/events.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	var replay [][]byte
	var sub chan []byte
	if ok {
		for idx := 1; idx <= j.plan.Shards; idx++ {
			sr := j.results[idx]
			if sr == nil {
				continue
			}
			frame, err := shardFrame(sr)
			if err != nil {
				continue
			}
			replay = append(replay, frame)
		}
		if j.complete() {
			replay = append(replay, completeFrame(j))
		} else {
			// Capacity covers every frame the job can still publish
			// (remaining shards + complete) — the non-blocking publish
			// relies on it.
			sub = make(chan []byte, j.plan.Shards+1)
			j.subs = append(j.subs, sub)
		}
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("dist: unknown sweep %q", id), http.StatusNotFound)
		return
	}
	if sub != nil {
		defer c.removeSub(j, sub)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, frame := range replay {
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
	flush()
	if sub == nil {
		return // job already complete: replay was the whole stream
	}
	for {
		select {
		case frame, open := <-sub:
			if !open {
				return // job completed; every frame has been delivered
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
