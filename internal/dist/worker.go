package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// workerSeq distinguishes workers created in one process (tests spawn
// several).
var workerSeq atomic.Int64

// Worker pulls shard leases from a coordinator, executes them through the
// ordinary local sweep, and submits the resulting envelopes. The zero
// value plus a Coordinator URL is a working configuration. Workers are
// job-agnostic by default: leases are pulled fair-share across every
// active job; set Job to pin one.
type Worker struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string

	// Client issues the HTTP requests; nil means http.DefaultClient. Use
	// LoopbackClient to run against an in-process coordinator.
	Client *http.Client

	// Registry resolves scenarios; nil means Builtin(). The worker
	// recomputes the plan fingerprint under this registry's version and
	// refuses leases that disagree, so a worker bound differently from
	// the coordinator cannot contribute to its sweep.
	Registry *scenario.Registry

	// Parallel bounds the local trial pool; values < 1 mean GOMAXPROCS.
	Parallel int

	// Cache, when non-nil, is the shared content-addressed result store;
	// colocated workers pointing at one directory deduplicate scenario
	// executions across shards for free (writes are atomic).
	Cache *scenario.Cache

	// ID names the worker in coordinator accounting; "" derives one from
	// the process ID.
	ID string

	// Job, when non-empty, scopes the worker to one job ID: leases come
	// from POST /v1/sweeps/{job}/leases and the worker exits when that
	// job completes, even if the coordinator has other work.
	Job string

	// ExitOnIdle makes Run return once the coordinator answers
	// StatusIdle — every queued job complete, queue still open. The
	// default (false) keeps polling, the right posture for a standing
	// fleet attached to a long-lived service.
	ExitOnIdle bool

	// Poll is the wait between lease attempts while every shard is
	// claimed elsewhere, and the base of the jittered exponential
	// backoff between failed lease/submit attempts; 0 means 500ms.
	Poll time.Duration

	// MaxBackoff caps the exponential retry backoff; 0 means 16x Poll.
	MaxBackoff time.Duration

	// Retries bounds consecutive failed lease/submit attempts before the
	// worker gives up (a coordinator that is still starting up, or a
	// transient network failure, should not kill the fleet); 0 means 20.
	// Only retryable failures are retried — transport errors, truncated
	// responses, 429 overload sheds and 5xx answers; a protocol-level
	// verdict (fingerprint conflict, version mismatch) is fatal at once.
	Retries int

	// Events, when non-nil, receives one structured event per shard
	// lifecycle transition and transport retry (see internal/obs). Nil
	// means silent.
	Events *obs.Logger

	api *Client // lazily built /v1 client
}

func (w *Worker) client() *Client {
	if w.api == nil {
		w.api = NewClient(w.Coordinator, w.Client)
	}
	return w.api
}

func (w *Worker) registry() *scenario.Registry {
	if w.Registry != nil {
		return w.Registry
	}
	return scenario.Builtin()
}

func (w *Worker) id() string {
	if w.ID == "" {
		w.ID = fmt.Sprintf("worker-%d-%d", os.Getpid(), workerSeq.Add(1))
	}
	return w.ID
}

// effectiveParallel is the pool size reported to the coordinator.
func (w *Worker) effectiveParallel() int {
	if w.Parallel > 0 {
		return w.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Run leases, executes and submits shards until the coordinator reports
// the work done or the context ends. It returns the number of shards
// this worker submitted.
func (w *Worker) Run(ctx context.Context) (int, error) {
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	retries := w.Retries
	if retries <= 0 {
		retries = 20
	}
	boff := w.newBackoff(poll)
	completed := 0
	failures := 0
	for {
		lease, err := w.lease(ctx)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return completed, ctxErr
			}
			if !w.retryableLease(err) {
				return completed, err
			}
			failures++
			mTransportRetries.Inc()
			if failures > retries {
				return completed, fmt.Errorf("dist: lease failed %d times, giving up: %w", failures, err)
			}
			wait := boff.next(RetryAfterHint(err))
			mRetryBackoff.Observe(wait.Seconds())
			w.Events.Event(obs.LevelWarn, "lease.retry",
				obs.String("worker", w.id()),
				obs.Int("attempt", failures),
				obs.Int("max", retries),
				obs.Dur("backoff", wait),
				obs.String("err", err.Error()))
			if err := sleep(ctx, wait); err != nil {
				return completed, err
			}
			continue
		}
		failures = 0
		boff.reset()
		switch lease.Status {
		case StatusDone:
			return completed, nil
		case StatusIdle:
			if w.ExitOnIdle {
				return completed, nil
			}
			mPollWaits.Inc()
			w.Events.Event(obs.LevelDebug, "lease.idle",
				obs.String("worker", w.id()),
				obs.Dur("poll", poll))
			if err := sleep(ctx, poll); err != nil {
				return completed, err
			}
		case StatusWait:
			mPollWaits.Inc()
			w.Events.Event(obs.LevelDebug, "lease.wait",
				obs.String("worker", w.id()),
				obs.Dur("poll", poll))
			if err := sleep(ctx, poll); err != nil {
				return completed, err
			}
		case StatusLease:
			stopRenew := w.startRenewer(ctx, lease)
			sr, err := w.runShard(lease)
			stopRenew()
			if err != nil {
				return completed, err
			}
			if err := w.submit(ctx, lease.LeaseID, sr, retries, poll); err != nil {
				return completed, err
			}
			completed++
			mWorkerShards.Inc()
		default:
			return completed, fmt.Errorf("dist: coordinator answered unknown lease status %q", lease.Status)
		}
	}
}

// sleep waits d or until the context ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableLease classifies a lease failure. Besides the generic
// classifier, a job-scoped worker treats 404 as transient: its job may
// simply not have been submitted yet (fleets often start before the
// first `goalsweep submit`), and the retry bound still applies.
func (w *Worker) retryableLease(err error) bool {
	if Retryable(err) {
		return true
	}
	if w.Job != "" {
		var re *RefusedError
		if errors.As(err, &re) && re.Code == http.StatusNotFound {
			return true
		}
	}
	return false
}

// retryBackoff produces capped, jittered exponential retry delays: the
// nth wait is drawn uniformly from [d/2, d) with d = base·2ⁿ clamped to
// cap, then floored by any Retry-After hint the coordinator sent. The
// jitter stream is seeded from the worker's name, so a fleet whose
// workers fail together fans its retries out instead of stampeding the
// coordinator in lockstep — deterministically per worker, and without
// touching the sweep's result bytes.
type retryBackoff struct {
	base, cap time.Duration
	rng       *xrand.Rand
	n         int
}

func (w *Worker) newBackoff(poll time.Duration) *retryBackoff {
	cap := w.MaxBackoff
	if cap <= 0 {
		cap = 16 * poll
	}
	if cap < poll {
		cap = poll
	}
	h := fnv.New64a()
	h.Write([]byte(w.id()))
	return &retryBackoff{base: poll, cap: cap, rng: xrand.New(h.Sum64())}
}

func (b *retryBackoff) reset() { b.n = 0 }

func (b *retryBackoff) next(floor time.Duration) time.Duration {
	d := b.base
	for i := 0; i < b.n && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	b.n++
	d = d/2 + time.Duration(b.rng.Float64()*float64(d/2))
	if d < floor {
		d = floor
	}
	return d
}

// startRenewer keeps a lease alive while its shard is computing, renewing
// at a third of the lease TTL so the coordinator's crash detector never
// fires on a merely slow shard. Renewal failures are logged and stop the
// renewer but never the computation: a worker whose lease lapsed anyway
// still submits, and determinism makes that submission acceptable. The
// returned stop function terminates the renewer and waits for it.
func (w *Worker) startRenewer(ctx context.Context, lease *LeaseResponse) (stop func()) {
	interval := time.Duration(lease.TTLMs) * time.Millisecond / 3
	if interval <= 0 {
		return func() {}
	}
	if interval < time.Second {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				renewed, err := w.renew(ctx, lease.LeaseID)
				if err != nil {
					w.Events.Event(obs.LevelWarn, "renew.fail",
						obs.String("worker", w.id()),
						obs.String("lease", lease.LeaseID),
						obs.String("shard", lease.Shard.String()),
						obs.String("err", err.Error()))
					return
				}
				if !renewed {
					w.Events.Event(obs.LevelWarn, "renew.stale",
						obs.String("worker", w.id()),
						obs.String("lease", lease.LeaseID),
						obs.String("shard", lease.Shard.String()))
					return
				}
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// renew asks the coordinator to extend one lease.
func (w *Worker) renew(ctx context.Context, leaseID string) (bool, error) {
	rr, err := w.client().Renew(ctx, leaseID)
	if err != nil {
		return false, err
	}
	return rr.Renewed, nil
}

// lease asks the coordinator for work: scoped to w.Job when set,
// fair-share otherwise.
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	return w.client().Lease(ctx, w.Job, LeaseRequest{
		Worker:   w.id(),
		Parallel: w.effectiveParallel(),
	})
}

// runShard executes one leased shard through the local sweep and wraps
// the result in a submit-ready envelope.
func (w *Worker) runShard(lease *LeaseResponse) (*scenario.ShardResult, error) {
	plan := lease.Plan
	if plan == nil {
		return nil, fmt.Errorf("dist: lease %s carries no plan", lease.LeaseID)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if lease.Shard.Count != plan.Shards {
		return nil, fmt.Errorf("dist: lease %s shard %s disagrees with plan's %d-way partition",
			lease.LeaseID, lease.Shard, plan.Shards)
	}
	if err := lease.Shard.Validate(); err != nil {
		return nil, err
	}
	reg := w.registry()
	// Recompute the fingerprint locally: it covers the spec content, this
	// worker's registry version and the effective parameters, so any skew
	// (a coordinator from a newer build, a custom registry) is caught
	// here, before a single trial runs.
	local := scenario.Fingerprint(plan.Spec, reg.Version(), plan.Seeds, plan.Window, plan.BaseSeed,
		plan.SampleN, plan.SampleSeed)
	if local != plan.Fingerprint {
		return nil, fmt.Errorf("dist: plan fingerprint %s does not match locally computed %s — coordinator/worker version skew",
			plan.Fingerprint, local)
	}
	m, err := scenario.NewMatrix(plan.Spec)
	if err != nil {
		return nil, err
	}
	indices := lease.Shard.Indices(m, plan.Selection(m))
	var stats []*scenario.Stats
	cfg := scenario.SweepConfig{
		Registry: w.Registry,
		Parallel: w.Parallel,
		Seeds:    plan.Seeds,
		Window:   plan.Window,
		BaseSeed: plan.BaseSeed,
		Cache:    w.Cache,
		OnStats: func(st *scenario.Stats) error {
			stats = append(stats, st)
			return nil
		},
	}
	// Bracket the sweep with MemStats reads so the envelope can report
	// this shard's real heap-allocation delta for fleet bench artifacts.
	// The counter is process-wide, which is exact for the one-worker-
	// per-process `goalsweep work` deployment; in-process fleets (tests)
	// get an aggregate that overlapping shards share.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	sum, err := m.Sweep(indices, cfg)
	if err != nil {
		return nil, fmt.Errorf("dist: shard %s: %w", lease.Shard, err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	mComputeSeconds.Observe(elapsed.Seconds())
	w.Events.Event(obs.LevelInfo, "shard.done",
		obs.String("worker", w.id()),
		obs.String("lease", lease.LeaseID),
		obs.String("shard", lease.Shard.String()),
		obs.Int("scenarios", sum.Scenarios),
		obs.Int("executed", sum.ExecutedTrials),
		obs.Int("cacheHits", sum.CacheHits),
		obs.Dur("elapsed", elapsed))
	return &scenario.ShardResult{
		Version:     scenario.ShardFormatVersion,
		Fingerprint: plan.Fingerprint,
		Spec:        plan.Spec,
		Shard:       lease.Shard,
		Scenarios:   stats,
		Summary:     sum,
		Mallocs:     int64(ms.Mallocs - startMallocs),
	}, nil
}

// submit pushes the envelope back under its lease, retrying retryable
// failures (transport errors, truncated responses, overload sheds, 5xx)
// with jittered exponential backoff; protocol-level verdicts are fatal.
// Duplicate delivery is safe: the coordinator accepts the first envelope
// per shard and acknowledges the rest idempotently. The executed count
// reports how many trials this shard actually ran (a shared warm cache
// can make it less than the shard's trial total — that accounting is
// json:"-" in the envelope, so it travels as a query parameter), and
// mallocs carries the worker's heap-allocation delta the same way; the
// coordinator sums both to decide whether a throughput artifact would
// be honest and what allocation count it should carry.
func (w *Worker) submit(ctx context.Context, leaseID string, sr *scenario.ShardResult, retries int, poll time.Duration) error {
	boff := w.newBackoff(poll)
	for attempt := 1; ; attempt++ {
		ack, err := w.client().SubmitResult(ctx, leaseID, sr, int64(sr.Summary.ExecutedTrials), sr.Mallocs)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			if !Retryable(err) {
				return err
			}
			mTransportRetries.Inc()
			if attempt > retries {
				return fmt.Errorf("dist: submit failed %d times, giving up: %w", attempt, err)
			}
			wait := boff.next(RetryAfterHint(err))
			mRetryBackoff.Observe(wait.Seconds())
			w.Events.Event(obs.LevelWarn, "submit.retry",
				obs.String("worker", w.id()),
				obs.String("lease", leaseID),
				obs.Int("attempt", attempt),
				obs.Int("max", retries),
				obs.Dur("backoff", wait),
				obs.String("err", err.Error()))
			if err := sleep(ctx, wait); err != nil {
				return err
			}
			continue
		}
		if !ack.Accepted {
			return fmt.Errorf("dist: coordinator did not accept shard %s", sr.Shard)
		}
		return nil
	}
}
