package dist

import (
	"bytes"
	"io"
	"net/http"
)

// LoopbackClient wraps an http.Handler (typically a Coordinator) in an
// http.Client whose requests never touch a socket: each round trip calls
// the handler directly in process. It makes the whole coordinator/worker
// protocol — leases, expiries, re-leases, submits — testable hermetically,
// with no listeners, ports or network flakiness, and lets one process host
// both sides of a distributed sweep ("goalsweep serve" uses it to run the
// protocol end to end in tests).
func LoopbackClient(h http.Handler) *http.Client {
	return &http.Client{Transport: loopbackTransport{h: h}}
}

type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &loopbackRecorder{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(&rec.body),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// loopbackRecorder is the minimal in-memory http.ResponseWriter the
// loopback transport hands to the handler.
type loopbackRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (r *loopbackRecorder) Header() http.Header { return r.header }

func (r *loopbackRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *loopbackRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}
