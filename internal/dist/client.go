package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

// DefaultCallTimeout bounds each non-streaming client call when neither
// the caller's context nor Client.Timeout says otherwise. Every call it
// covers is either idempotent or retried by a classifier that treats a
// deadline as a transport failure, so a timeout can only delay work,
// never lose it.
const DefaultCallTimeout = 30 * time.Second

// Client speaks the coordinator's /v1 resource API. Both the Worker and
// the `goalsweep submit`/`watch` CLI verbs are built on it, and because
// it takes any *http.Client, LoopbackClient runs the same code paths
// against an in-process coordinator in hermetic tests.
type Client struct {
	// BaseURL is the coordinator's base URL (http://host:port).
	BaseURL string
	// HTTP issues the requests; nil means http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each non-streaming call when the caller's context
	// carries no deadline of its own; 0 means DefaultCallTimeout,
	// negative disables the bound. Event streams are exempt — they live
	// as long as the job.
	Timeout time.Duration
}

// NewClient builds a client for the coordinator at base; hc nil means
// http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/"), HTTP: hc}
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// TransportError marks a failure to reach the coordinator, or to read a
// whole answer from it (a truncated response is indistinguishable from a
// connection cut mid-reply). Callers use it to decide what is retryable:
// a connection refused during coordinator startup is, a 409 fingerprint
// conflict is not.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// RefusedError is a coordinator that answered — with a non-2xx status.
// Code tells the retry classifier whether the refusal is a permanent
// verdict (4xx protocol violations) or a transient condition (429
// overload shed, 5xx), and RetryAfter carries the coordinator's parsed
// Retry-After hint when it sent one (0 otherwise).
type RefusedError struct {
	Op         string
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("dist: %s: coordinator answered %d: %s", e.Op, e.Code, e.Msg)
}

// Retryable reports whether an error from a Client call is worth
// retrying: transport failures (unreachable coordinator, cut or
// truncated responses) and transient refusals (429 overload sheds, 502/
// 503/504) are; everything else — fingerprint conflicts, unknown leases,
// protocol mismatches — is a verdict that a retry cannot change.
func Retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var re *RefusedError
	if errors.As(err, &re) {
		switch re.Code {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

// RetryAfterHint extracts the coordinator's Retry-After wish from an
// error, 0 when it carried none. Retry loops use it as a floor under
// their own backoff.
func RetryAfterHint(err error) time.Duration {
	var re *RefusedError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// callCtx applies the client's per-call deadline: the caller's own
// deadline always wins, and a negative Timeout disables the default.
func (cl *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if cl.Timeout < 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := cl.Timeout
	if d == 0 {
		d = DefaultCallTimeout
	}
	return context.WithTimeout(ctx, d)
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses become *RefusedError carrying the
// coordinator's message; transport failures and short reads come back as
// *TransportError.
func (cl *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	ctx, cancel := cl.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, cl.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return httpError(method+" "+path, resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A response that stops mid-JSON is a cut or truncated wire, not
		// a coordinator verdict: classify it retryable.
		return &TransportError{Err: fmt.Errorf("dist: decode %s response: %w", path, err)}
	}
	return nil
}

// CreateSweep submits one sweep (POST /v1/sweeps). The response carries
// the job — freshly created, or the already-queued one when an
// identical sweep is in the queue.
func (cl *Client) CreateSweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	req.Protocol = ProtocolVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp SweepResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/sweeps", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweeps lists every queued job (GET /v1/sweeps), in submission order.
func (cl *Client) Sweeps(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/sweeps", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Sweep fetches one job's status with shard states (GET /v1/sweeps/{id}).
func (cl *Client) Sweep(ctx context.Context, id string) (*JobStatus, error) {
	var js JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Lease asks for work: scoped to one job when job is non-empty (POST
// /v1/sweeps/{job}/leases), fair-share across every active job otherwise
// (POST /v1/leases).
func (cl *Client) Lease(ctx context.Context, job string, req LeaseRequest) (*LeaseResponse, error) {
	req.Protocol = ProtocolVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	path := "/v1/leases"
	if job != "" {
		path = "/v1/sweeps/" + job + "/leases"
	}
	var lease LeaseResponse
	if err := cl.do(ctx, http.MethodPost, path, bytes.NewReader(body), &lease); err != nil {
		return nil, err
	}
	if lease.Protocol != ProtocolVersion {
		return nil, fmt.Errorf("dist: coordinator speaks protocol %d, want %d", lease.Protocol, ProtocolVersion)
	}
	return &lease, nil
}

// Renew extends one lease (POST /v1/leases/{lease}/renew).
func (cl *Client) Renew(ctx context.Context, leaseID string) (*RenewResponse, error) {
	var rr RenewResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/renew", nil, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// SubmitResult pushes one shard envelope back under its lease (POST
// /v1/leases/{lease}/result). The executed and mallocs query parameters
// carry the accounting that is json:"-" in the envelope.
func (cl *Client) SubmitResult(ctx context.Context, leaseID string, sr *scenario.ShardResult, executed, mallocs int64) (*SubmitResponse, error) {
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		return nil, err
	}
	path := fmt.Sprintf("/v1/leases/%s/result?executed=%d&mallocs=%d", leaseID, executed, mallocs)
	var ack SubmitResponse
	if err := cl.do(ctx, http.MethodPost, path, bytes.NewReader(buf.Bytes()), &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// SweepEvent is one parsed frame from a job's event stream.
type SweepEvent struct {
	// Type is the event field: EventShard or EventComplete.
	Type string
	// ID is the frame's id field (the shard index for EventShard, the
	// job ID for EventComplete).
	ID string
	// Data is the frame's payload: a compact scenario.ShardResult for
	// EventShard, a CompleteEvent for EventComplete.
	Data []byte
}

// errStreamEnded marks an event stream that died before EventComplete —
// a dropped connection, a restarted coordinator. FollowEvents treats it
// as retryable.
var errStreamEnded = errors.New("event stream ended before the job completed")

// Events subscribes to one job's stream (GET /v1/sweeps/{id}/events) and
// calls fn for every frame until the stream ends (after EventComplete),
// fn returns an error, or the context ends. A nil return means the
// stream completed. A single subscription dies with its connection;
// FollowEvents is the resilient variant. Deliberately exempt from the
// client's per-call deadline: the stream lives as long as the job.
func (cl *Client) Events(ctx context.Context, id string, fn func(SweepEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("GET /v1/sweeps/"+id+"/events", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	// A shard frame carries a whole envelope on one data line; size the
	// scanner for the default matrix's largest shard with headroom.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ev SweepEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Type != "" || ev.Data != nil {
				done := ev.Type == EventComplete
				if err := fn(ev); err != nil {
					return err
				}
				if done {
					return nil
				}
			}
			ev = SweepEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.ID = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(line[len("data: "):])
		}
	}
	if err := sc.Err(); err != nil {
		return &TransportError{Err: err}
	}
	return fmt.Errorf("dist: job %s: %w", id, errStreamEnded)
}

// FollowOptions tunes FollowEvents' reconnect behavior. The zero value
// is a working configuration.
type FollowOptions struct {
	// Retries bounds consecutive reconnect attempts that yield no new
	// frame before FollowEvents gives up; 0 means 10. Any received frame
	// resets the count.
	Retries int
	// Backoff is the base reconnect delay, doubled per consecutive
	// failure up to 32x; 0 means 250ms.
	Backoff time.Duration
	// OnRetry, when non-nil, is told about each reconnect before the
	// wait — the CLI surfaces it on stderr.
	OnRetry func(err error, wait time.Duration)
}

// callbackError tags an error as coming from the caller's fn rather
// than the stream, so FollowEvents never retries it.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// FollowEvents is Events with reconnection: a dropped stream is
// re-subscribed with capped exponential backoff, and because the
// coordinator replays completed shards in index order on every
// subscription, frames already delivered to fn are deduplicated by
// their shard index — fn sees each shard exactly once regardless of how
// many times the connection died. fn errors and non-retryable refusals
// (an unknown job, a protocol mismatch) end the watch immediately.
func (cl *Client) FollowEvents(ctx context.Context, id string, opt FollowOptions, fn func(SweepEvent) error) error {
	retries := opt.Retries
	if retries <= 0 {
		retries = 10
	}
	base := opt.Backoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	seen := make(map[string]bool)
	failures := 0
	for {
		progressed := false
		err := cl.Events(ctx, id, func(ev SweepEvent) error {
			progressed = true
			if ev.Type == EventShard {
				if seen[ev.ID] {
					return nil
				}
				seen[ev.ID] = true
			}
			if err := fn(ev); err != nil {
				return &callbackError{err: err}
			}
			return nil
		})
		if err == nil {
			return nil
		}
		var cbe *callbackError
		if errors.As(err, &cbe) {
			return cbe.err
		}
		if ctx.Err() != nil {
			return err
		}
		if !Retryable(err) && !errors.Is(err, errStreamEnded) {
			return err
		}
		if progressed {
			failures = 0
		}
		failures++
		if failures > retries {
			return fmt.Errorf("dist: event stream for %s failed %d consecutive times, giving up: %w", id, failures, err)
		}
		wait := base << min(failures-1, 5)
		if hint := RetryAfterHint(err); hint > wait {
			wait = hint
		}
		if opt.OnRetry != nil {
			opt.OnRetry(err, wait)
		}
		mEventReconnects.Inc()
		if serr := sleep(ctx, wait); serr != nil {
			return err
		}
	}
}

// httpError folds a non-2xx response into a *RefusedError carrying the
// coordinator's message and its Retry-After hint, if any.
func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &RefusedError{Op: op, Code: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
