package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/scenario"
)

// Client speaks the coordinator's /v1 resource API. Both the Worker and
// the `goalsweep submit`/`watch` CLI verbs are built on it, and because
// it takes any *http.Client, LoopbackClient runs the same code paths
// against an in-process coordinator in hermetic tests.
type Client struct {
	// BaseURL is the coordinator's base URL (http://host:port).
	BaseURL string
	// HTTP issues the requests; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the coordinator at base; hc nil means
// http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/"), HTTP: hc}
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// TransportError marks a failure to reach the coordinator at all (as
// opposed to a coordinator that answered with a refusal). Callers use it
// to decide what is retryable: a connection refused during coordinator
// startup is, a 409 fingerprint conflict is not.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses become errors carrying the
// coordinator's message; transport failures come back as *TransportError.
func (cl *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, cl.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return httpError(method+" "+path, resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s response: %w", path, err)
	}
	return nil
}

// CreateSweep submits one sweep (POST /v1/sweeps). The response carries
// the job — freshly created, or the already-queued one when an
// identical sweep is in the queue.
func (cl *Client) CreateSweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	req.Protocol = ProtocolVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp SweepResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/sweeps", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweeps lists every queued job (GET /v1/sweeps), in submission order.
func (cl *Client) Sweeps(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/sweeps", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Sweep fetches one job's status with shard states (GET /v1/sweeps/{id}).
func (cl *Client) Sweep(ctx context.Context, id string) (*JobStatus, error) {
	var js JobStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Lease asks for work: scoped to one job when job is non-empty (POST
// /v1/sweeps/{job}/leases), fair-share across every active job otherwise
// (POST /v1/leases).
func (cl *Client) Lease(ctx context.Context, job string, req LeaseRequest) (*LeaseResponse, error) {
	req.Protocol = ProtocolVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	path := "/v1/leases"
	if job != "" {
		path = "/v1/sweeps/" + job + "/leases"
	}
	var lease LeaseResponse
	if err := cl.do(ctx, http.MethodPost, path, bytes.NewReader(body), &lease); err != nil {
		return nil, err
	}
	if lease.Protocol != ProtocolVersion {
		return nil, fmt.Errorf("dist: coordinator speaks protocol %d, want %d", lease.Protocol, ProtocolVersion)
	}
	return &lease, nil
}

// Renew extends one lease (POST /v1/leases/{lease}/renew).
func (cl *Client) Renew(ctx context.Context, leaseID string) (*RenewResponse, error) {
	var rr RenewResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/renew", nil, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// SubmitResult pushes one shard envelope back under its lease (POST
// /v1/leases/{lease}/result). The executed and mallocs query parameters
// carry the accounting that is json:"-" in the envelope.
func (cl *Client) SubmitResult(ctx context.Context, leaseID string, sr *scenario.ShardResult, executed, mallocs int64) (*SubmitResponse, error) {
	var buf bytes.Buffer
	if err := sr.Write(&buf); err != nil {
		return nil, err
	}
	path := fmt.Sprintf("/v1/leases/%s/result?executed=%d&mallocs=%d", leaseID, executed, mallocs)
	var ack SubmitResponse
	if err := cl.do(ctx, http.MethodPost, path, bytes.NewReader(buf.Bytes()), &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// SweepEvent is one parsed frame from a job's event stream.
type SweepEvent struct {
	// Type is the event field: EventShard or EventComplete.
	Type string
	// ID is the frame's id field (the shard index for EventShard, the
	// job ID for EventComplete).
	ID string
	// Data is the frame's payload: a compact scenario.ShardResult for
	// EventShard, a CompleteEvent for EventComplete.
	Data []byte
}

// Events subscribes to one job's stream (GET /v1/sweeps/{id}/events) and
// calls fn for every frame until the stream ends (after EventComplete),
// fn returns an error, or the context ends. A nil return means the
// stream completed.
func (cl *Client) Events(ctx context.Context, id string, fn func(SweepEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return &TransportError{Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("GET /v1/sweeps/"+id+"/events", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	// A shard frame carries a whole envelope on one data line; size the
	// scanner for the default matrix's largest shard with headroom.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ev SweepEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Type != "" || ev.Data != nil {
				done := ev.Type == EventComplete
				if err := fn(ev); err != nil {
					return err
				}
				if done {
					return nil
				}
			}
			ev = SweepEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			ev.ID = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(line[len("data: "):])
		}
	}
	if err := sc.Err(); err != nil {
		return &TransportError{Err: err}
	}
	return fmt.Errorf("dist: event stream for %s ended before the job completed", id)
}

// httpError folds a non-2xx response into an error carrying the
// coordinator's message.
func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("dist: %s: coordinator answered %s: %s", op, resp.Status, bytes.TrimSpace(msg))
}
