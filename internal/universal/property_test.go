package universal

import (
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/enumerate"
	"repro/internal/sensing"
	"repro/internal/xrand"
)

// scriptedSense plays back a fixed indication sequence (then stays
// positive), letting properties control the universal user's switching.
type scriptedSense struct {
	verdicts []bool
	pos      int
}

var _ sensing.Sense = (*scriptedSense)(nil)

func (s *scriptedSense) Reset() {
	// Do not rewind: the script is global across candidate switches so
	// that the test controls the exact number of negatives observed.
}

func (s *scriptedSense) Observe(comm.RoundView) bool {
	if s.pos < len(s.verdicts) {
		v := s.verdicts[s.pos]
		s.pos++
		return v
	}
	return true
}

func TestCompactUserSwitchesExactlyOnNegatives(t *testing.T) {
	t.Parallel()

	// Property: after playing any verdict script, the user's index (and
	// switch count) equals the number of negative indications.
	f := func(raw []bool) bool {
		script := raw
		if len(script) > 200 {
			script = script[:200]
		}
		enum := enumerate.FromFunc("silent", enumerate.Unbounded, func(int) comm.Strategy {
			return &commtest.Silent{}
		})
		sense := &scriptedSense{verdicts: script}
		u, err := NewCompactUser(enum, sense)
		if err != nil {
			return false
		}
		u.Reset(xrand.New(1))
		negatives := 0
		for _, v := range script {
			if _, err := u.Step(comm.Inbox{}); err != nil {
				return false
			}
			if !v {
				negatives++
			}
		}
		return u.Index() == negatives && u.Switches() == negatives
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactUserIndexMonotone(t *testing.T) {
	t.Parallel()

	// Property: the index never decreases over any run.
	f := func(raw []bool) bool {
		enum := enumerate.FromFunc("silent", enumerate.Unbounded, func(int) comm.Strategy {
			return &commtest.Silent{}
		})
		u, err := NewCompactUser(enum, &scriptedSense{verdicts: raw})
		if err != nil {
			return false
		}
		u.Reset(xrand.New(1))
		prev := u.Index()
		for range raw {
			if _, err := u.Step(comm.Inbox{}); err != nil {
				return false
			}
			if u.Index() < prev {
				return false
			}
			prev = u.Index()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactUserResetRestartsSearch(t *testing.T) {
	t.Parallel()

	enum := enumerate.FromFunc("silent", enumerate.Unbounded, func(int) comm.Strategy {
		return &commtest.Silent{}
	})
	u, err := NewCompactUser(enum, sensing.Const(false))
	if err != nil {
		t.Fatal(err)
	}
	u.Reset(xrand.New(1))
	for i := 0; i < 7; i++ {
		if _, err := u.Step(comm.Inbox{}); err != nil {
			t.Fatal(err)
		}
	}
	if u.Index() != 7 {
		t.Fatalf("index = %d, want 7", u.Index())
	}
	u.Reset(xrand.New(1))
	if u.Index() != 0 || u.Switches() != 0 {
		t.Fatalf("Reset did not restart: index=%d switches=%d", u.Index(), u.Switches())
	}
}
