package universal

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
)

// greetEnum enumerates candidate strategies for the greet scenario:
// candidate i repeatedly sends "HELLO" encoded in dialect i.
func greetEnum(t *testing.T, fam *dialect.Family) enumerate.Enumerator {
	t.Helper()
	return enumerate.FromFunc("greet-dialects", fam.Size(), func(i int) comm.Strategy {
		msg := fam.Dialect(i).Encode("HELLO")
		outs := make([]comm.Outbox, 64)
		for j := range outs {
			outs[j] = comm.Outbox{ToServer: msg}
		}
		return &commtest.Script{Outs: outs}
	})
}

// greetSense is positive as long as world confirmation arrives within the
// patience window.
func greetSense(patience int) sensing.Sense {
	return sensing.Patience(
		sensing.New(func(rv comm.RoundView) bool { return rv.In.FromWorld == "OK" }),
		patience,
	)
}

func greetFamily(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewWordFamily([]string{"HELLO", "WELCOME"}, n)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestNewCompactUserValidation(t *testing.T) {
	t.Parallel()

	fam := greetFamily(t, 2)
	if _, err := NewCompactUser(nil, greetSense(1)); err == nil {
		t.Error("nil enumerator accepted")
	}
	if _, err := NewCompactUser(greetEnum(t, fam), nil); err == nil {
		t.Error("nil sense accepted")
	}
}

func TestCompactUserAchievesGoalWithEveryDialect(t *testing.T) {
	t.Parallel()

	const n = 8
	fam := greetFamily(t, n)
	g := &commtest.GreetGoal{}

	for srvIdx := 0; srvIdx < n; srvIdx++ {
		srvIdx := srvIdx
		t.Run(fmt.Sprintf("server-dialect-%d", srvIdx), func(t *testing.T) {
			t.Parallel()

			u, err := NewCompactUser(greetEnum(t, fam), greetSense(5))
			if err != nil {
				t.Fatal(err)
			}
			srv := server.Dialected(&commtest.GreetServer{}, fam.Dialect(srvIdx))
			res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
				MaxRounds: 400, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !goal.CompactAchieved(g, res.History, 10) {
				t.Fatalf("goal not achieved with server dialect %d (user index %d)",
					srvIdx, u.Index())
			}
		})
	}
}

func TestCompactUserConvergesToMatchingIndex(t *testing.T) {
	t.Parallel()

	const n = 8
	fam := greetFamily(t, n)
	u, err := NewCompactUser(greetEnum(t, fam), greetSense(5))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Dialected(&commtest.GreetServer{}, fam.Dialect(5))
	if _, err := system.Run(u, srv, &commtest.GreetWorld{}, system.Config{
		MaxRounds: 400, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if u.Index()%n != 5 {
		t.Fatalf("converged to index %d, want ≡5 (mod %d)", u.Index(), n)
	}
}

func TestCompactUserOverheadMonotoneInServerIndex(t *testing.T) {
	t.Parallel()

	// The enumeration visits dialects in order, so the eviction count
	// must grow with the index of the matching server — the overhead the
	// paper calls "essentially necessary".
	const n = 8
	fam := greetFamily(t, n)
	prev := -1
	for srvIdx := 0; srvIdx < n; srvIdx += 3 {
		u, err := NewCompactUser(greetEnum(t, fam), greetSense(5))
		if err != nil {
			t.Fatal(err)
		}
		srv := server.Dialected(&commtest.GreetServer{}, fam.Dialect(srvIdx))
		if _, err := system.Run(u, srv, &commtest.GreetWorld{}, system.Config{
			MaxRounds: 400, Seed: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if u.Switches() <= prev {
			t.Fatalf("switches %d not increasing at server %d", u.Switches(), srvIdx)
		}
		prev = u.Switches()
	}
}

func TestCompactUserWrapsAround(t *testing.T) {
	t.Parallel()

	// With an always-negative sense the user must cycle indefinitely
	// without running out of candidates.
	fam := greetFamily(t, 3)
	u, err := NewCompactUser(greetEnum(t, fam), sensing.Const(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run(u, server.Obstinate(), &commtest.GreetWorld{}, system.Config{
		MaxRounds: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 50 {
		t.Fatalf("run ended early: %d", res.Rounds)
	}
	if u.Index() < 40 {
		t.Fatalf("always-negative sense should evict every round, index = %d", u.Index())
	}
}

func TestCompactUserErrorContext(t *testing.T) {
	t.Parallel()

	boom := enumerate.FromFunc("boom", 1, func(int) comm.Strategy {
		return &commtest.ErrStrategy{Err: fmt.Errorf("inner failure")}
	})
	u, err := NewCompactUser(boom, sensing.Const(true))
	if err != nil {
		t.Fatal(err)
	}
	_, err = system.Run(u, server.Obstinate(), &commtest.GreetWorld{}, system.Config{MaxRounds: 5})
	if err == nil {
		t.Fatal("inner error swallowed")
	}
}

// --- finite-goal (Levin) tests ---

// guessEnum enumerates candidates for SecretWorld: candidate i sends
// "guess i" and halts after hearing back (3 rounds).
func guessEnum(n int) enumerate.Enumerator {
	return enumerate.FromFunc("guess", n, func(i int) comm.Strategy {
		return &commtest.Script{
			Outs:      []comm.Outbox{{ToWorld: comm.Message(fmt.Sprintf("guess %d", i))}},
			HaltAfter: 3,
		}
	})
}

func hitSense() sensing.Sense {
	return sensing.Sticky(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "HIT"
	}))
}

func TestFiniteRunnerFindsSecret(t *testing.T) {
	t.Parallel()

	for _, secret := range []int{0, 3, 7} {
		secret := secret
		t.Run(fmt.Sprintf("secret-%d", secret), func(t *testing.T) {
			t.Parallel()

			fr := &FiniteRunner{Enum: guessEnum(16), Sense: hitSense()}
			res, err := fr.Run(
				func() comm.Strategy { return server.Obstinate() },
				func() goal.World { return &commtest.SecretWorld{Secret: secret} },
				1,
			)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Succeeded {
				t.Fatal("search failed")
			}
			if res.Index != secret {
				t.Fatalf("found index %d, want %d", res.Index, secret)
			}
			g := &commtest.SecretGoal{Secret: secret}
			if !g.Achieved(res.Final.History) {
				t.Fatal("referee rejects the successful attempt")
			}
		})
	}
}

func TestFiniteRunnerOverheadGrowsWithIndex(t *testing.T) {
	t.Parallel()

	total := func(secret int) int {
		fr := &FiniteRunner{Enum: guessEnum(64), Sense: hitSense()}
		res, err := fr.Run(
			func() comm.Strategy { return server.Obstinate() },
			func() goal.World { return &commtest.SecretWorld{Secret: secret} },
			1,
		)
		if err != nil || !res.Succeeded {
			t.Fatalf("secret %d: err=%v succeeded=%v", secret, err, res != nil && res.Succeeded)
		}
		return res.TotalRounds
	}
	if a, b := total(2), total(40); a >= b {
		t.Fatalf("overhead not growing: secret 2 → %d rounds, secret 40 → %d", a, b)
	}
}

func TestFiniteRunnerExponentialSchedule(t *testing.T) {
	t.Parallel()

	fr := &FiniteRunner{Enum: guessEnum(8), Sense: hitSense(), Schedule: ScheduleExponential}
	res, err := fr.Run(
		func() comm.Strategy { return server.Obstinate() },
		func() goal.World { return &commtest.SecretWorld{Secret: 2} },
		1,
	)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets must follow the 2^(p-i) doubling schedule: each attempt's
	// budget is a power of two.
	for _, a := range res.Attempts {
		if a.Budget&(a.Budget-1) != 0 {
			t.Fatalf("budget %d not a power of two", a.Budget)
		}
		if a.Rounds > a.Budget {
			t.Fatalf("attempt exceeded budget: %+v", a)
		}
	}
	if !res.Succeeded || res.Budget < 3 {
		t.Fatalf("successful budget %d too small for the 3-round protocol", res.Budget)
	}
}

func TestFiniteRunnerUniformSchedule(t *testing.T) {
	t.Parallel()

	fr := &FiniteRunner{Enum: guessEnum(8), Sense: hitSense()}
	res, err := fr.Run(
		func() comm.Strategy { return server.Obstinate() },
		func() goal.World { return &commtest.SecretWorld{Secret: 2} },
		1,
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attempts {
		if a.Rounds > a.Budget {
			t.Fatalf("attempt exceeded budget: %+v", a)
		}
	}
	if !res.Succeeded || res.Budget < 3 {
		t.Fatalf("successful budget %d too small for the 3-round protocol", res.Budget)
	}
}

func TestFiniteRunnerFailsGracefully(t *testing.T) {
	t.Parallel()

	// Secret outside the enumerated class: search must exhaust and
	// report failure rather than hang.
	fr := &FiniteRunner{Enum: guessEnum(4), Sense: hitSense(), MaxPhases: 8}
	res, err := fr.Run(
		func() comm.Strategy { return server.Obstinate() },
		func() goal.World { return &commtest.SecretWorld{Secret: 100} },
		1,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatal("impossible search succeeded")
	}
	if res.Final != nil {
		t.Fatal("failed search returned a final execution")
	}
	if len(res.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
}

func TestFiniteRunnerValidation(t *testing.T) {
	t.Parallel()

	fr := &FiniteRunner{}
	if _, err := fr.Run(nil, nil, 1); err == nil {
		t.Fatal("empty runner accepted")
	}
	fr = &FiniteRunner{Enum: guessEnum(2), Sense: hitSense()}
	if _, err := fr.Run(nil, nil, 1); err == nil {
		t.Fatal("nil factories accepted")
	}
}

func TestFiniteRunnerBudgetCap(t *testing.T) {
	t.Parallel()

	fr := &FiniteRunner{Enum: guessEnum(4), Sense: hitSense(), MaxPhases: 10, BudgetCap: 4}
	res, err := fr.Run(
		func() comm.Strategy { return server.Obstinate() },
		func() goal.World { return &commtest.SecretWorld{Secret: 2} },
		1,
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attempts {
		if a.Budget > 4 {
			t.Fatalf("budget cap violated: %+v", a)
		}
	}
	if !res.Succeeded {
		t.Fatal("capped search should still find a 3-round protocol")
	}
}

func TestFiniteRunnerSafetyRejectsDishonestHalts(t *testing.T) {
	t.Parallel()

	// Candidates that halt without a HIT must never be accepted: the
	// sense is safe (positive only on genuinely hit views).
	fr := &FiniteRunner{Enum: guessEnum(8), Sense: hitSense(), MaxPhases: 6}
	res, err := fr.Run(
		func() comm.Strategy { return server.Obstinate() },
		func() goal.World { return &commtest.SecretWorld{Secret: 6} },
		1,
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attempts {
		if a.Verdict && a.Index != 6 {
			t.Fatalf("unsafe acceptance of candidate %d", a.Index)
		}
	}
}
