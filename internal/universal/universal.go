// Package universal implements the paper's main result (Theorem 1): for any
// compact or finite goal with safe and viable sensing, a universal user
// strategy exists.
//
//   - CompactUser handles compact goals: it enumerates candidate user
//     strategies and switches from the current one to the next whenever the
//     sensing function produces a negative indication.
//   - FiniteRunner handles finite goals: candidate strategies are enumerated
//     "in parallel" in the style of Levin's universal search, with doubling
//     time budgets, and sensing decides when to stop.
package universal

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
	"repro/internal/xrand"
)

// CompactUser is the enumeration-with-switching universal user for compact
// goals. It is itself a comm.Strategy and can be paired with any server.
//
// On every round it runs the current candidate strategy and feeds the round
// into the sensing function; a negative indication evicts the candidate and
// installs the next one in the enumeration (wrapping around at the end —
// legitimate for forgiving goals, where earlier missteps never doom the
// execution).
type CompactUser struct {
	enum  enumerate.Enumerator
	sense sensing.Sense

	r        *xrand.Rand
	inner    comm.Strategy
	index    int
	switches int

	// cands caches one constructed candidate (and its reusable RNG) per
	// canonical enumeration index, so cycling through a bounded class —
	// within a run or across Resets — re-Resets existing strategies
	// instead of constructing fresh ones. See install.
	cands []candSlot
}

// candSlot is one entry of the candidate cache.
type candSlot struct {
	s comm.Strategy
	r *xrand.Rand
}

// candCacheSize bounds the candidate cache: classes larger than this
// construct candidates on demand, as before.
const candCacheSize = 64

var _ comm.Strategy = (*CompactUser)(nil)

// NewCompactUser builds the universal user from a strategy enumeration and
// a sensing function. It returns an error on nil arguments.
func NewCompactUser(enum enumerate.Enumerator, sense sensing.Sense) (*CompactUser, error) {
	if enum == nil {
		return nil, errors.New("universal: nil enumerator")
	}
	if sense == nil {
		return nil, errors.New("universal: nil sense")
	}
	return &CompactUser{enum: enum, sense: sense}, nil
}

// Reset implements comm.Strategy.
func (u *CompactUser) Reset(r *xrand.Rand) {
	if r == nil {
		r = xrand.New(0)
	}
	u.r = r
	u.index = 0
	u.switches = 0
	u.install()
}

func (u *CompactUser) install() {
	// For bounded classes of modest size, candidate strategies are cached
	// per canonical index and re-Reset instead of reconstructed. This is
	// behavior-preserving: enumerators are stable (Strategy(i) always
	// describes the same strategy), Reset fully reinitializes a strategy,
	// and SplitInto advances u.r exactly as Split does, so every party
	// sees identical RNG streams with or without the cache.
	if size := u.enum.Size(); size != enumerate.Unbounded && size > 0 && size <= candCacheSize {
		if len(u.cands) != size {
			u.cands = make([]candSlot, size)
		}
		sl := &u.cands[((u.index%size)+size)%size]
		if sl.s == nil {
			sl.s = u.enum.Strategy(u.index)
			sl.r = &xrand.Rand{}
		}
		u.r.SplitInto(sl.r)
		sl.s.Reset(sl.r)
		u.inner = sl.s
		u.sense.Reset()
		return
	}
	u.inner = u.enum.Strategy(u.index)
	u.inner.Reset(u.r.Split())
	u.sense.Reset()
}

// Step implements comm.Strategy: run the current candidate, then consult
// sensing and switch on a negative indication.
func (u *CompactUser) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := u.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, fmt.Errorf("universal: candidate %d: %w", u.index, err)
	}
	if !u.sense.Observe(comm.RoundView{In: in, Out: out}) {
		u.index++
		u.switches++
		u.install()
	}
	return out, nil
}

// Index returns the (absolute, non-wrapped) index of the current candidate
// strategy.
func (u *CompactUser) Index() int { return u.index }

// Switches returns how many times the user has evicted a candidate since
// the last Reset.
func (u *CompactUser) Switches() int { return u.switches }

// Attempt records one Levin-search attempt of the finite-goal runner.
type Attempt struct {
	// Index is the candidate strategy index tried.
	Index int
	// Budget is the round budget allotted to the attempt.
	Budget int
	// Rounds is how many rounds actually ran.
	Rounds int
	// Halted reports whether the candidate declared completion.
	Halted bool
	// Verdict is the sensing function's final indication on the
	// attempt's view.
	Verdict bool
}

// FiniteResult summarizes a finite-goal universal search.
type FiniteResult struct {
	// Succeeded reports whether some attempt ended with a positive
	// sensing verdict.
	Succeeded bool
	// Index and Budget identify the successful attempt.
	Index  int
	Budget int
	// TotalRounds is the total number of simulated rounds across all
	// attempts — the overhead the theory says is essentially necessary.
	TotalRounds int
	// Attempts lists every attempt in order.
	Attempts []Attempt
	// Final is the execution result of the successful attempt (nil if
	// the search failed).
	Final *system.Result
}

// Schedule selects how the finite-goal runner divides time among candidate
// strategies.
type Schedule int

// Dovetailing schedules.
const (
	// ScheduleUniform dovetails candidates with linearly growing
	// budgets: phase p runs candidates 0..p, each with budget p+1
	// rounds. Success at candidate i needing b rounds costs
	// O(max(i,b)³) total rounds — polynomial overhead, the practical
	// choice for experiments.
	ScheduleUniform Schedule = iota + 1

	// ScheduleExponential is classic Levin weighting: phase p runs
	// candidates 0..p with budget 2^(p−i) rounds, giving candidate i a
	// constant fraction ~2^−i of all simulated time. Optimal up to a
	// constant factor in the weighted sense, but only candidates of
	// small index are reachable in practice.
	ScheduleExponential
)

// FiniteRunner is the Levin-style universal user for finite goals. Because
// the finite-goal definition quantifies over all server and world start
// states, each attempt may legitimately run in a fresh execution; the
// runner dovetails candidate strategies "in parallel" per the selected
// Schedule and uses sensing to decide when to stop.
//
// The dovetailing is literal: each phase's attempts execute concurrently
// through system.RunBatch (bounded by Parallel), and the phase's results
// are then judged in attempt order, so the outcome — including TotalRounds
// and the Attempts list — is identical to a strictly serial search.
type FiniteRunner struct {
	// Enum is the candidate user-strategy enumeration.
	Enum enumerate.Enumerator
	// Sense judges a completed attempt's view; safety for finite goals
	// means it is positive only on views whose histories the referee
	// accepts.
	Sense sensing.Sense
	// Schedule selects the dovetailing; zero means ScheduleUniform.
	Schedule Schedule
	// MaxPhases bounds the search; 0 means the schedule's default
	// (DefaultUniformPhases or DefaultExponentialPhases).
	MaxPhases int
	// BudgetCap bounds any single attempt's rounds; 0 means no cap
	// beyond the phase structure.
	BudgetCap int
	// Parallel bounds the per-phase worker pool; values < 1 mean
	// GOMAXPROCS. The search result is the same at every setting.
	Parallel int
}

// Default phase bounds per schedule.
const (
	DefaultUniformPhases     = 512
	DefaultExponentialPhases = 20
)

// Run performs the universal search. mkServer and mkWorld create a fresh
// server and world per attempt (the adversary's choice is fixed by the
// caller); seed drives all randomness deterministically.
func (fr *FiniteRunner) Run(
	mkServer func() comm.Strategy,
	mkWorld func() goal.World,
	seed uint64,
) (*FiniteResult, error) {
	if fr.Enum == nil || fr.Sense == nil {
		return nil, errors.New("universal: FiniteRunner needs Enum and Sense")
	}
	if mkServer == nil || mkWorld == nil {
		return nil, errors.New("universal: FiniteRunner needs server and world factories")
	}
	sched := fr.Schedule
	if sched == 0 {
		sched = ScheduleUniform
	}
	maxPhases := fr.MaxPhases
	if maxPhases <= 0 {
		if sched == ScheduleExponential {
			maxPhases = DefaultExponentialPhases
		} else {
			maxPhases = DefaultUniformPhases
		}
	}
	size := fr.Enum.Size()

	res := &FiniteResult{}
	root := xrand.New(seed)
	for p := 0; p < maxPhases; p++ {
		// Collect the phase's attempt specs, drawing seeds in attempt
		// order (exactly as a serial search would).
		type attemptSpec struct {
			index, budget int
			seed          uint64
		}
		var specs []attemptSpec
		for i := 0; i <= p; i++ {
			if size != enumerate.Unbounded && i >= size {
				break
			}
			budget := p + 1
			if sched == ScheduleExponential {
				budget = 1 << (p - i)
			}
			if fr.BudgetCap > 0 && budget > fr.BudgetCap {
				continue
			}
			specs = append(specs, attemptSpec{index: i, budget: budget, seed: root.Uint64()})
		}
		if len(specs) == 0 {
			continue
		}

		trials := make([]system.Trial, len(specs))
		for t, spec := range specs {
			trials[t] = system.Trial{
				User: func() (comm.Strategy, error) {
					return fr.Enum.Strategy(spec.index), nil
				},
				Server: func() comm.Strategy { return mkServer() },
				World:  func() goal.World { return mkWorld() },
				Config: system.Config{MaxRounds: spec.budget, Seed: spec.seed},
			}
		}
		execs, err := system.RunBatch(trials, system.BatchConfig{Parallelism: fr.Parallel})
		if err != nil {
			return nil, fmt.Errorf("universal: phase %d: %w", p, err)
		}

		// Judge the phase's attempts in order; everything after the
		// first success was speculative work and is discarded.
		for t, spec := range specs {
			exec := execs[t]
			verdict := exec.Halted && sensing.Replay(fr.Sense, exec.View)
			res.TotalRounds += exec.Rounds
			res.Attempts = append(res.Attempts, Attempt{
				Index:   spec.index,
				Budget:  spec.budget,
				Rounds:  exec.Rounds,
				Halted:  exec.Halted,
				Verdict: verdict,
			})
			if verdict {
				res.Succeeded = true
				res.Index = spec.index
				res.Budget = spec.budget
				res.Final = exec
				for _, spare := range execs[t+1:] {
					system.ReleaseResult(spare)
				}
				return res, nil
			}
			system.ReleaseResult(exec)
		}
	}
	return res, nil
}
