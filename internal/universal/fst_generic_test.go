package universal

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/enumerate"
	"repro/internal/fst"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// These tests exercise Theorem 1 over a *generic program space* — the full
// finite-state-transducer enumeration — rather than hand-crafted candidate
// families. This is the theorem in the form the paper states it: enumerate
// all (relevant) user strategies, not just the ones a domain expert would
// write.

// greetCodec maps the greet scenario onto FST symbols. Input: whether the
// world confirms ("OK"). Output symbols: silence, or one of three possible
// greetings — only greeting symbol 1 ("HELLO") is understood by the plain
// GreetServer.
func greetCodec() enumerate.SymbolCodec {
	outs := []comm.Message{"", "HOWDY", "HELLO", "HIYA"}
	return enumerate.SymbolCodec{
		NumIn:  2,
		NumOut: len(outs),
		In: func(in comm.Inbox) int {
			if in.FromWorld == "OK" {
				return 1
			}
			return 0
		},
		Out: func(sym int) comm.Outbox {
			if sym <= 0 || sym >= len(outs) {
				return comm.Outbox{}
			}
			return comm.Outbox{ToServer: outs[sym]}
		},
	}
}

func TestFSTGenericUniversality(t *testing.T) {
	t.Parallel()

	// One state, two inputs, four outputs: 16 machines, among them the
	// machine that constantly emits "HELLO". The universal user over
	// this generic space must find it.
	space := fst.Space{NumStates: 1, NumIn: 2, NumOut: 4}
	enum, err := enumerate.FST(space, greetCodec())
	if err != nil {
		t.Fatal(err)
	}
	sense := sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "OK"
	}), 5)
	u, err := NewCompactUser(enum, sense)
	if err != nil {
		t.Fatal(err)
	}

	g := &commtest.GreetGoal{}
	res, err := system.Run(u, &commtest.GreetServer{}, g.NewWorld(goal.Env{}),
		system.Config{MaxRounds: 40 * enum.Size(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatalf("generic FST universal user failed (final index %d of %d)",
			u.Index(), enum.Size())
	}
}

func TestFSTGenericUniversalityLargerSpace(t *testing.T) {
	t.Parallel()

	// Two states, 4096 machines: same goal, bigger haystack. The space
	// contains many machines that emit HELLO only in some states; the
	// sticky world forgives all of them.
	space := fst.Space{NumStates: 2, NumIn: 2, NumOut: 4}
	enum, err := enumerate.FST(space, greetCodec())
	if err != nil {
		t.Fatal(err)
	}
	if enum.Size() != 4096 {
		t.Fatalf("space size = %d", enum.Size())
	}
	sense := sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "OK"
	}), 4)
	u, err := NewCompactUser(enum, sense)
	if err != nil {
		t.Fatal(err)
	}

	g := &commtest.GreetGoal{}
	res, err := system.Run(u, &commtest.GreetServer{}, g.NewWorld(goal.Env{}),
		system.Config{MaxRounds: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !goal.CompactAchieved(g, res.History, 10) {
		t.Fatal("generic FST universal user failed on the 4096-machine space")
	}
}

func TestFSTGenericFindsEarlyMachine(t *testing.T) {
	t.Parallel()

	// Sanity on the enumeration order: some machine well before the end
	// of the space achieves the goal, so convergence must not require
	// visiting all 4096 machines.
	space := fst.Space{NumStates: 2, NumIn: 2, NumOut: 4}
	enum, err := enumerate.FST(space, greetCodec())
	if err != nil {
		t.Fatal(err)
	}
	sense := sensing.Patience(sensing.New(func(rv comm.RoundView) bool {
		return rv.In.FromWorld == "OK"
	}), 4)
	u, err := NewCompactUser(enum, sense)
	if err != nil {
		t.Fatal(err)
	}
	g := &commtest.GreetGoal{}
	if _, err := system.Run(u, &commtest.GreetServer{}, g.NewWorld(goal.Env{}),
		system.Config{MaxRounds: 5000, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if u.Index() >= 4096 {
		t.Fatalf("user wrapped the whole space: index %d", u.Index())
	}
}
