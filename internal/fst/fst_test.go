package fst

import (
	"testing"
	"testing/quick"
)

func TestSpaceSizeSmall(t *testing.T) {
	t.Parallel()

	tests := []struct {
		space Space
		want  uint64
	}{
		{Space{1, 1, 1}, 1},
		{Space{1, 2, 1}, 1},   // (1*1)^(1*2)
		{Space{2, 1, 2}, 16},  // (2*2)^(2*1)
		{Space{2, 2, 2}, 256}, // 4^4
		{Space{1, 1, 4}, 4},   // 4^1
		{Space{0, 1, 1}, 0},
	}
	for _, tt := range tests {
		if got := tt.space.Size(); got != tt.want {
			t.Errorf("Size(%+v) = %d, want %d", tt.space, got, tt.want)
		}
	}
}

func TestSpaceSizeSaturates(t *testing.T) {
	t.Parallel()

	s := Space{NumStates: 8, NumIn: 8, NumOut: 8}
	if got := s.Size(); got != ^uint64(0) {
		t.Fatalf("expected saturation, got %d", got)
	}
}

func TestMachineDecodeTotal(t *testing.T) {
	t.Parallel()

	s := Space{NumStates: 2, NumIn: 2, NumOut: 2}
	size := s.Size()
	seen := make(map[string]bool, size)
	for i := uint64(0); i < size; i++ {
		m, err := s.Machine(i)
		if err != nil {
			t.Fatalf("Machine(%d): %v", i, err)
		}
		key := ""
		for j := range m.Next {
			key += string(rune('0'+m.Next[j])) + string(rune('0'+m.Out[j]))
		}
		if seen[key] {
			t.Fatalf("Machine(%d) duplicates an earlier machine", i)
		}
		seen[key] = true
	}
	if len(seen) != int(size) {
		t.Fatalf("enumeration not total: %d distinct of %d", len(seen), size)
	}
}

func TestIndexInvertsMachine(t *testing.T) {
	t.Parallel()

	s := Space{NumStates: 3, NumIn: 2, NumOut: 2}
	f := func(raw uint32) bool {
		idx := uint64(raw) % s.Size()
		m, err := s.Machine(idx)
		if err != nil {
			return false
		}
		back, err := s.Index(m)
		return err == nil && back == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRejectsWrongDims(t *testing.T) {
	t.Parallel()

	s := Space{NumStates: 2, NumIn: 2, NumOut: 2}
	m, err := Space{NumStates: 3, NumIn: 2, NumOut: 2}.Machine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Index(m); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
}

func TestStepBounds(t *testing.T) {
	t.Parallel()

	m, err := Space{NumStates: 2, NumIn: 2, NumOut: 2}.Machine(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Step(-1, 0); err == nil {
		t.Error("negative state accepted")
	}
	if _, _, err := m.Step(2, 0); err == nil {
		t.Error("state out of range accepted")
	}
	if _, _, err := m.Step(0, 2); err == nil {
		t.Error("input out of range accepted")
	}
	if _, _, err := m.Step(0, 0); err != nil {
		t.Errorf("valid step rejected: %v", err)
	}
}

func TestRunDeterministicAndInRange(t *testing.T) {
	t.Parallel()

	s := Space{NumStates: 3, NumIn: 2, NumOut: 4}
	f := func(raw uint32, inputsRaw []byte) bool {
		idx := uint64(raw)
		m, err := s.Machine(idx)
		if err != nil {
			return false
		}
		inputs := make([]int, len(inputsRaw))
		for i, b := range inputsRaw {
			inputs[i] = int(b) % s.NumIn
		}
		out1, err1 := m.Run(inputs)
		out2, err2 := m.Run(inputs)
		if err1 != nil || err2 != nil || len(out1) != len(inputs) {
			return false
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				return false
			}
			if out1[i] < 0 || out1[i] >= s.NumOut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()

	m, err := Space{NumStates: 1, NumIn: 1, NumOut: 1}.Machine(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]int{0, 5}); err == nil {
		t.Fatal("out-of-alphabet input accepted")
	}
}

func TestSpecificMachineBehaviour(t *testing.T) {
	t.Parallel()

	// Build a parity machine by hand: 2 states, input {0,1}, output =
	// current parity of ones seen.
	m := &Machine{
		NumStates: 2, NumIn: 2, NumOut: 2,
		// state 0 (even): on 0 stay/emit 0; on 1 go 1/emit 1.
		// state 1 (odd):  on 0 stay/emit 1; on 1 go 0/emit 0.
		Next: []int{0, 1, 1, 0},
		Out:  []int{0, 1, 1, 0},
	}
	out, err := m.Run([]int{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("parity outputs = %v, want %v", out, want)
		}
	}

	// Round-trip through the space encoding.
	s := Space{NumStates: 2, NumIn: 2, NumOut: 2}
	idx, err := s.Index(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Machine(idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Next {
		if back.Next[i] != m.Next[i] || back.Out[i] != m.Out[i] {
			t.Fatal("round-trip changed the machine")
		}
	}
}
