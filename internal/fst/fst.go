// Package fst implements finite-state transducers (deterministic Mealy
// machines) and a total enumeration of them.
//
// The theory's universal users "enumerate all relevant user strategies".
// For that phrase to be executable we need a concrete, countable, total
// program space whose every index is a runnable strategy. Finite-state
// transducers over small alphabets are that space: Space(n, a, b) is the set
// of all Mealy machines with n states, input alphabet of size a and output
// alphabet of size b, and every index in [0, Size) decodes (mixed-radix) to
// exactly one machine.
package fst

import (
	"fmt"
	"math"
)

// Machine is a deterministic Mealy machine. For state q and input symbol s,
// Next[q*NumIn+s] is the successor state and Out[q*NumIn+s] the emitted
// output symbol. State 0 is initial.
type Machine struct {
	NumStates int
	NumIn     int
	NumOut    int
	Next      []int
	Out       []int
}

// Step consumes one input symbol from the given state and returns the next
// state and the emitted output symbol. It returns an error on out-of-range
// state or symbol; machines produced by Space.Machine never trigger it.
func (m *Machine) Step(state, in int) (next, out int, err error) {
	if state < 0 || state >= m.NumStates {
		return 0, 0, fmt.Errorf("fst: state %d out of range [0,%d)", state, m.NumStates)
	}
	if in < 0 || in >= m.NumIn {
		return 0, 0, fmt.Errorf("fst: input %d out of range [0,%d)", in, m.NumIn)
	}
	i := state*m.NumIn + in
	return m.Next[i], m.Out[i], nil
}

// Run feeds the input sequence through the machine from the initial state
// and returns the output sequence.
func (m *Machine) Run(inputs []int) ([]int, error) {
	outs := make([]int, 0, len(inputs))
	state := 0
	for _, in := range inputs {
		next, out, err := m.Step(state, in)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
		state = next
	}
	return outs, nil
}

// Space is the set of all Mealy machines with fixed dimensions. Each
// transition-table cell has NumStates*NumOut possible values and there are
// NumStates*NumIn cells, so the space has (NumStates*NumOut)^(NumStates*NumIn)
// machines.
type Space struct {
	NumStates int
	NumIn     int
	NumOut    int
}

// Valid reports whether the dimensions describe a non-empty space.
func (s Space) Valid() bool {
	return s.NumStates >= 1 && s.NumIn >= 1 && s.NumOut >= 1
}

// Size returns the number of machines in the space, saturating at
// math.MaxUint64 when the count overflows 64 bits.
func (s Space) Size() uint64 {
	if !s.Valid() {
		return 0
	}
	base := uint64(s.NumStates) * uint64(s.NumOut)
	cells := s.NumStates * s.NumIn
	size := uint64(1)
	for i := 0; i < cells; i++ {
		if size > math.MaxUint64/base {
			return math.MaxUint64
		}
		size *= base
	}
	return size
}

// Machine decodes index (taken modulo Size when the space is not saturated)
// into a machine. The decoding is mixed-radix: each cell's (next state,
// output) pair is one digit in base NumStates*NumOut. It returns an error on
// an invalid space.
func (s Space) Machine(index uint64) (*Machine, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("fst: invalid space %+v", s)
	}
	base := uint64(s.NumStates) * uint64(s.NumOut)
	cells := s.NumStates * s.NumIn
	m := &Machine{
		NumStates: s.NumStates,
		NumIn:     s.NumIn,
		NumOut:    s.NumOut,
		Next:      make([]int, cells),
		Out:       make([]int, cells),
	}
	x := index
	for i := 0; i < cells; i++ {
		digit := x % base
		x /= base
		m.Next[i] = int(digit % uint64(s.NumStates))
		m.Out[i] = int(digit / uint64(s.NumStates))
	}
	return m, nil
}

// Index re-encodes a machine of this space's dimensions back to its index.
// It is the inverse of Machine for indices below Size. It returns an error
// if the machine's dimensions do not match the space.
func (s Space) Index(m *Machine) (uint64, error) {
	if m.NumStates != s.NumStates || m.NumIn != s.NumIn || m.NumOut != s.NumOut {
		return 0, fmt.Errorf("fst: machine dims (%d,%d,%d) do not match space (%d,%d,%d)",
			m.NumStates, m.NumIn, m.NumOut, s.NumStates, s.NumIn, s.NumOut)
	}
	base := uint64(s.NumStates) * uint64(s.NumOut)
	cells := s.NumStates * s.NumIn
	var index uint64
	for i := cells - 1; i >= 0; i-- {
		digit := uint64(m.Out[i])*uint64(s.NumStates) + uint64(m.Next[i])
		index = index*base + digit
	}
	return index, nil
}
