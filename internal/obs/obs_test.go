package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // le=1: {0.5, 1}; le=5: {3}; le=10: {7}; +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 111.5 {
		t.Errorf("sum = %v, want 111.5", s.Sum)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("app_job_seconds", "Per-job latency.", []float64{1, 10}, "job")
	if v.With("a") != v.With("a") {
		t.Fatal("same label returned a different child histogram")
	}
	v.With("a").Observe(0.5)
	v.With("a").Observe(5)
	v.With("b").Observe(100)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE app_job_seconds histogram",
		`app_job_seconds_bucket{job="a",le="1"} 1`,
		`app_job_seconds_bucket{job="a",le="+Inf"} 2`,
		`app_job_seconds_sum{job="a"} 5.5`,
		`app_job_seconds_count{job="a"} 2`,
		`app_job_seconds_bucket{job="b",le="10"} 0`,
		`app_job_seconds_count{job="b"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_things_total", "Things done.")
	c.Add(7)
	g := r.Gauge("app_temp", "Current temperature.")
	g.Set(36.6)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	v := r.CounterVec("app_requests_total", "Requests by verb.", "verb")
	v.With("get").Add(3)
	v.With("put").Inc()
	gv := r.GaugeVec("app_worker_busy", "Busy workers.", "worker")
	gv.With(`w"1\x`).Set(1)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP app_things_total Things done.\n# TYPE app_things_total counter\napp_things_total 7\n",
		"# TYPE app_temp gauge\napp_temp 36.6\n",
		"# TYPE app_latency_seconds histogram\n",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 2.55\napp_latency_seconds_count 3\n",
		"app_requests_total{verb=\"get\"} 3\napp_requests_total{verb=\"put\"} 1\n",
		`app_worker_busy{worker="w\"1\\x"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// Families must appear in sorted order for deterministic scrapes.
	if strings.Index(got, "app_latency_seconds") > strings.Index(got, "app_requests_total") {
		t.Error("families not sorted by name")
	}
}

func TestWritePromConcurrentWithObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "", nil)
	c := r.Counter("x_total", "")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				h.Observe(0.01)
				c.Inc()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	g := r.Gauge("hot_gauge", "")
	h := r.Histogram("hot_seconds", "", nil)
	vec := r.CounterVec("hot_by_goal_total", "", "goal")
	child := vec.With("treasure") // resolved once, held across the loop
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		h.Observe(0.017)
		child.Inc()
	})
	if allocs != 0 {
		t.Fatalf("hot-path metric ops allocate %.1f/op, want 0", allocs)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	l.Event(LevelError, "should.not.panic", String("k", "v"))
	if NewLogger(nil, LevelInfo) != nil {
		t.Fatal("NewLogger(nil) should return nil")
	}
}

func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 123e6, time.UTC) }
	l.Event(LevelDebug, "dropped.below.min")
	l.Event(LevelInfo, "lease.grant",
		String("lease", "lease-1"),
		String("spec", "quick sweep"),
		Int("shard", 2),
		Int64("trials", 96),
		Uint64("seed", 18446744073709551615),
		Dur("wait", 250*time.Millisecond),
		Bool("cold", true),
	)
	got := sb.String()
	want := `ts=2026-08-08T12:00:00.123Z level=info event=lease.grant lease=lease-1 spec="quick sweep" shard=2 trials=96 seed=18446744073709551615 wait=0.25s cold=true` + "\n"
	if got != want {
		t.Fatalf("log line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn)
	if l.Enabled(LevelInfo) {
		t.Error("info enabled at warn min")
	}
	if !l.Enabled(LevelError) {
		t.Error("error disabled at warn min")
	}
	l.Event(LevelInfo, "quiet")
	l.Event(LevelError, "loud")
	out := sb.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "level=error event=loud") {
		t.Fatalf("level filtering wrong: %q", out)
	}
}
