// Package obs is the observability substrate: an allocation-free metrics
// core (atomic counters, gauges, and fixed-bucket histograms with
// snapshot-on-read) plus a structured, leveled, buffer-backed event log.
//
// The metrics side is built for the engine hot path: Counter.Add,
// Gauge.Set and Histogram.Observe are single atomic operations (the
// histogram adds a bounded bucket scan) and allocate nothing, so
// instrumentation can ride inside loops that are pinned by per-goal
// allocation budgets. Metric values are registered once — typically in
// package-level vars — against a Registry and exposed on demand in
// Prometheus text format (WriteProm); reading is snapshot-on-read, so
// exposition never blocks a writer.
//
// The event log (Logger) is off by default everywhere: a nil *Logger is
// a valid, silent logger, so instrumented code logs unconditionally and
// pays one nil check when logging is disabled. Lines are key=value
// pairs built into a reusable buffer (via the same append discipline as
// internal/msgbuf), one Write per event.
//
// Like msgbuf, the package is dependency-free by design so every layer
// (engine, sweep, cache, coordinator, worker) can use it.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; Add and Inc are allocation-free and safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down. The zero value is
// ready to use; Set is allocation-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (atomic compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond chunk flushes of a local sweep through multi-minute
// distributed shards.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// SizeBuckets are default buckets for size-shaped observations (trials
// per chunk, messages per batch): powers of four from 1 to 16384.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// Histogram counts observations into a fixed set of buckets. Bounds are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observe is allocation-free (one bounded scan plus two atomic
// ops) and safe for concurrent use; reading is snapshot-on-read via
// Snapshot, so exposition never blocks observers.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil means DefBuckets. Histograms are normally created through
// Registry.Histogram so they are registered for exposition.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, ascending (no +Inf entry)
	Counts []int64   // per-bucket counts, len(Bounds)+1 (last is +Inf)
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state. Buckets are read
// individually, so a snapshot taken during concurrent observation is a
// consistent-enough view for monitoring (each bucket exact, totals
// within the in-flight window), never a torn float.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// metricKind discriminates what a family holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: either a single unlabeled metric or
// a set of children keyed by one label's value.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // "" for unlabeled families

	metric any // *Counter, *Gauge or *Histogram when label == ""

	mu       sync.Mutex     // guards children
	children map[string]any // label value -> metric, when label != ""
}

// Registry holds named metric families for exposition. Registration is
// idempotent: asking for an existing name with the same shape returns
// the existing metric, and conflicting re-registration panics (metric
// names are package-level constants, so a conflict is a programming
// error, not input).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// defaultRegistry is the process-wide registry package-level metrics
// register against and /metrics endpoints expose.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register resolves or creates the named family, enforcing shape
// agreement.
func (r *Registry) register(name, help string, kind metricKind, label string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s{%s}, was %s{%s}",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	if label != "" {
		f.children = make(map[string]any)
	}
	r.families[name] = f
	return f
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.metric == nil {
		f.metric = &Counter{}
	}
	return f.metric.(*Counter)
}

// Gauge registers (or returns the existing) unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.metric == nil {
		f.metric = &Gauge{}
	}
	return f.metric.(*Gauge)
}

// Histogram registers (or returns the existing) unlabeled histogram
// family over the given bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.metric == nil {
		f.metric = NewHistogram(bounds)
	}
	return f.metric.(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or returns the existing) counter family labeled
// by the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, label)}
}

// With returns the counter for one label value, creating it on first
// use. The lookup is a mutex-guarded map hit: cheap enough for
// per-scenario and per-request call sites, deliberately not for
// per-round ones (hot loops hold the returned *Counter instead).
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.children[value]
	if !ok {
		c = &Counter{}
		v.f.children[value] = c
	}
	return c.(*Counter)
}

// HistogramVec is a histogram family keyed by one label. Children share
// the family's bucket bounds, so the exposition stays comparable across
// label values.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers (or returns the existing) histogram family
// labeled by the given label name, over the given bounds (nil means
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, label string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, label), bounds: bounds}
}

// With returns the histogram for one label value, creating it on first
// use. Like CounterVec.With, the lookup is a mutex-guarded map hit:
// call sites that observe in a loop hold the returned *Histogram.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.children[value]
	if !ok {
		h = NewHistogram(v.bounds)
		v.f.children[value] = h
	}
	return h.(*Histogram)
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns the existing) gauge family labeled by
// the given label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, label)}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.children[value]
	if !ok {
		g = &Gauge{}
		v.f.children[value] = g
	}
	return g.(*Gauge)
}

// Families returns the registered family names in sorted order — the
// exposition inventory, also used by tests asserting family presence.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
