package obs

import (
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/msgbuf"
)

// Level orders event severities. The zero value is LevelInfo so a
// zero-configured logger emits info and above.
type Level int8

const (
	// LevelDebug is for high-volume diagnostics (poll waits, renews).
	LevelDebug Level = iota - 1
	// LevelInfo is for lifecycle events (lease grants, shard completion).
	LevelInfo
	// LevelWarn is for recoverable anomalies (retries, stale leases).
	LevelWarn
	// LevelError is for failures surfaced to the operator.
	LevelError
)

// String returns the lowercase level name used in log lines.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// kvKind discriminates how a KV renders its value.
type kvKind uint8

const (
	kvString kvKind = iota
	kvInt
	kvUint
	kvDur
	kvBool
)

// KV is one key=value pair on an event. Values are held unboxed (a
// string or an int64) so building an event allocates nothing beyond the
// variadic slice, which escape analysis keeps on the stack for the
// common call shapes.
type KV struct {
	key  string
	str  string
	num  int64
	kind kvKind
}

// String pairs key with a string value.
func String(key, value string) KV { return KV{key: key, str: value, kind: kvString} }

// Int pairs key with an int value.
func Int(key string, value int) KV { return KV{key: key, num: int64(value), kind: kvInt} }

// Int64 pairs key with an int64 value.
func Int64(key string, value int64) KV { return KV{key: key, num: value, kind: kvInt} }

// Uint64 pairs key with a uint64 value.
func Uint64(key string, value uint64) KV { return KV{key: key, num: int64(value), kind: kvUint} }

// Dur pairs key with a duration, rendered as fractional seconds with an
// "s" suffix (e.g. wait=0.25s).
func Dur(key string, d time.Duration) KV { return KV{key: key, num: int64(d), kind: kvDur} }

// Bool pairs key with a bool.
func Bool(key string, b bool) KV {
	n := int64(0)
	if b {
		n = 1
	}
	return KV{key: key, num: n, kind: kvBool}
}

// Logger is a leveled, structured event log writing logfmt-style lines:
//
//	ts=2026-08-08T12:00:00.000Z level=info event=lease.grant lease=lease-1 shard=0/3
//
// A nil *Logger is valid and silent, so instrumented code calls Event
// unconditionally and disabled logging costs one nil check. Lines are
// assembled in a reusable buffer (msgbuf append discipline) under a
// mutex and flushed with a single Write, so concurrent events never
// interleave mid-line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
	buf []byte
}

// NewLogger returns a logger writing events at or above min to w. A nil
// w returns a nil (silent) logger.
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, min: min, now: time.Now, buf: make([]byte, 0, 256)}
}

// Enabled reports whether events at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Event writes one structured event line. event should be a stable
// dotted name (e.g. "lease.grant", "submit.reject"); kvs follow in the
// order given.
func (l *Logger) Event(level Level, event string, kvs ...KV) {
	if l == nil || level < l.min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, "ts="...)
	b = l.now().UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, " level="...)
	b = append(b, level.String()...)
	b = append(b, " event="...)
	b = appendLogValue(b, event)
	for _, kv := range kvs {
		b = append(b, ' ')
		b = append(b, kv.key...)
		b = append(b, '=')
		switch kv.kind {
		case kvString:
			b = appendLogValue(b, kv.str)
		case kvInt:
			b = msgbuf.AppendInt(b, int(kv.num))
		case kvUint:
			b = msgbuf.AppendUint(b, uint64(kv.num))
		case kvDur:
			b = strconv.AppendFloat(b, time.Duration(kv.num).Seconds(), 'g', -1, 64)
			b = append(b, 's')
		case kvBool:
			if kv.num != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '\n')
	l.buf = b
	l.w.Write(b)
}

// appendLogValue appends s, quoting it only when it contains characters
// that would break key=value tokenization.
func appendLogValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' {
			return strconv.AppendQuote(b, s)
		}
	}
	return append(b, s...)
}
