package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// PromContentType is the Content-Type for the Prometheus text exposition
// format produced by WriteProm.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per
// family, then one sample line per value, families sorted by name and
// children sorted by label value. Values are snapshot-on-read, so a
// scrape observes each metric at one instant without blocking writers.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	buf := make([]byte, 0, 4096)
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')

		if f.label == "" {
			f.mu.Lock()
			m := f.metric
			f.mu.Unlock()
			buf = appendSample(buf, f.name, "", "", m)
		} else {
			f.mu.Lock()
			values := make([]string, 0, len(f.children))
			for v := range f.children {
				values = append(values, v)
			}
			sort.Strings(values)
			children := make([]any, len(values))
			for i, v := range values {
				children[i] = f.children[v]
			}
			f.mu.Unlock()
			for i, v := range values {
				buf = appendSample(buf, f.name, f.label, v, children[i])
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSample appends the sample line(s) for one metric instance.
// label/value are empty for unlabeled families; m may be nil when a
// family was registered but its metric never touched.
func appendSample(buf []byte, name, label, value string, m any) []byte {
	switch m := m.(type) {
	case nil:
		buf = append(buf, name...)
		buf = appendLabels(buf, label, value, "")
		buf = append(buf, " 0\n"...)
	case *Counter:
		buf = append(buf, name...)
		buf = appendLabels(buf, label, value, "")
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, m.Value(), 10)
		buf = append(buf, '\n')
	case *Gauge:
		buf = append(buf, name...)
		buf = appendLabels(buf, label, value, "")
		buf = append(buf, ' ')
		buf = appendFloat(buf, m.Value())
		buf = append(buf, '\n')
	case *Histogram:
		s := m.Snapshot()
		cum := int64(0)
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
			}
			buf = append(buf, name...)
			buf = append(buf, "_bucket"...)
			buf = appendLabels(buf, label, value, le)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, cum, 10)
			buf = append(buf, '\n')
		}
		buf = append(buf, name...)
		buf = append(buf, "_sum"...)
		buf = appendLabels(buf, label, value, "")
		buf = append(buf, ' ')
		buf = appendFloat(buf, s.Sum)
		buf = append(buf, '\n')
		buf = append(buf, name...)
		buf = append(buf, "_count"...)
		buf = appendLabels(buf, label, value, "")
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.Count, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// appendLabels appends `{label="value"}`, `{le="..."}` or the merged
// form `{label="value",le="..."}`; nothing when both are absent.
func appendLabels(buf []byte, label, value, le string) []byte {
	if label == "" && le == "" {
		return buf
	}
	buf = append(buf, '{')
	if label != "" {
		buf = append(buf, label...)
		buf = append(buf, `="`...)
		buf = appendEscapedLabel(buf, value)
		buf = append(buf, '"')
		if le != "" {
			buf = append(buf, ',')
		}
	}
	if le != "" {
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, '"')
	}
	return append(buf, '}')
}

// appendEscapedLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func appendEscapedLabel(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '"':
			buf = append(buf, `\"`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedHelp escapes HELP text: backslash and newline only.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendFloat renders a float64 the way Prometheus expects: shortest
// round-trip decimal, with NaN/Inf spelled out.
func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
