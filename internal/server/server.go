// Package server provides the server-side strategy classes of the model.
//
// The core of the incompatibility problem is that the user faces not a
// single server strategy but a class of possible server strategies, with
// the actual member chosen adversarially. This package builds such classes
// by wrapping a base ("native protocol") server behaviour with
// transformations: dialects (language mismatch), delays, noise, and the
// degenerate unhelpful server that ignores the user entirely.
package server

import (
	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/msgbuf"
	"repro/internal/xrand"
)

// Dialected wraps a server whose native protocol operates on plain messages
// so that its wire language on the user channel is the given dialect: user
// messages are decoded before the inner server sees them, and the inner
// server's replies are encoded before they reach the user. The
// server-to-world channel is left untouched — it is "physical", not
// linguistic.
//
// Dialects are pure, deterministic message functions (the dialect.Dialect
// contract), so the wrapper memoizes translations: a user that retries
// the same command every other round — the steady state of every
// enumeration strategy — pays for its encoding once instead of every
// round.
func Dialected(inner comm.Strategy, d dialect.Dialect) comm.Strategy {
	return &dialected{inner: inner, d: d}
}

type dialected struct {
	inner comm.Strategy
	d     dialect.Dialect

	// Two-level memo per direction: a single-entry L1 for the command the
	// steady-state loop repeats every other round (one equality compare,
	// no map hash), backed by a capped table for the rest of the cycle.
	// Real traffic holds a handful of distinct commands; anything past
	// the table's cap is translated directly (correct, just unmemoized).
	dec1, enc1 msgbuf.Memo1[comm.Message, comm.Message]
	dec, enc   msgbuf.Table[comm.Message, comm.Message]
}

var _ comm.Strategy = (*dialected)(nil)

func (s *dialected) Reset(r *xrand.Rand) { s.inner.Reset(r) }

// translate returns f(m), memoized in m1 (fast path) and t.
func translate(m1 *msgbuf.Memo1[comm.Message, comm.Message], t *msgbuf.Table[comm.Message, comm.Message], f func(comm.Message) comm.Message, m comm.Message) comm.Message {
	if v, ok := m1.Get(m); ok {
		return v
	}
	v, ok := t.Get(m)
	if !ok {
		v = f(m)
		t.Put(m, v)
	}
	m1.Put(m, v)
	return v
}

func (s *dialected) Step(in comm.Inbox) (comm.Outbox, error) {
	in.FromUser = translate(&s.dec1, &s.dec, s.d.Decode, in.FromUser)
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	out.ToUser = translate(&s.enc1, &s.enc, s.d.Encode, out.ToUser)
	return out, nil
}

// Delayed wraps a server so that its replies to the user are delivered k
// rounds late. Models slow or buffered components; helpful, but punishes
// impatient sensing.
func Delayed(inner comm.Strategy, k int) comm.Strategy {
	if k < 0 {
		k = 0
	}
	return &delayed{inner: inner, ring: ring[comm.Message]{k: k}}
}

// ring is a fixed-size delay line (allocated once, so a long
// execution's delay wrappers allocate nothing after round k): push
// returns the value pushed k calls earlier, reporting ok=false while it
// is still filling. A zero-size ring passes values straight through.
type ring[T any] struct {
	k       int
	buf     []T
	head, n int
}

func (r *ring[T]) reset() {
	clear(r.buf)
	r.head, r.n = 0, 0
}

func (r *ring[T]) push(v T) (T, bool) {
	if r.k == 0 {
		return v, true
	}
	if r.buf == nil {
		r.buf = make([]T, r.k)
	}
	if r.n < r.k {
		// Still filling: the value produced k rounds ago does not exist
		// yet.
		r.buf[(r.head+r.n)%r.k] = v
		r.n++
		var zero T
		return zero, false
	}
	v, r.buf[r.head] = r.buf[r.head], v
	r.head = (r.head + 1) % r.k
	return v, true
}

type delayed struct {
	inner comm.Strategy
	ring  ring[comm.Message]
}

var _ comm.Strategy = (*delayed)(nil)

func (s *delayed) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	s.ring.reset()
}

func (s *delayed) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	out.ToUser, _ = s.ring.push(out.ToUser) // silence while the line fills
	return out, nil
}

// Slow wraps a server so that its entire output profile (to the user AND
// to the world) is delivered k rounds late — a sluggish component whose
// effects, not just whose replies, lag. Unlike Delayed, Slow also delays
// the goal-relevant action path, which is what makes sensing patience
// matter.
func Slow(inner comm.Strategy, k int) comm.Strategy {
	if k < 0 {
		k = 0
	}
	return &slow{inner: inner, ring: ring[comm.Outbox]{k: k}}
}

type slow struct {
	inner comm.Strategy
	ring  ring[comm.Outbox]
}

var _ comm.Strategy = (*slow)(nil)

func (s *slow) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	s.ring.reset()
}

func (s *slow) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	out, _ = s.ring.push(out) // the whole profile lags; empty while filling
	return out, nil
}

// Noisy wraps a server so that each message from the user is dropped
// (replaced by silence) independently with probability p. Helpfulness is
// preserved for p < 1 on forgiving goals because retries eventually get
// through.
func Noisy(inner comm.Strategy, p float64) comm.Strategy {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &noisy{inner: inner, p: p}
}

type noisy struct {
	inner comm.Strategy
	p     float64
	r     *xrand.Rand
}

var _ comm.Strategy = (*noisy)(nil)

func (s *noisy) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if r != nil {
		s.r = r.Split()
	} else {
		s.r = xrand.New(0)
	}
}

func (s *noisy) Step(in comm.Inbox) (comm.Outbox, error) {
	if !in.FromUser.Empty() && s.r.Float64() < s.p {
		in.FromUser = ""
	}
	return s.inner.Step(in)
}

// Obstinate returns the canonical unhelpful server: it ignores every
// message and never assists. No user strategy achieves a server-dependent
// goal with it, so universal users are *not* required to succeed against it
// — it exists to test that helpfulness certification rejects it.
func Obstinate() comm.Strategy { return &obstinate{} }

type obstinate struct{}

var _ comm.Strategy = (*obstinate)(nil)

func (*obstinate) Reset(*xrand.Rand)                    {}
func (*obstinate) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }

// Class is a finite, indexable class of server strategies — the object a
// universal user must be compatible with in its entirety.
type Class struct {
	name      string
	factories []func() comm.Strategy
}

// NewClass builds a class from strategy factories. Factories must return a
// fresh instance per call.
func NewClass(name string, factories []func() comm.Strategy) *Class {
	copied := make([]func() comm.Strategy, len(factories))
	copy(copied, factories)
	return &Class{name: name, factories: copied}
}

// DialectClass builds the class {Dialected(base(), d) : d in family} — one
// server per dialect, all sharing the same native behaviour.
func DialectClass(name string, fam *dialect.Family, base func() comm.Strategy) *Class {
	factories := make([]func() comm.Strategy, fam.Size())
	for i := range factories {
		d := fam.Dialect(i)
		factories[i] = func() comm.Strategy { return Dialected(base(), d) }
	}
	return NewClass(name, factories)
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Size returns the number of servers in the class.
func (c *Class) Size() int { return len(c.factories) }

// New instantiates the i-th server; indices wrap modulo Size.
func (c *Class) New(i int) comm.Strategy {
	n := len(c.factories)
	i %= n
	if i < 0 {
		i += n
	}
	return c.factories[i]()
}
