package server

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/dialect"
	"repro/internal/xrand"
)

func step(t *testing.T, s comm.Strategy, in comm.Inbox) comm.Outbox {
	t.Helper()
	out, err := s.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wordFam(t *testing.T, n int) *dialect.Family {
	t.Helper()
	fam, err := dialect.NewWordFamily([]string{"HELLO", "WELCOME"}, n)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestDialectedUnderstandsOwnDialect(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	d := fam.Dialect(2)
	s := Dialected(&commtest.GreetServer{}, d)
	s.Reset(xrand.New(1))

	out := step(t, s, comm.Inbox{FromUser: d.Encode("HELLO")})
	if out.ToWorld != "greeted" {
		t.Fatalf("server did not act on its own dialect: %+v", out)
	}
	if got := d.Decode(out.ToUser); got != "WELCOME" {
		t.Fatalf("reply decodes to %q, want WELCOME", got)
	}
}

func TestDialectedRejectsPlainProtocol(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	s := Dialected(&commtest.GreetServer{}, fam.Dialect(3))
	s.Reset(xrand.New(1))

	out := step(t, s, comm.Inbox{FromUser: "HELLO"})
	if out.ToWorld == "greeted" {
		t.Fatal("mismatched dialect server understood the plain command")
	}
}

func TestDialectedWorldChannelUntouched(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	d := fam.Dialect(1)
	s := Dialected(&commtest.GreetServer{}, d)
	s.Reset(xrand.New(1))

	out := step(t, s, comm.Inbox{FromUser: d.Encode("HELLO")})
	// "greeted" must reach the world in plain form even though the user
	// channel is dialected.
	if out.ToWorld != "greeted" {
		t.Fatalf("world channel transformed: %q", out.ToWorld)
	}
}

func TestDelayedShiftsReplies(t *testing.T) {
	t.Parallel()

	s := Delayed(&commtest.Echo{}, 2)
	s.Reset(xrand.New(1))

	if out := step(t, s, comm.Inbox{FromUser: "a"}); !out.ToUser.Empty() {
		t.Fatalf("round 0 reply not delayed: %q", out.ToUser)
	}
	if out := step(t, s, comm.Inbox{FromUser: "b"}); !out.ToUser.Empty() {
		t.Fatalf("round 1 reply not delayed: %q", out.ToUser)
	}
	if out := step(t, s, comm.Inbox{}); out.ToUser != "a" {
		t.Fatalf("round 2 reply = %q, want a", out.ToUser)
	}
	if out := step(t, s, comm.Inbox{}); out.ToUser != "b" {
		t.Fatalf("round 3 reply = %q, want b", out.ToUser)
	}
}

func TestDelayedZeroIsTransparent(t *testing.T) {
	t.Parallel()

	s := Delayed(&commtest.Echo{}, 0)
	s.Reset(xrand.New(1))
	if out := step(t, s, comm.Inbox{FromUser: "x"}); out.ToUser != "x" {
		t.Fatalf("zero delay altered timing: %q", out.ToUser)
	}
}

func TestDelayedResetClearsQueue(t *testing.T) {
	t.Parallel()

	s := Delayed(&commtest.Echo{}, 1)
	s.Reset(xrand.New(1))
	step(t, s, comm.Inbox{FromUser: "stale"})
	s.Reset(xrand.New(1))
	if out := step(t, s, comm.Inbox{FromUser: "fresh"}); !out.ToUser.Empty() {
		t.Fatalf("stale queue leaked across Reset: %q", out.ToUser)
	}
}

func TestNoisyExtremes(t *testing.T) {
	t.Parallel()

	always := Noisy(&commtest.Echo{}, 1.0)
	always.Reset(xrand.New(1))
	for i := 0; i < 20; i++ {
		if out := step(t, always, comm.Inbox{FromUser: "x"}); !out.ToUser.Empty() {
			t.Fatal("p=1 server let a message through")
		}
	}

	never := Noisy(&commtest.Echo{}, 0.0)
	never.Reset(xrand.New(1))
	for i := 0; i < 20; i++ {
		if out := step(t, never, comm.Inbox{FromUser: "x"}); out.ToUser != "x" {
			t.Fatal("p=0 server dropped a message")
		}
	}
}

func TestNoisyIntermediate(t *testing.T) {
	t.Parallel()

	s := Noisy(&commtest.Echo{}, 0.5)
	s.Reset(xrand.New(7))
	through := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if out := step(t, s, comm.Inbox{FromUser: "x"}); !out.ToUser.Empty() {
			through++
		}
	}
	if through < n/3 || through > 2*n/3 {
		t.Fatalf("p=0.5 passed %d/%d messages", through, n)
	}
}

func TestNoisyClampsProbability(t *testing.T) {
	t.Parallel()

	s := Noisy(&commtest.Echo{}, -3)
	s.Reset(xrand.New(1))
	if out := step(t, s, comm.Inbox{FromUser: "x"}); out.ToUser != "x" {
		t.Fatal("negative p should clamp to 0")
	}
}

func TestNoisyNilRandSafe(t *testing.T) {
	t.Parallel()

	s := Noisy(&commtest.Echo{}, 0.5)
	s.Reset(nil)
	step(t, s, comm.Inbox{FromUser: "x"})
}

func TestObstinateIgnoresEverything(t *testing.T) {
	t.Parallel()

	s := Obstinate()
	s.Reset(xrand.New(1))
	out := step(t, s, comm.Inbox{FromUser: "HELLO", FromWorld: "urgent"})
	if out != (comm.Outbox{}) {
		t.Fatalf("obstinate server responded: %+v", out)
	}
}

func TestDialectClass(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 5)
	cls := DialectClass("greet", fam, func() comm.Strategy { return &commtest.GreetServer{} })
	if cls.Size() != 5 {
		t.Fatalf("class size = %d, want 5", cls.Size())
	}
	if cls.Name() != "greet" {
		t.Fatalf("class name = %q", cls.Name())
	}

	// Server i must understand dialect i and only dialect i.
	for i := 0; i < cls.Size(); i++ {
		for j := 0; j < cls.Size(); j++ {
			s := cls.New(i)
			s.Reset(xrand.New(1))
			out := step(t, s, comm.Inbox{FromUser: fam.Dialect(j).Encode("HELLO")})
			understood := out.ToWorld == "greeted"
			if (i == j) != understood {
				t.Fatalf("server %d vs dialect %d: understood=%v", i, j, understood)
			}
		}
	}
}

func TestClassIndexWraps(t *testing.T) {
	t.Parallel()

	cls := NewClass("c", []func() comm.Strategy{
		func() comm.Strategy { return Obstinate() },
		func() comm.Strategy { return &commtest.Echo{} },
	})
	if _, ok := cls.New(3).(*commtest.Echo); !ok {
		t.Fatal("index 3 should wrap to 1")
	}
	if _, ok := cls.New(-1).(*commtest.Echo); !ok {
		t.Fatal("index -1 should wrap to 1")
	}
}

func TestClassFactoriesFresh(t *testing.T) {
	t.Parallel()

	cls := NewClass("c", []func() comm.Strategy{
		func() comm.Strategy { return Delayed(&commtest.Echo{}, 1) },
	})
	a, b := cls.New(0), cls.New(0)
	if a == b {
		t.Fatal("class returned a shared instance")
	}
}

func TestSlowDelaysWholeOutbox(t *testing.T) {
	t.Parallel()

	s := Slow(&commtest.GreetServer{}, 2)
	s.Reset(xrand.New(1))

	out := step(t, s, comm.Inbox{FromUser: "HELLO"})
	if out != (comm.Outbox{}) {
		t.Fatalf("round 0 output not delayed: %+v", out)
	}
	out = step(t, s, comm.Inbox{})
	if out != (comm.Outbox{}) {
		t.Fatalf("round 1 output not delayed: %+v", out)
	}
	out = step(t, s, comm.Inbox{})
	if out.ToWorld != "greeted" || out.ToUser != "WELCOME" {
		t.Fatalf("round 2 should deliver the delayed outbox: %+v", out)
	}
}

func TestSlowZeroTransparent(t *testing.T) {
	t.Parallel()

	s := Slow(&commtest.GreetServer{}, 0)
	s.Reset(xrand.New(1))
	out := step(t, s, comm.Inbox{FromUser: "HELLO"})
	if out.ToWorld != "greeted" {
		t.Fatalf("zero slowness altered timing: %+v", out)
	}
}

func TestSlowResetClearsQueue(t *testing.T) {
	t.Parallel()

	s := Slow(&commtest.GreetServer{}, 1)
	s.Reset(xrand.New(1))
	step(t, s, comm.Inbox{FromUser: "HELLO"})
	s.Reset(xrand.New(1))
	if out := step(t, s, comm.Inbox{}); out != (comm.Outbox{}) {
		t.Fatalf("stale outbox leaked across Reset: %+v", out)
	}
}
