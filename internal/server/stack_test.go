package server

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/xrand"
)

// echo replies to the user with whatever it received, immediately.
type echo struct{}

func (*echo) Reset(*xrand.Rand) {}
func (*echo) Step(in comm.Inbox) (comm.Outbox, error) {
	return comm.Outbox{ToUser: in.FromUser}, nil
}

func TestStackZeroIsIdentity(t *testing.T) {
	t.Parallel()

	inner := &echo{}
	if got := Stack(inner, StackSpec{}); got != comm.Strategy(inner) {
		t.Fatalf("zero StackSpec wrapped the server: %T", got)
	}
}

func TestStackAppliesDeclaredTransforms(t *testing.T) {
	t.Parallel()

	s := Stack(&echo{}, StackSpec{Delay: 2})
	s.Reset(xrand.New(1))
	// A reply to the message sent in round 0 must surface 2 rounds late.
	rounds := []comm.Message{"hello", "", "", ""}
	var got []comm.Message
	for _, m := range rounds {
		out, err := s.Step(comm.Inbox{FromUser: m})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out.ToUser)
	}
	want := []comm.Message{"", "", "hello", ""}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d reply %q, want %q (all: %q)", i, got[i], want[i], got)
		}
	}

	// Noise 1 drops everything: the echo never sees a message.
	n := Stack(&echo{}, StackSpec{Noise: 1})
	n.Reset(xrand.New(1))
	for i := 0; i < 4; i++ {
		out, err := n.Step(comm.Inbox{FromUser: "ping"})
		if err != nil {
			t.Fatal(err)
		}
		if !out.ToUser.Empty() {
			t.Fatalf("round %d: message survived noise 1: %q", i, out.ToUser)
		}
	}
}
