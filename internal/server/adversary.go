package server

import (
	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/msgbuf"
	"repro/internal/xrand"
)

// This file builds the adversarial half of the server taxonomy. The
// wrappers here are still deterministic functions of the trial seed —
// each one splits its own generator off the stream handed to Reset, after
// passing that stream to the wrapped server untouched — so adversarial
// sweeps stay byte-reproducible and a wrapper applied with a zero
// parameter is step-for-step identical to the unwrapped server.
//
// The taxonomy, in the paper's terms:
//
//   - Misleading lies on the user channel within sensing limits: safe
//     (world-observing) sensing still sees the truth, while feedback that
//     trusts the server's own claims is fooled (the T4 obstruction).
//   - Byzantine corrupts a bounded number of rounds arbitrarily; the
//     budget makes it eventually-honest, so universal users must still
//     succeed, just later.
//   - DriftingDialected re-draws its dialect mid-session by a Markov
//     switch, generalizing the fixed-dialect class F2: the user's
//     inferred member can be invalidated at any round.

// Misleading wraps a server so that, independently each round with
// probability p, the server's goal-relevant action is suppressed and its
// reply replaced by the last reply that accompanied a real action — the
// server claims past progress while doing nothing. The lie lives entirely
// on the server→user channel: the world sees either the true action or
// silence, never a fabricated one, which is what keeps the adversary
// within the paper's sensing limits (safe sensing reads the world's
// channel and cannot be fooled; only feedback that trusts the server's
// own claims is). With p = 1 the server never acts and the goal is
// infeasible; for p < 1 retries eventually land on forgiving goals.
func Misleading(inner comm.Strategy, p float64) comm.Strategy {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &misleading{inner: inner, p: p}
}

type misleading struct {
	inner    comm.Strategy
	p        float64
	r        *xrand.Rand
	lastGood comm.Message
}

var _ comm.Strategy = (*misleading)(nil)

func (s *misleading) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if r != nil {
		s.r = r.Split()
	} else {
		s.r = xrand.New(0)
	}
	s.lastGood = ""
}

func (s *misleading) Step(in comm.Inbox) (comm.Outbox, error) {
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	if !out.ToWorld.Empty() && !out.ToUser.Empty() {
		s.lastGood = out.ToUser
	}
	if s.r.Float64() < s.p {
		// Suppress the action, replay the stale claim of progress.
		return comm.Outbox{ToUser: s.lastGood}, nil
	}
	return out, nil
}

// byzantineJunk is the fixed pool of garbage messages a Byzantine round
// draws from. A small static pool (rather than generated strings) keeps
// the hot path allocation-free and the garbage representative: syntax the
// stock protocols never emit.
var byzantineJunk = [...]comm.Message{
	"bz0", "bz1", "bz2", "bz3", "bz4", "bz5", "bz6", "bz7",
}

// Byzantine wraps a server with a budget of corrupted rounds. While
// budget remains, each round is independently corrupted with probability
// 1/2 (spending one unit): the user's message is replaced by garbage
// before the inner server sees it, and the inner server's reply is
// replaced by garbage before the user sees it. The world channel carries
// whatever the inner server does with the garbage it received — the
// corruption is linguistic, not physical. Once the budget is spent the
// server is honest forever, so a universal user facing a helpful inner
// server must still succeed; the budget only delays it.
func Byzantine(inner comm.Strategy, budget int) comm.Strategy {
	if budget < 0 {
		budget = 0
	}
	return &byzantine{inner: inner, budget: budget}
}

type byzantine struct {
	inner  comm.Strategy
	budget int
	left   int
	r      *xrand.Rand
}

var _ comm.Strategy = (*byzantine)(nil)

func (s *byzantine) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if r != nil {
		s.r = r.Split()
	} else {
		s.r = xrand.New(0)
	}
	s.left = s.budget
}

func (s *byzantine) Step(in comm.Inbox) (comm.Outbox, error) {
	corrupt := s.left > 0 && s.r.Float64() < 0.5
	if corrupt {
		s.left--
		if !in.FromUser.Empty() {
			in.FromUser = byzantineJunk[s.r.Intn(len(byzantineJunk))]
		}
	}
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	if corrupt {
		out.ToUser = byzantineJunk[s.r.Intn(len(byzantineJunk))]
	}
	return out, nil
}

// DriftingDialected wraps a server so that its wire language on the user
// channel is a dialect that drifts mid-session: starting from dialect
// `start` of the family, each round with probability p the dialect is
// re-drawn uniformly from the family (a Markov switch — the draw may land
// on the current dialect). With p = 0 it is step-for-step identical to
// Dialected(inner, fam.Dialect(start)). Like Dialected, translations are
// memoized per dialect (dialects are pure), and the server→world channel
// is left untouched.
func DriftingDialected(inner comm.Strategy, fam *dialect.Family, start int, p float64) comm.Strategy {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n := fam.Size()
	start %= n
	if start < 0 {
		start += n
	}
	return &drifting{
		inner: inner, fam: fam, start: start, p: p, cur: start,
		dec1: make([]msgbuf.Memo1[comm.Message, comm.Message], n),
		enc1: make([]msgbuf.Memo1[comm.Message, comm.Message], n),
		dec:  make([]msgbuf.Table[comm.Message, comm.Message], n),
		enc:  make([]msgbuf.Table[comm.Message, comm.Message], n),
	}
}

type drifting struct {
	inner comm.Strategy
	fam   *dialect.Family
	start int
	p     float64
	cur   int
	r     *xrand.Rand

	// Per-dialect translation memos, indexed by the current dialect.
	// Dialects are pure, so entries stay valid across switches and Resets.
	dec1, enc1 []msgbuf.Memo1[comm.Message, comm.Message]
	dec, enc   []msgbuf.Table[comm.Message, comm.Message]
}

var _ comm.Strategy = (*drifting)(nil)

func (s *drifting) Reset(r *xrand.Rand) {
	s.inner.Reset(r)
	if r != nil {
		s.r = r.Split()
	} else {
		s.r = xrand.New(0)
	}
	s.cur = s.start
}

func (s *drifting) Step(in comm.Inbox) (comm.Outbox, error) {
	if s.p > 0 && s.r.Float64() < s.p {
		s.cur = s.r.Intn(s.fam.Size())
	}
	d := s.fam.Dialect(s.cur)
	in.FromUser = translate(&s.dec1[s.cur], &s.dec[s.cur], d.Decode, in.FromUser)
	out, err := s.inner.Step(in)
	if err != nil {
		return comm.Outbox{}, err
	}
	out.ToUser = translate(&s.enc1[s.cur], &s.enc[s.cur], d.Encode, out.ToUser)
	return out, nil
}

// AdversarySpec declares an adversarial wrapper stack over a class member
// as data, mirroring StackSpec: zero values mean "absent", so the zero
// AdversarySpec is the identity. The declared order is fixed — Byzantine
// innermost, then Misleading — matching the model: corruption happens at
// the server's mouth, misleading is the policy it wraps around whatever
// comes out. (Dialect drift is not part of this spec because it needs the
// goal's dialect family; the registry applies it to the class member
// before the adversary stack.)
type AdversarySpec struct {
	// Byzantine is the corrupted-round budget; 0 applies no wrapper.
	Byzantine int

	// Mislead is the per-round probability of suppressing the server's
	// action while claiming past progress; 0 applies no wrapper.
	Mislead float64
}

// Adversary wraps a class member in the adversarial transforms the spec
// declares.
func Adversary(inner comm.Strategy, a AdversarySpec) comm.Strategy {
	if a.Byzantine > 0 {
		inner = Byzantine(inner, a.Byzantine)
	}
	if a.Mislead > 0 {
		inner = Misleading(inner, a.Mislead)
	}
	return inner
}
