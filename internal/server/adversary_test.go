package server

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/xrand"
)

// chatty replies to every round with a fixed message and acts on the
// world each round — a server whose output stream makes encodings and
// suppressions observable.
type chatty struct{}

func (*chatty) Reset(*xrand.Rand) {}
func (*chatty) Step(comm.Inbox) (comm.Outbox, error) {
	return comm.Outbox{ToUser: "WELCOME", ToWorld: "acted"}, nil
}

// transcript steps s through the given user messages and returns the
// outbox sequence.
func transcript(t *testing.T, s comm.Strategy, seed uint64, msgs []comm.Message) []comm.Outbox {
	t.Helper()
	s.Reset(xrand.New(seed))
	out := make([]comm.Outbox, len(msgs))
	for i, m := range msgs {
		var err error
		out[i], err = s.Step(comm.Inbox{FromUser: m})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func repeat(m comm.Message, n int) []comm.Message {
	msgs := make([]comm.Message, n)
	for i := range msgs {
		msgs[i] = m
	}
	return msgs
}

func TestMisleadingZeroIsByteParity(t *testing.T) {
	t.Parallel()

	msgs := append(repeat("HELLO", 5), repeat("", 5)...)
	got := transcript(t, Misleading(&commtest.GreetServer{}, 0), 3, msgs)
	want := transcript(t, &commtest.GreetServer{}, 3, msgs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: p=0 wrapper diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMisleadingOneSuppressesAllActions(t *testing.T) {
	t.Parallel()

	s := Misleading(&commtest.GreetServer{}, 1)
	outs := transcript(t, s, 1, repeat("HELLO", 20))
	for i, out := range outs {
		if !out.ToWorld.Empty() {
			t.Fatalf("round %d: p=1 let an action through: %+v", i, out)
		}
		// The inner server acted every round, so from round 0 on the
		// wrapper claims that progress on the user channel.
		if out.ToUser != "WELCOME" {
			t.Fatalf("round %d: want stale WELCOME claim, got %+v", i, out)
		}
	}
}

func TestMisleadingSilentBeforeFirstAction(t *testing.T) {
	t.Parallel()

	// The inner server never acts on silence, so there is no past
	// progress to claim: the lie must be silence, not fabrication.
	s := Misleading(&commtest.GreetServer{}, 1)
	for i, out := range transcript(t, s, 1, repeat("", 10)) {
		if out != (comm.Outbox{}) {
			t.Fatalf("round %d: fabricated a claim with no progress to replay: %+v", i, out)
		}
	}
}

func TestByzantineZeroBudgetParity(t *testing.T) {
	t.Parallel()

	msgs := repeat("x", 20)
	got := transcript(t, Byzantine(&commtest.Echo{}, 0), 5, msgs)
	want := transcript(t, &commtest.Echo{}, 5, msgs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: budget-0 wrapper diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestByzantineSpendsBudgetThenHonest(t *testing.T) {
	t.Parallel()

	const budget = 3
	outs := transcript(t, Byzantine(&commtest.Echo{}, budget), 9, repeat("x", 200))
	corrupted := 0
	last := -1
	for i, out := range outs {
		if out.ToUser != "x" {
			if !strings.HasPrefix(string(out.ToUser), "bz") {
				t.Fatalf("round %d: corruption is not junk-pool garbage: %q", i, out.ToUser)
			}
			corrupted++
			last = i
		}
	}
	if corrupted != budget {
		t.Fatalf("corrupted %d rounds, want exactly the budget %d", corrupted, budget)
	}
	// Eventually honest: every round after the budget is spent echoes.
	for i := last + 1; i < len(outs); i++ {
		if outs[i].ToUser != "x" {
			t.Fatalf("round %d corrupted after budget spent", i)
		}
	}
}

func TestByzantineDeterministicPerSeed(t *testing.T) {
	t.Parallel()

	msgs := repeat("x", 100)
	a := transcript(t, Byzantine(&commtest.Echo{}, 8), 42, msgs)
	b := transcript(t, Byzantine(&commtest.Echo{}, 8), 42, msgs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: same seed, different transcript", i)
		}
	}
}

func TestDriftingZeroMatchesDialected(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	msgs := repeat(fam.Dialect(2).Encode("HELLO"), 10)
	got := transcript(t, DriftingDialected(&commtest.GreetServer{}, fam, 2, 0), 7, msgs)
	want := transcript(t, Dialected(&commtest.GreetServer{}, fam.Dialect(2)), 7, msgs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: p=0 drift diverged from fixed dialect: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestDriftingSwitchesDialects(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	outs := transcript(t, DriftingDialected(&chatty{}, fam, 0, 1), 11, repeat("", 60))
	seen := map[comm.Message]bool{}
	for i, out := range outs {
		seen[out.ToUser] = true
		// Every reply must be WELCOME under some dialect of the family.
		valid := false
		for d := 0; d < fam.Size(); d++ {
			if out.ToUser == fam.Dialect(d).Encode("WELCOME") {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("round %d: reply %q is not any dialect's WELCOME", i, out.ToUser)
		}
		if out.ToWorld != "acted" {
			t.Fatalf("round %d: world channel transformed: %q", i, out.ToWorld)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("p=1 drift never switched dialect: replies %v", seen)
	}
}

func TestDriftingStartIndexWraps(t *testing.T) {
	t.Parallel()

	fam := wordFam(t, 4)
	msgs := repeat(fam.Dialect(1).Encode("HELLO"), 4)
	got := transcript(t, DriftingDialected(&commtest.GreetServer{}, fam, -3, 0), 1, msgs)
	want := transcript(t, Dialected(&commtest.GreetServer{}, fam.Dialect(1)), 1, msgs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: start -3 should wrap to 1: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestAdversaryZeroSpecIsIdentity(t *testing.T) {
	t.Parallel()

	inner := &echo{}
	if got := Adversary(inner, AdversarySpec{}); got != comm.Strategy(inner) {
		t.Fatalf("zero AdversarySpec wrapped the server: %T", got)
	}
}

func TestAdversaryAppliesDeclaredWrappers(t *testing.T) {
	t.Parallel()

	s := Adversary(&chatty{}, AdversarySpec{Byzantine: 2, Mislead: 1})
	outs := transcript(t, s, 13, repeat("hi", 30))
	for i, out := range outs {
		if !out.ToWorld.Empty() {
			t.Fatalf("round %d: mislead=1 let an action through: %+v", i, out)
		}
	}
}

func TestAdversaryNilRandSafe(t *testing.T) {
	t.Parallel()

	s := Adversary(&chatty{}, AdversarySpec{Byzantine: 1, Mislead: 0.5})
	s.Reset(nil)
	if _, err := s.Step(comm.Inbox{FromUser: "hi"}); err != nil {
		t.Fatal(err)
	}

	fam := wordFam(t, 3)
	d := DriftingDialected(&chatty{}, fam, 0, 0.5)
	d.Reset(nil)
	if _, err := d.Step(comm.Inbox{FromUser: "hi"}); err != nil {
		t.Fatal(err)
	}
}
