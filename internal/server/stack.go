package server

import "repro/internal/comm"

// StackSpec declares a transform stack over a class member as data: which
// wrappers to apply and with what parameters. Zero values mean "absent",
// so the zero StackSpec is the identity.
//
// The declared order is fixed — Slow innermost, then Delayed, then Noisy
// outermost — matching how the experiment grids compose them: slowness and
// delay are properties of the server itself, while noise models the
// channel in front of it.
type StackSpec struct {
	// Slow delays the server's entire output profile (replies and
	// world-visible actions) by this many rounds; 0 applies no wrapper.
	Slow int

	// Delay delays only the server's replies to the user by this many
	// rounds; 0 applies no wrapper.
	Delay int

	// Noise drops each user message independently with this
	// probability; 0 applies no wrapper.
	Noise float64
}

// Stack wraps a class member in the transforms the spec declares.
func Stack(inner comm.Strategy, s StackSpec) comm.Strategy {
	if s.Slow > 0 {
		inner = Slow(inner, s.Slow)
	}
	if s.Delay > 0 {
		inner = Delayed(inner, s.Delay)
	}
	if s.Noise > 0 {
		inner = Noisy(inner, s.Noise)
	}
	return inner
}
