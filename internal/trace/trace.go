// Package trace serializes executions so that experiments are auditable:
// a Record captures everything a referee or sensing function needs — the
// world-state history and the user's view — in a stable JSON form that can
// be stored, diffed across runs and re-judged offline.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/system"
)

// FormatVersion identifies the record schema; bump on breaking changes.
const FormatVersion = 1

// RoundRecord is one round of the user's view in serializable form.
type RoundRecord struct {
	InFromServer string `json:"inFromServer,omitempty"`
	InFromWorld  string `json:"inFromWorld,omitempty"`
	OutToServer  string `json:"outToServer,omitempty"`
	OutToWorld   string `json:"outToWorld,omitempty"`
	State        string `json:"state"`
}

// Record is a serialized execution.
type Record struct {
	Version int    `json:"version"`
	Label   string `json:"label,omitempty"`
	Seed    uint64 `json:"seed"`
	Rounds  int    `json:"rounds"`
	Halted  bool   `json:"halted"`

	RoundData []RoundRecord `json:"roundData"`
}

// FromResult converts an execution result into a record. label and seed
// are caller-supplied provenance.
func FromResult(res *system.Result, label string, seed uint64) (*Record, error) {
	if res == nil {
		return nil, errors.New("trace: nil result")
	}
	if res.History.Len() != res.View.Len() {
		return nil, fmt.Errorf("trace: history (%d) and view (%d) lengths differ",
			res.History.Len(), res.View.Len())
	}
	rec := &Record{
		Version:   FormatVersion,
		Label:     label,
		Seed:      seed,
		Rounds:    res.Rounds,
		Halted:    res.Halted,
		RoundData: make([]RoundRecord, 0, res.History.Len()),
	}
	for i := range res.History.States {
		rv := res.View.Rounds[i]
		rec.RoundData = append(rec.RoundData, RoundRecord{
			InFromServer: string(rv.In.FromServer),
			InFromWorld:  string(rv.In.FromWorld),
			OutToServer:  string(rv.Out.ToServer),
			OutToWorld:   string(rv.Out.ToWorld),
			State:        string(res.History.States[i]),
		})
	}
	return rec, nil
}

// Encode writes the record as indented JSON.
func (r *Record) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Decode reads a record from JSON, validating the schema version.
func Decode(r io.Reader) (*Record, error) {
	var rec Record
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if rec.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported record version %d (want %d)",
			rec.Version, FormatVersion)
	}
	if rec.Rounds < 0 || rec.Rounds < len(rec.RoundData)-1 && rec.Rounds != len(rec.RoundData) {
		return nil, fmt.Errorf("trace: inconsistent rounds field %d for %d round records",
			rec.Rounds, len(rec.RoundData))
	}
	return &rec, nil
}

// History reconstructs the world-state history for offline referee
// judgement.
func (r *Record) History() comm.History {
	states := make([]comm.WorldState, len(r.RoundData))
	for i, rd := range r.RoundData {
		states[i] = comm.WorldState(rd.State)
	}
	return comm.History{States: states}
}

// View reconstructs the user's view for offline sensing replay.
func (r *Record) View() comm.View {
	rounds := make([]comm.RoundView, len(r.RoundData))
	for i, rd := range r.RoundData {
		rounds[i] = comm.RoundView{
			In: comm.Inbox{
				FromServer: comm.Message(rd.InFromServer),
				FromWorld:  comm.Message(rd.InFromWorld),
			},
			Out: comm.Outbox{
				ToServer: comm.Message(rd.OutToServer),
				ToWorld:  comm.Message(rd.OutToWorld),
			},
		}
	}
	return comm.View{Rounds: rounds}
}

// JudgeCompact re-evaluates a compact goal's referee on the recorded
// history with the given convergence window.
func (r *Record) JudgeCompact(g goal.CompactGoal, window int) bool {
	return goal.CompactAchieved(g, r.History(), window)
}

// ReplaySense re-runs a sensing function over the recorded view and
// returns its final indication.
func (r *Record) ReplaySense(s sensing.Sense) bool {
	return sensing.Replay(s, r.View())
}
