package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// runPrinting produces a real execution to serialize.
func runPrinting(t *testing.T) (*system.Result, *printing.Goal) {
	t.Helper()
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	g := &printing.Goal{}
	res, err := system.Run(u, server.Dialected(&printing.Server{}, fam.Dialect(2)),
		g.NewWorld(goal.Env{}), system.Config{MaxRounds: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()

	res, g := runPrinting(t)
	rec, err := FromResult(res, "printing-demo", 9)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if back.Label != "printing-demo" || back.Seed != 9 || back.Rounds != res.Rounds {
		t.Fatalf("metadata lost: %+v", back)
	}
	h := back.History()
	if h.Len() != res.History.Len() {
		t.Fatalf("history length %d != %d", h.Len(), res.History.Len())
	}
	for i := range h.States {
		if h.States[i] != res.History.States[i] {
			t.Fatalf("state %d differs", i)
		}
	}
	v := back.View()
	for i := range v.Rounds {
		if v.Rounds[i] != res.View.Rounds[i] {
			t.Fatalf("view round %d differs", i)
		}
	}
	// Offline judgement must agree with online judgement.
	if !back.JudgeCompact(g, 10) {
		t.Fatal("offline referee disagrees with online achievement")
	}
	if !back.ReplaySense(printing.Sense(0)) {
		t.Fatal("offline sensing replay negative on a successful run")
	}
}

func TestFromResultValidation(t *testing.T) {
	t.Parallel()

	if _, err := FromResult(nil, "x", 0); err == nil {
		t.Fatal("nil result accepted")
	}
	bad := &system.Result{}
	bad.History.States = append(bad.History.States, "s")
	if _, err := FromResult(bad, "x", 0); err == nil {
		t.Fatal("mismatched history/view accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	t.Parallel()

	if _, err := Decode(strings.NewReader(`{"version": 99, "rounds": 0}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version": 1, "rounds": -5}`)); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestEncodeIsStableJSON(t *testing.T) {
	t.Parallel()

	res, _ := runPrinting(t)
	rec, err := FromResult(res, "demo", 9)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rec.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("encoding not deterministic")
	}
	if !strings.Contains(a.String(), `"version": 1`) {
		t.Fatal("version field missing")
	}
}
