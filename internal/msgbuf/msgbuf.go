// Package msgbuf provides the allocation-discipline substrate for the
// engine's hot path: append-style integer formatting, a cached small-int
// string table, and a capped byte-slice interner.
//
// The three-party round loop formats the same handful of states and
// messages millions of times per sweep. fmt.Sprintf allocates on every
// call; the helpers here let worlds, servers and user strategies build
// those strings into reusable buffers and share the resulting immutable
// strings, so the steady-state loop allocates nothing. All helpers
// produce byte-for-byte the output of the fmt/strconv calls they replace
// — callers rely on that to keep reports and histories byte-identical.
//
// The package is dependency-free by design so every layer (comm, goal
// packages, the engine) can use it.
package msgbuf

import (
	"strconv"
	"strings"
)

// Cached decimal strings cover the small magnitudes message protocols
// actually use (positions, forces, chunk indices, round counts).
const (
	minCached = -1024
	maxCached = 4096
)

var intCache [maxCached - minCached + 1]string

func init() {
	for n := minCached; n <= maxCached; n++ {
		intCache[n-minCached] = strconv.Itoa(n)
	}
}

// Itoa returns strconv.Itoa(n) without allocating for small magnitudes
// (|n| within the protocol-typical range); larger values fall back to
// strconv.
func Itoa(n int) string {
	if n >= minCached && n <= maxCached {
		return intCache[n-minCached]
	}
	return strconv.Itoa(n)
}

// AppendInt appends the decimal form of n to dst, exactly as
// strconv.Itoa would print it.
func AppendInt(dst []byte, n int) []byte {
	return strconv.AppendInt(dst, int64(n), 10)
}

// AppendUint appends the decimal form of n to dst.
func AppendUint(dst []byte, n uint64) []byte {
	return strconv.AppendUint(dst, n, 10)
}

// Interner deduplicates byte slices into shared immutable strings. It is
// the engine's backing for world-state interning: high-repetition states
// (a vault's two states, a plant's position lattice) collapse to one
// string allocation each, and lookups of already-seen bytes allocate
// nothing (the map index is a zero-copy []byte→string conversion).
//
// The entry count is capped so pathological state spaces (a counter in
// every snapshot) cannot grow the table without bound. Eviction is
// generational: when the table is full, it is cleared and rebuilt from
// current traffic, so one high-cardinality workload (a recorded
// learning run's ever-growing counters) cannot permanently disable
// interning for every workload that shares the table afterwards —
// interning is a cache, and dropping entries only costs re-allocation,
// never correctness. An Interner is not safe for concurrent use; the
// engine keeps one per worker. The zero value is ready to use with
// DefaultInternCap.
type Interner struct {
	m   map[string]string
	cap int
}

// DefaultInternCap bounds an Interner constructed with cap <= 0.
const DefaultInternCap = 4096

// NewInterner returns an interner holding at most cap distinct strings;
// cap <= 0 means DefaultInternCap.
func NewInterner(cap int) *Interner {
	if cap <= 0 {
		cap = DefaultInternCap
	}
	return &Interner{cap: cap}
}

// Intern returns a string equal to b, shared across calls whenever the
// same bytes were seen before (and table space permits).
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if in.m == nil {
		in.m = make(map[string]string, 16)
		if in.cap <= 0 {
			in.cap = DefaultInternCap
		}
	}
	if len(in.m) >= in.cap {
		// Generational eviction: restart from current traffic rather
		// than serving a table frozen on whatever filled it first.
		clear(in.m)
	}
	in.m[s] = s
	return s
}

// Len reports the number of distinct strings currently interned.
func (in *Interner) Len() int { return len(in.m) }

// Arena is a bump allocator for immutable strings whose values never
// repeat — message streams with unbounded identifiers (a learning run's
// query ids) that no cache or interner can collapse. Individually such
// strings cost one allocation each; an Arena packs them back to back
// into one shared block, so a whole execution's worth costs one block
// allocation.
//
// Safety: the arena only ever appends. Bytes underlying a returned
// string are never rewritten — Reset abandons the current block to the
// strings already carved from it and starts a fresh one — so returned
// strings stay valid forever, exactly like individually allocated ones.
// The block is a strings.Builder, whose String views are the language's
// sanctioned way to expose a growing buffer as immutable strings. An
// Arena is not safe for concurrent use. The zero value is ready to use.
type Arena struct {
	b   strings.Builder
	off int // start of the not-yet-returned tail of the block
	hwm int // high-water mark: bytes used last cycle, sizes the next block
}

// Append copies p into the arena and returns it as a string.
func (a *Arena) Append(p []byte) string {
	if a.b.Cap() == 0 {
		// Fresh block: pre-size to the previous cycle's usage so a
		// steady-state caller pays exactly one allocation per Reset
		// cycle instead of a doubling growth sequence.
		n := a.hwm
		if n < 256 {
			n = 256
		}
		a.b.Grow(n)
	}
	a.b.Write(p)
	s := a.b.String()
	out := s[a.off:]
	a.off = len(s)
	return out
}

// Reset starts a fresh block, abandoning the current one to the strings
// already returned (which remain valid). Call it wherever the owning
// strategy's Reset runs, so each execution reuses the arena's sizing
// without any execution's strings aliasing another's storage.
func (a *Arena) Reset() {
	if used := a.b.Len(); used > a.hwm {
		a.hwm = used
	}
	a.b.Reset()
	a.off = 0
}

// Memo1 is a single-entry memo for pure functions on the hot path: the
// common steady state — a strategy re-sending one command every other
// round — hits the same key repeatedly, so one slot suffices. The zero
// value is ready to use.
type Memo1[K comparable, V any] struct {
	key K
	val V
	ok  bool
}

// Get returns the memoized value for k, if that is what is stored.
func (m *Memo1[K, V]) Get(k K) (V, bool) {
	if m.ok && m.key == k {
		return m.val, true
	}
	var zero V
	return zero, false
}

// Put stores v as the value for k, displacing any previous entry.
func (m *Memo1[K, V]) Put(k K, v V) {
	m.key, m.val, m.ok = k, v, true
}

// Reset clears the memo (dropping any references its entry holds).
func (m *Memo1[K, V]) Reset() {
	var zero Memo1[K, V]
	*m = zero
}

// Table is a lazily-allocated, entry-capped map memo for pure functions
// whose hot keys cycle through a small set (a transfer user's K store
// commands, a dialect's translations). Past the cap, Put is a no-op:
// lookups stay correct, new keys just stop being remembered. The zero
// value is ready to use with DefaultTableCap.
type Table[K comparable, V any] struct {
	m   map[K]V
	cap int
}

// DefaultTableCap bounds a Table that never declared a cap.
const DefaultTableCap = 128

// NewTable returns a table holding at most cap entries; cap <= 0 means
// DefaultTableCap.
func NewTable[K comparable, V any](cap int) *Table[K, V] {
	if cap <= 0 {
		cap = DefaultTableCap
	}
	return &Table[K, V]{cap: cap}
}

// Get returns the memoized value for k.
func (t *Table[K, V]) Get(k K) (V, bool) {
	v, ok := t.m[k]
	return v, ok
}

// Put stores v for k if the table has room.
func (t *Table[K, V]) Put(k K, v V) {
	if t.m == nil {
		t.m = make(map[K]V, 8)
		if t.cap <= 0 {
			t.cap = DefaultTableCap
		}
	}
	if len(t.m) < t.cap {
		t.m[k] = v
	}
}

// Reset clears the table, keeping its storage for reuse.
func (t *Table[K, V]) Reset() { clear(t.m) }
