package msgbuf

import (
	"fmt"
	"strconv"
	"testing"
)

func TestItoaMatchesStrconv(t *testing.T) {
	for _, n := range []int{-2000, -1025, -1024, -1, 0, 1, 99, 100, 1024, 4096, 4097, 1 << 30} {
		if got, want := Itoa(n), strconv.Itoa(n); got != want {
			t.Errorf("Itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestItoaCachedNoAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = Itoa(-1024)
		_ = Itoa(0)
		_ = Itoa(4096)
	})
	if allocs != 0 {
		t.Errorf("cached Itoa allocated %.1f times per run, want 0", allocs)
	}
}

func TestAppendMatchesSprintf(t *testing.T) {
	var buf []byte
	for _, n := range []int{-40, 0, 7, 12345} {
		buf = buf[:0]
		buf = append(buf, "pos="...)
		buf = AppendInt(buf, n)
		if got, want := string(buf), fmt.Sprintf("pos=%d", n); got != want {
			t.Errorf("AppendInt: got %q, want %q", got, want)
		}
	}
	buf = AppendUint(buf[:0], 18446744073709551615)
	if got := string(buf); got != "18446744073709551615" {
		t.Errorf("AppendUint: got %q", got)
	}
}

func TestInternerSharesAndCaps(t *testing.T) {
	in := NewInterner(2)
	a1 := in.Intern([]byte("vault=open"))
	a2 := in.Intern([]byte("vault=open"))
	if a1 != a2 {
		t.Fatal("interner returned unequal strings for equal bytes")
	}
	b := in.Intern([]byte("vault=locked"))
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	// Past the cap: generational eviction clears the table and the new
	// entry starts the next generation — still correct bytes throughout.
	c := in.Intern([]byte("overflow"))
	if c != "overflow" || in.Len() != 1 {
		t.Fatalf("generational Intern: got %q, Len %d (want a fresh 1-entry generation)", c, in.Len())
	}
	c2 := in.Intern([]byte("overflow"))
	if c2 != c || in.Len() != 1 {
		t.Fatal("new generation does not serve its own entries")
	}
	if a1 != "vault=open" || b != "vault=locked" {
		t.Fatal("interned strings corrupted")
	}
}

func TestInternerHitNoAlloc(t *testing.T) {
	in := NewInterner(0)
	key := []byte("state=42")
	in.Intern(key)
	allocs := testing.AllocsPerRun(100, func() { _ = in.Intern(key) })
	if allocs != 0 {
		t.Errorf("interner hit allocated %.1f times per run, want 0", allocs)
	}
}

func TestMemo1(t *testing.T) {
	var m Memo1[string, int]
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty memo returned a hit")
	}
	m.Put("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v after Put", v, ok)
	}
	m.Put("b", 2) // displaces a
	if _, ok := m.Get("a"); ok {
		t.Fatal("displaced key still hit")
	}
	if v, ok := m.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d,%v", v, ok)
	}
	m.Reset()
	if _, ok := m.Get("b"); ok {
		t.Fatal("reset memo returned a hit")
	}
}

func TestTableCapAndReset(t *testing.T) {
	tb := NewTable[string, int](2)
	tb.Put("a", 1)
	tb.Put("b", 2)
	tb.Put("c", 3) // past the cap: dropped
	if _, ok := tb.Get("c"); ok {
		t.Fatal("capped table remembered a key past its cap")
	}
	if v, ok := tb.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	tb.Reset()
	if _, ok := tb.Get("a"); ok {
		t.Fatal("reset table returned a hit")
	}
	tb.Put("d", 4) // storage reused, cap still enforced from scratch
	if v, ok := tb.Get("d"); !ok || v != 4 {
		t.Fatalf("Get(d) after reset = %d,%v", v, ok)
	}

	var zero Table[string, int]
	zero.Put("x", 9)
	if v, ok := zero.Get("x"); !ok || v != 9 {
		t.Fatalf("zero-value table Get(x) = %d,%v", v, ok)
	}
}

func TestTableHitNoAlloc(t *testing.T) {
	var tb Table[string, string]
	tb.Put("k", "v")
	allocs := testing.AllocsPerRun(100, func() { tb.Get("k") })
	if allocs != 0 {
		t.Errorf("table hit allocated %.1f times per run, want 0", allocs)
	}
}
