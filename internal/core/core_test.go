package core

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/goals/printing"
)

func TestQuickstartFlow(t *testing.T) {
	t.Parallel()

	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 16)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewCompactUniversalUser(printing.Enum(fam), printing.Sense(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := DialectedServer(&printing.Server{}, fam.Dialect(11))
	g := &printing.Goal{}

	achieved, res, err := AchieveCompact(g, user, srv, RunConfig{MaxRounds: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !achieved {
		t.Fatal("quickstart flow did not achieve the printing goal")
	}
	if res.Rounds == 0 || res.History.Len() == 0 {
		t.Fatal("empty execution record")
	}
}

func TestAchieveCompactPropagatesErrors(t *testing.T) {
	t.Parallel()

	g := &printing.Goal{}
	if _, _, err := AchieveCompact(g, nil, nil, RunConfig{}); err == nil {
		t.Fatal("nil parties accepted")
	}
}
