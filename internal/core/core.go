// Package core is the façade of the goal-oriented communication library:
// one import that surfaces the model (strategies, goals, worlds), the
// feedback notion (sensing), the execution engine and the paper's main
// constructions (universal users for compact and finite goals).
//
// The theory in one paragraph: communication is a means to a goal, not an
// end. A goal fixes the world's strategy and a referee over world-state
// histories; the user must achieve the goal with an adversarially chosen
// server from a class, despite having no agreed protocol. Theorem 1 of
// Goldreich–Juba–Sudan (PODC 2011): if sensing — Boolean feedback computed
// from the user's own view — is safe and viable for the goal and class,
// then a universal user exists: enumerate candidate strategies and let
// sensing drive the search.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	fam, _ := dialect.NewWordFamily(printing.Vocabulary(), 16)
//	user, _ := core.NewCompactUniversalUser(printing.Enum(fam), printing.Sense(0))
//	srv := core.DialectedServer(&printing.Server{}, fam.Dialect(11))
//	g := &printing.Goal{}
//	achieved, res, _ := core.AchieveCompact(g, user, srv, core.RunConfig{MaxRounds: 800})
//
// Sub-packages (importable directly for finer control):
//
//	comm       messages, strategies, views, histories
//	system     the synchronous three-party execution engine
//	goal       goals, referees (finite / compact), worlds
//	sensing    sensing functions, safety/viability combinators
//	enumerate  total strategy enumerations (incl. finite-state transducers)
//	universal  Theorem 1: CompactUser and the Levin-style FiniteRunner
//	dialect    invertible message encodings (the language-mismatch model)
//	server     server classes: dialected, delayed, noisy, obstinate
//	beliefs    prior-weighted enumeration (compatible beliefs)
//	goals/...  concrete goals: printing, treasure, delegation, learning
//	multiparty symmetric multi-party goals reduced to two-party sessions
//	harness    experiment tables plus safety/viability certification
package core

import (
	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// Core model types, re-exported for single-import consumers.
type (
	// Message is one unit of communication on a directed channel.
	Message = comm.Message
	// Strategy is a party's (probabilistic) state-transition behaviour.
	Strategy = comm.Strategy
	// View is the user-visible portion of an execution.
	View = comm.View
	// History is the world-state sequence referees judge.
	History = comm.History

	// Goal fixes the world and its referee; CompactGoal and FiniteGoal
	// refine it per the two families of the theory.
	Goal = goal.Goal
	// CompactGoal is a goal over infinite executions.
	CompactGoal = goal.CompactGoal
	// FiniteGoal is a goal decided when the user halts.
	FiniteGoal = goal.FiniteGoal
	// World is the third party whose states carry the goal's semantics.
	World = goal.World
	// Env is the world's non-deterministic choice.
	Env = goal.Env

	// Sense is the Boolean feedback of the theory.
	Sense = sensing.Sense
	// Enumerator is a total, indexable class of user strategies.
	Enumerator = enumerate.Enumerator
	// Dialect is an invertible message encoding.
	Dialect = dialect.Dialect

	// CompactUniversalUser is the enumerate-and-switch construction.
	CompactUniversalUser = universal.CompactUser
	// FiniteRunner is the Levin-style finite-goal construction.
	FiniteRunner = universal.FiniteRunner

	// RunConfig configures one execution.
	RunConfig = system.Config
	// RunResult records one execution.
	RunResult = system.Result

	// Trial specifies one independent execution inside a batch.
	Trial = system.Trial
	// BatchConfig controls batch scheduling (worker pool size, seed
	// derivation).
	BatchConfig = system.BatchConfig
	// RecordPolicy selects how much of an execution is materialized
	// (full, trailing window, or off).
	RecordPolicy = system.RecordPolicy
)

// NewCompactUniversalUser builds the paper's compact-goal universal user
// from a candidate enumeration and a sensing function.
func NewCompactUniversalUser(enum Enumerator, sense Sense) (*CompactUniversalUser, error) {
	return universal.NewCompactUser(enum, sense)
}

// DialectedServer wraps a native-protocol server so that its wire language
// on the user channel is d.
func DialectedServer(inner Strategy, d Dialect) Strategy {
	return server.Dialected(inner, d)
}

// Run executes (user, server, world) under cfg.
func Run(user, srv Strategy, w World, cfg RunConfig) (*RunResult, error) {
	return system.Run(user, srv, w, cfg)
}

// RunBatch executes independent trials across a bounded worker pool,
// returning results in submission order; parallel output is identical to
// serial output. See system.RunBatch.
func RunBatch(trials []Trial, cfg BatchConfig) ([]*RunResult, error) {
	return system.RunBatch(trials, cfg)
}

// DefaultWindow is the convergence window used by AchieveCompact.
const DefaultWindow = 10

// AchieveCompact runs the system on the compact goal's world (environment
// choice 0) and reports whether the goal was achieved on the bounded
// horizon, alongside the full execution record.
func AchieveCompact(g CompactGoal, user, srv Strategy, cfg RunConfig) (bool, *RunResult, error) {
	res, err := system.Run(user, srv, g.NewWorld(Env{Seed: cfg.Seed}), cfg)
	if err != nil {
		return false, nil, err
	}
	return goal.CompactAchieved(g, res.History, DefaultWindow), res, nil
}
