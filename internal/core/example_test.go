package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/goals/printing"
)

// Example demonstrates the one-minute flow: a universal user achieves the
// printing goal with a printer whose dialect it is never told.
func Example() {
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), 16)
	if err != nil {
		fmt.Println("family:", err)
		return
	}

	// The adversary picks dialect 11; the user only knows the class.
	srv := core.DialectedServer(&printing.Server{}, fam.Dialect(11))
	user, err := core.NewCompactUniversalUser(printing.Enum(fam), printing.Sense(0))
	if err != nil {
		fmt.Println("user:", err)
		return
	}

	achieved, _, err := core.AchieveCompact(&printing.Goal{}, user, srv,
		core.RunConfig{MaxRounds: 800, Seed: 1})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("achieved:", achieved)
	fmt.Println("final candidate dialect:", user.Index()%fam.Size())
	// Output:
	// achieved: true
	// final candidate dialect: 11
}
