package system

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/goal"
	"repro/internal/xrand"
)

// rngUser emits one random number per round — seed-sensitive, so batches
// exercise per-trial seed derivation and determinism.
type rngUser struct{ r *xrand.Rand }

func (u *rngUser) Reset(r *xrand.Rand) {
	if r == nil {
		r = xrand.New(0)
	}
	u.r = r
}

func (u *rngUser) Step(comm.Inbox) (comm.Outbox, error) {
	return comm.Outbox{ToWorld: comm.Message(strconv.FormatUint(u.r.Uint64()%1000, 10))}, nil
}

// failingUser errors at step FailAt.
type failingUser struct {
	FailAt int
	step   int
}

func (u *failingUser) Reset(*xrand.Rand) { u.step = 0 }

func (u *failingUser) Step(comm.Inbox) (comm.Outbox, error) {
	if u.step == u.FailAt {
		return comm.Outbox{}, errors.New("boom")
	}
	u.step++
	return comm.Outbox{}, nil
}

func rngTrials(n int, rounds int) []Trial {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{
			User:   func() (comm.Strategy, error) { return &rngUser{}, nil },
			Server: func() comm.Strategy { return &commtest.Echo{} },
			World:  func() goal.World { return &commtest.CountingWorld{} },
			Config: Config{MaxRounds: rounds, Seed: uint64(i + 1)},
		}
	}
	return trials
}

func TestRunBatchMatchesSerialAtEveryParallelism(t *testing.T) {
	const n, rounds = 17, 40
	mkTrials := func() []Trial { return rngTrials(n, rounds) }

	want, err := RunBatch(mkTrials(), BatchConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 8, 32} {
		got, err := RunBatch(mkTrials(), BatchConfig{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != n {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), n)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].History, want[i].History) ||
				!reflect.DeepEqual(got[i].View, want[i].View) ||
				got[i].Rounds != want[i].Rounds || got[i].Halted != want[i].Halted {
				t.Fatalf("parallelism %d: trial %d diverges from serial", par, i)
			}
		}
	}
}

func TestRunBatchSeedDerivationDeterministic(t *testing.T) {
	const n = 9
	run := func(par int) []*Result {
		res, err := RunBatch(rngTrials(n, 20), BatchConfig{Parallelism: par, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), [](*Result)(run(4))
	for i := range a {
		if !reflect.DeepEqual(a[i].History, b[i].History) {
			t.Fatalf("trial %d: derived-seed run differs between parallelism levels", i)
		}
	}
	// The batch seed must override per-trial seeds: two trials with
	// identical Trial.Config.Seed still get distinct streams.
	trials := rngTrials(2, 20)
	trials[0].Config.Seed = 7
	trials[1].Config.Seed = 7
	res, err := RunBatch(trials, BatchConfig{Parallelism: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res[0].History, res[1].History) {
		t.Fatal("derived seeds did not differentiate identical trials")
	}
	// And DeriveSeed must reproduce a single trial in isolation.
	single, err := Run(&rngUser{}, &commtest.Echo{}, &commtest.CountingWorld{},
		Config{MaxRounds: 20, Seed: DeriveSeed(42, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single.History, res[1].History) {
		t.Fatal("DeriveSeed does not reproduce trial 1")
	}
}

func TestRunBatchReportsLowestIndexError(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		trials := rngTrials(24, 10)
		for _, bad := range []int{19, 5, 11} {
			trials[bad].User = func() (comm.Strategy, error) {
				return &failingUser{FailAt: 3}, nil
			}
		}
		_, err := RunBatch(trials, BatchConfig{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: expected error", par)
		}
		want := fmt.Sprintf("system: trial %d:", 5)
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("parallelism %d: error %q does not name lowest failing trial 5", par, got)
		}
	}
}

func TestRunEachToleratesPerTrialFailures(t *testing.T) {
	trials := rngTrials(8, 10)
	trials[2].User = func() (comm.Strategy, error) { return &failingUser{FailAt: 0}, nil }
	trials[6].User = func() (comm.Strategy, error) { return nil, errors.New("no user") }
	results, errs := RunEach(trials, BatchConfig{Parallelism: 4})
	for i := range trials {
		failed := i == 2 || i == 6
		if failed && (errs[i] == nil || results[i] != nil) {
			t.Fatalf("trial %d: want failure, got err=%v res=%v", i, errs[i], results[i])
		}
		if !failed && (errs[i] != nil || results[i] == nil) {
			t.Fatalf("trial %d: want success, got err=%v", i, errs[i])
		}
	}
}

func TestRunBatchEmptyAndNilFactories(t *testing.T) {
	res, err := RunBatch(nil, BatchConfig{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	_, err = RunBatch([]Trial{{}}, BatchConfig{})
	if err == nil {
		t.Fatal("nil factories must fail")
	}
}

func TestRecordWindowMatchesFullTail(t *testing.T) {
	const rounds, window = 37, 10
	mk := func(rec RecordPolicy) *Result {
		res, err := Run(&rngUser{}, &commtest.Echo{}, &commtest.CountingWorld{},
			Config{MaxRounds: rounds, Seed: 5, Record: rec})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full, windowed := mk(RecordFull), mk(RecordWindow(window))

	if windowed.Rounds != full.Rounds || windowed.History.Len() != full.History.Len() {
		t.Fatalf("windowed logical length %d/%d, want %d", windowed.Rounds,
			windowed.History.Len(), full.History.Len())
	}
	if windowed.History.Dropped != rounds-window || len(windowed.History.States) != window {
		t.Fatalf("windowed retention: dropped=%d stored=%d",
			windowed.History.Dropped, len(windowed.History.States))
	}
	if !reflect.DeepEqual(windowed.History.States, full.History.States[rounds-window:]) {
		t.Fatal("windowed history tail differs from full recording")
	}
	if !reflect.DeepEqual(windowed.View.Rounds, full.View.Rounds[rounds-window:]) {
		t.Fatal("windowed view tail differs from full recording")
	}
	if windowed.History.Last() != full.History.Last() {
		t.Fatal("Last() differs under windowed retention")
	}
	// Prefixes within the window are judgeable and identical.
	for n := full.History.Len() - window + 1; n <= full.History.Len(); n++ {
		if windowed.History.Prefix(n).Last() != full.History.Prefix(n).Last() {
			t.Fatalf("prefix %d differs", n)
		}
	}

	// A run shorter than the window keeps everything.
	short, err := Run(&commtest.Script{HaltAfter: 4}, &commtest.Echo{}, &commtest.CountingWorld{},
		Config{MaxRounds: rounds, Seed: 5, Record: RecordWindow(window)})
	if err != nil {
		t.Fatal(err)
	}
	if short.History.Dropped != 0 || short.History.Len() != short.Rounds {
		t.Fatalf("short run: dropped=%d len=%d rounds=%d",
			short.History.Dropped, short.History.Len(), short.Rounds)
	}
}

func TestRecordOffKeepsOnlyCounters(t *testing.T) {
	res, err := Run(&rngUser{}, &commtest.Echo{}, &commtest.CountingWorld{},
		Config{MaxRounds: 25, Seed: 9, Record: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.States) != 0 || len(res.View.Rounds) != 0 {
		t.Fatal("off retention recorded data")
	}
	if res.Rounds != 25 || res.History.Len() != 25 || res.View.Len() != 25 {
		t.Fatalf("off retention lost counters: rounds=%d len=%d", res.Rounds, res.History.Len())
	}
}

func TestOnRoundFiresUnderEveryRetention(t *testing.T) {
	for _, rec := range []RecordPolicy{RecordFull, RecordWindow(3), RecordOff} {
		var rounds int
		var lastState comm.WorldState
		_, err := Run(&rngUser{}, &commtest.Echo{}, &commtest.CountingWorld{},
			Config{MaxRounds: 12, Seed: 2, Record: rec,
				OnRound: func(round int, rv comm.RoundView, state comm.WorldState) {
					rounds++
					lastState = state
				}})
		if err != nil {
			t.Fatal(err)
		}
		if rounds != 12 || lastState == "" {
			t.Fatalf("%v: OnRound fired %d times (last %q)", rec, rounds, lastState)
		}
	}
}

func TestReleaseResultRecyclesStorage(t *testing.T) {
	run := func() *Result {
		res, err := Run(&rngUser{}, &commtest.Echo{}, &commtest.CountingWorld{},
			Config{MaxRounds: 30, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	states := append([]comm.WorldState(nil), first.History.States...)
	ReleaseResult(first)
	ReleaseResult(nil) // must not panic
	second := run()
	if !reflect.DeepEqual(second.History.States, states) {
		t.Fatal("recycled result differs from fresh run")
	}
}

func TestRecordPolicyString(t *testing.T) {
	cases := map[string]RecordPolicy{
		"full":      RecordFull,
		"off":       RecordOff,
		"window(7)": RecordWindow(7),
		"window(1)": RecordWindow(0),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

// TestRunBatchTrialBatchInvariant pins the ISSUE 6 batching contract:
// TrialBatch controls only how many consecutive trials a worker claims
// per counter bump, never which result lands in which slot — every
// batch size at every parallelism reproduces the serial run exactly.
func TestRunBatchTrialBatchInvariant(t *testing.T) {
	const n, rounds = 23, 40
	mkTrials := func() []Trial { return rngTrials(n, rounds) }

	want, err := RunBatch(mkTrials(), BatchConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		for _, batch := range []int{0, 1, 3, 16, 64} {
			got, err := RunBatch(mkTrials(), BatchConfig{Parallelism: par, TrialBatch: batch})
			if err != nil {
				t.Fatalf("par %d batch %d: %v", par, batch, err)
			}
			if len(got) != n {
				t.Fatalf("par %d batch %d: %d results, want %d", par, batch, len(got), n)
			}
			for i := range got {
				if !reflect.DeepEqual(got[i].History, want[i].History) ||
					!reflect.DeepEqual(got[i].View, want[i].View) ||
					got[i].Rounds != want[i].Rounds || got[i].Halted != want[i].Halted {
					t.Fatalf("par %d batch %d: trial %d diverges from serial", par, batch, i)
				}
			}
		}
	}
}
