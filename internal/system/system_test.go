package system

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/commtest"
)

func TestRunRejectsNilParties(t *testing.T) {
	t.Parallel()

	w := &commtest.CountingWorld{}
	s := &commtest.Silent{}
	if _, err := Run(nil, s, w, Config{}); err == nil {
		t.Error("nil user accepted")
	}
	if _, err := Run(s, nil, w, Config{}); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := Run(s, s, nil, Config{}); err == nil {
		t.Error("nil world accepted")
	}
}

func TestRunHorizon(t *testing.T) {
	t.Parallel()

	res, err := Run(&commtest.Silent{}, &commtest.Silent{}, &commtest.CountingWorld{},
		Config{MaxRounds: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 17 {
		t.Fatalf("Rounds = %d, want 17", res.Rounds)
	}
	if res.Halted {
		t.Fatal("silent user reported halted")
	}
	if res.History.Len() != 17 || res.View.Len() != 17 {
		t.Fatalf("history/view lengths: %d/%d", res.History.Len(), res.View.Len())
	}
}

func TestRunDefaultHorizon(t *testing.T) {
	t.Parallel()

	res, err := Run(&commtest.Silent{}, &commtest.Silent{}, &commtest.CountingWorld{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != DefaultMaxRounds {
		t.Fatalf("Rounds = %d, want %d", res.Rounds, DefaultMaxRounds)
	}
}

func TestRunHaltStopsEarly(t *testing.T) {
	t.Parallel()

	u := &commtest.Script{HaltAfter: 3}
	res, err := Run(u, &commtest.Silent{}, &commtest.CountingWorld{}, Config{MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("not halted")
	}
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", res.Rounds)
	}
}

func TestMessageDeliveryNextRound(t *testing.T) {
	t.Parallel()

	// User sends "hello" to world in round 0; the world must see it in
	// round 1, so the round-1 snapshot (index 1) records it.
	u := &commtest.Script{Outs: []comm.Outbox{{ToWorld: "hello"}}}
	res, err := Run(u, &commtest.Silent{}, &commtest.CountingWorld{}, Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := commtest.ParseCounting(res.History.States[0]); got != "" {
		t.Fatalf("round 0 snapshot already has user msg %q", got)
	}
	if got := commtest.ParseCounting(res.History.States[1]); got != "hello" {
		t.Fatalf("round 1 snapshot user msg = %q, want hello", got)
	}
}

func TestUserServerRoundTrip(t *testing.T) {
	t.Parallel()

	// User sends "ping" to the echo server in round 0; the server sees
	// it in round 1 and echoes; the user receives the echo in round 2.
	u := &commtest.Script{Outs: []comm.Outbox{{ToServer: "ping"}}}
	res, err := Run(u, &commtest.Echo{Prefix: "re:"}, &commtest.CountingWorld{},
		Config{MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.View.Rounds[2].In.FromServer; got != "re:ping" {
		t.Fatalf("round 2 user inbox from server = %q, want re:ping", got)
	}
	for r := 0; r < 2; r++ {
		if got := res.View.Rounds[r].In.FromServer; !got.Empty() {
			t.Fatalf("round %d already has server msg %q", r, got)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	t.Parallel()

	run := func() *Result {
		u := &commtest.Script{Outs: []comm.Outbox{{ToServer: "a"}, {ToWorld: "b"}}}
		res, err := Run(u, &commtest.Echo{}, &commtest.CountingWorld{},
			Config{MaxRounds: 20, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.History.States {
		if a.History.States[i] != b.History.States[i] {
			t.Fatalf("history diverged at %d", i)
		}
	}
}

func TestRunUserErrorPropagates(t *testing.T) {
	t.Parallel()

	sentinel := errors.New("boom")
	_, err := Run(&commtest.ErrStrategy{Err: sentinel}, &commtest.Silent{},
		&commtest.CountingWorld{}, Config{MaxRounds: 5})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "user") {
		t.Fatalf("error lacks party context: %v", err)
	}
}

func TestRunServerErrorPropagates(t *testing.T) {
	t.Parallel()

	sentinel := errors.New("server down")
	_, err := Run(&commtest.Silent{}, &commtest.ErrStrategy{Err: sentinel},
		&commtest.CountingWorld{}, Config{MaxRounds: 5})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestOnRoundCallback(t *testing.T) {
	t.Parallel()

	var rounds []int
	var states []comm.WorldState
	cfg := Config{
		MaxRounds: 5,
		OnRound: func(round int, rv comm.RoundView, state comm.WorldState) {
			rounds = append(rounds, round)
			states = append(states, state)
		},
	}
	res, err := Run(&commtest.Silent{}, &commtest.Silent{}, &commtest.CountingWorld{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Fatalf("callback fired %d times, want 5", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("round sequence wrong: %v", rounds)
		}
		if states[i] != res.History.States[i] {
			t.Fatalf("callback state %d disagrees with history", i)
		}
	}
}

func TestViewMatchesScript(t *testing.T) {
	t.Parallel()

	outs := []comm.Outbox{{ToServer: "x"}, {ToWorld: "y"}, {ToUser: ""}}
	u := &commtest.Script{Outs: outs}
	res, err := Run(u, &commtest.Silent{}, &commtest.CountingWorld{}, Config{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range outs {
		if got := res.View.Rounds[i].Out; got != want {
			t.Fatalf("round %d out = %+v, want %+v", i, got, want)
		}
	}
}
