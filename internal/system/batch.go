package system

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/goal"
)

// Trial specifies one independent (user, server, world) execution inside a
// batch. The factories are invoked exactly once each, on the worker
// goroutine that runs the trial, so construction cost parallelizes along
// with execution; they must not share mutable state across trials (a
// factory may return a shared value only if that value is stateless, like
// an immutable server).
type Trial struct {
	// User constructs the user strategy; a non-nil error fails the
	// trial.
	User func() (comm.Strategy, error)

	// Server constructs the server strategy.
	Server func() comm.Strategy

	// World constructs the world.
	World func() goal.World

	// Config is the per-trial engine configuration. BatchConfig.Seed,
	// when set, overrides Config.Seed with a derived per-trial seed.
	Config Config
}

// BatchConfig controls batch scheduling.
type BatchConfig struct {
	// Parallelism bounds the worker pool; values < 1 mean GOMAXPROCS.
	// Results are byte-identical at every parallelism level, so 1 is a
	// debugging aid, not a semantic switch.
	Parallelism int

	// Seed, when nonzero, gives trial i the seed DeriveSeed(Seed, i),
	// overriding each Trial.Config.Seed. Leave 0 when trials carry
	// their own seeds.
	Seed uint64

	// TrialBatch is the number of consecutive trials a worker claims per
	// scheduling step; values < 1 mean 1. Larger batches amortize the
	// shared-counter contention of very short trials across K runs.
	// Because every trial's result lands in its submission-order slot and
	// seeds derive from the trial index alone, batching never changes any
	// output — only which worker runs which trial.
	TrialBatch int
}

func (cfg BatchConfig) workers(n int) int {
	w := cfg.Parallelism
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// DeriveSeed maps a batch root seed and a trial index to an independent
// per-trial seed (splitmix64 of the index under the root). It is the
// derivation RunBatch applies when BatchConfig.Seed is nonzero, exported so
// callers can reproduce any single trial in isolation.
func DeriveSeed(root uint64, trial int) uint64 {
	z := root + 0x9E3779B97F4A7C15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RunBatch executes every trial across a bounded worker pool and returns
// the results in submission order, so parallel output is identical to
// serial output. On failure it returns the error of the lowest-index
// failing trial (deterministically, regardless of scheduling) and no
// results.
func RunBatch(trials []Trial, cfg BatchConfig) ([]*Result, error) {
	results, errs := runPool(trials, cfg, true)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("system: trial %d: %w", i, err)
		}
	}
	return results, nil
}

// RunEach executes every trial like RunBatch but tolerates individual
// failures: it always returns one result and one error per trial, in
// submission order (results[i] is nil exactly where errs[i] is non-nil).
// Use it for certification sweeps that treat a failing trial as data
// rather than as a reason to abort.
func RunEach(trials []Trial, cfg BatchConfig) (results []*Result, errs []error) {
	return runPool(trials, cfg, false)
}

// runPool is the shared scheduler. With failFast, trials beyond the
// lowest-index failure observed so far may be skipped (their slots stay
// nil): every trial below any failure still runs, so the minimal failing
// index — the one RunBatch reports — is always found.
func runPool(trials []Trial, cfg BatchConfig, failFast bool) ([]*Result, []error) {
	n := len(trials)
	results := make([]*Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}

	workers := cfg.workers(n)
	if workers <= 1 {
		// One scratch (snapshot buffer + intern table) for the whole
		// batch: states repeated across a chunk's trials intern to the
		// same shared strings.
		scr := scratchPool.Get().(*snapScratch)
		mBatchClaims.Inc()
		for i := range trials {
			results[i], errs[i] = runTrial(&trials[i], i, cfg, scr)
			if errs[i] != nil && failFast {
				break
			}
		}
		scratchPool.Put(scr)
		return results, errs
	}

	batch := int64(cfg.TrialBatch)
	if batch < 1 {
		batch = 1
	}

	var (
		next   atomic.Int64
		failed atomic.Int64
		wg     sync.WaitGroup
	)
	failed.Store(int64(n)) // sentinel: no failure yet

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch, reused across every trial this worker
			// runs; scratches are never shared between goroutines.
			scr := scratchPool.Get().(*snapScratch)
			defer scratchPool.Put(scr)
			for {
				// Claim the next contiguous block of trial indices.
				base := next.Add(batch) - batch
				if base >= int64(n) {
					return
				}
				mBatchClaims.Inc()
				end := base + batch
				if end > int64(n) {
					end = int64(n)
				}
				for i := base; i < end; i++ {
					if failFast && i > failed.Load() {
						continue
					}
					res, err := runTrial(&trials[i], int(i), cfg, scr)
					results[i], errs[i] = res, err
					if err != nil {
						// CAS-min the failure index.
						for {
							cur := failed.Load()
							if i >= cur || failed.CompareAndSwap(cur, i) {
								break
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// runTrial constructs one trial's parties and executes it with the
// worker's reusable snapshot scratch.
func runTrial(t *Trial, i int, bcfg BatchConfig, scr *snapScratch) (*Result, error) {
	mTrialsStarted.Inc()
	if t.User == nil || t.Server == nil || t.World == nil {
		mTrialsFinished.Inc()
		mTrialErrors.Inc()
		return nil, errors.New("system: trial needs User, Server and World factories")
	}
	user, err := t.User()
	if err != nil {
		mTrialsFinished.Inc()
		mTrialErrors.Inc()
		return nil, err
	}
	cfg := t.Config
	if bcfg.Seed != 0 {
		cfg.Seed = DeriveSeed(bcfg.Seed, i)
	}
	res, err := run(user, t.Server(), t.World(), cfg, scr)
	mTrialsFinished.Inc()
	if err != nil {
		mTrialErrors.Inc()
	} else if res != nil {
		mRounds.Add(int64(res.Rounds))
	}
	return res, err
}
