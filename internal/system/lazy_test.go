package system

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/xrand"
)

// countingWorld counts Snapshot and AppendSnapshot calls so the tests
// below can pin the engine's lazy-snapshot contract.
type countingWorld struct {
	snaps   int
	appends int
}

func (w *countingWorld) Reset(*xrand.Rand)                    { w.snaps, w.appends = 0, 0 }
func (w *countingWorld) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }
func (w *countingWorld) Snapshot() comm.WorldState {
	w.snaps++
	return "counted"
}

// appendingWorld additionally implements goal.StateAppender.
type appendingWorld struct{ countingWorld }

func (w *appendingWorld) AppendSnapshot(dst []byte) []byte {
	w.appends++
	return append(dst, "counted"...)
}

var _ goal.StateAppender = (*appendingWorld)(nil)

type silentUser struct{}

func (silentUser) Reset(*xrand.Rand)                    {}
func (silentUser) Step(comm.Inbox) (comm.Outbox, error) { return comm.Outbox{}, nil }

// TestLazySnapshotSkipsSerialization pins the engine fix: with recording
// off and no OnRound consumer, the round loop must never serialize the
// world — zero Snapshot (and AppendSnapshot) calls, pure waste otherwise.
func TestLazySnapshotSkipsSerialization(t *testing.T) {
	w := &appendingWorld{}
	res, err := Run(silentUser{}, silentUser{}, w, Config{MaxRounds: 50, Seed: 1, Record: RecordOff})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 50 {
		t.Fatalf("Rounds = %d, want 50", res.Rounds)
	}
	if w.snaps != 0 || w.appends != 0 {
		t.Errorf("RecordOff without OnRound serialized the world: %d Snapshot, %d AppendSnapshot calls, want 0", w.snaps, w.appends)
	}
	ReleaseResult(res)
}

// TestLazySnapshotLiveHookStillSkips pins that OnRoundLive — the sweep
// tracker hook — does not force materialization: the hook sees the live
// world, not a snapshot.
func TestLazySnapshotLiveHookStillSkips(t *testing.T) {
	w := &appendingWorld{}
	live := 0
	cfg := Config{MaxRounds: 30, Seed: 1, Record: RecordOff,
		OnRoundLive: func(round int, rv comm.RoundView, lw goal.World) {
			if lw != goal.World(w) {
				t.Fatal("OnRoundLive did not receive the live world")
			}
			live++
		}}
	res, err := Run(silentUser{}, silentUser{}, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live != 30 {
		t.Fatalf("OnRoundLive fired %d times, want 30", live)
	}
	if w.snaps != 0 || w.appends != 0 {
		t.Errorf("OnRoundLive forced serialization: %d Snapshot, %d AppendSnapshot calls, want 0", w.snaps, w.appends)
	}
	ReleaseResult(res)
}

// TestSnapshotConsumersStillServed pins the other side of the contract:
// recording policies and OnRound still materialize one state per round,
// via the buffer-backed path when the world provides it.
func TestSnapshotConsumersStillServed(t *testing.T) {
	t.Run("record-full", func(t *testing.T) {
		w := &appendingWorld{}
		res, err := Run(silentUser{}, silentUser{}, w, Config{MaxRounds: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if w.appends != 20 {
			t.Errorf("AppendSnapshot called %d times under full recording, want 20", w.appends)
		}
		if w.snaps != 0 {
			t.Errorf("Snapshot called %d times although the world is a StateAppender, want 0", w.snaps)
		}
		if got := res.History.Len(); got != 20 {
			t.Errorf("history length %d, want 20", got)
		}
		for _, st := range res.History.States {
			if st != "counted" {
				t.Fatalf("recorded state %q, want %q", st, "counted")
			}
		}
		ReleaseResult(res)
	})
	t.Run("onround-plain-world", func(t *testing.T) {
		w := &countingWorld{}
		states := 0
		cfg := Config{MaxRounds: 20, Seed: 1, Record: RecordOff,
			OnRound: func(round int, rv comm.RoundView, state comm.WorldState) {
				if state != "counted" {
					t.Fatalf("OnRound state %q, want %q", state, "counted")
				}
				states++
			}}
		res, err := Run(silentUser{}, silentUser{}, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if states != 20 || w.snaps != 20 {
			t.Errorf("OnRound saw %d states from %d Snapshot calls, want 20/20", states, w.snaps)
		}
		ReleaseResult(res)
	})
}

// mutableWorld exposes distinct states so interning can be checked for
// correctness (equal bytes, not stale entries).
type mutableWorld struct {
	round int
}

func (w *mutableWorld) Reset(*xrand.Rand) { w.round = 0 }
func (w *mutableWorld) Step(comm.Inbox) (comm.Outbox, error) {
	w.round++
	return comm.Outbox{}, nil
}
func (w *mutableWorld) Snapshot() comm.WorldState {
	if w.round%2 == 0 {
		return "even"
	}
	return "odd"
}
func (w *mutableWorld) AppendSnapshot(dst []byte) []byte {
	return append(dst, w.Snapshot()...)
}

// TestInterningPreservesBytes pins that the intern cache returns the
// right bytes per round (alternating states must not collapse or go
// stale) — the "interning can't change output" half of the StateAppender
// contract.
func TestInterningPreservesBytes(t *testing.T) {
	res, err := Run(silentUser{}, silentUser{}, &mutableWorld{}, Config{MaxRounds: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.History.States {
		want := comm.WorldState("odd")
		if (i+1)%2 == 0 {
			want = "even"
		}
		if st != want {
			t.Fatalf("round %d state %q, want %q", i, st, want)
		}
	}
	// Storage sharing itself (one allocation per distinct state, not per
	// round) is pinned where it is observable: msgbuf's
	// TestInternerHitNoAlloc and the per-goal budgets in alloc_test.go.
	ReleaseResult(res)
}
