// Package system implements the execution engine for the three-party
// (user, server, world) model.
//
// Execution proceeds in rounds. In each round every party consumes the
// messages sent to it in the previous round and produces messages to be
// delivered in the next round; after the world's step its state is
// snapshotted into the history that referees judge. A single execution
// (Run) is single-goroutine and fully deterministic given Config.Seed.
//
// Beyond single executions the package provides a batch scheduler:
// RunBatch and RunEach fan independent Trial specs across a bounded worker
// pool, delivering results in submission order so that parallel output is
// identical to serial output. Config.Record selects how much of each
// execution is materialized (RecordFull, RecordWindow, RecordOff) — hot
// paths that only consult a trailing window of the history can skip
// recording the rest, and ReleaseResult recycles Result storage across
// runs.
package system

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/msgbuf"
	"repro/internal/xrand"
)

// DefaultMaxRounds bounds executions whose configuration leaves MaxRounds
// unset. Compact goals conceptually run forever; the bound is the finite
// horizon on which their referees are evaluated.
const DefaultMaxRounds = 1000

// RecordPolicy selects how much of an execution the engine materializes
// into the Result. The zero value is RecordFull, so existing call sites
// keep complete histories and views by default.
//
// Windowed and off recording change only what is stored, never how the
// parties execute: OnRound still observes every round, and Result.Rounds
// and History.Len report the true execution length. Referees driven from a
// windowed history must judge prefixes by their recent states — true of
// every stock goal in this repository, whose worlds serialize cumulative
// state into each snapshot.
type RecordPolicy struct {
	window int
}

// RecordFull keeps every round's world state and round view (the default).
var RecordFull = RecordPolicy{}

// RecordOff keeps no per-round data at all; the Result carries only
// Rounds and Halted (History and View are empty with Dropped set).
var RecordOff = RecordPolicy{window: -1}

// RecordWindow keeps only the trailing k rounds of history and view,
// ring-buffered during execution. k < 1 is treated as 1.
func RecordWindow(k int) RecordPolicy {
	if k < 1 {
		k = 1
	}
	return RecordPolicy{window: k}
}

// String returns a human-readable policy name.
func (p RecordPolicy) String() string {
	switch {
	case p.window < 0:
		return "off"
	case p.window == 0:
		return "full"
	default:
		return fmt.Sprintf("window(%d)", p.window)
	}
}

// Config controls a single execution.
type Config struct {
	// MaxRounds is the execution horizon; 0 means DefaultMaxRounds.
	MaxRounds int

	// Seed determines all randomness in the execution. The engine
	// derives independent streams for the user, server and world.
	Seed uint64

	// Record selects how much of the execution is materialized into the
	// Result; the zero value records everything. See RecordPolicy.
	Record RecordPolicy

	// OnRound, if non-nil, is invoked after every round with the round
	// index (0-based), the user's view of the round, and the world
	// snapshot — regardless of the Record policy. Used by trace
	// experiments and online sensing. Setting OnRound forces a snapshot
	// per round even under RecordOff; hot-path trackers that only need
	// the live world should use OnRoundLive instead.
	OnRound func(round int, rv comm.RoundView, state comm.WorldState)

	// OnRoundLive, if non-nil, is invoked after every round with the
	// round index, the user's view of the round, and the live world.
	// Unlike OnRound it does not force snapshot materialization, so
	// under RecordOff the engine never serializes a state: trackers
	// judge the world directly (see goal.WorldJudge). The callback must
	// not retain w or call its Step/Reset; it may call Snapshot. Both
	// hooks may be set; OnRound fires first.
	OnRoundLive func(round int, rv comm.RoundView, w goal.World)
}

// Result is the record of one execution.
type Result struct {
	// History is the sequence of world snapshots, one per round (or the
	// trailing window of it, per Config.Record).
	History comm.History

	// View is the user's view of the execution (its inboxes and
	// outboxes, one RoundView per round, windowed per Config.Record).
	View comm.View

	// Rounds is the number of completed rounds.
	Rounds int

	// Halted reports whether the user strategy declared itself halted
	// (relevant to finite goals) before the horizon.
	Halted bool
}

// resultPool recycles Result structs and their slice storage across runs.
// Results are pooled only through ReleaseResult, so callers that retain
// results indefinitely are unaffected.
var resultPool = sync.Pool{New: func() any { return new(Result) }}

// acquireResult returns a zeroed Result whose slice storage may be reused
// from a previously released one.
func acquireResult() *Result {
	return resultPool.Get().(*Result)
}

// ReleaseResult returns a Result's storage to the engine's internal pool.
// The caller must not touch res, its History or its View afterwards; use
// it only when the result (including any slices taken from it) has been
// fully consumed. Releasing results is optional — it trims allocations on
// hot batch loops.
func ReleaseResult(res *Result) {
	if res == nil {
		return
	}
	clear(res.History.States) // drop string references
	clear(res.View.Rounds)
	res.History = comm.History{States: res.History.States[:0]}
	res.View = comm.View{Rounds: res.View.Rounds[:0]}
	res.Rounds = 0
	res.Halted = false
	resultPool.Put(res)
}

// snapScratch is the per-worker scratch state for snapshot
// materialization: a reusable append buffer plus an interner that
// collapses high-repetition states (a vault's two strings, a plant's
// position lattice) into shared allocations. Scratches are pooled and
// threaded through the batch engine so interning amortizes across the
// trials of a chunk.
type snapScratch struct {
	buf    []byte
	intern msgbuf.Interner
}

var scratchPool = sync.Pool{New: func() any { return new(snapScratch) }}

// snapshot materializes the world's current state, preferring the
// buffer-backed goal.StateAppender encoding (interned — byte-identical
// to Snapshot by the StateAppender contract, and interning equal bytes
// cannot change output) over a fresh Snapshot string.
func (s *snapScratch) snapshot(world goal.World) comm.WorldState {
	a, ok := world.(goal.StateAppender)
	if !ok {
		return world.Snapshot()
	}
	s.buf = a.AppendSnapshot(s.buf[:0])
	return comm.WorldState(s.intern.Intern(s.buf))
}

// Run executes (user, server, world) for up to cfg.MaxRounds rounds or until
// a halting user strategy halts. All three strategies are Reset with
// independent deterministic streams derived from cfg.Seed before the first
// round.
func Run(user, server comm.Strategy, world goal.World, cfg Config) (*Result, error) {
	scr := scratchPool.Get().(*snapScratch)
	res, err := run(user, server, world, cfg, scr)
	scratchPool.Put(scr)
	return res, err
}

// run is Run with an explicit snapshot scratch, so batch workers reuse
// one scratch (buffer + intern table) across all their trials.
func run(user, server comm.Strategy, world goal.World, cfg Config, scr *snapScratch) (*Result, error) {
	if user == nil || server == nil || world == nil {
		return nil, errors.New("system: nil strategy")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	window := cfg.Record.window
	// The lazy-snapshot contract: when nothing consumes states — no
	// recording and no OnRound — the engine never calls Snapshot (or
	// AppendSnapshot). OnRoundLive deliberately does not force
	// materialization; its trackers judge the live world.
	needState := window >= 0 || cfg.OnRound != nil

	root := xrand.New(cfg.Seed)
	user.Reset(root.Split())
	server.Reset(root.Split())
	world.Reset(root.Split())

	halter, _ := user.(comm.Halter)

	// Versioned worlds let the engine skip re-serializing an unchanged
	// state: when StateGen repeats, the previous round's snapshot string
	// is reused verbatim (the StateVersioned contract guarantees the
	// bytes would be identical). The cache is local to this run, so
	// generations are never compared across runs.
	var versioned goal.StateVersioned
	if needState {
		versioned, _ = world.(goal.StateVersioned)
	}
	var (
		lastGen   uint64
		lastState comm.WorldState
		haveState bool
	)

	res := acquireResult()

	// Messages in flight: produced last round, delivered this round.
	var fromUser, fromServer, fromWorld comm.Outbox

	for round := 0; round < maxRounds; round++ {
		userIn := comm.Inbox{
			FromServer: fromServer.ToUser,
			FromWorld:  fromWorld.ToUser,
		}
		serverIn := comm.Inbox{
			FromUser:  fromUser.ToServer,
			FromWorld: fromWorld.ToServer,
		}
		worldIn := comm.Inbox{
			FromUser:   fromUser.ToWorld,
			FromServer: fromServer.ToWorld,
		}

		userOut, err := user.Step(userIn)
		if err != nil {
			ReleaseResult(res)
			return nil, fmt.Errorf("system: user step (round %d): %w", round, err)
		}
		serverOut, err := server.Step(serverIn)
		if err != nil {
			ReleaseResult(res)
			return nil, fmt.Errorf("system: server step (round %d): %w", round, err)
		}
		worldOut, err := world.Step(worldIn)
		if err != nil {
			ReleaseResult(res)
			return nil, fmt.Errorf("system: world step (round %d): %w", round, err)
		}

		fromUser, fromServer, fromWorld = userOut, serverOut, worldOut

		var state comm.WorldState
		if needState {
			if versioned != nil {
				if gen := versioned.StateGen(); haveState && gen == lastGen {
					state = lastState
				} else {
					state = scr.snapshot(world)
					lastGen, lastState, haveState = gen, state, true
				}
			} else {
				state = scr.snapshot(world)
			}
		}
		rv := comm.RoundView{In: userIn, Out: userOut}
		switch {
		case window == 0: // full recording
			res.History.States = append(res.History.States, state)
			res.View.Rounds = append(res.View.Rounds, rv)
		case window > 0: // ring-buffered trailing window
			if len(res.History.States) < window {
				res.History.States = append(res.History.States, state)
				res.View.Rounds = append(res.View.Rounds, rv)
			} else {
				res.History.States[round%window] = state
				res.View.Rounds[round%window] = rv
			}
		}
		res.Rounds = round + 1

		if cfg.OnRound != nil {
			cfg.OnRound(round, rv, state)
		}
		if cfg.OnRoundLive != nil {
			cfg.OnRoundLive(round, rv, world)
		}

		if halter != nil && halter.Halted() {
			res.Halted = true
			break
		}
	}

	switch {
	case window < 0: // nothing recorded
		res.History.Dropped = res.Rounds
		res.View.Dropped = res.Rounds
	case window > 0 && res.Rounds > window:
		// Rotate the ring buffers into chronological order: the oldest
		// retained round sits at index Rounds % window.
		rotate(res.History.States, res.Rounds%window)
		rotate(res.View.Rounds, res.Rounds%window)
		res.History.Dropped = res.Rounds - window
		res.View.Dropped = res.Rounds - window
	}
	return res, nil
}

// rotate moves s[k:] to the front of s in place (three-reversal rotation).
func rotate[T any](s []T, k int) {
	if k <= 0 || k >= len(s) {
		return
	}
	reverse(s[:k])
	reverse(s[k:])
	reverse(s)
}

func reverse[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
