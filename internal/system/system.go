// Package system implements the synchronous execution engine for the
// three-party (user, server, world) model.
//
// Execution proceeds in rounds. In each round every party consumes the
// messages sent to it in the previous round and produces messages to be
// delivered in the next round; after the world's step its state is
// snapshotted into the history that referees judge. The engine is
// single-goroutine and fully deterministic given Config.Seed.
package system

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/xrand"
)

// DefaultMaxRounds bounds executions whose configuration leaves MaxRounds
// unset. Compact goals conceptually run forever; the bound is the finite
// horizon on which their referees are evaluated.
const DefaultMaxRounds = 1000

// ErrNoProgress is reserved for engines layered above this one; the base
// engine itself always runs to halt or horizon.
var ErrNoProgress = errors.New("system: execution made no progress")

// Config controls a single execution.
type Config struct {
	// MaxRounds is the execution horizon; 0 means DefaultMaxRounds.
	MaxRounds int

	// Seed determines all randomness in the execution. The engine
	// derives independent streams for the user, server and world.
	Seed uint64

	// OnRound, if non-nil, is invoked after every round with the round
	// index (0-based), the user's view of the round, and the world
	// snapshot. Used by trace experiments; leave nil on hot paths.
	OnRound func(round int, rv comm.RoundView, state comm.WorldState)
}

// Result is the record of one execution.
type Result struct {
	// History is the sequence of world snapshots, one per round.
	History comm.History

	// View is the user's view of the execution (its inboxes and
	// outboxes, one RoundView per round).
	View comm.View

	// Rounds is the number of completed rounds.
	Rounds int

	// Halted reports whether the user strategy declared itself halted
	// (relevant to finite goals) before the horizon.
	Halted bool
}

// Run executes (user, server, world) for up to cfg.MaxRounds rounds or until
// a halting user strategy halts. All three strategies are Reset with
// independent deterministic streams derived from cfg.Seed before the first
// round.
func Run(user, server comm.Strategy, world goal.World, cfg Config) (*Result, error) {
	if user == nil || server == nil || world == nil {
		return nil, errors.New("system: nil strategy")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	root := xrand.New(cfg.Seed)
	user.Reset(root.Split())
	server.Reset(root.Split())
	world.Reset(root.Split())

	halter, _ := user.(comm.Halter)

	res := &Result{
		History: comm.History{States: make([]comm.WorldState, 0, maxRounds)},
		View:    comm.View{Rounds: make([]comm.RoundView, 0, maxRounds)},
	}

	// Messages in flight: produced last round, delivered this round.
	var fromUser, fromServer, fromWorld comm.Outbox

	for round := 0; round < maxRounds; round++ {
		userIn := comm.Inbox{
			FromServer: fromServer.ToUser,
			FromWorld:  fromWorld.ToUser,
		}
		serverIn := comm.Inbox{
			FromUser:  fromUser.ToServer,
			FromWorld: fromWorld.ToServer,
		}
		worldIn := comm.Inbox{
			FromUser:   fromUser.ToWorld,
			FromServer: fromServer.ToWorld,
		}

		userOut, err := user.Step(userIn)
		if err != nil {
			return nil, fmt.Errorf("system: user step (round %d): %w", round, err)
		}
		serverOut, err := server.Step(serverIn)
		if err != nil {
			return nil, fmt.Errorf("system: server step (round %d): %w", round, err)
		}
		worldOut, err := world.Step(worldIn)
		if err != nil {
			return nil, fmt.Errorf("system: world step (round %d): %w", round, err)
		}

		fromUser, fromServer, fromWorld = userOut, serverOut, worldOut

		state := world.Snapshot()
		res.History.States = append(res.History.States, state)
		rv := comm.RoundView{In: userIn, Out: userOut}
		res.View.Rounds = append(res.View.Rounds, rv)
		res.Rounds = round + 1

		if cfg.OnRound != nil {
			cfg.OnRound(round, rv, state)
		}

		if halter != nil && halter.Halted() {
			res.Halted = true
			break
		}
	}
	return res, nil
}
