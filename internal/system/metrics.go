package system

import "repro/internal/obs"

// Engine-layer metrics. Counters are package-level so RunBatch's hot
// loops touch a resolved *obs.Counter directly — one atomic add, zero
// allocations — keeping the per-goal alloc pins intact. Rounds are
// accumulated per trial (one Add of the trial's round count), not per
// round, so the inner engine loop carries no instrumentation at all.
var (
	mTrialsStarted = obs.Default().Counter("goalsweep_engine_trials_started_total",
		"Trials handed to the batch engine.")
	mTrialsFinished = obs.Default().Counter("goalsweep_engine_trials_finished_total",
		"Trials the batch engine completed (including errored trials).")
	mTrialErrors = obs.Default().Counter("goalsweep_engine_trial_errors_total",
		"Trials that returned an error.")
	mRounds = obs.Default().Counter("goalsweep_engine_rounds_total",
		"Communication rounds executed across all batch trials.")
	mBatchClaims = obs.Default().Counter("goalsweep_engine_batch_claims_total",
		"Trial-index blocks claimed by pool workers (scheduling steps).")
)
