package system_test

import (
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/commtest"
	"repro/internal/enumerate"
	"repro/internal/fst"
	"repro/internal/system"
)

// fstParty builds a deterministic strategy from an arbitrary index so
// property tests can explore the behaviour space.
func fstParty(t *testing.T, idx uint32) comm.Strategy {
	t.Helper()
	space := fst.Space{NumStates: 3, NumIn: 3, NumOut: 3}
	codec := enumerate.SymbolCodec{
		NumIn:  3,
		NumOut: 3,
		In: func(in comm.Inbox) int {
			switch {
			case !in.FromServer.Empty():
				return 1
			case !in.FromWorld.Empty():
				return 2
			default:
				return 0
			}
		},
		Out: func(sym int) comm.Outbox {
			switch sym {
			case 1:
				return comm.Outbox{ToServer: "a", ToWorld: "b"}
			case 2:
				return comm.Outbox{ToUser: "c", ToWorld: "d"}
			default:
				return comm.Outbox{}
			}
		},
	}
	enum, err := enumerate.FST(space, codec)
	if err != nil {
		t.Fatal(err)
	}
	return enum.Strategy(int(idx) % enum.Size())
}

func TestEngineDeterminismProperty(t *testing.T) {
	t.Parallel()

	// Property: identical configurations produce identical histories and
	// views, for arbitrary FST parties and seeds.
	f := func(userIdx, serverIdx uint32, seed uint64, roundsRaw uint8) bool {
		rounds := int(roundsRaw)%50 + 1
		run := func() *system.Result {
			res, err := system.Run(
				fstParty(t, userIdx), fstParty(t, serverIdx),
				&commtest.CountingWorld{},
				system.Config{MaxRounds: rounds, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.Rounds != b.Rounds || a.Halted != b.Halted {
			return false
		}
		for i := range a.History.States {
			if a.History.States[i] != b.History.States[i] {
				return false
			}
		}
		for i := range a.View.Rounds {
			if a.View.Rounds[i] != b.View.Rounds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStructuralInvariants(t *testing.T) {
	t.Parallel()

	// Property: history, view and round counter always agree, and the
	// horizon is respected.
	f := func(userIdx, serverIdx uint32, roundsRaw uint8) bool {
		rounds := int(roundsRaw)%60 + 1
		res, err := system.Run(
			fstParty(t, userIdx), fstParty(t, serverIdx),
			&commtest.CountingWorld{},
			system.Config{MaxRounds: rounds, Seed: 1})
		if err != nil {
			return false
		}
		return res.Rounds == rounds &&
			res.History.Len() == rounds &&
			res.View.Len() == rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRoundViewEchoesOwnOutput(t *testing.T) {
	t.Parallel()

	// Property: the recorded view's Out fields are exactly what the user
	// strategy returned — verified by replaying the same FST offline.
	f := func(userIdx uint32, roundsRaw uint8) bool {
		rounds := int(roundsRaw)%30 + 2
		live := fstParty(t, userIdx)
		res, err := system.Run(live, &commtest.Silent{}, &commtest.CountingWorld{},
			system.Config{MaxRounds: rounds, Seed: 5})
		if err != nil {
			return false
		}
		// Offline replay: feed the recorded inboxes to a fresh copy.
		replay := fstParty(t, userIdx)
		replay.Reset(nil)
		for i, rv := range res.View.Rounds {
			out, err := replay.Step(rv.In)
			if err != nil {
				return false
			}
			if out != res.View.Rounds[i].Out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
