package experiments

import (
	"strings"
	"testing"
)

func renderWith(t *testing.T, id string, parallel int) string {
	t.Helper()
	r, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true, Seed: 1, Parallel: parallel})
	if err != nil {
		t.Fatalf("%s (parallel %d): %v", id, parallel, err)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParallelMatchesSerial is the batch engine's end-to-end determinism
// guarantee: running an experiment across 8 workers must produce a report
// byte-identical to strictly serial execution. T1 (compact universality)
// and T3 (finite Levin search) are the two named acceptance cases; the
// rest of the suite rides along since quick mode is cheap.
func TestParallelMatchesSerial(t *testing.T) {
	for _, r := range All() {
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			serial := renderWith(t, r.ID, 1)
			parallel := renderWith(t, r.ID, 8)
			if serial != parallel {
				t.Fatalf("%s: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					r.ID, serial, parallel)
			}
		})
	}
}

// TestParallelDefaultIsGOMAXPROCS just pins that Parallel: 0 runs (the
// GOMAXPROCS default) and still matches serial output.
func TestParallelDefaultIsGOMAXPROCS(t *testing.T) {
	serial := renderWith(t, "T1", 1)
	def := renderWith(t, "T1", 0)
	if serial != def {
		t.Fatal("T1: default-parallelism report differs from serial")
	}
}
