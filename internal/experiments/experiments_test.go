package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestEveryExperimentRendersQuick(t *testing.T) {
	t.Parallel()

	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := r.Run(Config{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Tables) == 0 && len(rep.Series) == 0 {
				t.Fatal("empty report")
			}
			var b strings.Builder
			if err := rep.Render(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), r.ID) {
				t.Fatalf("report does not mention its id:\n%s", b.String())
			}
		})
	}
}

func TestAllRegistered(t *testing.T) {
	t.Parallel()

	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "F1", "F2"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, err := ByID("T99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// cell extracts column col of the first row whose cells contain all keys.
func cell(t *testing.T, rows [][]string, col int, keys ...string) string {
	t.Helper()
rows:
	for _, row := range rows {
		joined := strings.Join(row, " ")
		for _, k := range keys {
			if !strings.Contains(joined, k) {
				continue rows
			}
		}
		return row[col]
	}
	t.Fatalf("no row matching %v", keys)
	return ""
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestT1Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Universal succeeds everywhere; fixed only on its own dialect.
	if got := cell(t, rows, 2, "8", "universal"); got != "100.0%" {
		t.Fatalf("universal success at N=8: %s", got)
	}
	fixed := atof(t, cell(t, rows, 2, "8", "fixed"))
	if fixed > 20 {
		t.Fatalf("fixed success at N=8 too high: %v%%", fixed)
	}
	// Oracle converges faster than universal on average.
	oracleMean := atof(t, cell(t, rows, 3, "8", "oracle"))
	univMean := atof(t, cell(t, rows, 3, "8", "universal"))
	if oracleMean >= univMean {
		t.Fatalf("oracle mean %v !< universal mean %v", oracleMean, univMean)
	}
}

func TestT2Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Worst-case rounds grow with N for the universal user.
	w4 := atof(t, cell(t, rows, 2, "4", "in order"))
	w8 := atof(t, cell(t, rows, 2, "8", "in order"))
	if w8 <= w4 {
		t.Fatalf("worst rounds not growing: N=4→%v, N=8→%v", w4, w8)
	}
	// The oracle is flat and far below the universal worst case.
	o8 := atof(t, cell(t, rows, 2, "8", "oracle"))
	if o8 >= w8/2 {
		t.Fatalf("oracle worst %v not well below universal %v", o8, w8)
	}
	// Shuffled order pays comparable mean cost (information-theoretic
	// lower bound binds any order).
	m8inorder := atof(t, cell(t, rows, 3, "8", "in order"))
	m8shuffled := atof(t, cell(t, rows, 3, "8", "shuffled"))
	if m8shuffled < m8inorder/4 {
		t.Fatalf("shuffled mean %v implausibly below in-order mean %v", m8shuffled, m8inorder)
	}
}

func TestT3Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T3")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Found index equals server index in every row; total rounds grow.
	prev := -1.0
	for _, row := range rows {
		if row[0] != row[1] {
			t.Fatalf("found %s for server %s", row[1], row[0])
		}
		total := atof(t, row[3])
		if total <= prev {
			t.Fatalf("total rounds not growing: %v after %v", total, prev)
		}
		prev = total
	}
}

func TestT4Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	if got := cell(t, rows, 1, "safe+viable"); got != "100.0%" {
		t.Fatalf("safe sensing success: %s", got)
	}
	if got := cell(t, rows, 2, "safe+viable"); got != "100.0%" {
		t.Fatalf("safe sensing should settle: %s", got)
	}
	if got := cell(t, rows, 3, "safe+viable"); got != "0.0%" {
		t.Fatalf("safe sensing false positives: %s", got)
	}
	if got := cell(t, rows, 3, "unsafe"); got != "100.0%" {
		t.Fatalf("unsafe sensing should be fooled: %s", got)
	}
	if got := cell(t, rows, 2, "non-viable"); got != "0.0%" {
		t.Fatalf("non-viable sensing should never settle: %s", got)
	}
}

func TestT5Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Under a concentrated prior (s=2) belief order tries far fewer
	// candidates than it does under the flat prior (s=0).
	flat := atof(t, cell(t, rows, 2, "0.0", "belief"))
	steep := atof(t, cell(t, rows, 2, "2.0", "belief"))
	if steep >= flat {
		t.Fatalf("belief order under s=2 (%v) should beat s=0 (%v)", steep, flat)
	}
	// Belief order must clearly beat index order under the concentrated
	// prior: the mass sits on arbitrary indices, so index order pays
	// ~N/2 while belief order pays the expected rank.
	idx2 := atof(t, cell(t, rows, 2, "2.0", "index"))
	if steep >= idx2/2 {
		t.Fatalf("belief order (%v) not clearly better than index order (%v) under s=2", steep, idx2)
	}
}

func TestT6Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("T6")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	for _, row := range rows {
		if row[4] != "yes" {
			t.Fatalf("wrong max in row %v", row)
		}
		if atof(t, row[3]) < 1 {
			t.Fatalf("reduction cheaper than native in row %v", row)
		}
	}
	// Cost grows with the number of parties (match on the k column
	// exactly, not substrings of other cells).
	byK := func(k string) []string {
		for _, row := range rows {
			if row[0] == k {
				return row
			}
		}
		t.Fatalf("no row for k=%s", k)
		return nil
	}
	r2 := atof(t, byK("2")[2])
	r3 := atof(t, byK("3")[2])
	if r3 <= r2 {
		t.Fatalf("reduction rounds not growing: k=2→%v k=3→%v", r2, r3)
	}
}

func TestF1Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 1 || len(rep.Series[0].Lines) != 3 {
		t.Fatalf("series shape wrong: %+v", rep.Series)
	}
	rows := rep.Tables[0].Rows

	for _, m := range []string{"16", "32"} {
		halv := atof(t, cell(t, rows, 2, m, "halving"))
		enum := atof(t, cell(t, rows, 2, m, "enumeration"))
		fixed := atof(t, cell(t, rows, 2, m, "fixed"))
		if !(halv < enum && enum < fixed) {
			t.Fatalf("M=%s ordering broken: halving=%v enum=%v fixed=%v", m, halv, enum, fixed)
		}
		if got := cell(t, rows, 4, m, "halving"); got != "yes" {
			t.Fatalf("halving did not achieve at M=%s", m)
		}
		if got := cell(t, rows, 4, m, "fixed"); got != "no" {
			t.Fatalf("fixed concept achieved at M=%s", m)
		}
	}
}

func TestF2Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("F2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	line := rep.Series[0].Lines[0]
	// The index trace is a non-decreasing staircase.
	for i := 1; i < len(line.Y); i++ {
		if line.Y[i] < line.Y[i-1] {
			t.Fatalf("index trace decreased at %d", i)
		}
	}
	// It converges to the matching candidate.
	row := rep.Tables[0].Rows[0]
	if row[1] != row[4] {
		t.Fatalf("final index %s != server index %s", row[4], row[1])
	}
}
