package experiments

import (
	"fmt"

	"repro/internal/dialect"
	"repro/internal/harness"
	"repro/internal/multiparty"
	"repro/internal/xrand"
)

// RunT6 quantifies the multi-party reduction: a coordinator collects every
// member's value through pairwise universal sessions (the full version's
// reduction of the symmetric setting to the two-party setting), paying the
// per-pair enumeration overhead, versus the native agreed-standard
// baseline.
func RunT6(cfg Config) (*harness.Report, error) {
	ks := []int{2, 3, 4, 6, 8}
	famSize := 8
	if cfg.Quick {
		ks = []int{2, 3}
		famSize = 4
	}

	fam, err := dialect.NewWordFamily(multiparty.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("T6: %w", err)
	}

	tbl := &harness.Table{
		ID:      "T6",
		Title:   "symmetric max-value goal: reduction to two-party sessions",
		Columns: []string{"parties", "native rounds", "reduction rounds", "overhead x", "correct max"},
		Notes: []string{
			fmt.Sprintf("dialect family size %d; member dialects drawn deterministically from the seed", famSize),
			"native = coordinator told each member's dialect (designed-together baseline)",
			"reduction = per-member compact universal user with report sensing",
		},
	}

	gossipTbl := &harness.Table{
		ID:      "T6b",
		Title:   "fully symmetric setting: all-to-all gossip (k·(k−1) sessions)",
		Columns: []string{"parties", "sessions", "total rounds", "consensus"},
		Notes: []string{
			"every member plays coordinator in turn; consensus requires all members to agree on the full vector",
		},
	}

	for _, k := range ks {
		r := xrand.New(cfg.seed() + uint64(k))
		members := make([]*multiparty.Member, k)
		wantMax := 0
		for i := range members {
			v := r.Intn(1000)
			if v > wantMax {
				wantMax = v
			}
			members[i] = &multiparty.Member{Value: v, D: fam.Dialect(r.Intn(famSize))}
		}

		native, err := multiparty.LearnValues(members, fam, multiparty.Config{
			Seed: cfg.seed(), Oracle: true, Parallel: cfg.Parallel,
		})
		if err != nil {
			return nil, fmt.Errorf("T6: native k=%d: %w", k, err)
		}
		reduction, err := multiparty.LearnValues(members, fam, multiparty.Config{
			Seed: cfg.seed(), Parallel: cfg.Parallel,
		})
		if err != nil {
			return nil, fmt.Errorf("T6: reduction k=%d: %w", k, err)
		}

		gotMax, err := reduction.Max()
		if err != nil {
			return nil, fmt.Errorf("T6: reduction k=%d: %w", k, err)
		}
		correct := "yes"
		if gotMax != wantMax {
			correct = fmt.Sprintf("NO (%d != %d)", gotMax, wantMax)
		}

		overhead := float64(reduction.TotalRounds) / float64(native.TotalRounds)
		tbl.AddRow(
			harness.I(k),
			harness.I(native.TotalRounds),
			harness.I(reduction.TotalRounds),
			harness.F(overhead),
			correct,
		)

		gossip, err := multiparty.GossipAll(members, fam, multiparty.Config{Seed: cfg.seed(), Parallel: cfg.Parallel})
		if err != nil {
			return nil, fmt.Errorf("T6: gossip k=%d: %w", k, err)
		}
		consensus := "no"
		if maxG, err := gossip.Consensus(); err == nil && maxG == wantMax {
			consensus = "yes"
		}
		gossipTbl.AddRow(
			harness.I(k),
			harness.I(k*(k-1)),
			harness.I(gossip.TotalRounds),
			consensus,
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl, gossipTbl}}, nil
}
