package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/transfer"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// bespokeA4 is the historical hand-coded A4 grid — one loop per drop
// probability, full history recording, classical CompactAchieved /
// LastUnacceptable evaluation. It is the reference the scenario-spec
// encoding in RunA4 must reproduce exactly.
func bespokeA4(cfg Config) (*harness.Report, error) {
	famSize := 8
	chunks := 8
	drops := []float64{0, 0.1, 0.3, 0.5}
	trials := 5
	if cfg.Quick {
		famSize = 4
		chunks = 4
		drops = []float64{0, 0.3}
		trials = 3
	}

	fam, err := dialect.NewWordFamily(transfer.Vocabulary(), famSize)
	if err != nil {
		return nil, err
	}
	g := &transfer.Goal{K: chunks}
	serverIdx := famSize - 1
	patience := 24

	tbl := &harness.Table{
		ID:      "A4",
		Title:   "transfer goal under message loss",
		Columns: []string{"drop p", "success", "mean rounds", "max rounds", "stddev"},
		Notes: []string{
			fmt.Sprintf("K=%d chunks, class size %d, worst-case dialect %d, patience %d, %d trials",
				chunks, famSize, serverIdx, patience, trials),
			"forgiving goal + round-robin retransmission: loss slows convergence, never dooms it",
		},
	}

	for _, p := range drops {
		batch := make([]system.Trial, trials)
		for trial := 0; trial < trials; trial++ {
			batch[trial] = system.Trial{
				User: func() (comm.Strategy, error) {
					return universal.NewCompactUser(transfer.Enum(fam), transfer.Sense(patience))
				},
				Server: func() comm.Strategy {
					return server.Noisy(server.Dialected(&transfer.Server{}, fam.Dialect(serverIdx)), p)
				},
				World: func() goal.World { return g.NewWorld(goal.Env{}) },
				Config: system.Config{
					MaxRounds: 6000, Seed: cfg.seed() + uint64(trial)*31,
				},
			}
		}
		results, err := system.RunBatch(batch, cfg.batch())
		if err != nil {
			return nil, err
		}

		succ := 0
		var rounds []float64
		for _, res := range results {
			if goal.CompactAchieved(g, res.History, 10) {
				succ++
				rounds = append(rounds, float64(goal.LastUnacceptable(g, res.History)))
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%.1f", p),
			harness.Percent(succ, trials),
			harness.F(harness.Mean(rounds)),
			harness.F(harness.Max(rounds)),
			harness.F(harness.Stddev(rounds)),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}

// bespokeA2 is the historical hand-coded A2 grid (quick scale in tests).
func bespokeA2(cfg Config) (*harness.Report, error) {
	famSize := 12
	serverIdx := 9
	chunks := 6
	patiences := []int{2, 4, 8, 16}
	delays := []int{0, 3, 6}
	if cfg.Quick {
		famSize = 6
		serverIdx = 4
		chunks = 4
		patiences = []int{2, 8}
		delays = []int{0, 3}
	}

	fam, err := dialect.NewWordFamily(transfer.Vocabulary(), famSize)
	if err != nil {
		return nil, err
	}
	g := &transfer.Goal{K: chunks}

	tbl := &harness.Table{
		ID:      "A2",
		Title:   "sensing patience vs server slowness on the transfer goal",
		Columns: []string{"slowness", "patience", "achieved", "converged round", "switches"},
		Notes: []string{
			fmt.Sprintf("class size %d, server dialect %d, K=%d chunks; progress latency = slowness + 3",
				famSize, serverIdx, chunks),
			"patience below the latency evicts the matching candidate between chunks → churn tax",
			"the goal is forgiving, so achievement survives; efficiency is what patience buys",
		},
	}

	horizon := 400 * famSize
	type a2cell struct {
		delay, patience int
		u               *universal.CompactUser
	}
	cells := make([]*a2cell, 0, len(delays)*len(patiences))
	trials := make([]system.Trial, 0, len(delays)*len(patiences))
	for _, delay := range delays {
		for _, patience := range patiences {
			delay, patience := delay, patience
			cell := &a2cell{delay: delay, patience: patience}
			cells = append(cells, cell)
			trials = append(trials, system.Trial{
				User: func() (comm.Strategy, error) {
					u, err := universal.NewCompactUser(transfer.Enum(fam), transfer.Sense(patience))
					cell.u = u
					return u, err
				},
				Server: func() comm.Strategy {
					return server.Slow(
						server.Dialected(&transfer.Server{}, fam.Dialect(serverIdx)), delay)
				},
				World:  func() goal.World { return g.NewWorld(goal.Env{}) },
				Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
			})
		}
	}
	results, err := system.RunBatch(trials, cfg.batch())
	if err != nil {
		return nil, err
	}

	for i, cell := range cells {
		res := results[i]
		achieved := goal.CompactAchieved(g, res.History, 10)
		converged := "-"
		if achieved {
			converged = harness.I(goal.LastUnacceptable(g, res.History))
		}
		tbl.AddRow(
			harness.I(cell.delay),
			harness.I(cell.patience),
			yesNo(achieved),
			converged,
			harness.I(cell.u.Switches()),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}

func reportsEqual(t *testing.T, got, want *harness.Report, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		var g, w strings.Builder
		_ = got.Render(&g)
		_ = want.Render(&w)
		t.Fatalf("%s: sweep-spec report differs from bespoke loop\n--- sweep ---\n%s\n--- bespoke ---\n%s",
			label, g.String(), w.String())
	}
}

// TestA4SweepSpecMatchesBespokeLoop is the PR's equivalence requirement:
// the scenario spec encoding of the A4 noise grid reproduces the
// historical bespoke loop's numbers exactly, at quick and full scale, and
// is invariant under the sweep's parallelism.
func TestA4SweepSpecMatchesBespokeLoop(t *testing.T) {
	t.Parallel()

	for _, quick := range []bool{true, false} {
		cfg := Config{Quick: quick, Seed: 3, Parallel: 1}
		want, err := bespokeA4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := RunA4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, serial, want, fmt.Sprintf("A4 quick=%v serial", quick))

		cfg.Parallel = 8
		parallel, err := RunA4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, parallel, want, fmt.Sprintf("A4 quick=%v parallel", quick))
	}
}

// TestA2SweepSpecMatchesBespokeLoop pins the second refactored grid the
// same way at quick scale.
func TestA2SweepSpecMatchesBespokeLoop(t *testing.T) {
	t.Parallel()

	cfg := Config{Quick: true, Seed: 7, Parallel: 1}
	want, err := bespokeA2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		cfg.Parallel = par
		got, err := RunA2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, got, want, fmt.Sprintf("A2 parallel=%d", par))
	}
}
