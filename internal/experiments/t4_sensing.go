package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT4 ablates the two semantic requirements on sensing. With safe and
// viable sensing the universal user succeeds on all helpful printers and
// never reports success falsely; the unsafe variant (trusting server ACKs)
// is fooled by a lying printer; the non-viable variant (demanding
// impossible confirmation) starves every candidate of positive indications
// and the user churns forever.
func RunT4(cfg Config) (*harness.Report, error) {
	famSize := 8
	if cfg.Quick {
		famSize = 4
	}
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("T4: %w", err)
	}
	g := &printing.Goal{}
	horizon := 60 * famSize

	type variant struct {
		name string
		mk   func() sensing.Sense
	}
	variants := []variant{
		{"safe+viable", func() sensing.Sense { return printing.Sense(0) }},
		{"unsafe (trusts ACKs)", printing.TrustingSense},
		{"non-viable (paranoid)", func() sensing.Sense { return printing.ParanoidSense(0) }},
	}

	tbl := &harness.Table{
		ID:      "T4",
		Title:   "sensing ablation on the printing goal",
		Columns: []string{"sensing", "success (helpful)", "settled (helpful)", "false positive (lying)", "mean switches"},
		Notes: []string{
			"success = goal achieved across all helpful dialected printers",
			"settled = user stopped switching in the final quarter of the horizon;",
			"  without viability the user churns forever even when it stumbles into printing",
			"false positive = final indication positive while goal unachieved, vs the lying printer",
		},
	}

	for _, v := range variants {
		succ, settled := 0, 0
		var switches []float64

		for srvIdx := 0; srvIdx < famSize; srvIdx++ {
			u, err := universal.NewCompactUser(printing.Enum(fam), v.mk())
			if err != nil {
				return nil, fmt.Errorf("T4: %s: %w", v.name, err)
			}
			srv := server.Dialected(&printing.Server{}, fam.Dialect(srvIdx))
			switchesAtCheckpoint := -1
			checkpoint := horizon * 3 / 4
			res, err := system.Run(u, srv, g.NewWorld(goal.Env{Choice: srvIdx}), system.Config{
				MaxRounds: horizon, Seed: cfg.seed(),
				OnRound: func(round int, _ comm.RoundView, _ comm.WorldState) {
					if round == checkpoint {
						switchesAtCheckpoint = u.Switches()
					}
				},
			})
			if err != nil {
				return nil, fmt.Errorf("T4: %s server %d: %w", v.name, srvIdx, err)
			}
			if goal.CompactAchieved(g, res.History, 10) {
				succ++
			}
			if switchesAtCheckpoint >= 0 && u.Switches() == switchesAtCheckpoint {
				settled++
			}
			switches = append(switches, float64(u.Switches()))
		}

		// False-positive probe: pair with the lying printer and ask
		// whether the sensing's final indication is positive despite
		// the goal being unachieved.
		falsePos := 0
		u, err := universal.NewCompactUser(printing.Enum(fam), v.mk())
		if err != nil {
			return nil, fmt.Errorf("T4: %s: %w", v.name, err)
		}
		var liar comm.Strategy = &printing.LyingServer{}
		res, err := system.Run(u, liar, g.NewWorld(goal.Env{}), system.Config{
			MaxRounds: horizon, Seed: cfg.seed(),
		})
		if err != nil {
			return nil, fmt.Errorf("T4: %s liar: %w", v.name, err)
		}
		achieved := goal.CompactAchieved(g, res.History, 10)
		if sensing.Replay(v.mk(), res.View) && !achieved {
			falsePos = 1
		}

		tbl.AddRow(
			v.name,
			harness.Percent(succ, famSize),
			harness.Percent(settled, famSize),
			harness.Percent(falsePos, 1),
			harness.F(harness.Mean(switches)),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
