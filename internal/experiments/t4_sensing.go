package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT4 ablates the two semantic requirements on sensing. With safe and
// viable sensing the universal user succeeds on all helpful printers and
// never reports success falsely; the unsafe variant (trusting server ACKs)
// is fooled by a lying printer; the non-viable variant (demanding
// impossible confirmation) starves every candidate of positive indications
// and the user churns forever.
func RunT4(cfg Config) (*harness.Report, error) {
	famSize := 8
	if cfg.Quick {
		famSize = 4
	}
	fam, err := dialect.NewWordFamily(printing.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("T4: %w", err)
	}
	g := &printing.Goal{}
	horizon := 60 * famSize

	type variant struct {
		name string
		mk   func() sensing.Sense
	}
	variants := []variant{
		{"safe+viable", func() sensing.Sense { return printing.Sense(0) }},
		{"unsafe (trusts ACKs)", printing.TrustingSense},
		{"non-viable (paranoid)", func() sensing.Sense { return printing.ParanoidSense(0) }},
	}

	tbl := &harness.Table{
		ID:      "T4",
		Title:   "sensing ablation on the printing goal",
		Columns: []string{"sensing", "success (helpful)", "settled (helpful)", "false positive (lying)", "mean switches"},
		Notes: []string{
			"success = goal achieved across all helpful dialected printers",
			"settled = user stopped switching in the final quarter of the horizon;",
			"  without viability the user churns forever even when it stumbles into printing",
			"false positive = final indication positive while goal unachieved, vs the lying printer",
		},
	}

	for _, v := range variants {
		mkSense := v.mk
		checkpoint := horizon * 3 / 4

		// One trial per helpful server plus a false-positive probe
		// against the lying printer, all in one batch. Each trial's
		// universal user and checkpoint snapshot live in tracks[i];
		// the User factory runs once, before the engine starts, so the
		// OnRound closure always sees its own trial's user.
		type track struct {
			u                    *universal.CompactUser
			switchesAtCheckpoint int
		}
		tracks := make([]track, famSize+1)
		trials := make([]system.Trial, famSize+1)
		for srvIdx := 0; srvIdx < famSize; srvIdx++ {
			tr := &tracks[srvIdx]
			tr.switchesAtCheckpoint = -1
			trials[srvIdx] = system.Trial{
				User: func() (comm.Strategy, error) {
					u, err := universal.NewCompactUser(printing.Enum(fam), mkSense())
					tr.u = u
					return u, err
				},
				Server: func() comm.Strategy {
					return server.Dialected(&printing.Server{}, fam.Dialect(srvIdx))
				},
				World: func() goal.World { return g.NewWorld(goal.Env{Choice: srvIdx}) },
				Config: system.Config{
					MaxRounds: horizon, Seed: cfg.seed(),
					OnRoundLive: func(round int, _ comm.RoundView, _ goal.World) {
						if round == checkpoint {
							tr.switchesAtCheckpoint = tr.u.Switches()
						}
					},
				},
			}
		}
		liarSlot := famSize
		trials[liarSlot] = system.Trial{
			User: func() (comm.Strategy, error) {
				u, err := universal.NewCompactUser(printing.Enum(fam), mkSense())
				tracks[liarSlot].u = u
				return u, err
			},
			Server: func() comm.Strategy { return &printing.LyingServer{} },
			World:  func() goal.World { return g.NewWorld(goal.Env{}) },
			Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
		}

		results, err := system.RunBatch(trials, cfg.batch())
		if err != nil {
			return nil, fmt.Errorf("T4: %s: %w", v.name, err)
		}

		succ, settled := 0, 0
		var switches []float64
		for srvIdx := 0; srvIdx < famSize; srvIdx++ {
			if goal.CompactAchieved(g, results[srvIdx].History, 10) {
				succ++
			}
			tr := tracks[srvIdx]
			if tr.switchesAtCheckpoint >= 0 && tr.u.Switches() == tr.switchesAtCheckpoint {
				settled++
			}
			switches = append(switches, float64(tr.u.Switches()))
		}

		// False-positive probe: is the sensing's final indication
		// positive against the liar despite the goal being unachieved?
		falsePos := 0
		res := results[liarSlot]
		achieved := goal.CompactAchieved(g, res.History, 10)
		if sensing.Replay(mkSense(), res.View) && !achieved {
			falsePos = 1
		}

		tbl.AddRow(
			v.name,
			harness.Percent(succ, famSize),
			harness.Percent(settled, famSize),
			harness.Percent(falsePos, 1),
			harness.F(harness.Mean(switches)),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
