// Package experiments implements the evaluation of DESIGN.md §3: one runner
// per table (T1–T6) and figure (F1–F2). The paper itself is pure theory
// with no empirical section, so each experiment is constructed to test one
// of its formal claims; EXPERIMENTS.md records expectations vs measurements.
//
// Runners are used by both cmd/goalsim and the root benchmark suite, and
// every runner is deterministic given Config.Seed.
package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/system"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Quick selects reduced sizes (used by unit tests); the default is
	// the full table from DESIGN.md.
	Quick bool
	// Seed drives all randomness; 0 means 1.
	Seed uint64
	// Parallel bounds the engine worker pool every runner executes its
	// trials on (via system.RunBatch); values < 1 mean GOMAXPROCS.
	// Reports are byte-identical at every setting.
	Parallel int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// batch is the BatchConfig shared by all runners.
func (c Config) batch() system.BatchConfig {
	return system.BatchConfig{Parallelism: c.Parallel}
}

// Runner is a named, self-contained experiment.
type Runner struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T1").
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and returns its report.
	Run func(cfg Config) (*harness.Report, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{ID: "T1", Title: "Universality across a dialect class (Theorem 1, compact)", Run: RunT1},
		{ID: "T2", Title: "Enumeration overhead is essentially necessary", Run: RunT2},
		{ID: "T3", Title: "Finite goals via Levin-style parallel enumeration", Run: RunT3},
		{ID: "T4", Title: "Safety and viability ablation of sensing", Run: RunT4},
		{ID: "T5", Title: "Compatible beliefs: prior-weighted enumeration speedup", Run: RunT5},
		{ID: "T6", Title: "Multi-party symmetric goals reduce to two-party", Run: RunT6},
		{ID: "F1", Title: "Prediction goal: universal users as online learners", Run: RunF1},
		{ID: "F2", Title: "Switch dynamics of the compact universal user", Run: RunF2},
		{ID: "A1", Title: "Ablation: forgivingness (finite paper tray, touchy printer)", Run: RunA1},
		{ID: "A2", Title: "Ablation: sensing patience vs server delay", Run: RunA2},
		{ID: "A3", Title: "Ablation: uniform vs exponential Levin schedules", Run: RunA3},
		{ID: "A4", Title: "Ablation: transfer goal under message loss", Run: RunA4},
		{ID: "A5", Title: "Ablation: adaptive identification vs generic enumeration (control goal)", Run: RunA5},
	}
}

// ByID looks up a runner by its identifier.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
