package experiments

import (
	"testing"
)

func TestA1Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("A1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Unlimited paper: both users succeed.
	if got := cell(t, rows, 3, "unlimited", "universal"); got != "yes" {
		t.Fatalf("universal on unlimited tray: %s", got)
	}
	// Tiny tray: universal probing fails, oracle still succeeds.
	if got := cell(t, rows, 3, "4", "universal"); got != "no" {
		t.Fatalf("universal on 4-sheet tray should fail: %s", got)
	}
	if got := cell(t, rows, 3, "4", "oracle"); got != "yes" {
		t.Fatalf("oracle on 4-sheet tray should succeed: %s", got)
	}
	// The oracle never prints error pages.
	if got := cell(t, rows, 5, "4", "oracle"); got != "0" {
		t.Fatalf("oracle error pages: %s", got)
	}
}

func TestA2Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("A2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Forgiving goal: every configuration still achieves.
	for _, row := range rows {
		if row[2] != "yes" {
			t.Fatalf("transfer failed in row %v", row)
		}
	}
	// With a slow server, low patience churns more than adequate
	// patience (match slowness and patience columns exactly).
	byCfg := func(slow, pat string) []string {
		for _, row := range rows {
			if row[0] == slow && row[1] == pat {
				return row
			}
		}
		t.Fatalf("no row for slowness=%s patience=%s", slow, pat)
		return nil
	}
	churnLow := atof(t, byCfg("3", "2")[4])
	churnHigh := atof(t, byCfg("3", "8")[4])
	if churnLow <= churnHigh {
		t.Fatalf("low patience should churn more: patience2=%v patience8=%v", churnLow, churnHigh)
	}
}

func TestA3Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("A3")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	byCfg := func(idx, sched string) []string {
		for _, row := range rows {
			if row[0] == idx && row[1] == sched {
				return row
			}
		}
		t.Fatalf("no row for idx=%s sched=%s", idx, sched)
		return nil
	}
	// Both schedules succeed everywhere.
	for _, row := range rows {
		if row[2] != "yes" {
			t.Fatalf("schedule failed in row %v", row)
		}
	}
	// At the largest index the exponential schedule costs far more than
	// the uniform one.
	uni := atof(t, byCfg("5", "uniform")[4])
	exp := atof(t, byCfg("5", "exponential")[4])
	if exp <= 2*uni {
		t.Fatalf("exponential (%v) should dwarf uniform (%v) at index 5", exp, uni)
	}
	// At index 0 the exponential schedule is competitive (or better).
	uni0 := atof(t, byCfg("0", "uniform")[4])
	exp0 := atof(t, byCfg("0", "exponential")[4])
	if exp0 > 3*uni0 {
		t.Fatalf("exponential (%v) should be competitive at index 0 (uniform %v)", exp0, uni0)
	}
}

func TestA4Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("A4")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Loss never breaks the transfer, only slows it.
	for _, row := range rows {
		if row[1] != "100.0%" {
			t.Fatalf("loss broke the transfer: %v", row)
		}
	}
	clean := atof(t, cell(t, rows, 2, "0.0"))
	lossy := atof(t, cell(t, rows, 2, "0.3"))
	if lossy < clean {
		t.Fatalf("lossy mean rounds (%v) below clean (%v)", lossy, clean)
	}
}

func TestA5Shape(t *testing.T) {
	t.Parallel()

	r, err := ByID("A5")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows

	// Both controllers succeed on every calibration.
	for _, row := range rows {
		if row[2] != "100.0%" {
			t.Fatalf("controller failed: %v", row)
		}
	}
	byCfg := func(n, ctl string) []string {
		for _, row := range rows {
			if row[0] == n && row[1] == ctl {
				return row
			}
		}
		t.Fatalf("no row for N=%s controller=%s", n, ctl)
		return nil
	}
	// Adaptive worst-case rounds are flat across class sizes while
	// enumeration grows; at N=9 adaptive clearly wins.
	enum9 := atof(t, byCfg("9", "enumeration")[4])
	adpt9 := atof(t, byCfg("9", "adaptive")[4])
	if adpt9*2 >= enum9 {
		t.Fatalf("adaptive worst (%v) should clearly beat enumeration (%v)", adpt9, enum9)
	}
	adpt5 := atof(t, byCfg("5", "adaptive")[4])
	if adpt9 > 3*adpt5 {
		t.Fatalf("adaptive cost should be ~flat in N: N=5→%v N=9→%v", adpt5, adpt9)
	}
}
