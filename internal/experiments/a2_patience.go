package experiments

import (
	"fmt"

	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/transfer"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunA2 sweeps sensing patience against server slowness — the practical
// knob behind viability. The transfer goal makes patience matter: the
// matching candidate must stay installed long enough to observe storage
// progress, which a slow server delivers latency+3 rounds after each
// command. Patience below that latency evicts the matching candidate
// between progress events, inflating convergence by the churn tax (the
// goal is forgiving, so achievement survives — only efficiency and
// settling degrade, which is itself a finding worth the table).
func RunA2(cfg Config) (*harness.Report, error) {
	famSize := 12
	serverIdx := 9
	chunks := 6
	patiences := []int{2, 4, 8, 16}
	delays := []int{0, 3, 6}
	if cfg.Quick {
		famSize = 6
		serverIdx = 4
		chunks = 4
		patiences = []int{2, 8}
		delays = []int{0, 3}
	}

	fam, err := dialect.NewWordFamily(transfer.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}
	g := &transfer.Goal{K: chunks}

	tbl := &harness.Table{
		ID:      "A2",
		Title:   "sensing patience vs server slowness on the transfer goal",
		Columns: []string{"slowness", "patience", "achieved", "converged round", "switches"},
		Notes: []string{
			fmt.Sprintf("class size %d, server dialect %d, K=%d chunks; progress latency = slowness + 3",
				famSize, serverIdx, chunks),
			"patience below the latency evicts the matching candidate between chunks → churn tax",
			"the goal is forgiving, so achievement survives; efficiency is what patience buys",
		},
	}

	for _, delay := range delays {
		for _, patience := range patiences {
			u, err := universal.NewCompactUser(transfer.Enum(fam), transfer.Sense(patience))
			if err != nil {
				return nil, fmt.Errorf("A2: %w", err)
			}
			srv := server.Slow(
				server.Dialected(&transfer.Server{}, fam.Dialect(serverIdx)), delay)
			horizon := 400 * famSize
			res, err := system.Run(u, srv, g.NewWorld(goal.Env{}), system.Config{
				MaxRounds: horizon, Seed: cfg.seed(),
			})
			if err != nil {
				return nil, fmt.Errorf("A2: slowness %d patience %d: %w", delay, patience, err)
			}

			achieved := goal.CompactAchieved(g, res.History, 10)
			converged := "-"
			if achieved {
				converged = harness.I(goal.LastUnacceptable(g, res.History))
			}
			tbl.AddRow(
				harness.I(delay),
				harness.I(patience),
				yesNo(achieved),
				converged,
				harness.I(u.Switches()),
			)
		}
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
