package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/scenario"
)

// RunA2 sweeps sensing patience against server slowness — the practical
// knob behind viability. The transfer goal makes patience matter: the
// matching candidate must stay installed long enough to observe storage
// progress, which a slow server delivers latency+3 rounds after each
// command. Patience below that latency evicts the matching candidate
// between progress events, inflating convergence by the churn tax (the
// goal is forgiving, so achievement survives — only efficiency and
// settling degrade, which is itself a finding worth the table).
//
// The (slowness, patience) grid is a two-axis scenario spec; rows are
// emitted in grid order by the streaming sweep, slowness varying slowest,
// exactly as the historical nested loop did.
func RunA2(cfg Config) (*harness.Report, error) {
	famSize := 12
	serverIdx := 9
	chunks := 6
	patiences := []int{2, 4, 8, 16}
	delays := []int{0, 3, 6}
	if cfg.Quick {
		famSize = 6
		serverIdx = 4
		chunks = 4
		patiences = []int{2, 8}
		delays = []int{0, 3}
	}
	horizon := 400 * famSize

	spec := &scenario.Spec{
		Name: "a2-patience",
		Axes: []scenario.Axis{
			{Name: "goal", Values: []string{"transfer"}},
			{Name: "class", Values: scenario.Ints(famSize)},
			{Name: "server", Values: scenario.Ints(serverIdx)},
			{Name: "param", Values: scenario.Ints(chunks)},
			{Name: "rounds", Values: scenario.Ints(horizon)},
			{Name: "slow", Values: scenario.Ints(delays...)},
			{Name: "patience", Values: scenario.Ints(patiences...)},
		},
		Seeds:  1,
		Window: 10,
	}
	m, err := scenario.NewMatrix(spec)
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}

	tbl := &harness.Table{
		ID:      "A2",
		Title:   "sensing patience vs server slowness on the transfer goal",
		Columns: []string{"slowness", "patience", "achieved", "converged round", "switches"},
		Notes: []string{
			fmt.Sprintf("class size %d, server dialect %d, K=%d chunks; progress latency = slowness + 3",
				famSize, serverIdx, chunks),
			"patience below the latency evicts the matching candidate between chunks → churn tax",
			"the goal is forgiving, so achievement survives; efficiency is what patience buys",
		},
	}

	_, err = m.Sweep(nil, scenario.SweepConfig{
		Parallel: cfg.Parallel,
		SeedFn:   func(*scenario.Scenario, int) uint64 { return cfg.seed() },
		OnStats: func(st *scenario.Stats) error {
			if st.Errors > 0 {
				return fmt.Errorf("%s: %d trials failed (first: %s)", st.ID, st.Errors, st.FirstError)
			}
			delay, err := st.AxisInt("slow")
			if err != nil {
				return err
			}
			patience, err := st.AxisInt("patience")
			if err != nil {
				return err
			}
			achieved := st.Successes == st.Trials
			converged := "-"
			if achieved {
				converged = harness.I(int(st.Rounds.Max))
			}
			tbl.AddRow(
				harness.I(delay),
				harness.I(patience),
				yesNo(achieved),
				converged,
				harness.I(int(st.MeanSwitches)),
			)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
