package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/transfer"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunA2 sweeps sensing patience against server slowness — the practical
// knob behind viability. The transfer goal makes patience matter: the
// matching candidate must stay installed long enough to observe storage
// progress, which a slow server delivers latency+3 rounds after each
// command. Patience below that latency evicts the matching candidate
// between progress events, inflating convergence by the churn tax (the
// goal is forgiving, so achievement survives — only efficiency and
// settling degrade, which is itself a finding worth the table).
func RunA2(cfg Config) (*harness.Report, error) {
	famSize := 12
	serverIdx := 9
	chunks := 6
	patiences := []int{2, 4, 8, 16}
	delays := []int{0, 3, 6}
	if cfg.Quick {
		famSize = 6
		serverIdx = 4
		chunks = 4
		patiences = []int{2, 8}
		delays = []int{0, 3}
	}

	fam, err := dialect.NewWordFamily(transfer.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}
	g := &transfer.Goal{K: chunks}

	tbl := &harness.Table{
		ID:      "A2",
		Title:   "sensing patience vs server slowness on the transfer goal",
		Columns: []string{"slowness", "patience", "achieved", "converged round", "switches"},
		Notes: []string{
			fmt.Sprintf("class size %d, server dialect %d, K=%d chunks; progress latency = slowness + 3",
				famSize, serverIdx, chunks),
			"patience below the latency evicts the matching candidate between chunks → churn tax",
			"the goal is forgiving, so achievement survives; efficiency is what patience buys",
		},
	}

	// The (slowness, patience) grid is one batch; rows are emitted in
	// grid order from the in-order results.
	horizon := 400 * famSize
	type a2cell struct {
		delay, patience int
		u               *universal.CompactUser
	}
	cells := make([]*a2cell, 0, len(delays)*len(patiences))
	trials := make([]system.Trial, 0, len(delays)*len(patiences))
	for _, delay := range delays {
		for _, patience := range patiences {
			cell := &a2cell{delay: delay, patience: patience}
			cells = append(cells, cell)
			trials = append(trials, system.Trial{
				User: func() (comm.Strategy, error) {
					u, err := universal.NewCompactUser(transfer.Enum(fam), transfer.Sense(patience))
					cell.u = u
					return u, err
				},
				Server: func() comm.Strategy {
					return server.Slow(
						server.Dialected(&transfer.Server{}, fam.Dialect(serverIdx)), delay)
				},
				World:  func() goal.World { return g.NewWorld(goal.Env{}) },
				Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
			})
		}
	}
	results, err := system.RunBatch(trials, cfg.batch())
	if err != nil {
		return nil, fmt.Errorf("A2: %w", err)
	}

	for i, cell := range cells {
		res := results[i]
		achieved := goal.CompactAchieved(g, res.History, 10)
		converged := "-"
		if achieved {
			converged = harness.I(goal.LastUnacceptable(g, res.History))
		}
		tbl.AddRow(
			harness.I(cell.delay),
			harness.I(cell.patience),
			yesNo(achieved),
			converged,
			harness.I(cell.u.Switches()),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
