package experiments

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunA1 ablates forgivingness, the structural assumption the paper adopts
// ("we focus exclusively on forgiving goals"). A touchy printer wastes a
// sheet on every misunderstood command; with a finite tray the printing
// goal stops being forgiving, and the universal user's probing — harmless
// under Theorem 1's assumptions — destroys achievability. The oracle,
// which never probes, still succeeds on one sheet.
func RunA1(cfg Config) (*harness.Report, error) {
	famSize := 16
	serverIdx := 12
	trays := []int{0, 64, 32, 16, 8}
	if cfg.Quick {
		famSize = 8
		serverIdx = 6
		trays = []int{0, 16, 4}
	}

	fam, err := dialect.NewWordFamily(printing.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("A1: %w", err)
	}

	tbl := &harness.Table{
		ID:      "A1",
		Title:   "forgivingness ablation: touchy printer with a finite paper tray",
		Columns: []string{"tray", "forgiving", "user", "achieved", "sheets used", "error pages"},
		Notes: []string{
			fmt.Sprintf("class size %d, server dialect %d; every misunderstood command burns a sheet", famSize, serverIdx),
			"tray 0 = unlimited; with a small tray universal probing exhausts the paper first",
			"Theorem 1 is stated for forgiving goals — this is why",
		},
	}

	// Two trials per tray size (universal, oracle), all in one batch.
	type a1run struct {
		g    *printing.Goal
		w    goal.World
		user string
	}
	runs := make([]a1run, 0, 2*len(trays))
	trials := make([]system.Trial, 0, 2*len(trays))
	for _, paper := range trays {
		g := &printing.Goal{Docs: []string{"target"}, Paper: paper}
		w := g.NewWorld(goal.Env{})
		runs = append(runs, a1run{g: g, w: w, user: "universal"})
		trials = append(trials, system.Trial{
			User: func() (comm.Strategy, error) {
				return universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
			},
			Server: func() comm.Strategy {
				return server.Dialected(&printing.TouchyServer{}, fam.Dialect(serverIdx))
			},
			World:  func() goal.World { return w },
			Config: system.Config{MaxRounds: 50 * famSize, Seed: cfg.seed()},
		})

		// Oracle user: no probing, one command, one sheet.
		g2 := &printing.Goal{Docs: []string{"target"}, Paper: paper}
		w2 := g2.NewWorld(goal.Env{})
		runs = append(runs, a1run{g: g2, w: w2, user: "oracle"})
		trials = append(trials, system.Trial{
			User: func() (comm.Strategy, error) {
				return &printing.Candidate{D: fam.Dialect(serverIdx), Resend: 1000}, nil
			},
			Server: func() comm.Strategy {
				return server.Dialected(&printing.TouchyServer{}, fam.Dialect(serverIdx))
			},
			World:  func() goal.World { return w2 },
			Config: system.Config{MaxRounds: 80, Seed: cfg.seed()},
		})
	}
	results, err := system.RunBatch(trials, cfg.batch())
	if err != nil {
		return nil, fmt.Errorf("A1: %w", err)
	}

	for i, run := range runs {
		forgiving := "yes"
		if !run.g.ForgivingGoal() {
			forgiving = "no"
		}
		achieved := goal.CompactAchieved(run.g, results[i].History, 10)
		sheets, errPages := countSheets(run.w)
		tbl.AddRow(trayLabel(run.g.Paper), forgiving, run.user,
			yesNo(achieved), harness.I(sheets), harness.I(errPages))
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}

func trayLabel(paper int) string {
	if paper == 0 {
		return "unlimited"
	}
	return harness.I(paper)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func countSheets(w goal.World) (sheets, errorPages int) {
	pw, ok := w.(*printing.World)
	if !ok {
		return 0, 0
	}
	for _, doc := range pw.Printout() {
		sheets++
		if strings.Contains(doc, printing.ErrorPage) {
			errorPages++
		}
	}
	return sheets, errorPages
}
