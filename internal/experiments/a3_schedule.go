package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/delegation"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/universal"
)

// RunA3 compares the two dovetailing schedules of the finite-goal
// universal runner: uniform (budget p+1 for candidates 0..p — polynomial
// cost in the matching index) and classic exponential Levin weighting
// (budget 2^(p−i) — optimal in the weighted sense but exponentially costly
// in the index). The crossover motivates the uniform default.
func RunA3(cfg Config) (*harness.Report, error) {
	famSize := 16
	indices := []int{0, 1, 2, 4, 8, 12}
	if cfg.Quick {
		famSize = 8
		indices = []int{0, 2, 5}
	}

	fam, err := dialect.NewWordFamily(delegation.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("A3: %w", err)
	}
	g := &delegation.Goal{N: 12}

	tbl := &harness.Table{
		ID:      "A3",
		Title:   "Levin dovetailing schedules on the delegation goal",
		Columns: []string{"server idx", "schedule", "succeeded", "attempts", "total rounds"},
		Notes: []string{
			"uniform: phase p runs candidates 0..p with budget p+1 (polynomial in index)",
			"exponential: budget 2^(p−i) — candidate i needs phase ≥ i+log2(protocol), cost ~2^i",
			"both are instances of the paper's \"enumerate in parallel, stop on sensing\"",
		},
	}

	for _, idx := range indices {
		idx := idx
		for _, sched := range []struct {
			name string
			s    universal.Schedule
			max  int
		}{
			{"uniform", universal.ScheduleUniform, 0},
			{"exponential", universal.ScheduleExponential, 18},
		} {
			fr := &universal.FiniteRunner{
				Enum:      delegation.Enum(fam),
				Sense:     delegation.Sense(),
				Schedule:  sched.s,
				MaxPhases: sched.max,
				Parallel:  cfg.Parallel,
			}
			res, err := fr.Run(
				func() comm.Strategy {
					return server.Dialected(&delegation.Server{}, fam.Dialect(idx))
				},
				func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
				cfg.seed(),
			)
			if err != nil {
				return nil, fmt.Errorf("A3: idx %d %s: %w", idx, sched.name, err)
			}
			tbl.AddRow(
				harness.I(idx),
				sched.name,
				yesNo(res.Succeeded),
				harness.I(len(res.Attempts)),
				harness.I(res.TotalRounds),
			)
		}
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
