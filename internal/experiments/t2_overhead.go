package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/treasure"
	"repro/internal/harness"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT2 quantifies the paper's claim that the enumeration overhead is
// essentially necessary: against the password-server class of size N (whose
// wrong-guess responses carry no information), the universal user's rounds
// grow linearly in N — worst case ~N candidates, mean ~N/2 regardless of
// enumeration order — while the oracle stays flat.
func RunT2(cfg Config) (*harness.Report, error) {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{4, 8}
	}

	tbl := &harness.Table{
		ID:      "T2",
		Title:   "password vault: rounds to open vs class size N",
		Columns: []string{"N", "user", "worst rounds", "mean rounds"},
		Notes: []string{
			"worst = adversarial secret placement (last candidate in the user's order)",
			"mean = average over every secret in [0,N)",
			"wrong guesses are indistinguishable, so Ω(N) tries are information-theoretically forced",
		},
	}

	g := &treasure.Goal{}

	// runSweep executes one trial per secret in [0, n) and returns the
	// convergence rounds, requiring every secret to be found.
	runSweep := func(name string, n, horizon int, mkUser func(secret int) (comm.Strategy, error)) ([]float64, error) {
		trials := make([]system.Trial, n)
		for secret := 0; secret < n; secret++ {
			trials[secret] = system.Trial{
				User:   func() (comm.Strategy, error) { return mkUser(secret) },
				Server: func() comm.Strategy { return &treasure.Server{Secret: secret} },
				World:  func() goal.World { return g.NewWorld(goal.Env{}) },
				Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
			}
		}
		results, err := system.RunBatch(trials, cfg.batch())
		if err != nil {
			return nil, fmt.Errorf("T2: %s: %w", name, err)
		}
		all := make([]float64, n)
		for secret, res := range results {
			if !goal.CompactAchieved(g, res.History, 5) {
				return nil, fmt.Errorf("T2: secret %d not found within %d rounds", secret, horizon)
			}
			all[secret] = float64(goal.LastUnacceptable(g, res.History))
		}
		return all, nil
	}

	for _, n := range sizes {
		horizon := 40 * n

		type variant struct {
			name string
			mk   func() (enumerate.Enumerator, error)
		}
		variants := []variant{
			{"universal(in order)", func() (enumerate.Enumerator, error) {
				return treasure.Enum(n), nil
			}},
			{"universal(shuffled)", func() (enumerate.Enumerator, error) {
				return enumerate.Shuffled(treasure.Enum(n), cfg.seed()+13)
			}},
		}

		for _, v := range variants {
			all, err := runSweep(v.name, n, horizon, func(int) (comm.Strategy, error) {
				enum, err := v.mk()
				if err != nil {
					return nil, err
				}
				return universal.NewCompactUser(enum, treasure.Sense(0))
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(harness.I(n), v.name, harness.F(harness.Max(all)), harness.F(harness.Mean(all)))
		}

		oracleAll, err := runSweep("oracle", n, horizon, func(secret int) (comm.Strategy, error) {
			return &treasure.Candidate{Guess: secret}, nil
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(harness.I(n), "oracle", harness.F(harness.Max(oracleAll)), harness.F(harness.Mean(oracleAll)))
	}

	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
