package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/scenario"
)

// RunT2 quantifies the paper's claim that the enumeration overhead is
// essentially necessary: against the password-server class of size N (whose
// wrong-guess responses carry no information), the universal user's rounds
// grow linearly in N — worst case ~N candidates, mean ~N/2 regardless of
// enumeration order — while the oracle stays flat.
//
// Each class size is one scenario spec: the server axis sweeps every
// secret in [0,N) and the user axis carries the three contenders (the
// universal user, the same over a shuffled enumeration, and the oracle
// candidate matching the secret). Rows aggregate each user's column over
// the secret axis.
func RunT2(cfg Config) (*harness.Report, error) {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{4, 8}
	}

	tbl := &harness.Table{
		ID:      "T2",
		Title:   "password vault: rounds to open vs class size N",
		Columns: []string{"N", "user", "worst rounds", "mean rounds"},
		Notes: []string{
			"worst = adversarial secret placement (last candidate in the user's order)",
			"mean = average over every secret in [0,N)",
			"wrong guesses are indistinguishable, so Ω(N) tries are information-theoretically forced",
		},
	}

	users := []struct{ value, label string }{
		{"universal", "universal(in order)"},
		{fmt.Sprintf("shuffled:%d", cfg.seed()+13), "universal(shuffled)"},
		{"oracle", "oracle"},
	}

	for _, n := range sizes {
		horizon := 40 * n
		secrets := make([]int, n)
		for i := range secrets {
			secrets[i] = i
		}
		userValues := make([]string, len(users))
		for i, u := range users {
			userValues[i] = u.value
		}
		spec := &scenario.Spec{
			Name: fmt.Sprintf("t2-overhead-%d", n),
			Axes: []scenario.Axis{
				{Name: "goal", Values: []string{"treasure"}},
				{Name: "class", Values: scenario.Ints(n)},
				{Name: "rounds", Values: scenario.Ints(horizon)},
				{Name: "user", Values: userValues},
				{Name: "server", Values: scenario.Ints(secrets...)},
			},
			Seeds:  1,
			Window: 5,
		}
		m, err := scenario.NewMatrix(spec)
		if err != nil {
			return nil, fmt.Errorf("T2: %w", err)
		}

		// The user axis varies slowest, so aggregates stream grouped by
		// user with the secret axis in order within each group.
		rounds := make(map[string][]float64, len(users))
		_, err = m.Sweep(nil, scenario.SweepConfig{
			Parallel: cfg.Parallel,
			SeedFn:   func(*scenario.Scenario, int) uint64 { return cfg.seed() },
			OnStats: func(st *scenario.Stats) error {
				secret, err := st.AxisInt("server")
				if err != nil {
					return err
				}
				user, ok := st.Axis("user")
				if !ok {
					return fmt.Errorf("aggregate %s has no user axis", st.ID)
				}
				if st.Errors > 0 {
					return fmt.Errorf("secret %d: %d trials failed (first: %s)",
						secret, st.Errors, st.FirstError)
				}
				if st.Successes != st.Trials {
					return fmt.Errorf("secret %d not found within %d rounds", secret, horizon)
				}
				rounds[user] = append(rounds[user], st.Rounds.Mean)
				return nil
			},
		})
		if err != nil {
			return nil, fmt.Errorf("T2: %w", err)
		}

		for _, u := range users {
			all := rounds[u.value]
			if len(all) != n {
				return nil, fmt.Errorf("T2: %s swept %d of %d secrets", u.label, len(all), n)
			}
			tbl.AddRow(harness.I(n), u.label, harness.F(harness.Max(all)), harness.F(harness.Mean(all)))
		}
	}

	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
