package experiments

import (
	"fmt"

	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/treasure"
	"repro/internal/harness"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT2 quantifies the paper's claim that the enumeration overhead is
// essentially necessary: against the password-server class of size N (whose
// wrong-guess responses carry no information), the universal user's rounds
// grow linearly in N — worst case ~N candidates, mean ~N/2 regardless of
// enumeration order — while the oracle stays flat.
func RunT2(cfg Config) (*harness.Report, error) {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{4, 8}
	}

	tbl := &harness.Table{
		ID:      "T2",
		Title:   "password vault: rounds to open vs class size N",
		Columns: []string{"N", "user", "worst rounds", "mean rounds"},
		Notes: []string{
			"worst = adversarial secret placement (last candidate in the user's order)",
			"mean = average over every secret in [0,N)",
			"wrong guesses are indistinguishable, so Ω(N) tries are information-theoretically forced",
		},
	}

	g := &treasure.Goal{}
	run := func(enum enumerate.Enumerator, secret, horizon int) (int, error) {
		u, err := universal.NewCompactUser(enum, treasure.Sense(0))
		if err != nil {
			return 0, err
		}
		res, err := system.Run(u, &treasure.Server{Secret: secret}, g.NewWorld(goal.Env{}),
			system.Config{MaxRounds: horizon, Seed: cfg.seed()})
		if err != nil {
			return 0, err
		}
		if !goal.CompactAchieved(g, res.History, 5) {
			return 0, fmt.Errorf("T2: secret %d not found within %d rounds", secret, horizon)
		}
		return goal.LastUnacceptable(g, res.History), nil
	}

	oracleRounds := func(secret, horizon int) (int, error) {
		res, err := system.Run(&treasure.Candidate{Guess: secret},
			&treasure.Server{Secret: secret}, g.NewWorld(goal.Env{}),
			system.Config{MaxRounds: horizon, Seed: cfg.seed()})
		if err != nil {
			return 0, err
		}
		return goal.LastUnacceptable(g, res.History), nil
	}

	for _, n := range sizes {
		horizon := 40 * n

		type variant struct {
			name string
			mk   func() (enumerate.Enumerator, error)
		}
		variants := []variant{
			{"universal(in order)", func() (enumerate.Enumerator, error) {
				return treasure.Enum(n), nil
			}},
			{"universal(shuffled)", func() (enumerate.Enumerator, error) {
				return enumerate.Shuffled(treasure.Enum(n), cfg.seed()+13)
			}},
		}

		for _, v := range variants {
			var all []float64
			worst := 0.0
			for secret := 0; secret < n; secret++ {
				enum, err := v.mk()
				if err != nil {
					return nil, fmt.Errorf("T2: %s: %w", v.name, err)
				}
				r, err := run(enum, secret, horizon)
				if err != nil {
					return nil, err
				}
				all = append(all, float64(r))
				if float64(r) > worst {
					worst = float64(r)
				}
			}
			tbl.AddRow(harness.I(n), v.name, harness.F(worst), harness.F(harness.Mean(all)))
		}

		var oracleAll []float64
		oracleWorst := 0.0
		for secret := 0; secret < n; secret++ {
			r, err := oracleRounds(secret, horizon)
			if err != nil {
				return nil, err
			}
			oracleAll = append(oracleAll, float64(r))
			if float64(r) > oracleWorst {
				oracleWorst = float64(r)
			}
		}
		tbl.AddRow(harness.I(n), "oracle", harness.F(oracleWorst), harness.F(harness.Mean(oracleAll)))
	}

	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
