package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/delegation"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT3 measures Theorem 1 for finite goals: the Levin-style runner
// achieves the delegation goal with every dialected solver, at a total
// simulated cost polynomial in the index of the matching candidate
// (uniform dovetailing: O(max(index, protocolRounds)³)), against the
// oracle's flat cost.
func RunT3(cfg Config) (*harness.Report, error) {
	famSize := 32
	indices := []int{0, 2, 4, 8, 16, 31}
	if cfg.Quick {
		famSize = 8
		indices = []int{0, 2, 7}
	}

	fam, err := dialect.NewWordFamily(delegation.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("T3: %w", err)
	}
	g := &delegation.Goal{N: 12}

	tbl := &harness.Table{
		ID:      "T3",
		Title:   "delegation (finite goal): Levin search cost vs matching candidate index",
		Columns: []string{"server idx", "found idx", "attempts", "total rounds", "oracle rounds", "overhead x"},
		Notes: []string{
			"total rounds = all simulated rounds across dovetailed attempts (uniform schedule)",
			"oracle rounds = a single run of the matching candidate",
			"referee verified on the successful attempt's history in every row",
		},
	}

	// The oracle baselines are independent single runs — one batch.
	oracleTrials := make([]system.Trial, len(indices))
	for row, idx := range indices {
		oracleTrials[row] = system.Trial{
			User: func() (comm.Strategy, error) {
				return &delegation.Candidate{D: fam.Dialect(idx)}, nil
			},
			Server: func() comm.Strategy {
				return server.Dialected(&delegation.Server{}, fam.Dialect(idx))
			},
			World:  func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
			Config: system.Config{MaxRounds: 100, Seed: cfg.seed()},
		}
	}
	oracles, err := system.RunBatch(oracleTrials, cfg.batch())
	if err != nil {
		return nil, fmt.Errorf("T3: oracle: %w", err)
	}

	for row, idx := range indices {
		fr := &universal.FiniteRunner{
			Enum:     delegation.Enum(fam),
			Sense:    delegation.Sense(),
			Parallel: cfg.Parallel,
		}
		res, err := fr.Run(
			func() comm.Strategy { return server.Dialected(&delegation.Server{}, fam.Dialect(idx)) },
			func() goal.World { return g.NewWorld(goal.Env{Choice: 1}) },
			cfg.seed(),
		)
		if err != nil {
			return nil, fmt.Errorf("T3: index %d: %w", idx, err)
		}
		if !res.Succeeded {
			return nil, fmt.Errorf("T3: index %d: search failed", idx)
		}
		if !g.Achieved(res.Final.History) {
			return nil, fmt.Errorf("T3: index %d: referee rejected final history", idx)
		}

		oracle := oracles[row]
		overhead := float64(res.TotalRounds) / float64(oracle.Rounds)
		tbl.AddRow(
			harness.I(idx),
			harness.I(res.Index),
			harness.I(len(res.Attempts)),
			harness.I(res.TotalRounds),
			harness.I(oracle.Rounds),
			harness.F(overhead),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
