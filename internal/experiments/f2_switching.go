package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunF2 traces the internal dynamics of the compact universal user: the
// index of the active candidate strategy per round. The expected shape is a
// staircase — each patience window ends in a negative indication and an
// eviction — that flattens permanently once the matching candidate is
// installed, with the convergence round marked by the referee.
func RunF2(cfg Config) (*harness.Report, error) {
	famSize := 16
	serverIdx := 12
	if cfg.Quick {
		famSize = 6
		serverIdx = 4
	}

	fam, err := dialect.NewWordFamily(printing.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("F2: %w", err)
	}
	g := &printing.Goal{}

	// A single trace run, still dispatched through the batch engine so
	// every runner shares one execution path.
	var u *universal.CompactUser
	var xs, ys []float64
	results, err := system.RunBatch([]system.Trial{{
		User: func() (comm.Strategy, error) {
			var err error
			u, err = universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
			return u, err
		},
		Server: func() comm.Strategy {
			return server.Dialected(&printing.Server{}, fam.Dialect(serverIdx))
		},
		World: func() goal.World { return g.NewWorld(goal.Env{}) },
		Config: system.Config{
			MaxRounds: 50 * famSize,
			Seed:      cfg.seed(),
			OnRoundLive: func(round int, _ comm.RoundView, _ goal.World) {
				xs = append(xs, float64(round))
				ys = append(ys, float64(u.Index()))
			},
		},
	}}, cfg.batch())
	if err != nil {
		return nil, fmt.Errorf("F2: %w", err)
	}
	res := results[0]
	if !goal.CompactAchieved(g, res.History, 10) {
		return nil, fmt.Errorf("F2: universal user failed to converge")
	}

	converged := goal.LastUnacceptable(g, res.History)
	series := &harness.Series{
		ID:     "F2",
		Title:  fmt.Sprintf("active candidate index per round (N=%d, server dialect %d)", famSize, serverIdx),
		XLabel: "round",
		YLabel: "candidate index",
		Lines:  []harness.Line{{Name: "active candidate", X: xs, Y: ys}},
	}

	tbl := &harness.Table{
		ID:      "F2t",
		Title:   "switch-trace summary",
		Columns: []string{"N", "server idx", "switches", "converged round", "final index"},
	}
	tbl.AddRow(
		harness.I(famSize),
		harness.I(serverIdx),
		harness.I(u.Switches()),
		harness.I(converged),
		harness.I(u.Index()%famSize),
	)
	return &harness.Report{Tables: []*harness.Table{tbl}, Series: []*harness.Series{series}}, nil
}
