package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/printing"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunT1 measures Theorem 1 for the compact printing goal: the universal
// user must succeed with every dialected printer in the class, while the
// fixed-protocol baseline succeeds only on its own dialect and the oracle
// (told the dialect) bounds the achievable rounds from below.
func RunT1(cfg Config) (*harness.Report, error) {
	sizes := []int{4, 16, 64, 256}
	if cfg.Quick {
		sizes = []int{4, 8}
	}

	tbl := &harness.Table{
		ID:      "T1",
		Title:   "printing goal: success across the dialected-printer class",
		Columns: []string{"N", "user", "success", "mean rounds", "max rounds"},
		Notes: []string{
			"success = achieved compact goal within horizon, over all N servers",
			"rounds = convergence round (last unacceptable prefix)",
		},
	}

	g := &printing.Goal{}
	for _, n := range sizes {
		fam, err := dialect.NewWordFamily(printing.Vocabulary(), n)
		if err != nil {
			return nil, fmt.Errorf("T1: family size %d: %w", n, err)
		}
		horizon := 50 * n

		type userKind struct {
			name string
			mk   func(serverIdx int) (comm.Strategy, error)
		}
		kinds := []userKind{
			{"fixed(dialect 0)", func(int) (comm.Strategy, error) {
				return &printing.Candidate{D: fam.Dialect(0)}, nil
			}},
			{"oracle", func(i int) (comm.Strategy, error) {
				return &printing.Candidate{D: fam.Dialect(i)}, nil
			}},
			{"universal", func(int) (comm.Strategy, error) {
				u, err := universal.NewCompactUser(printing.Enum(fam), printing.Sense(0))
				return u, err
			}},
		}

		for _, kind := range kinds {
			mk := kind.mk
			trials := make([]system.Trial, n)
			for srvIdx := 0; srvIdx < n; srvIdx++ {
				trials[srvIdx] = system.Trial{
					User: func() (comm.Strategy, error) { return mk(srvIdx) },
					Server: func() comm.Strategy {
						return server.Dialected(&printing.Server{}, fam.Dialect(srvIdx))
					},
					World: func() goal.World {
						return g.NewWorld(goal.Env{Choice: srvIdx % g.EnvChoices()})
					},
					Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
				}
			}
			results, err := system.RunBatch(trials, cfg.batch())
			if err != nil {
				return nil, fmt.Errorf("T1: %s (N=%d): %w", kind.name, n, err)
			}

			succ := 0
			var rounds []float64
			for _, res := range results {
				if goal.CompactAchieved(g, res.History, 10) {
					succ++
					rounds = append(rounds, float64(goal.LastUnacceptable(g, res.History)))
				}
			}
			tbl.AddRow(
				harness.I(n),
				kind.name,
				harness.Percent(succ, n),
				harness.F(harness.Mean(rounds)),
				harness.F(harness.Max(rounds)),
			)
		}
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
