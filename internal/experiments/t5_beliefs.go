package experiments

import (
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/comm"
	"repro/internal/enumerate"
	"repro/internal/goal"
	"repro/internal/goals/treasure"
	"repro/internal/harness"
	"repro/internal/system"
	"repro/internal/universal"
	"repro/internal/xrand"
)

// RunT5 measures the compatible-beliefs speedup: when the server's secret
// is drawn from a prior the user shares, enumerating candidates in order of
// decreasing prior mass cuts the expected number of candidates tried from
// ~N/2 (uniform order under a concentrated prior is even worse than that
// when mass sits on arbitrary indices — here the prior is over indices, so
// uniform order pays the expected index) down to the prior's expected rank.
func RunT5(cfg Config) (*harness.Report, error) {
	n := 64
	trials := 200
	if cfg.Quick {
		n = 16
		trials = 40
	}
	exponents := []float64{0, 1, 2}

	tbl := &harness.Table{
		ID:      "T5",
		Title:   "compatible beliefs: candidates tried under Zipf(s) server priors",
		Columns: []string{"zipf s", "order", "mean tried", "analytic E[rank]", "mean rounds"},
		Notes: []string{
			fmt.Sprintf("N=%d password servers, %d trials, secret ~ Zipf(s)", n, trials),
			"tried = index of the universal user's final candidate + 1",
			"belief order sorts candidates by decreasing prior mass (Juba–Sudan ICS'11 direction)",
		},
	}

	g := &treasure.Goal{}
	horizon := 40 * n

	// The prior concentrates on arbitrary indices (a seeded permutation
	// of Zipf ranks): index i carries the mass of rank perm[i]. Without
	// this, a Zipf prior over indices would coincide with index order
	// and the belief effect would be invisible.
	perm := xrand.New(cfg.seed() + 99).Perm(n)

	for _, s := range exponents {
		zipf, err := beliefs.Zipf(n, s)
		if err != nil {
			return nil, fmt.Errorf("T5: %w", err)
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = zipf.Weight(perm[i])
		}
		prior, err := beliefs.FromWeights(weights)
		if err != nil {
			return nil, fmt.Errorf("T5: %w", err)
		}

		type variant struct {
			name string
			enum enumerate.Enumerator
		}
		beliefEnum, err := beliefs.Reorder(treasure.Enum(n), prior)
		if err != nil {
			return nil, fmt.Errorf("T5: %w", err)
		}
		variants := []variant{
			{"index order", treasure.Enum(n)},
			{"belief order", beliefEnum},
		}

		for _, v := range variants {
			enum := v.enum
			r := xrand.New(cfg.seed() + uint64(s*1000))
			secrets := make([]int, trials)
			users := make([]*universal.CompactUser, trials)
			batch := make([]system.Trial, trials)
			for trial := 0; trial < trials; trial++ {
				secrets[trial] = prior.Sample(r)
				batch[trial] = system.Trial{
					User: func() (comm.Strategy, error) {
						u, err := universal.NewCompactUser(enum, treasure.Sense(0))
						users[trial] = u
						return u, err
					},
					Server: func() comm.Strategy {
						return &treasure.Server{Secret: secrets[trial]}
					},
					World: func() goal.World { return g.NewWorld(goal.Env{}) },
					Config: system.Config{
						MaxRounds: horizon, Seed: cfg.seed() + uint64(trial),
					},
				}
			}
			results, err := system.RunBatch(batch, cfg.batch())
			if err != nil {
				return nil, fmt.Errorf("T5: %w", err)
			}

			var tried, rounds []float64
			for trial, res := range results {
				if !goal.CompactAchieved(g, res.History, 5) {
					return nil, fmt.Errorf("T5: trial %d (secret %d) failed", trial, secrets[trial])
				}
				tried = append(tried, float64(users[trial].Index()%n+1))
				rounds = append(rounds, float64(goal.LastUnacceptable(g, res.History)))
			}

			analytic := "-"
			if v.name == "belief order" {
				analytic = harness.F(prior.ExpectedRank())
			}
			tbl.AddRow(
				fmt.Sprintf("%.1f", s),
				v.name,
				harness.F(harness.Mean(tried)),
				analytic,
				harness.F(harness.Mean(rounds)),
			)
		}
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
