package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/goals/control"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunA5 measures the paper's closing observation — "in special cases of
// interest, better performance may be possible" than generic enumeration —
// on the control goal: one adaptive controller identifies the server's
// calibration from a single probe (O(1) rounds for every class size),
// while the enumeration universal user pays per-candidate eviction costs
// that grow with the class.
func RunA5(cfg Config) (*harness.Report, error) {
	sizes := []int{5, 9, 15, 21}
	if cfg.Quick {
		sizes = []int{5, 9}
	}

	tbl := &harness.Table{
		ID:      "A5",
		Title:   "control goal: adaptive identification vs generic enumeration",
		Columns: []string{"class N", "controller", "success", "mean rounds", "worst rounds"},
		Notes: []string{
			"calibration-offset actuator class; sweep over every server in the class",
			"adaptive = one zero-force probe identifies the calibration (class-specific algorithm)",
			"enumeration = generic universal user over per-calibration candidates",
		},
	}

	g := &control.Goal{}
	for _, n := range sizes {
		fam, err := control.NewUnitsFamily(n)
		if err != nil {
			return nil, fmt.Errorf("A5: %w", err)
		}
		horizon := 300 * n

		run := func(mkUser func() (comm.Strategy, error)) (int, []float64, error) {
			trials := make([]system.Trial, n)
			for srvIdx := 0; srvIdx < n; srvIdx++ {
				trials[srvIdx] = system.Trial{
					User: mkUser,
					Server: func() comm.Strategy {
						return server.Dialected(&control.Server{}, fam.Dialect(srvIdx))
					},
					World:  func() goal.World { return g.NewWorld(goal.Env{Choice: srvIdx}) },
					Config: system.Config{MaxRounds: horizon, Seed: cfg.seed()},
				}
			}
			results, err := system.RunBatch(trials, cfg.batch())
			if err != nil {
				return 0, nil, err
			}
			succ := 0
			var rounds []float64
			for _, res := range results {
				if goal.CompactAchieved(g, res.History, 10) {
					succ++
					rounds = append(rounds, float64(goal.LastUnacceptable(g, res.History)))
				}
			}
			return succ, rounds, nil
		}

		succE, roundsE, err := run(func() (comm.Strategy, error) {
			return universal.NewCompactUser(control.Enum(fam), control.Sense(0))
		})
		if err != nil {
			return nil, fmt.Errorf("A5: enumeration N=%d: %w", n, err)
		}
		tbl.AddRow(harness.I(n), "enumeration", harness.Percent(succE, n),
			harness.F(harness.Mean(roundsE)), harness.F(harness.Max(roundsE)))

		succA, roundsA, err := run(func() (comm.Strategy, error) {
			return &control.Adaptive{}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("A5: adaptive N=%d: %w", n, err)
		}
		tbl.AddRow(harness.I(n), "adaptive", harness.Percent(succA, n),
			harness.F(harness.Mean(roundsA)), harness.F(harness.Max(roundsA)))
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
