package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/goals/learning"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunF1 draws the learning curves behind the Juba–Vempala equivalence:
// cumulative mistakes versus round for the halving algorithm (an efficient
// universal user, ≤ ⌈log₂M⌉ mistakes), the generic enumeration universal
// user (conservative learner, ≤ concept-index mistakes) and a fixed wrong
// concept (unbounded mistakes — goal failed). A companion table reports the
// final counts per class size.
func RunF1(cfg Config) (*harness.Report, error) {
	sizes := []int{16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{16, 32}
	}
	curveM := sizes[len(sizes)-2] // the figure uses one representative size

	series := &harness.Series{
		ID:     "F1",
		Title:  fmt.Sprintf("cumulative mistakes on the prediction goal (M=%d)", curveM),
		XLabel: "round",
		YLabel: "cumulative mistakes",
	}
	tbl := &harness.Table{
		ID:      "F1t",
		Title:   "final mistake counts per concept-class size",
		Columns: []string{"M", "user", "mistakes", "bound", "achieved"},
		Notes: []string{
			"concept = 3M/4 (so enumeration pays ~3M/4, halving ~log2 M)",
			"achieved = compact goal (finitely many mistakes) within horizon",
		},
	}

	type learner struct {
		name  string
		mk    func(m int) (comm.Strategy, error)
		bound func(m int) string
	}
	learners := []learner{
		{"halving", func(m int) (comm.Strategy, error) {
			return &learning.HalvingUser{M: m}, nil
		}, func(m int) string {
			b := 0
			for v := 1; v < m; v *= 2 {
				b++
			}
			return harness.I(b + 1)
		}},
		{"enumeration", func(m int) (comm.Strategy, error) {
			u, err := universal.NewCompactUser(learning.Enum(m), learning.MistakeSense())
			return u, err
		}, func(m int) string {
			return harness.I(3*m/4 + 1)
		}},
		{"fixed(c=0)", func(m int) (comm.Strategy, error) {
			return &learning.ThresholdUser{Concept: 0}, nil
		}, func(int) string { return "unbounded" }},
	}

	for _, m := range sizes {
		g := &learning.Goal{M: m}
		concept := 3 * m / 4
		horizon := 60 * m
		if horizon < 2000 {
			horizon = 2000
		}
		sampleEvery := horizon / 80
		if sampleEvery < 1 {
			sampleEvery = 1
		}

		// One batch per class size: the three learners race the same
		// environment concurrently, each sampling its own curve.
		type track struct {
			w      *learning.World
			xs, ys []float64
		}
		tracks := make([]*track, len(learners))
		trials := make([]system.Trial, len(learners))
		for li, l := range learners {
			mk := l.mk
			tr := &track{}
			tracks[li] = tr
			w, ok := g.NewWorld(goal.Env{Choice: concept}).(*learning.World)
			if !ok {
				return nil, fmt.Errorf("F1: unexpected world type")
			}
			tr.w = w
			trials[li] = system.Trial{
				User:   func() (comm.Strategy, error) { return mk(m) },
				Server: func() comm.Strategy { return server.Obstinate() },
				World:  func() goal.World { return w },
				Config: system.Config{
					MaxRounds: horizon,
					Seed:      cfg.seed(),
					OnRound: func(round int, _ comm.RoundView, state comm.WorldState) {
						if m != curveM || round%sampleEvery != 0 {
							return
						}
						st, ok := learning.ParseState(state)
						if !ok {
							return
						}
						tr.xs = append(tr.xs, float64(round))
						tr.ys = append(tr.ys, float64(st.Mistakes))
					},
				},
			}
		}
		results, err := system.RunBatch(trials, cfg.batch())
		if err != nil {
			return nil, fmt.Errorf("F1: M=%d: %w", m, err)
		}

		for li, l := range learners {
			achieved := goal.CompactAchieved(g, results[li].History, 20)
			achievedStr := "yes"
			if !achieved {
				achievedStr = "no"
			}
			tbl.AddRow(harness.I(m), l.name, harness.I(tracks[li].w.Mistakes()), l.bound(m), achievedStr)

			if m == curveM {
				series.Lines = append(series.Lines, harness.Line{Name: l.name, X: tracks[li].xs, Y: tracks[li].ys})
			}
		}
	}
	return &harness.Report{Tables: []*harness.Table{tbl}, Series: []*harness.Series{series}}, nil
}
