package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dialect"
	"repro/internal/goal"
	"repro/internal/goals/transfer"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/universal"
)

// RunA4 measures robustness to message loss on the transfer goal: a
// forgiving goal plus retransmitting candidates tolerates a lossy server —
// the convergence time stretches smoothly with the drop probability
// instead of failing, provided sensing patience covers the loss streaks.
func RunA4(cfg Config) (*harness.Report, error) {
	famSize := 8
	chunks := 8
	drops := []float64{0, 0.1, 0.3, 0.5}
	trials := 5
	if cfg.Quick {
		famSize = 4
		chunks = 4
		drops = []float64{0, 0.3}
		trials = 3
	}

	fam, err := dialect.NewWordFamily(transfer.Vocabulary(), famSize)
	if err != nil {
		return nil, fmt.Errorf("A4: %w", err)
	}
	g := &transfer.Goal{K: chunks}
	serverIdx := famSize - 1
	patience := 24

	tbl := &harness.Table{
		ID:      "A4",
		Title:   "transfer goal under message loss",
		Columns: []string{"drop p", "success", "mean rounds", "max rounds", "stddev"},
		Notes: []string{
			fmt.Sprintf("K=%d chunks, class size %d, worst-case dialect %d, patience %d, %d trials",
				chunks, famSize, serverIdx, patience, trials),
			"forgiving goal + round-robin retransmission: loss slows convergence, never dooms it",
		},
	}

	for _, p := range drops {
		batch := make([]system.Trial, trials)
		for trial := 0; trial < trials; trial++ {
			batch[trial] = system.Trial{
				User: func() (comm.Strategy, error) {
					return universal.NewCompactUser(transfer.Enum(fam), transfer.Sense(patience))
				},
				Server: func() comm.Strategy {
					return server.Noisy(server.Dialected(&transfer.Server{}, fam.Dialect(serverIdx)), p)
				},
				World: func() goal.World { return g.NewWorld(goal.Env{}) },
				Config: system.Config{
					MaxRounds: 6000, Seed: cfg.seed() + uint64(trial)*31,
				},
			}
		}
		results, err := system.RunBatch(batch, cfg.batch())
		if err != nil {
			return nil, fmt.Errorf("A4: p=%.1f: %w", p, err)
		}

		succ := 0
		var rounds []float64
		for _, res := range results {
			if goal.CompactAchieved(g, res.History, 10) {
				succ++
				rounds = append(rounds, float64(goal.LastUnacceptable(g, res.History)))
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%.1f", p),
			harness.Percent(succ, trials),
			harness.F(harness.Mean(rounds)),
			harness.F(harness.Max(rounds)),
			harness.F(harness.Stddev(rounds)),
		)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
