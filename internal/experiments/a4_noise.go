package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/scenario"
)

// RunA4 measures robustness to message loss on the transfer goal: a
// forgiving goal plus retransmitting candidates tolerates a lossy server —
// the convergence time stretches smoothly with the drop probability
// instead of failing, provided sensing patience covers the loss streaks.
//
// The grid is a scenario spec — one noise axis over the worst-case
// transfer scenario — swept through the streaming executor; the legacy
// per-trial seeds are preserved via SeedFn so the table is identical to
// the historical bespoke loop.
func RunA4(cfg Config) (*harness.Report, error) {
	famSize := 8
	chunks := 8
	drops := []float64{0, 0.1, 0.3, 0.5}
	trials := 5
	if cfg.Quick {
		famSize = 4
		chunks = 4
		drops = []float64{0, 0.3}
		trials = 3
	}
	serverIdx := famSize - 1
	patience := 24

	spec := &scenario.Spec{
		Name: "a4-noise",
		Axes: []scenario.Axis{
			{Name: "goal", Values: []string{"transfer"}},
			{Name: "class", Values: scenario.Ints(famSize)},
			{Name: "server", Values: scenario.Ints(serverIdx)},
			{Name: "param", Values: scenario.Ints(chunks)},
			{Name: "patience", Values: scenario.Ints(patience)},
			{Name: "rounds", Values: scenario.Ints(6000)},
			{Name: "noise", Values: scenario.Floats(drops...)},
		},
		Seeds:  trials,
		Window: 10,
	}
	m, err := scenario.NewMatrix(spec)
	if err != nil {
		return nil, fmt.Errorf("A4: %w", err)
	}

	tbl := &harness.Table{
		ID:      "A4",
		Title:   "transfer goal under message loss",
		Columns: []string{"drop p", "success", "mean rounds", "max rounds", "stddev"},
		Notes: []string{
			fmt.Sprintf("K=%d chunks, class size %d, worst-case dialect %d, patience %d, %d trials",
				chunks, famSize, serverIdx, patience, trials),
			"forgiving goal + round-robin retransmission: loss slows convergence, never dooms it",
		},
	}

	_, err = m.Sweep(nil, scenario.SweepConfig{
		Parallel: cfg.Parallel,
		SeedFn: func(_ *scenario.Scenario, trial int) uint64 {
			return cfg.seed() + uint64(trial)*31
		},
		OnStats: func(st *scenario.Stats) error {
			p, err := st.AxisFloat("noise")
			if err != nil {
				return err
			}
			if st.Errors > 0 {
				return fmt.Errorf("p=%.1f: %d trials failed (first: %s)", p, st.Errors, st.FirstError)
			}
			tbl.AddRow(
				fmt.Sprintf("%.1f", p),
				harness.Percent(st.Successes, st.Trials),
				harness.F(st.Rounds.Mean),
				harness.F(st.Rounds.Max),
				harness.F(st.Rounds.Stddev),
			)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("A4: %w", err)
	}
	return &harness.Report{Tables: []*harness.Table{tbl}}, nil
}
