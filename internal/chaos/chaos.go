// Package chaos is a seeded, budgeted fault-injection substrate for the
// distributed sweep fleet. It wraps the two seams every byte of fleet
// traffic crosses — the client's http.RoundTripper and the coordinator's
// net.Listener — and injects a bounded number of faults per run: dropped
// requests, added latency, duplicated deliveries, truncated responses,
// synthesized 503s, and (on the listener side) killed or delayed
// accepts.
//
// Reproducibility is the point. A run's entire fault schedule is
// materialized up front from an xrand split of the chaos seed: for each
// budgeted fault the generator draws which operation it hits (lease or
// submit), at which per-operation call sequence number it fires, and —
// for delay faults — how long it stalls. At runtime each request is
// classified into its operation and counted; a request whose (op, seq)
// coordinate carries a scheduled fault suffers it. Two runs with the
// same spec and seed therefore inject the identical fault set, even
// though concurrent workers interleave their calls differently: the
// schedule is a property of the coordinate space, not of arrival order.
// As long as every scheduled sequence number is actually reached (the
// harness keeps Horizon at or below the shard count, and a sweep issues
// at least one lease and one submit per shard), the fault log is a
// deterministic function of (spec, seed).
//
// Accept-class faults (adrop, adelay) follow the same scheduled-
// coordinate discipline over the listener's accept sequence, but the
// mapping from accepts to requests depends on the HTTP client's
// connection pooling, so the determinism guarantee is scoped to the
// request operations.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// Class names one fault family.
type Class string

// The fault classes. Request classes target the lease and submit
// operations (dup targets submit only: a duplicated lease would strand a
// grant until its TTL, which tests recovery the slow way); accept
// classes target the listener.
const (
	Drop        Class = "drop"   // request fails before delivery
	Delay       Class = "delay"  // request stalls, then proceeds
	Dup         Class = "dup"    // request delivered twice (submit only)
	Trunc       Class = "trunc"  // response body cut in half after delivery
	Err         Class = "err"    // synthesized 503, request not delivered
	AcceptDrop  Class = "adrop"  // accepted connection closed immediately
	AcceptDelay Class = "adelay" // accepted connection handed over late
)

// The operations a request can classify into. Only lease and submit are
// faultable: both sides retry them and duplicate delivery is idempotent.
// Renewals are deliberately exempt — their call counts depend on shard
// wall-clock, which would break the deterministic-log guarantee.
const (
	OpLease  = "lease"
	OpSubmit = "submit"
	OpAccept = "accept"
)

// Spec is a fault budget: how many faults of each class one run may
// inject. The zero Spec injects nothing.
type Spec struct {
	Drop  int // dropped requests
	Delay int // delayed requests
	Dup   int // duplicated submits
	Trunc int // truncated responses
	Err   int // injected 503s

	AcceptDrop  int // killed accepts
	AcceptDelay int // delayed accepts

	// DelayFor bounds each injected delay (the schedule draws a uniform
	// duration in (0, DelayFor]); 0 means 25ms.
	DelayFor time.Duration

	// Horizon is the per-operation scheduling window: every request
	// fault lands at a sequence number in [0, Horizon). Keep it at or
	// below the sweep's shard count so every scheduled fault actually
	// fires; 0 means 8.
	Horizon int
}

// Total counts the spec's budgeted faults across every class.
func (s Spec) Total() int {
	return s.Drop + s.Delay + s.Dup + s.Trunc + s.Err + s.AcceptDrop + s.AcceptDelay
}

func (s Spec) delayFor() time.Duration {
	if s.DelayFor <= 0 {
		return 25 * time.Millisecond
	}
	return s.DelayFor
}

func (s Spec) horizon() int {
	if s.Horizon <= 0 {
		return 8
	}
	return s.Horizon
}

// String renders the spec in ParseSpec's format.
func (s Spec) String() string {
	var parts []string
	add := func(k string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	add(string(Drop), s.Drop)
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("%s=%d:%s", Delay, s.Delay, s.delayFor()))
	}
	add(string(Dup), s.Dup)
	add(string(Trunc), s.Trunc)
	add(string(Err), s.Err)
	add(string(AcceptDrop), s.AcceptDrop)
	if s.AcceptDelay > 0 {
		parts = append(parts, fmt.Sprintf("%s=%d:%s", AcceptDelay, s.AcceptDelay, s.delayFor()))
	}
	if s.Horizon > 0 {
		parts = append(parts, fmt.Sprintf("horizon=%d", s.Horizon))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault budget, e.g.
// "drop=2,delay=3:20ms,dup=1,trunc=1,err=2,horizon=6". Delay classes
// accept an optional per-fault duration bound after a colon
// ("delay=3:20ms"); the last one given sets Spec.DelayFor for both
// delay and adelay. "horizon=N" sets the scheduling window.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("chaos: spec term %q is not key=value", part)
		}
		count, durStr, hasDur := strings.Cut(val, ":")
		n, err := strconv.Atoi(count)
		if err != nil || n < 0 {
			return spec, fmt.Errorf("chaos: spec term %q wants a non-negative count", part)
		}
		if hasDur {
			if key != string(Delay) && key != string(AcceptDelay) {
				return spec, fmt.Errorf("chaos: spec term %q: only delay classes take a :duration", part)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return spec, fmt.Errorf("chaos: spec term %q wants a positive duration after the colon", part)
			}
			spec.DelayFor = d
		}
		switch key {
		case string(Drop):
			spec.Drop = n
		case string(Delay):
			spec.Delay = n
		case string(Dup):
			spec.Dup = n
		case string(Trunc):
			spec.Trunc = n
		case string(Err):
			spec.Err = n
		case string(AcceptDrop):
			spec.AcceptDrop = n
		case string(AcceptDelay):
			spec.AcceptDelay = n
		case "horizon":
			spec.Horizon = n
		default:
			return spec, fmt.Errorf("chaos: unknown fault class %q (want drop, delay, dup, trunc, err, adrop, adelay or horizon)", key)
		}
	}
	return spec, nil
}

// Fault is one scheduled injection: class, target operation, the
// per-operation call sequence number it fires at, and — for delay
// classes — how long it stalls.
type Fault struct {
	Class Class
	Op    string
	Seq   int
	Stall time.Duration
}

func (f Fault) String() string {
	s := fmt.Sprintf("fault class=%s op=%s seq=%d", f.Class, f.Op, f.Seq)
	if f.Stall > 0 {
		s += fmt.Sprintf(" stall=%s", f.Stall)
	}
	return s
}

// FormatLog renders a fault list one line per fault — the canonical
// fault-log format the determinism pin compares byte-for-byte.
func FormatLog(faults []Fault) string {
	var b strings.Builder
	for _, f := range faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

var mFaults = obs.Default().CounterVec("goalsweep_chaos_faults_injected_total",
	"Faults the chaos injector actually fired, by class.", "class")

type opSeq struct {
	op  string
	seq int
}

// Injector holds one run's materialized fault schedule and fires it as
// traffic reaches the scheduled coordinates. One injector is shared by
// every wrapped transport and listener of a run, so the budgets and the
// sequence space are fleet-wide. Safe for concurrent use.
type Injector struct {
	spec Spec
	seed uint64

	sched map[opSeq]Fault // immutable after New

	// Events, when non-nil, receives one structured event per injected
	// fault. Set before traffic starts; nil means silent.
	Events *obs.Logger

	mu     sync.Mutex
	counts map[string]int
	fired  []Fault
}

// New materializes the run's fault schedule: every budgeted fault is
// assigned its (op, seq) coordinate and stall duration by draws from an
// xrand split of the chaos seed. Identical (spec, seed) pairs always
// produce identical schedules. It errors when a budget cannot fit the
// horizon (more faults targeting an operation than it has slots).
func New(spec Spec, seed uint64) (*Injector, error) {
	in := &Injector{
		spec:   spec,
		seed:   seed,
		sched:  make(map[opSeq]Fault),
		counts: make(map[string]int),
	}
	rng := xrand.New(seed).Split()
	horizon := spec.horizon()
	// Fixed class order keeps the schedule a pure function of the draws.
	classes := []struct {
		class  Class
		budget int
		ops    []string
	}{
		{Drop, spec.Drop, []string{OpLease, OpSubmit}},
		{Delay, spec.Delay, []string{OpLease, OpSubmit}},
		{Dup, spec.Dup, []string{OpSubmit}},
		{Trunc, spec.Trunc, []string{OpLease, OpSubmit}},
		{Err, spec.Err, []string{OpLease, OpSubmit}},
		{AcceptDrop, spec.AcceptDrop, []string{OpAccept}},
		{AcceptDelay, spec.AcceptDelay, []string{OpAccept}},
	}
	for _, cl := range classes {
		for i := 0; i < cl.budget; i++ {
			f := Fault{Class: cl.class}
			if cl.class == Delay || cl.class == AcceptDelay {
				f.Stall = time.Duration(1 + rng.Intn(int(spec.delayFor())))
			}
			op := cl.ops[rng.Intn(len(cl.ops))]
			seq := rng.Intn(horizon)
			placed := false
			// Deterministic collision resolution: linear-probe the drawn
			// operation's window, then the class's other operations.
			for o := 0; o < len(cl.ops) && !placed; o++ {
				tryOp := cl.ops[(indexOf(cl.ops, op)+o)%len(cl.ops)]
				for p := 0; p < horizon; p++ {
					k := opSeq{tryOp, (seq + p) % horizon}
					if _, taken := in.sched[k]; !taken {
						f.Op, f.Seq = k.op, k.seq
						in.sched[k] = f
						placed = true
						break
					}
				}
			}
			if !placed {
				return nil, fmt.Errorf("chaos: budget %s does not fit: every slot of %v within horizon %d is taken (lower the budgets or raise horizon)",
					cl.class, cl.ops, horizon)
			}
		}
	}
	return in, nil
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return 0
}

// Schedule returns every scheduled fault in canonical (op, seq) order —
// what the log will contain once every coordinate has been reached.
func (in *Injector) Schedule() []Fault {
	faults := make([]Fault, 0, len(in.sched))
	for _, f := range in.sched {
		faults = append(faults, f)
	}
	sortFaults(faults)
	return faults
}

// Log returns the faults fired so far, in canonical (op, seq) order.
// After a run in which every scheduled coordinate was reached it equals
// Schedule() — the reproducible fault event log.
func (in *Injector) Log() []Fault {
	in.mu.Lock()
	faults := append([]Fault(nil), in.fired...)
	in.mu.Unlock()
	sortFaults(faults)
	return faults
}

func sortFaults(faults []Fault) {
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Op != faults[j].Op {
			return faults[i].Op < faults[j].Op
		}
		return faults[i].Seq < faults[j].Seq
	})
}

// next claims the operation's next sequence number and returns the fault
// scheduled there, if any.
func (in *Injector) next(op string) (Fault, bool) {
	in.mu.Lock()
	seq := in.counts[op]
	in.counts[op] = seq + 1
	in.mu.Unlock()
	f, ok := in.sched[opSeq{op, seq}]
	return f, ok
}

// record marks one scheduled fault as fired.
func (in *Injector) record(f Fault) {
	in.mu.Lock()
	in.fired = append(in.fired, f)
	in.mu.Unlock()
	mFaults.With(string(f.Class)).Inc()
	in.Events.Event(obs.LevelWarn, "chaos.fault",
		obs.String("class", string(f.Class)),
		obs.String("op", f.Op),
		obs.Int("seq", f.Seq),
		obs.Dur("stall", f.Stall))
}

// classifyOp maps a request to its fault operation; "" means exempt
// (renewals, event streams, status, sweep admission all pass through).
func classifyOp(r *http.Request) string {
	path := r.URL.Path
	switch {
	case strings.HasSuffix(path, "/result"), path == "/submit":
		return OpSubmit
	case strings.HasSuffix(path, "/leases"), path == "/lease":
		return OpLease
	}
	return ""
}

// Transport wraps a RoundTripper with the injector's request-class
// faults. base nil means http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

// Client wraps an *http.Client so its requests cross the injector;
// base nil means a fresh client over http.DefaultTransport. The
// original client is not modified.
func (in *Injector) Client(base *http.Client) *http.Client {
	var wrapped http.Client
	if base != nil {
		wrapped = *base
	}
	wrapped.Transport = in.Transport(wrapped.Transport)
	return &wrapped
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := classifyOp(req)
	if op == "" {
		return t.base.RoundTrip(req)
	}
	f, ok := t.in.next(op)
	if !ok {
		return t.base.RoundTrip(req)
	}
	t.in.record(f)
	switch f.Class {
	case Delay:
		select {
		case <-time.After(f.Stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case Drop:
		// The request never reaches the wire; the caller sees a transport
		// failure and retries.
		return nil, fmt.Errorf("chaos: injected drop (%s #%d)", f.Op, f.Seq)
	case Err:
		// Synthesized overload answer; the request is not delivered.
		// Retry-After 0 exercises the client's hint parsing without
		// stalling the retry loop.
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Retry-After": []string{"0"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 503")),
			Request:    req,
		}, nil
	case Trunc:
		// The request is delivered and processed; the caller just never
		// sees a whole response — a retry against an idempotent endpoint
		// must converge.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
		return resp, nil
	case Dup:
		// Deliver a duplicate first, discard its answer, then let the
		// original through — the network re-delivered a submit, and
		// first-accept idempotency must absorb it.
		if req.GetBody != nil {
			if body, err := req.GetBody(); err == nil {
				clone := req.Clone(req.Context())
				clone.Body = body
				if resp, err := t.base.RoundTrip(clone); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
		return t.base.RoundTrip(req)
	}
	return t.base.RoundTrip(req)
}

// Listener wraps a net.Listener with the injector's accept-class faults.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return conn, err
		}
		f, ok := l.in.next(OpAccept)
		if !ok {
			return conn, nil
		}
		l.in.record(f)
		switch f.Class {
		case AcceptDrop:
			// The peer sees its connection die before a byte moves —
			// a transport error on whatever call was in flight.
			conn.Close()
			continue
		case AcceptDelay:
			time.Sleep(f.Stall)
			return conn, nil
		default:
			return conn, nil
		}
	}
}
