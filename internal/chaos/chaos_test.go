package chaos

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	t.Parallel()
	spec, err := ParseSpec("drop=2,delay=3:20ms,dup=1,trunc=1,err=2,adrop=1,adelay=1,horizon=6")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Drop: 2, Delay: 3, Dup: 1, Trunc: 1, Err: 2, AcceptDrop: 1, AcceptDelay: 1,
		DelayFor: 20 * time.Millisecond, Horizon: 6}
	if spec != want {
		t.Fatalf("ParseSpec = %+v, want %+v", spec, want)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != spec {
		t.Fatalf("String round-trip = %+v, want %+v", again, spec)
	}
	if spec.Total() != 11 {
		t.Fatalf("Total = %d, want 11", spec.Total())
	}
}

func TestParseSpecRejects(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{"drop", "drop=x", "drop=-1", "bogus=1", "drop=1:5ms", "delay=1:nope"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
	if spec, err := ParseSpec(""); err != nil || spec.Total() != 0 {
		t.Fatalf("empty spec = (%+v, %v), want zero budget", spec, err)
	}
}

// TestScheduleDeterministic: the same (spec, seed) always materializes
// the identical schedule; a different seed materializes a different one.
func TestScheduleDeterministic(t *testing.T) {
	t.Parallel()
	spec := Spec{Drop: 2, Delay: 2, Dup: 1, Trunc: 1, Err: 2, DelayFor: 10 * time.Millisecond, Horizon: 8}
	a, err := New(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if la, lb := FormatLog(a.Schedule()), FormatLog(b.Schedule()); la != lb {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", la, lb)
	}
	c, err := New(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if FormatLog(a.Schedule()) == FormatLog(c.Schedule()) {
		t.Fatal("different seeds produced the identical schedule (suspicious)")
	}
	if got, want := len(a.Schedule()), spec.Total(); got != want {
		t.Fatalf("scheduled %d faults, want %d", got, want)
	}
}

// TestScheduleOverflow: budgets that cannot fit the horizon are refused
// at construction, not silently dropped.
func TestScheduleOverflow(t *testing.T) {
	t.Parallel()
	if _, err := New(Spec{Dup: 3, Horizon: 2}, 1); err == nil {
		t.Fatal("3 submit-only faults in a horizon of 2 accepted, want error")
	}
}

// faultAt builds an injector whose schedule is exactly one fault at the
// given coordinate, by rejection-sampling the seed. Tests use it to aim
// a single fault class at a single call.
func faultAt(t *testing.T, class Class, op string, seq int, delayFor time.Duration) *Injector {
	t.Helper()
	spec := Spec{Horizon: seq + 1, DelayFor: delayFor}
	switch class {
	case Drop:
		spec.Drop = 1
	case Delay:
		spec.Delay = 1
	case Dup:
		spec.Dup = 1
	case Trunc:
		spec.Trunc = 1
	case Err:
		spec.Err = 1
	case AcceptDrop:
		spec.AcceptDrop = 1
	case AcceptDelay:
		spec.AcceptDelay = 1
	}
	for seed := uint64(1); seed < 10_000; seed++ {
		in, err := New(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		sched := in.Schedule()
		if len(sched) == 1 && sched[0].Op == op && sched[0].Seq == seq {
			return in
		}
	}
	t.Fatalf("no seed under 10000 schedules %s at (%s, %d)", class, op, seq)
	return nil
}

// chaosClient wraps a handler behind an injector-wrapped loopback-style
// transport.
func chaosClient(in *Injector, h http.Handler) *http.Client {
	return in.Client(&http.Client{Transport: handlerTransport{h}})
}

// handlerTransport serves requests straight into a handler, in process.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

func countingHandler(calls *atomic.Int64, body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, body)
	})
}

func TestTransportDrop(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	in := faultAt(t, Drop, OpLease, 0, 0)
	cl := chaosClient(in, countingHandler(&calls, "ok"))
	if _, err := cl.Post("http://chaos/v1/leases", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if calls.Load() != 0 {
		t.Fatalf("dropped request reached the handler %d times", calls.Load())
	}
	// The next lease call passes through: the budget is spent.
	resp, err := cl.Post("http://chaos/v1/leases", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Fatalf("second call reached the handler %d times, want 1", calls.Load())
	}
	if log := in.Log(); len(log) != 1 || log[0].Class != Drop {
		t.Fatalf("fault log = %v, want one drop", log)
	}
}

func TestTransportErr503(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	in := faultAt(t, Err, OpSubmit, 0, 0)
	cl := chaosClient(in, countingHandler(&calls, "ok"))
	resp, err := cl.Post("http://chaos/v1/leases/lease-1/result", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 carries no Retry-After")
	}
	if calls.Load() != 0 {
		t.Fatalf("injected 503 still delivered the request %d times", calls.Load())
	}
}

func TestTransportTrunc(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	const body = `{"protocol":1,"status":"wait"}`
	in := faultAt(t, Trunc, OpLease, 0, 0)
	cl := chaosClient(in, countingHandler(&calls, body))
	resp, err := cl.Post("http://chaos/v1/leases", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Fatalf("truncated request delivered %d times, want 1 (delivery then corruption)", calls.Load())
	}
	if want := body[:len(body)/2]; string(got) != want {
		t.Fatalf("truncated body = %q, want %q", got, want)
	}
}

func TestTransportDupDeliversTwice(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	in := faultAt(t, Dup, OpSubmit, 0, 0)
	cl := chaosClient(in, countingHandler(&calls, "ok"))
	resp, err := cl.Post("http://chaos/v1/leases/lease-1/result", "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 2 {
		t.Fatalf("duplicated submit delivered %d times, want 2", calls.Load())
	}
}

func TestTransportDelayStalls(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	in := faultAt(t, Delay, OpLease, 0, 30*time.Millisecond)
	stall := in.Schedule()[0].Stall
	cl := chaosClient(in, countingHandler(&calls, "ok"))
	start := time.Now()
	resp, err := cl.Post("http://chaos/v1/leases", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("delayed call returned in %v, want at least the scheduled stall %v", elapsed, stall)
	}
	if calls.Load() != 1 {
		t.Fatalf("delayed request delivered %d times, want 1", calls.Load())
	}
}

// TestTransportExemptOps: only lease and submit calls burn sequence
// numbers; renewals and event streams never suffer request faults.
func TestTransportExemptOps(t *testing.T) {
	t.Parallel()
	var calls atomic.Int64
	in := faultAt(t, Drop, OpLease, 0, 0)
	cl := chaosClient(in, countingHandler(&calls, "ok"))
	for _, path := range []string{"/v1/leases/lease-1/renew", "/v1/sweeps/sw-1/events", "/status", "/v1/sweeps"} {
		resp, err := cl.Post("http://chaos"+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
	}
	if len(in.Log()) != 0 {
		t.Fatalf("exempt paths fired faults: %v", in.Log())
	}
}

// TestListenerAcceptDrop: an adrop fault kills the accepted connection
// (the dialer sees it die) and the listener keeps accepting.
func TestListenerAcceptDrop(t *testing.T) {
	t.Parallel()
	in := faultAt(t, AcceptDrop, OpAccept, 0, 0)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(base)
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	// First dial is eaten by the adrop fault: reading from it reports a
	// closed connection. Second dial reaches Accept.
	c1, err := net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	select {
	case conn := <-accepted:
		conn.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("listener never surfaced the second connection")
	}
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from the dropped connection succeeded")
	}
	if log := in.Log(); len(log) != 1 || log[0].Class != AcceptDrop {
		t.Fatalf("fault log = %v, want one adrop", log)
	}
}

// TestDupPreservesBody: the duplicate and the original both carry the
// full request body.
func TestDupPreservesBody(t *testing.T) {
	t.Parallel()
	var bodies [][]byte
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, b)
		io.WriteString(w, "ok")
	})
	in := faultAt(t, Dup, OpSubmit, 0, 0)
	cl := chaosClient(in, h)
	payload := `{"shard":"1/2"}`
	resp, err := cl.Post("http://chaos/submit", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || !bytes.Equal(bodies[0], bodies[1]) || string(bodies[0]) != payload {
		t.Fatalf("duplicate deliveries carried %q, want two copies of %q", bodies, payload)
	}
}
