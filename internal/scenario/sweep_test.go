package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/goal"
	"repro/internal/harness"
	"repro/internal/sensing"
	"repro/internal/server"
	"repro/internal/system"
	"repro/internal/xrand"
)

// collectStats sweeps the matrix and returns every scenario's aggregate in
// order, plus the summary.
func collectStats(t *testing.T, m *Matrix, cfg SweepConfig) ([]*Stats, *Summary) {
	t.Helper()
	var stats []*Stats
	cfg.OnStats = func(st *Stats) error {
		stats = append(stats, st)
		return nil
	}
	sum, err := m.Sweep(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stats, sum
}

// TestSweepMatchesFullRecordingRerun reruns every trial of a sweep
// serially with full history recording and checks that the sweep's online
// aggregates (computed under RecordOff) match the classical
// CompactAchieved / LastUnacceptable evaluation bit for bit.
func TestSweepMatchesFullRecordingRerun(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seeds = 2
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	stats, sum := collectStats(t, m, SweepConfig{Parallel: 2})
	if int64(len(stats)) != m.Size() {
		t.Fatalf("%d stats for %d scenarios", len(stats), m.Size())
	}
	if sum.Errors != 0 {
		t.Fatalf("sweep reported %d errors", sum.Errors)
	}

	reg := Builtin()
	window := spec.window()
	for i, st := range stats {
		sc := m.At(int64(i))
		if sc.ID() != st.ID {
			t.Fatalf("stats %d carries ID %s, scenario is %s", i, st.ID, sc.ID())
		}
		bind, err := reg.Bind(sc)
		if err != nil {
			t.Fatal(err)
		}
		successes := 0
		var conv []float64
		for trial := 0; trial < spec.seeds(); trial++ {
			user, err := bind.User()
			if err != nil {
				t.Fatal(err)
			}
			res, err := system.Run(user, bind.Server(), bind.World(), system.Config{
				MaxRounds: bind.MaxRounds,
				Seed:      system.DeriveSeed(spec.baseSeed()^sc.Hash(), trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			if goal.CompactAchieved(bind.Goal, res.History, window) {
				successes++
				conv = append(conv, float64(goal.LastUnacceptable(bind.Goal, res.History)))
			}
		}
		if st.Successes != successes {
			t.Fatalf("scenario %s: sweep saw %d successes, full recording %d",
				st.ID, st.Successes, successes)
		}
		want := Dist{
			Mean:   harness.Mean(conv),
			P50:    harness.Percentile(conv, 50),
			P99:    harness.Percentile(conv, 99),
			Max:    harness.Max(conv),
			Stddev: harness.Stddev(conv),
		}
		if st.Rounds != want {
			t.Fatalf("scenario %s: rounds dist %+v, full recording %+v",
				st.ID, st.Rounds, want)
		}
	}

	// The sweep saw some successes and some failures (obstinate rows),
	// or the comparison above was vacuous.
	if sum.Successes == 0 || sum.Successes == sum.Trials {
		t.Fatalf("degenerate sweep: %d/%d successes", sum.Successes, sum.Trials)
	}
}

// TestSweepParallelismInvariant checks the acceptance property: the
// serialized aggregates are byte-identical at -parallel 1 and a wide pool.
func TestSweepParallelismInvariant(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialStats, serialSum := collectStats(t, m, SweepConfig{Parallel: 1})
	parStats, parSum := collectStats(t, m, SweepConfig{Parallel: 8, ChunkTrials: 7})

	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := marshal(serialStats), marshal(parStats); a != b {
		t.Fatalf("parallel sweep stats differ from serial:\n%s\n%s", a, b)
	}
	if a, b := marshal(serialSum), marshal(parSum); a != b {
		t.Fatalf("parallel sweep summary differs from serial:\n%s\n%s", a, b)
	}
}

// TestSweepTrialBatchInvariant pins that SweepConfig.TrialBatch is a
// pure scheduling knob: every batch size, serial or parallel, yields
// stats and summaries identical to the unbatched serial sweep.
func TestSweepTrialBatchInvariant(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	wantStats, wantSum := collectStats(t, m, SweepConfig{Parallel: 1})
	for _, cfg := range []SweepConfig{
		{Parallel: 1, TrialBatch: 4},
		{Parallel: 1, TrialBatch: 64},
		{Parallel: 4, TrialBatch: 3},
		{Parallel: 4, TrialBatch: 16, ChunkTrials: 5},
		{Parallel: 8, TrialBatch: 64},
	} {
		stats, sum := collectStats(t, m, cfg)
		if a, b := marshal(wantStats), marshal(stats); a != b {
			t.Fatalf("%+v: sweep stats differ from serial unbatched:\n%s\n%s", cfg, a, b)
		}
		if a, b := marshal(wantSum), marshal(sum); a != b {
			t.Fatalf("%+v: sweep summary differs from serial unbatched:\n%s\n%s", cfg, a, b)
		}
	}
}

// TestSweepSampleSubsetAgrees checks that sampling draws the same
// aggregates the full enumeration produces for those scenarios — the
// content-derived seed derivation makes a scenario's trials independent of
// its position or the presence of other scenarios.
func TestSweepSampleSubsetAgrees(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := collectStats(t, m, SweepConfig{Parallel: 2})
	byID := make(map[string]string, len(full))
	for _, st := range full {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		byID[st.ID] = string(b)
	}

	indices := m.Sample(5, 3)
	var sampled []*Stats
	if _, err := m.Sweep(indices, SweepConfig{
		Parallel: 2,
		OnStats: func(st *Stats) error {
			sampled = append(sampled, st)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if len(sampled) != len(indices) {
		t.Fatalf("%d stats for %d sampled scenarios", len(sampled), len(indices))
	}
	for _, st := range sampled {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != byID[st.ID] {
			t.Fatalf("sampled scenario %s differs from full enumeration:\n%s\n%s",
				st.ID, b, byID[st.ID])
		}
	}
}

// TestSweepSurfacesTrialErrors checks that failing trials are counted per
// scenario with the first failure's message preserved, instead of
// vanishing into aggregates of nothing.
func TestSweepSurfacesTrialErrors(t *testing.T) {
	t.Parallel()

	reg := Builtin()
	reg.Register("broken", func(Axes) (*Parts, error) {
		// A nil enumerator makes every universal-user construction
		// fail at trial time, not at bind time.
		return &Parts{
			Goal:   &failGoal{},
			Enum:   nil,
			Sense:  func() sensing.Sense { return sensing.Const(true) },
			Member: func(int) comm.Strategy { return server.Obstinate() },
		}, nil
	})
	spec := &Spec{
		Name: "broken",
		Axes: []Axis{
			{Name: "goal", Values: []string{"broken"}},
			{Name: "server", Values: Ints(0)},
			{Name: "rounds", Values: Ints(10)},
		},
		Seeds: 3,
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	var stats []*Stats
	sum, err := m.Sweep(nil, SweepConfig{
		Registry: reg,
		OnStats: func(st *Stats) error {
			stats = append(stats, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 3 || len(stats) != 1 {
		t.Fatalf("summary errors = %d (stats %d), want 3 (1)", sum.Errors, len(stats))
	}
	st := stats[0]
	if st.Errors != 3 || st.Successes != 0 {
		t.Fatalf("stats = %+v, want 3 errors, 0 successes", st)
	}
	if !strings.Contains(st.FirstError, "nil enumerator") {
		t.Fatalf("FirstError = %q, want the construction error", st.FirstError)
	}
}

// failGoal is a minimal compact goal for the error-path test.
type failGoal struct{}

func (*failGoal) Name() string                 { return "broken" }
func (*failGoal) Kind() goal.Kind              { return goal.KindCompact }
func (*failGoal) EnvChoices() int              { return 1 }
func (*failGoal) NewWorld(goal.Env) goal.World { return &failWorld{} }
func (*failGoal) Acceptable(comm.History) bool { return false }

type failWorld struct{}

func (*failWorld) Reset(*xrand.Rand) {}
func (*failWorld) Step(comm.Inbox) (comm.Outbox, error) {
	return comm.Outbox{}, nil
}
func (*failWorld) Snapshot() comm.WorldState { return "" }

// TestSweepObstinateNeverSucceeds pins the semantics of the unhelpful
// probe: no scenario against the obstinate server reports a success.
func TestSweepObstinateNeverSucceeds(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Restrict("goal", "printing"); err != nil {
		t.Fatal(err)
	}
	spec.Axes = append(spec.Axes, Axis{Name: "user", Values: []string{"universal"}})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	ax := spec.axis("server")
	ax.Values = []string{"obstinate"}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	stats, sum := collectStats(t, m, SweepConfig{Parallel: 2})
	if sum.Successes != 0 {
		t.Fatalf("obstinate server produced %d successes", sum.Successes)
	}
	for _, st := range stats {
		if st.SuccessRate != 0 {
			t.Fatalf("scenario %s: success rate %g against obstinate", st.ID, st.SuccessRate)
		}
		if st.MeanSwitches == 0 {
			t.Fatalf("scenario %s: universal user never switched against obstinate", st.ID)
		}
	}
}

// judgelessGoal hides a compact goal's WorldJudge fast path, forcing the
// sweep onto the OnRound/snapshot fallback.
type judgelessGoal struct{ inner goal.CompactGoal }

func (g judgelessGoal) Name() string                     { return g.inner.Name() }
func (g judgelessGoal) Kind() goal.Kind                  { return g.inner.Kind() }
func (g judgelessGoal) NewWorld(env goal.Env) goal.World { return g.inner.NewWorld(env) }
func (g judgelessGoal) EnvChoices() int                  { return g.inner.EnvChoices() }
func (g judgelessGoal) Acceptable(h comm.History) bool   { return g.inner.Acceptable(h) }

// TestSweepJudgeFastPathMatchesFallback pins that the live-judge fast
// path (goal.WorldJudge via OnRoundLive) and the snapshot fallback
// (OnRound on a judge-less goal) fold to byte-identical aggregates over
// the quick matrix — the tracker-side half of the zero-allocation work.
func TestSweepJudgeFastPathMatchesFallback(t *testing.T) {
	t.Parallel()

	spec, err := BuiltinSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}

	// A registry identical to the builtin except every goal forgets its
	// WorldJudge refinement.
	stripped := NewRegistry()
	for _, name := range []string{"printing", "treasure", "transfer", "control"} {
		name := name
		stripped.Register(name, func(ax Axes) (*Parts, error) {
			parts, err := Builtin().builders[name](ax)
			if err != nil {
				return nil, err
			}
			if _, ok := parts.Goal.(goal.WorldJudge); !ok {
				t.Errorf("builtin goal %q lost its WorldJudge fast path", name)
			}
			parts.Goal = judgelessGoal{inner: parts.Goal}
			return parts, nil
		})
	}

	marshal := func(stats []*Stats) string {
		data, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	fastStats, fastSum := collectStats(t, m, SweepConfig{Parallel: 2})
	slowStats, slowSum := collectStats(t, m, SweepConfig{Parallel: 2, Registry: stripped})
	if fast, slow := marshal(fastStats), marshal(slowStats); fast != slow {
		t.Fatalf("judge fast path and snapshot fallback disagree:\nfast: %s\nslow: %s", fast, slow)
	}
	if fastSum.TotalRounds != slowSum.TotalRounds || fastSum.Successes != slowSum.Successes {
		t.Fatalf("summaries disagree: %+v vs %+v", fastSum, slowSum)
	}
}
